"""Experiment runner: trains schemes, replays traces, and collects metrics.

The evaluation protocol mirrors Section 5: every scheme is given the ``H``
most recent demand matrices of the *test* trace and must output the
configuration used for the next, unseen matrix.  The resulting MLU is
normalised by the omniscient-optimal MLU of that matrix.

Since the batched-engine refactor, this module is a thin facade over
:class:`repro.evaluation.engine.EvaluationEngine`: replay is a single
vectorized pass per scheme and the omniscient normalisers come from an
:class:`~repro.solvers.lp.OptimalMLUCache` shared by *every* experiment in
the process (main comparison, fluctuation, drift, failures).  Pass an
explicit ``engine`` to isolate caches, e.g. between unrelated path sets'
workloads in one long-running process.

Since the declarative-study redesign, the experiment-level facades
(:func:`compare_schemes`, :func:`fluctuation_experiment`,
:func:`drift_experiment`, :func:`failure_experiment`) are themselves thin
shims over :class:`repro.study.Study` -- kept for backward compatibility
(results are pinned bit-identical to the seed protocol), but new code
should declare experiment grids as specs and run them through a
:class:`~repro.study.Study`, which additionally deduplicates scenario
builds, scheme trainings and baseline replays across the whole grid.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.evaluation.engine import (
    DEFAULT_CHUNK_SIZE,
    EvaluationEngine,
    EvaluationResult,
    build_history_windows,
)
from repro.paths.path_set import PathSet
from repro.solvers.lp import shared_cache
from repro.te.scheme import TEScheme
from repro.traffic.matrix import TrafficMatrixSequence

__all__ = [
    "EvaluationResult",
    "build_history_windows",
    "default_engine",
    "compute_optimal_mlus",
    "evaluate_scheme",
    "evaluate_scheme_streaming",
    "compare_schemes",
    "fluctuation_experiment",
    "drift_experiment",
    "failure_experiment",
]

#: Process-wide engine, built on the process-wide LP-result cache -- the same
#: cache the trainers populate, so train + eval never solve one LP twice.
_DEFAULT_ENGINE = EvaluationEngine(cache=shared_cache())


def default_engine() -> EvaluationEngine:
    """The process-wide engine (and its shared optimal-MLU cache)."""
    return _DEFAULT_ENGINE


def _resolve_engine(
    engine: EvaluationEngine | None, backend: str | None = None
) -> EvaluationEngine:
    """The engine a facade call should use.

    An explicit engine wins.  A bare ``backend`` gets a backend-pinned
    engine that still shares the process-wide LP cache, so switching array
    backends never re-solves normalisers.
    """
    if engine is not None:
        return engine
    if backend is not None:
        return EvaluationEngine(cache=shared_cache(), backend=backend)
    return _DEFAULT_ENGINE


def compute_optimal_mlus(
    path_set: PathSet,
    demands: np.ndarray,
    engine: EvaluationEngine | None = None,
) -> np.ndarray:
    """Omniscient-optimal MLU for every demand vector (the normaliser)."""
    return (engine or _DEFAULT_ENGINE).optimal_mlus(path_set, demands)


def evaluate_scheme(
    scheme: TEScheme,
    test_sequence: TrafficMatrixSequence,
    history_len: int,
    optimal_mlus: np.ndarray | None = None,
    oracle_demand: bool = False,
    engine: EvaluationEngine | None = None,
    backend: str | None = None,
) -> EvaluationResult:
    """Replay a scheme over a test trace (one batched pass).

    Args:
        scheme: A scheme whose ``precompute`` has already been called.
        test_sequence: The test portion of the trace.
        history_len: Number of recent demand vectors handed to the scheme.
        optimal_mlus: Optional pre-computed omniscient MLUs (one per interval
            of the test sequence) to avoid re-solving the LP for every scheme.
        oracle_demand: If True the scheme is handed the *true* next demand as
            the most recent history row (used for the Omniscient benchmark).
        engine: Evaluation engine to use (the shared default if omitted).
        backend: Array backend for the replay hot path (see
            :mod:`repro.backend`).  When given without an explicit engine, a
            backend-pinned engine sharing the default LP cache is used.

    Returns:
        The per-interval results for intervals ``history_len .. len(test)-1``.
    """
    return _resolve_engine(engine, backend).evaluate_scheme(
        scheme,
        test_sequence,
        history_len,
        optimal_mlus=optimal_mlus,
        oracle_demand=oracle_demand,
    )


def evaluate_scheme_streaming(
    scheme: TEScheme,
    demand_stream: TrafficMatrixSequence | np.ndarray | Iterable,
    history_len: int,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    optimal_mlus: np.ndarray | None = None,
    oracle_demand: bool = False,
    engine: EvaluationEngine | None = None,
    backend: str | None = None,
) -> EvaluationResult:
    """Replay a scheme over an out-of-core trace in O(chunk) memory.

    Accepts the test trace as a sequence, a flat demand array, or any
    iterable of per-interval demand vectors; see
    :meth:`EvaluationEngine.evaluate_streaming`.  Results equal the batch
    path to 1e-9 (within the backend's tolerance when ``backend`` names a
    non-default array backend).
    """
    return _resolve_engine(engine, backend).evaluate_streaming(
        scheme,
        demand_stream,
        history_len,
        chunk_size=chunk_size,
        optimal_mlus=optimal_mlus,
        oracle_demand=oracle_demand,
    )


def compare_schemes(
    schemes: list[TEScheme],
    train_sequence: TrafficMatrixSequence,
    test_sequence: TrafficMatrixSequence,
    history_len: int,
    precompute: bool = True,
    engine: EvaluationEngine | None = None,
    backend: str | None = None,
) -> dict[str, EvaluationResult]:
    """Train (precompute) every scheme and replay all of them on the same trace.

    The omniscient-optimal MLUs are computed once and shared across schemes.

    .. deprecated:: prefer declaring the scheme axis of a
        :class:`repro.study.Study` spec; this facade is a thin shim over it.

    Raises:
        ValueError: If the schemes do not all share one :class:`PathSet`
        (their normalised MLUs would not be comparable).
    """
    from repro.study import ExperimentSpec, InlineScenario, Study

    schemes = list(schemes)
    path_set = EvaluationEngine._require_shared_path_set(schemes)
    if len(test_sequence) <= history_len:
        raise ValueError("test sequence is shorter than the history window")
    inline = InlineScenario(
        paths=path_set,
        train=train_sequence,
        test=test_sequence,
        history_len=history_len,
        name="compare_schemes",
    )
    cells = [
        ExperimentSpec(scenario=inline, scheme=scheme, train=precompute)
        for scheme in schemes
    ]
    results = Study(cells).run(engine=_resolve_engine(engine, backend))
    return {record.scheme: record.result for record in results}


def fluctuation_experiment(
    scheme: TEScheme,
    test_sequence: TrafficMatrixSequence,
    train_sequence: TrafficMatrixSequence,
    history_len: int,
    alphas: tuple[float, ...] = (0.2, 0.5, 1.0, 2.0),
    worst_case: bool = False,
    seed: int = 0,
    engine: EvaluationEngine | None = None,
    backend: str | None = None,
) -> dict[float, dict[str, float]]:
    """Performance decline under injected traffic fluctuations (Tables 3 and 5).

    .. deprecated:: prefer a fluctuation-perturbation axis in a
        :class:`repro.study.Study` spec; this facade is a thin shim over it.

    Args:
        scheme: A scheme already trained on ``train_sequence``.
        test_sequence: Unperturbed test trace.
        train_sequence: Training trace (provides the per-pair std).
        history_len: History window length.
        alphas: Fluctuation amplitudes.
        worst_case: If True, use the adversarial rank-reversed fluctuation of
            Table 5 instead of the natural fluctuation of Table 3.
        seed: RNG seed for the injected noise.
        engine: Evaluation engine to use (the shared default if omitted).
        backend: Array backend for the replay hot path (see
            :mod:`repro.backend`); ignored when ``engine`` is given.

    Returns:
        ``{alpha: {"average_decline": .., "p90_decline": ..}}`` where declines
        are relative increases of the mean / 90th-percentile normalised MLU
        versus the unperturbed test trace (negative = no degradation).
    """
    from repro.study import ExperimentSpec, InlineScenario, Study

    inline = InlineScenario(
        paths=scheme.path_set,
        train=train_sequence,
        test=test_sequence,
        history_len=history_len,
        name="fluctuation_experiment",
    )
    cells = [
        ExperimentSpec(
            scenario=inline,
            scheme=scheme,
            train=False,
            perturbation={
                "kind": "fluctuation",
                "alpha": alpha,
                "worst_case": worst_case,
                "seed": seed,
            },
        )
        for alpha in alphas
    ]
    results = Study(cells).run(engine=_resolve_engine(engine, backend))
    return {
        alpha: {
            "average_decline": record.metrics["average_decline"],
            "p90_decline": record.metrics["p90_decline"],
        }
        for alpha, record in zip(alphas, results)
    }


def drift_experiment(
    scheme_factory,
    traffic: TrafficMatrixSequence,
    history_len: int,
    segments: tuple[tuple[float, float], ...] = ((0.0, 0.25), (0.25, 0.5), (0.5, 0.75)),
    engine: EvaluationEngine | None = None,
    backend: str | None = None,
) -> dict[str, dict[str, float]]:
    """Natural-drift experiment (Table 4).

    A fresh scheme (built by ``scheme_factory()``) is trained on each early
    segment of the trace and tested on the final 25%; declines are relative
    to a scheme trained on the full first 75%.

    .. deprecated:: prefer a drift-perturbation axis in a
        :class:`repro.study.Study` spec; this facade is a thin shim over it.

    Returns:
        ``{"0%-25%": {"average_decline": .., "p90_decline": ..}, ...}``.
    """
    from repro.study import ExperimentSpec, InlineScenario, Study

    inline = InlineScenario(
        paths=None,
        traffic=traffic,
        history_len=history_len,
        name="drift_experiment",
    )
    cells = [
        ExperimentSpec(
            scenario=inline,
            scheme=scheme_factory,
            perturbation={"kind": "drift", "train_segment": segment},
        )
        for segment in segments
    ]
    results = Study(cells).run(engine=_resolve_engine(engine, backend))
    outcome: dict[str, dict[str, float]] = {}
    for (start, end), record in zip(segments, results):
        label = f"{int(start * 100)}%-{int(end * 100)}%"
        outcome[label] = {
            "average_decline": record.metrics["average_decline"],
            "p90_decline": record.metrics["p90_decline"],
        }
    return outcome


def failure_experiment(
    schemes: list[TEScheme],
    test_sequence: TrafficMatrixSequence,
    history_len: int,
    num_failures: int,
    num_trials: int = 10,
    fault_aware_names: tuple[str, ...] = ("FA Des TE",),
    seed: int = 0,
    engine: EvaluationEngine | None = None,
    backend: str | None = None,
) -> dict[str, np.ndarray]:
    """Link-failure experiment (Figures 7, 14 and 15).

    For every trial a random set of physical links fails.  Schemes compute
    their configuration from the (pre-failure) history; traffic on failed
    paths is redistributed per Section 4.5.  Schemes listed in
    ``fault_aware_names`` are told the failures in advance (they must expose
    ``set_failures``).  MLUs are normalised by an oracle that knows both the
    demand and the failures (it solves the LP restricted to surviving paths).

    .. deprecated:: prefer a failure-perturbation axis in a
        :class:`repro.study.Study` spec; this facade is a thin shim over it.
        Per-trial failure patterns depend only on ``seed``, and the failure
        oracle is LP-cached, so per-scheme study cells reproduce this
        facade's multi-scheme results bit-for-bit at no extra solve cost.

    Returns:
        Mapping from scheme name to an array of normalised MLUs (one entry
        per trial x evaluated interval).
    """
    from repro.study import ExperimentSpec, InlineScenario, Study

    schemes = list(schemes)
    path_set = EvaluationEngine._require_shared_path_set(schemes)
    inline = InlineScenario(
        paths=path_set,
        test=test_sequence,
        history_len=history_len,
        name="failure_experiment",
    )
    cells = [
        ExperimentSpec(
            scenario=inline,
            scheme=scheme,
            train=False,
            perturbation={
                "kind": "failure",
                "num_failures": num_failures,
                "num_trials": num_trials,
                "seed": seed,
                "fault_aware": scheme.name in fault_aware_names,
            },
        )
        for scheme in schemes
    ]
    results = Study(cells).run(engine=_resolve_engine(engine, backend))
    return {record.scheme: record.series for record in results}
