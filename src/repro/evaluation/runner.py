"""Experiment runner: trains schemes, replays traces, and collects metrics.

The evaluation protocol mirrors Section 5: every scheme is given the ``H``
most recent demand matrices of the *test* trace and must output the
configuration used for the next, unseen matrix.  The resulting MLU is
normalised by the omniscient-optimal MLU of that matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.evaluation.metrics import MLUStatistics, normalized_mlu_statistics
from repro.paths.path_set import PathSet
from repro.solvers.lp import omniscient_mlu, solve_mlu_lp
from repro.te.config import TEConfiguration
from repro.te.failures import reroute_around_failures, sample_failed_links
from repro.te.mlu import max_link_utilization
from repro.te.scheme import TEScheme
from repro.traffic.matrix import TrafficMatrixSequence
from repro.traffic.perturb import gaussian_fluctuation, reverse_rank_fluctuation

__all__ = [
    "EvaluationResult",
    "compute_optimal_mlus",
    "evaluate_scheme",
    "compare_schemes",
    "fluctuation_experiment",
    "drift_experiment",
    "failure_experiment",
]


@dataclass
class EvaluationResult:
    """Outcome of replaying one scheme over a test trace.

    Attributes:
        scheme_name: Name of the evaluated scheme.
        normalized_mlus: Per-interval MLU divided by the omniscient optimum.
        raw_mlus: Per-interval absolute MLU.
        optimal_mlus: Per-interval omniscient-optimal MLU.
    """

    scheme_name: str
    normalized_mlus: np.ndarray
    raw_mlus: np.ndarray
    optimal_mlus: np.ndarray

    @property
    def statistics(self) -> MLUStatistics:
        """Summary statistics of the normalised-MLU series."""
        return normalized_mlu_statistics(self.normalized_mlus)


def compute_optimal_mlus(path_set: PathSet, demands: np.ndarray) -> np.ndarray:
    """Omniscient-optimal MLU for every demand vector (the normaliser)."""
    return np.array([omniscient_mlu(path_set, demand) for demand in demands])


def evaluate_scheme(
    scheme: TEScheme,
    test_sequence: TrafficMatrixSequence,
    history_len: int,
    optimal_mlus: np.ndarray | None = None,
    oracle_demand: bool = False,
) -> EvaluationResult:
    """Replay a scheme over a test trace.

    Args:
        scheme: A scheme whose ``precompute`` has already been called.
        test_sequence: The test portion of the trace.
        history_len: Number of recent demand vectors handed to ``configure``.
        optimal_mlus: Optional pre-computed omniscient MLUs (one per interval
            of the test sequence) to avoid re-solving the LP for every scheme.
        oracle_demand: If True the scheme is handed the *true* next demand as
            the most recent history row (used for the Omniscient benchmark).

    Returns:
        The per-interval results for intervals ``history_len .. len(test)-1``.
    """
    flat = test_sequence.flat_demands()
    if len(flat) <= history_len:
        raise ValueError("test sequence is shorter than the history window")
    path_set = scheme.path_set
    raw, optimal, normalized = [], [], []
    for t in range(history_len, len(flat)):
        history = flat[t - history_len : t]
        if oracle_demand:
            history = np.vstack([history, flat[t]])
        config = scheme.configure(history)
        mlu = max_link_utilization(path_set, config, flat[t])
        if optimal_mlus is not None:
            best = float(optimal_mlus[t])
        else:
            best = omniscient_mlu(path_set, flat[t])
        raw.append(mlu)
        optimal.append(best)
        normalized.append(mlu / best)
    return EvaluationResult(
        scheme_name=scheme.name,
        normalized_mlus=np.array(normalized),
        raw_mlus=np.array(raw),
        optimal_mlus=np.array(optimal),
    )


def compare_schemes(
    schemes: list[TEScheme],
    train_sequence: TrafficMatrixSequence,
    test_sequence: TrafficMatrixSequence,
    history_len: int,
    precompute: bool = True,
) -> dict[str, EvaluationResult]:
    """Train (precompute) every scheme and replay all of them on the same trace.

    The omniscient-optimal MLUs are computed once and shared across schemes.
    """
    flat_test = test_sequence.flat_demands()
    path_set = schemes[0].path_set
    optimal = compute_optimal_mlus(path_set, flat_test)
    results: dict[str, EvaluationResult] = {}
    for scheme in schemes:
        if precompute:
            scheme.precompute(train_sequence)
        results[scheme.name] = evaluate_scheme(
            scheme, test_sequence, history_len, optimal_mlus=optimal
        )
    return results


def fluctuation_experiment(
    scheme: TEScheme,
    test_sequence: TrafficMatrixSequence,
    train_sequence: TrafficMatrixSequence,
    history_len: int,
    alphas: tuple[float, ...] = (0.2, 0.5, 1.0, 2.0),
    worst_case: bool = False,
    seed: int = 0,
) -> dict[float, dict[str, float]]:
    """Performance decline under injected traffic fluctuations (Tables 3 and 5).

    Args:
        scheme: A scheme already trained on ``train_sequence``.
        test_sequence: Unperturbed test trace.
        train_sequence: Training trace (provides the per-pair std).
        history_len: History window length.
        alphas: Fluctuation amplitudes.
        worst_case: If True, use the adversarial rank-reversed fluctuation of
            Table 5 instead of the natural fluctuation of Table 3.
        seed: RNG seed for the injected noise.

    Returns:
        ``{alpha: {"average_decline": .., "p90_decline": ..}}`` where declines
        are relative increases of the mean / 90th-percentile normalised MLU
        versus the unperturbed test trace (negative = no degradation).
    """
    reference_std = train_sequence.pair_std()
    baseline = evaluate_scheme(scheme, test_sequence, history_len)
    base_stats = baseline.statistics
    perturbation = reverse_rank_fluctuation if worst_case else gaussian_fluctuation
    outcome: dict[float, dict[str, float]] = {}
    for alpha in alphas:
        perturbed = perturbation(test_sequence, alpha, reference_std, seed=seed)
        result = evaluate_scheme(scheme, perturbed, history_len)
        stats = result.statistics
        outcome[alpha] = {
            "average_decline": stats.mean / base_stats.mean - 1.0,
            "p90_decline": stats.p90 / base_stats.p90 - 1.0,
        }
    return outcome


def drift_experiment(
    scheme_factory,
    traffic: TrafficMatrixSequence,
    history_len: int,
    segments: tuple[tuple[float, float], ...] = ((0.0, 0.25), (0.25, 0.5), (0.5, 0.75)),
) -> dict[str, dict[str, float]]:
    """Natural-drift experiment (Table 4).

    A fresh scheme (built by ``scheme_factory()``) is trained on each early
    segment of the trace and tested on the final 25%; declines are relative
    to a scheme trained on the full first 75%.

    Returns:
        ``{"0%-25%": {"average_decline": .., "p90_decline": ..}, ...}``.
    """
    test = traffic.segment(0.75, 1.0)
    baseline_scheme = scheme_factory()
    baseline_scheme.precompute(traffic.segment(0.0, 0.75))
    baseline = evaluate_scheme(baseline_scheme, test, history_len).statistics

    outcome: dict[str, dict[str, float]] = {}
    for start, end in segments:
        scheme = scheme_factory()
        scheme.precompute(traffic.segment(start, end))
        stats = evaluate_scheme(scheme, test, history_len).statistics
        label = f"{int(start * 100)}%-{int(end * 100)}%"
        outcome[label] = {
            "average_decline": stats.mean / baseline.mean - 1.0,
            "p90_decline": stats.p90 / baseline.p90 - 1.0,
        }
    return outcome


def failure_experiment(
    schemes: list[TEScheme],
    test_sequence: TrafficMatrixSequence,
    history_len: int,
    num_failures: int,
    num_trials: int = 10,
    fault_aware_names: tuple[str, ...] = ("FA Des TE",),
    seed: int = 0,
) -> dict[str, np.ndarray]:
    """Link-failure experiment (Figures 7, 14 and 15).

    For every trial a random set of physical links fails.  Schemes compute
    their configuration from the (pre-failure) history; traffic on failed
    paths is redistributed per Section 4.5.  Schemes listed in
    ``fault_aware_names`` are told the failures in advance (they must expose
    ``set_failures``).  MLUs are normalised by an oracle that knows both the
    demand and the failures (it solves the LP restricted to surviving paths).

    Returns:
        Mapping from scheme name to an array of normalised MLUs (one entry
        per trial x evaluated interval).
    """
    path_set = schemes[0].path_set
    topology = path_set.topology
    flat = test_sequence.flat_demands()
    if len(flat) <= history_len:
        raise ValueError("test sequence is shorter than the history window")
    rng = np.random.default_rng(seed)
    results: dict[str, list[float]] = {scheme.name: [] for scheme in schemes}

    eval_times = range(history_len, len(flat))
    for _ in range(num_trials):
        failed = sample_failed_links(topology, num_failures, rng)
        working_mask = path_set.restrict_to_working_paths(failed)
        for scheme in schemes:
            if scheme.name in fault_aware_names and hasattr(scheme, "set_failures"):
                scheme.set_failures(failed)
        for t in eval_times:
            history = flat[t - history_len : t]
            demand = flat[t]
            _, oracle = solve_mlu_lp(path_set, demand, path_mask=working_mask)
            oracle = max(oracle, 1e-12)
            for scheme in schemes:
                config = scheme.configure(history)
                if scheme.name in fault_aware_names:
                    rerouted = config
                else:
                    rerouted = reroute_around_failures(config, failed)
                mlu = max_link_utilization(path_set, rerouted, demand)
                results[scheme.name].append(mlu / oracle)
    return {name: np.array(values) for name, values in results.items()}
