"""Evaluation harness: metrics, scheme runner, timing, and report formatting."""

from repro.evaluation.metrics import (
    MLUStatistics,
    mean_confidence_interval,
    normalized_mlu_statistics,
    severe_congestion_fraction,
)
from repro.evaluation.engine import EvaluationEngine, build_history_windows, iter_window_chunks
from repro.evaluation.runner import (
    EvaluationResult,
    compute_optimal_mlus,
    default_engine,
    evaluate_scheme,
    evaluate_scheme_streaming,
    compare_schemes,
    fluctuation_experiment,
    drift_experiment,
    failure_experiment,
)
from repro.evaluation.timing import SchemeTiming, measure_scheme_timing
from repro.evaluation import reporting

__all__ = [
    "MLUStatistics",
    "normalized_mlu_statistics",
    "severe_congestion_fraction",
    "mean_confidence_interval",
    "EvaluationEngine",
    "build_history_windows",
    "iter_window_chunks",
    "default_engine",
    "EvaluationResult",
    "compute_optimal_mlus",
    "evaluate_scheme",
    "evaluate_scheme_streaming",
    "compare_schemes",
    "fluctuation_experiment",
    "drift_experiment",
    "failure_experiment",
    "SchemeTiming",
    "measure_scheme_timing",
    "reporting",
]
