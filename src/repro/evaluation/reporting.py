"""Plain-text report formatting for benchmark output.

Benchmarks print the same rows/series the paper's tables and figures report;
these helpers keep that output consistent and readable without requiring a
plotting stack.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.evaluation.metrics import MLUStatistics

__all__ = ["format_table", "format_mlu_comparison", "format_series"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None) -> str:
    """Format a list of rows as an aligned ASCII table.

    Raises:
        ValueError: If any row's cell count differs from ``len(headers)``,
            naming the offending row (a mismatched row used to surface as a
            bare ``IndexError`` from the column-width pass).
    """
    for index, row in enumerate(rows):
        if len(row) != len(headers):
            raise ValueError(
                f"table row {index} has {len(row)} cell(s) but there are "
                f"{len(headers)} header(s): {[str(cell) for cell in row]!r}"
            )
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_mlu_comparison(statistics: Mapping[str, MLUStatistics], title: str | None = None) -> str:
    """Format per-scheme normalised-MLU statistics (the Figure 5 summary)."""
    headers = ["scheme", "mean", "p50", "p75", "p90", "p99", "worst", "severe>2"]
    rows = []
    for name, stats in statistics.items():
        rows.append(
            [
                name,
                f"{stats.mean:.3f}",
                f"{stats.median:.3f}",
                f"{stats.p75:.3f}",
                f"{stats.p90:.3f}",
                f"{stats.p99:.3f}",
                f"{stats.worst:.3f}",
                f"{stats.severe_congestion_fraction * 100:.1f}%",
            ]
        )
    return format_table(headers, rows, title=title)


def format_series(name: str, values: np.ndarray, max_points: int = 20) -> str:
    """Format a numeric series compactly (downsampled to ``max_points``)."""
    values = np.asarray(values, dtype=float)
    if values.size > max_points:
        idx = np.linspace(0, values.size - 1, max_points).astype(int)
        values = values[idx]
    formatted = ", ".join(f"{v:.3f}" for v in values)
    return f"{name}: [{formatted}]"
