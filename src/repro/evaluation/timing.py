"""Timing harness for Table 2 (calculation time and precomputation time).

The paper separates two costs:

* *Calculation time*: the per-interval cost of producing a new configuration
  once fresh demand information is available (a DNN forward pass for
  FIGRET/DOTE, an LP solve for the optimisation-based schemes).
* *Precomputation time*: one-time training (FIGRET, DOTE, TEAL) or one-time
  solving (Oblivious, COPE).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.te.scheme import TEScheme
from repro.traffic.matrix import TrafficMatrixSequence

__all__ = ["SchemeTiming", "measure_scheme_timing"]


@dataclass(frozen=True)
class SchemeTiming:
    """Measured runtime of one scheme.

    Attributes:
        scheme_name: Name of the scheme.
        precompute_seconds: One-time training / solving time.
        mean_calculation_seconds: Average per-interval configuration time.
        p95_calculation_seconds: 95th percentile per-interval time.
    """

    scheme_name: str
    precompute_seconds: float
    mean_calculation_seconds: float
    p95_calculation_seconds: float


def measure_scheme_timing(
    scheme: TEScheme,
    train_sequence: TrafficMatrixSequence,
    test_sequence: TrafficMatrixSequence,
    history_len: int,
    max_intervals: int = 20,
) -> SchemeTiming:
    """Measure precompute and per-interval calculation time of a scheme.

    Args:
        scheme: Scheme to measure (``precompute`` has *not* been called yet).
        train_sequence: Training trace passed to ``precompute``.
        test_sequence: Test trace whose windows drive ``configure``.
        history_len: History window length.
        max_intervals: Number of test intervals to time (keeps LP-based
            schemes affordable).
    """
    start = time.perf_counter()
    scheme.precompute(train_sequence)
    precompute_seconds = time.perf_counter() - start

    flat = test_sequence.flat_demands()
    times: list[float] = []
    end = min(len(flat), history_len + max_intervals)
    for t in range(history_len, end):
        history = flat[t - history_len : t]
        start = time.perf_counter()
        scheme.configure(history)
        times.append(time.perf_counter() - start)
    if not times:
        raise ValueError("test sequence too short to time any interval")
    times_arr = np.array(times)
    return SchemeTiming(
        scheme_name=scheme.name,
        precompute_seconds=precompute_seconds,
        mean_calculation_seconds=float(times_arr.mean()),
        p95_calculation_seconds=float(np.percentile(times_arr, 95)),
    )
