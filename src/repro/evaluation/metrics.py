"""Metrics the paper reports over normalised-MLU series.

Every MLU in the paper's figures is normalised by the omniscient-optimal MLU
of the same demand matrix, so 1.0 means "as good as knowing the future".  The
box plots of Figure 5 are summarised here by mean and percentiles; the
"significant congestion" events counted in Section 5.2 are intervals whose
normalised MLU exceeds 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "MLUStatistics",
    "normalized_mlu_statistics",
    "severe_congestion_fraction",
    "mean_confidence_interval",
    "SEVERE_CONGESTION_THRESHOLD",
]

#: Normalised-MLU threshold above which the paper counts an interval as a
#: severe congestion event (Section 5.2).
SEVERE_CONGESTION_THRESHOLD = 2.0


@dataclass(frozen=True)
class MLUStatistics:
    """Summary statistics of a normalised-MLU series.

    Attributes:
        mean: Average normalised MLU.
        median: 50th percentile.
        p25 / p75 / p90 / p95 / p99: Percentiles of the distribution.
        worst: Maximum normalised MLU observed.
        severe_congestion_fraction: Fraction of intervals whose normalised
            MLU exceeds :data:`SEVERE_CONGESTION_THRESHOLD`.
        num_samples: Number of evaluated intervals.
    """

    mean: float
    median: float
    p25: float
    p75: float
    p90: float
    p95: float
    p99: float
    worst: float
    severe_congestion_fraction: float
    num_samples: int


def severe_congestion_fraction(
    normalized_mlus: np.ndarray, threshold: float = SEVERE_CONGESTION_THRESHOLD
) -> float:
    """Fraction of intervals counted as severe congestion events."""
    series = np.asarray(normalized_mlus, dtype=float)
    if series.size == 0:
        raise ValueError("cannot compute statistics of an empty series")
    return float((series > threshold).mean())


def mean_confidence_interval(
    values: np.ndarray, confidence: float = 0.95
) -> tuple[float, float]:
    """Mean and Student-t confidence half-width of a sample.

    The warehouse's repetition/seed aggregation reports every metric as
    ``mean +/- half_width`` at the given confidence level.  The half-width
    uses the t distribution with ``n - 1`` degrees of freedom (the correct
    small-sample interval for a handful of repetitions); a single sample has
    no spread information, so its half-width is reported as ``0.0``.

    Args:
        values: Per-repetition metric values (flattened).
        confidence: Two-sided confidence level in ``(0, 1)``.

    Returns:
        ``(mean, half_width)`` -- the interval is ``mean +/- half_width``.

    Raises:
        ValueError: On an empty sample or a confidence outside ``(0, 1)``.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence!r}")
    sample = np.asarray(values, dtype=float).ravel()
    if sample.size == 0:
        raise ValueError("cannot compute a confidence interval of an empty sample")
    mean = float(sample.mean())
    if sample.size == 1:
        return mean, 0.0
    from scipy import stats  # deferred: keep metrics import light

    sem = float(sample.std(ddof=1)) / float(np.sqrt(sample.size))
    half_width = float(stats.t.ppf(0.5 + confidence / 2.0, sample.size - 1) * sem)
    return mean, half_width


def normalized_mlu_statistics(normalized_mlus: np.ndarray) -> MLUStatistics:
    """Summarise a normalised-MLU series."""
    series = np.asarray(normalized_mlus, dtype=float)
    if series.size == 0:
        raise ValueError("cannot compute statistics of an empty series")
    percentiles = np.percentile(series, [25, 50, 75, 90, 95, 99])
    return MLUStatistics(
        mean=float(series.mean()),
        median=float(percentiles[1]),
        p25=float(percentiles[0]),
        p75=float(percentiles[2]),
        p90=float(percentiles[3]),
        p95=float(percentiles[4]),
        p99=float(percentiles[5]),
        worst=float(series.max()),
        severe_congestion_fraction=severe_congestion_fraction(series),
        num_samples=int(series.size),
    )
