"""Metrics the paper reports over normalised-MLU series.

Every MLU in the paper's figures is normalised by the omniscient-optimal MLU
of the same demand matrix, so 1.0 means "as good as knowing the future".  The
box plots of Figure 5 are summarised here by mean and percentiles; the
"significant congestion" events counted in Section 5.2 are intervals whose
normalised MLU exceeds 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "MLUStatistics",
    "normalized_mlu_statistics",
    "severe_congestion_fraction",
    "SEVERE_CONGESTION_THRESHOLD",
]

#: Normalised-MLU threshold above which the paper counts an interval as a
#: severe congestion event (Section 5.2).
SEVERE_CONGESTION_THRESHOLD = 2.0


@dataclass(frozen=True)
class MLUStatistics:
    """Summary statistics of a normalised-MLU series.

    Attributes:
        mean: Average normalised MLU.
        median: 50th percentile.
        p25 / p75 / p90 / p95 / p99: Percentiles of the distribution.
        worst: Maximum normalised MLU observed.
        severe_congestion_fraction: Fraction of intervals whose normalised
            MLU exceeds :data:`SEVERE_CONGESTION_THRESHOLD`.
        num_samples: Number of evaluated intervals.
    """

    mean: float
    median: float
    p25: float
    p75: float
    p90: float
    p95: float
    p99: float
    worst: float
    severe_congestion_fraction: float
    num_samples: int


def severe_congestion_fraction(
    normalized_mlus: np.ndarray, threshold: float = SEVERE_CONGESTION_THRESHOLD
) -> float:
    """Fraction of intervals counted as severe congestion events."""
    series = np.asarray(normalized_mlus, dtype=float)
    if series.size == 0:
        raise ValueError("cannot compute statistics of an empty series")
    return float((series > threshold).mean())


def normalized_mlu_statistics(normalized_mlus: np.ndarray) -> MLUStatistics:
    """Summarise a normalised-MLU series."""
    series = np.asarray(normalized_mlus, dtype=float)
    if series.size == 0:
        raise ValueError("cannot compute statistics of an empty series")
    percentiles = np.percentile(series, [25, 50, 75, 90, 95, 99])
    return MLUStatistics(
        mean=float(series.mean()),
        median=float(percentiles[1]),
        p25=float(percentiles[0]),
        p75=float(percentiles[2]),
        p90=float(percentiles[3]),
        p95=float(percentiles[4]),
        p99=float(percentiles[5]),
        worst=float(series.max()),
        severe_congestion_fraction=severe_congestion_fraction(series),
        num_samples=int(series.size),
    )
