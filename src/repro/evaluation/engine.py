"""Batched, cache-aware evaluation engine.

The seed evaluation replayed traces one interval at a time: one
``scheme.configure`` call, one MLU computation, and one fresh omniscient LP
solve per timestep.  This module amortises all three across the whole trace:

* **Windows** -- every history window of the test trace is materialised once
  as a ``(T, H, num_sd_pairs)`` stride-tricks view over the flattened demand
  array (:func:`build_history_windows`), shared with the trainer's window
  builder.
* **Configurations** -- the windows are handed to
  :meth:`TEScheme.configure_batch`, which the neural schemes implement as a
  single vectorized forward pass (two matrix multiplications instead of ``T``
  Python iterations).
* **MLUs** -- per-interval MLUs come from one batched
  :func:`max_link_utilization` call over the ``(T, num_paths)`` ratio matrix.
* **Normalisers** -- omniscient-optimal MLUs are served from an
  :class:`~repro.solvers.lp.OptimalMLUCache` shared across every experiment
  (main comparison, fluctuation, drift, failures), so a demand matrix is
  never LP-solved twice.  With a *persistent* cache (``OptimalMLUCache(path=
  ...)``) the entries survive the process, so repeated benchmark sessions
  skip the cold LP pass entirely.
* **Streaming** -- :meth:`EvaluationEngine.evaluate_streaming` replays the
  same batched pipeline chunk by chunk from a window iterator
  (:func:`~repro.traffic.windows.iter_window_chunks`), holding only
  ``history_len + chunk_size`` demand rows at a time, so traces far larger
  than memory replay out-of-core (online replay in the spirit of Garg &
  Young's on-line end-to-end congestion control).

The engine produces results numerically equivalent to the per-timestep path
(the schemes are deterministic functions of their history window); the test
suite pins the equivalence to ``1e-9``, batch vs. streaming vs. sequential.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from repro.backend import ArrayBackend, resolve_backend, use_backend
from repro.evaluation.metrics import MLUStatistics, normalized_mlu_statistics
from repro.paths.path_set import PathSet
from repro.solvers.lp import OptimalMLUCache, resolve_lp_workers
from repro.solvers.lp_backend import LPBackend, resolve_lp_backend
from repro.te.failures import (
    reroute_ratios_around_failures,
    sample_failed_links,
)
from repro.te.mlu import max_link_utilization
from repro.te.scheme import TEScheme
from repro.traffic.matrix import TrafficMatrix, TrafficMatrixSequence
from repro.traffic.perturb import gaussian_fluctuation, reverse_rank_fluctuation
from repro.traffic.windows import build_history_windows, iter_window_chunks

__all__ = [
    "EvaluationResult",
    "EvaluationEngine",
    "build_history_windows",
    "iter_window_chunks",
]

#: Default number of evaluation intervals per streaming chunk.
DEFAULT_CHUNK_SIZE = 256

#: Floor applied to normalisers so zero-demand intervals never divide by zero.
NORMALIZER_FLOOR = 1e-12


@dataclass
class EvaluationResult:
    """Outcome of replaying one scheme over a test trace.

    Attributes:
        scheme_name: Name of the evaluated scheme.
        normalized_mlus: Per-interval MLU divided by the omniscient optimum.
        raw_mlus: Per-interval absolute MLU.
        optimal_mlus: Per-interval omniscient-optimal MLU.
    """

    scheme_name: str
    normalized_mlus: np.ndarray
    raw_mlus: np.ndarray
    optimal_mlus: np.ndarray

    @property
    def statistics(self) -> MLUStatistics:
        """Summary statistics of the normalised-MLU series."""
        return normalized_mlu_statistics(self.normalized_mlus)


class EvaluationEngine:
    """Replays TE schemes over traces with batching and LP-result caching.

    One engine instance should be shared across experiments: its
    :class:`OptimalMLUCache` is what turns the repeated replays of the
    fluctuation / drift / failure protocols from ``O(T)`` LP solves each into
    cache hits.

    Args:
        cache: Optimal-MLU cache to use (a fresh in-memory one by default;
            pass an ``OptimalMLUCache(path=...)`` to persist LP results
            across benchmark sessions).
        lp_workers: Process-pool width for batches of independent LP solves.
            ``None`` solves sequentially in-process; the string ``"auto"``
            derives a width from ``os.cpu_count()`` (see
            :func:`~repro.solvers.lp.default_lp_workers`).
        backend: Array backend the replay hot path runs on -- the forward
            passes, batched MLUs and failure rerouting (see
            :mod:`repro.backend`).  ``None`` (default) follows the active
            backend (the ``REPRO_BACKEND`` environment variable, numpy if
            unset); a name or instance pins this engine regardless of the
            environment.  LP normalisers always stay on CPU behind the
            cache.
        lp_backend: LP solver backend for the omniscient normalisers (see
            :mod:`repro.solvers.lp_backend`) -- an ``LPBackend`` instance, a
            registered name (``"scipy"``, ``"highs"``, ``"auto"``), or
            ``None`` (default) for the process default (``REPRO_LP_BACKEND``,
            scipy if unset).
    """

    def __init__(
        self,
        cache: OptimalMLUCache | None = None,
        lp_workers: int | str | None = None,
        backend: ArrayBackend | str | None = None,
        lp_backend: "LPBackend | str | None" = None,
    ) -> None:
        self.cache = cache if cache is not None else OptimalMLUCache()
        lp_workers = resolve_lp_workers(lp_workers)
        self.lp_workers = lp_workers if lp_workers is None or lp_workers > 1 else None
        self.backend = resolve_backend(backend) if backend is not None else None
        self.lp_backend = (
            resolve_lp_backend(lp_backend) if lp_backend is not None else None
        )

    # ------------------------------------------------------------------ #
    # Normalisers
    # ------------------------------------------------------------------ #
    def optimal_mlus(
        self,
        path_set: PathSet,
        demands: np.ndarray,
        path_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Cached omniscient-optimal MLU for every demand vector."""
        return self.cache.optimal_mlus(
            path_set,
            demands,
            path_mask=path_mask,
            workers=self.lp_workers,
            backend=self.lp_backend,
        )

    # ------------------------------------------------------------------ #
    # Core replay
    # ------------------------------------------------------------------ #
    def evaluate_scheme(
        self,
        scheme: TEScheme,
        test_sequence: TrafficMatrixSequence,
        history_len: int,
        optimal_mlus: np.ndarray | None = None,
        oracle_demand: bool = False,
    ) -> EvaluationResult:
        """Replay a scheme over a test trace in one batched pass.

        Args:
            scheme: A scheme whose ``precompute`` has already been called.
            test_sequence: The test portion of the trace.
            history_len: Number of recent demand vectors per window.
            optimal_mlus: Optional pre-computed omniscient MLUs (one per
                interval of the *full* test sequence, like the seed runner
                expected) -- when omitted they come from the shared cache.
            oracle_demand: If True the scheme is handed the *true* next
                demand as the most recent history row (the Omniscient
                benchmark).

        Returns:
            Per-interval results for intervals ``history_len .. len(test)-1``.
        """
        flat = test_sequence.flat_demands()
        windows, targets = build_history_windows(
            flat, history_len, oracle_demand=oracle_demand
        )
        with use_backend(self.backend):
            ratios = scheme.configure_batch(windows)
            raw = np.atleast_1d(
                np.asarray(
                    max_link_utilization(scheme.path_set, ratios, targets), dtype=float
                )
            )
        if optimal_mlus is not None:
            optimal = np.asarray(optimal_mlus, dtype=float)[history_len : len(flat)]
        else:
            optimal = self.optimal_mlus(scheme.path_set, targets)
        normalized = raw / np.maximum(optimal, NORMALIZER_FLOOR)
        return EvaluationResult(
            scheme_name=scheme.name,
            normalized_mlus=normalized,
            raw_mlus=raw,
            optimal_mlus=np.array(optimal, dtype=float),
        )

    @staticmethod
    def _demand_row_stream(
        source: TrafficMatrixSequence | np.ndarray | Iterable,
    ) -> np.ndarray | Iterable[np.ndarray]:
        """Normalise a demand source into what :func:`iter_window_chunks` eats.

        2-D arrays pass through (the no-copy fast path); a
        :class:`TrafficMatrixSequence` or any iterable of
        :class:`TrafficMatrix` / flat vectors becomes a lazy row generator,
        flattening one matrix at a time.
        """
        if isinstance(source, np.ndarray) and source.ndim == 2:
            return source
        return (
            item.flat() if isinstance(item, TrafficMatrix) else np.asarray(item, dtype=float)
            for item in source
        )

    def evaluate_streaming(
        self,
        scheme: TEScheme,
        demand_stream: TrafficMatrixSequence | np.ndarray | Iterable,
        history_len: int,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        optimal_mlus: np.ndarray | None = None,
        oracle_demand: bool = False,
    ) -> EvaluationResult:
        """Replay a scheme over an arbitrarily long trace in O(chunk) memory.

        The batched pipeline of :meth:`evaluate_scheme` runs once per chunk
        of ``chunk_size`` evaluation intervals -- windows, one
        ``configure_batch`` forward pass, one batched MLU call, cache-served
        normalisers -- and only ``history_len + chunk_size`` demand rows are
        ever buffered when the trace arrives as a stream.  Results are
        numerically identical to the batch path (chunk boundaries fall
        *between* evaluation intervals; every window still sees its full
        history because each chunk carries the preceding ``history_len``
        rows).

        Args:
            scheme: A scheme whose ``precompute`` has already been called.
            demand_stream: The test trace: a :class:`TrafficMatrixSequence`,
                a ``(T, num_sd_pairs)`` array, or any iterable of per-
                interval demand vectors / :class:`TrafficMatrix` -- e.g. rows
                decoded lazily from a month-long on-disk trace.
            history_len: Number of recent demand vectors per window.
            chunk_size: Evaluation intervals replayed per chunk.
            optimal_mlus: Optional pre-computed omniscient MLUs, indexed like
                :meth:`evaluate_scheme`'s (one per interval of the full
                trace, the first ``history_len`` entries unused).
            oracle_demand: If True the scheme sees the true next demand as
                the most recent history row (the Omniscient benchmark).

        Returns:
            The same :class:`EvaluationResult` the batch path produces.
        """
        rows = self._demand_row_stream(demand_stream)
        raw_parts: list[np.ndarray] = []
        optimal_parts: list[np.ndarray] = []
        precomputed = (
            np.asarray(optimal_mlus, dtype=float) if optimal_mlus is not None else None
        )
        for windows, targets, start in iter_window_chunks(
            rows, history_len, chunk_size, oracle_demand=oracle_demand
        ):
            # One backend scope per chunk: the windows are copied to the
            # device once here (the chunk is the batching unit), run through
            # the forward pass and the batched MLU, and only the (T,) MLU
            # vector returns to the host.
            with use_backend(self.backend):
                ratios = scheme.configure_batch(windows)
                raw_parts.append(
                    np.atleast_1d(
                        np.asarray(
                            max_link_utilization(scheme.path_set, ratios, targets),
                            dtype=float,
                        )
                    )
                )
            if precomputed is not None:
                lo = history_len + start
                optimal_parts.append(precomputed[lo : lo + len(targets)])
            else:
                optimal_parts.append(self.optimal_mlus(scheme.path_set, targets))
        raw = np.concatenate(raw_parts)
        optimal = np.concatenate(optimal_parts).astype(float)
        normalized = raw / np.maximum(optimal, NORMALIZER_FLOOR)
        return EvaluationResult(
            scheme_name=scheme.name,
            normalized_mlus=normalized,
            raw_mlus=raw,
            optimal_mlus=optimal,
        )

    # ------------------------------------------------------------------ #
    # Experiments (Section 5 protocols)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _require_shared_path_set(schemes: list[TEScheme]) -> PathSet:
        """The one path set shared by all schemes (clear error otherwise)."""
        if not schemes:
            raise ValueError("at least one scheme is required")
        path_set = schemes[0].path_set
        for position, scheme in enumerate(schemes[1:], start=1):
            other = scheme.path_set
            if other is not path_set and other.fingerprint != path_set.fingerprint:
                raise ValueError(
                    "all schemes under comparison must share one PathSet so "
                    f"their MLUs are normalised consistently; scheme "
                    f"{scheme.name!r} (position {position}) uses a different "
                    f"path set ({other!r}) than {schemes[0].name!r} "
                    f"({path_set!r})"
                )
        return path_set

    def compare_schemes(
        self,
        schemes: list[TEScheme],
        train_sequence: TrafficMatrixSequence,
        test_sequence: TrafficMatrixSequence,
        history_len: int,
        precompute: bool = True,
    ) -> dict[str, EvaluationResult]:
        """Train (precompute) every scheme and replay all on the same trace.

        The omniscient-optimal normalisers are computed once (through the
        shared cache) and reused by every scheme.

        Raises:
            ValueError: If the schemes do not all share one :class:`PathSet`.
        """
        path_set = self._require_shared_path_set(schemes)
        flat_test = test_sequence.flat_demands()
        if len(flat_test) <= history_len:
            raise ValueError("test sequence is shorter than the history window")
        # The first ``history_len`` intervals are only ever history, never
        # normalisation targets, so their LPs are not solved; the NaN head
        # merely keeps the seed's full-trace indexing convention.
        tail = self.optimal_mlus(path_set, flat_test[history_len:])
        optimal = np.concatenate([np.full(history_len, np.nan), tail])
        results: dict[str, EvaluationResult] = {}
        for scheme in schemes:
            if precompute:
                scheme.precompute(train_sequence)
            results[scheme.name] = self.evaluate_scheme(
                scheme, test_sequence, history_len, optimal_mlus=optimal
            )
        return results

    def fluctuation_experiment(
        self,
        scheme: TEScheme,
        test_sequence: TrafficMatrixSequence,
        train_sequence: TrafficMatrixSequence,
        history_len: int,
        alphas: tuple[float, ...] = (0.2, 0.5, 1.0, 2.0),
        worst_case: bool = False,
        seed: int = 0,
    ) -> dict[float, dict[str, float]]:
        """Performance decline under injected fluctuations (Tables 3 and 5).

        See :func:`repro.evaluation.runner.fluctuation_experiment` for the
        argument semantics; this version reuses cached normalisers for the
        unperturbed baseline replay.
        """
        reference_std = train_sequence.pair_std()
        baseline = self.evaluate_scheme(scheme, test_sequence, history_len)
        base_stats = baseline.statistics
        perturbation = reverse_rank_fluctuation if worst_case else gaussian_fluctuation
        outcome: dict[float, dict[str, float]] = {}
        for alpha in alphas:
            perturbed = perturbation(test_sequence, alpha, reference_std, seed=seed)
            stats = self.evaluate_scheme(scheme, perturbed, history_len).statistics
            outcome[alpha] = {
                "average_decline": stats.mean / base_stats.mean - 1.0,
                "p90_decline": stats.p90 / base_stats.p90 - 1.0,
            }
        return outcome

    def drift_experiment(
        self,
        scheme_factory,
        traffic: TrafficMatrixSequence,
        history_len: int,
        segments: tuple[tuple[float, float], ...] = (
            (0.0, 0.25),
            (0.25, 0.5),
            (0.5, 0.75),
        ),
    ) -> dict[str, dict[str, float]]:
        """Natural-drift experiment (Table 4).

        Every per-segment replay runs on the same final-25% test slice, so
        after the baseline replay the normalisers are pure cache hits.
        """
        test = traffic.segment(0.75, 1.0)
        baseline_scheme = scheme_factory()
        baseline_scheme.precompute(traffic.segment(0.0, 0.75))
        baseline = self.evaluate_scheme(baseline_scheme, test, history_len).statistics

        outcome: dict[str, dict[str, float]] = {}
        for start, end in segments:
            scheme = scheme_factory()
            scheme.precompute(traffic.segment(start, end))
            stats = self.evaluate_scheme(scheme, test, history_len).statistics
            label = f"{int(start * 100)}%-{int(end * 100)}%"
            outcome[label] = {
                "average_decline": stats.mean / baseline.mean - 1.0,
                "p90_decline": stats.p90 / baseline.p90 - 1.0,
            }
        return outcome

    def failure_experiment(
        self,
        schemes: list[TEScheme],
        test_sequence: TrafficMatrixSequence,
        history_len: int,
        num_failures: int,
        num_trials: int = 10,
        fault_aware_names: tuple[str, ...] = ("FA Des TE",),
        seed: int = 0,
    ) -> dict[str, np.ndarray]:
        """Link-failure experiment (Figures 7, 14 and 15), batched per trial.

        The seed implementation solved one oracle LP and called every
        scheme's ``configure`` inside a trials x timesteps x schemes triple
        loop.  Here each trial runs one batched oracle pass (cached across
        repeated failure patterns), schemes whose configuration is
        failure-independent are batch-configured once for *all* trials, and
        rerouting is a vectorized array operation.  Schemes are assumed to be
        deterministic functions of their history window (all bundled schemes
        are).

        Returns:
            Mapping from scheme name to an array of normalised MLUs (one
            entry per trial x evaluated interval).
        """
        path_set = self._require_shared_path_set(schemes)
        topology = path_set.topology
        flat = test_sequence.flat_demands()
        windows, targets = build_history_windows(flat, history_len)
        rng = np.random.default_rng(seed)
        results: dict[str, list[np.ndarray]] = {scheme.name: [] for scheme in schemes}
        static_ratios: dict[str, np.ndarray] = {}

        for _ in range(num_trials):
            failed = sample_failed_links(topology, num_failures, rng)
            working_mask = path_set.restrict_to_working_paths(failed)
            for scheme in schemes:
                if scheme.name in fault_aware_names and hasattr(scheme, "set_failures"):
                    scheme.set_failures(failed)
            oracle = self.optimal_mlus(path_set, targets, path_mask=working_mask)
            oracle = np.maximum(oracle, NORMALIZER_FLOOR)
            with use_backend(self.backend):
                for scheme in schemes:
                    if scheme.name in fault_aware_names:
                        # Fault-aware schemes see the failures, so their batch
                        # must be recomputed per trial; their output needs no
                        # rerouting.
                        rerouted = scheme.configure_batch(windows)
                    else:
                        ratios = static_ratios.get(scheme.name)
                        if ratios is None:
                            ratios = scheme.configure_batch(windows)
                            static_ratios[scheme.name] = ratios
                        rerouted = reroute_ratios_around_failures(
                            path_set, ratios, working_mask
                        )
                    mlus = np.atleast_1d(
                        np.asarray(
                            max_link_utilization(path_set, rerouted, targets), dtype=float
                        )
                    )
                    results[scheme.name].append(mlus / oracle)
        return {
            name: np.concatenate(values) if values else np.array([])
            for name, values in results.items()
        }
