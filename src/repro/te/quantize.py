"""WCMP quantization of TE configurations.

The paper notes (Section 7) that FIGRET only requires switches supporting
WCMP (weighted-cost multipath).  Real WCMP implementations cannot install
arbitrary real-valued split ratios: each SD pair's ratios must be expressed as
small integer weights (bounded table entries).  This module quantizes a
:class:`~repro.te.config.TEConfiguration` to integer weights out of a fixed
total (largest-remainder rounding, which keeps each pair's weights summing to
exactly the total) and helps quantify the MLU penalty of quantization.
"""

from __future__ import annotations

import numpy as np

from repro.te.config import TEConfiguration

__all__ = ["quantize_configuration", "quantization_error"]


def quantize_configuration(config: TEConfiguration, total_weight: int = 16) -> TEConfiguration:
    """Quantize split ratios to integer weights out of ``total_weight``.

    Each SD pair's ratios are scaled to ``total_weight`` and rounded with the
    largest-remainder method, so the quantized weights are non-negative
    integers summing exactly to ``total_weight`` (hence the quantized ratios
    still sum to one).

    Args:
        config: The configuration to quantize.
        total_weight: WCMP weight budget per SD pair (e.g. 16 or 64 table
            entries).  Larger budgets approximate the real-valued ratios more
            closely.

    Returns:
        A new configuration with quantized ratios.
    """
    if total_weight < 1:
        raise ValueError("total_weight must be at least 1")
    path_set = config.path_set
    quantized = np.zeros_like(config.split_ratios)
    for src, dst in path_set.sd_pairs:
        indices = np.array(path_set.path_indices_for(src, dst))
        ratios = config.split_ratios[indices]
        scaled = ratios * total_weight
        floors = np.floor(scaled).astype(int)
        remainder = int(total_weight - floors.sum())
        if remainder > 0:
            # Give the leftover units to the paths with the largest fractional
            # parts (ties broken by original ratio, largest first).
            fractional = scaled - floors
            order = np.lexsort((-ratios, -fractional))
            floors[order[:remainder]] += 1
        quantized[indices] = floors / total_weight
    return TEConfiguration(path_set, quantized, normalize=False)


def quantization_error(config: TEConfiguration, total_weight: int = 16) -> float:
    """Maximum absolute per-path ratio change introduced by quantization."""
    quantized = quantize_configuration(config, total_weight=total_weight)
    return float(np.abs(quantized.split_ratios - config.split_ratios).max())
