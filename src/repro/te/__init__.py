"""Traffic engineering machinery shared by all TE schemes."""

from repro.te.config import TEConfiguration
from repro.te.mlu import link_loads, link_utilization, max_link_utilization
from repro.te.sensitivity import path_sensitivities, max_sensitivity_per_pair
from repro.te.failures import reroute_around_failures

__all__ = [
    "TEConfiguration",
    "link_loads",
    "link_utilization",
    "max_link_utilization",
    "path_sensitivities",
    "max_sensitivity_per_pair",
    "reroute_around_failures",
]
