"""Path sensitivity: the robustness metric of Section 4.1.

The sensitivity of path ``p`` is ``S_p = r_p / C_p`` where ``r_p`` is its
split ratio and ``C_p`` its (bottleneck) capacity.  Bounding ``S_p`` bounds
the impact any burst on the pair served by ``p`` can have on the utilisation
of the edges of ``p``.
"""

from __future__ import annotations

import numpy as np

from repro.paths.path_set import PathSet

__all__ = [
    "path_sensitivities",
    "max_sensitivity_per_pair",
    "normalized_path_capacities",
]


def normalized_path_capacities(path_set: PathSet) -> np.ndarray:
    """Path capacities normalised so the smallest edge capacity equals one.

    The paper normalises capacities this way when reporting sensitivities
    (Section 5.5), so constraints like "sensitivity <= 2/3" are comparable
    across topologies.
    """
    min_capacity = path_set.topology.capacities.min()
    return path_set.path_capacities / min_capacity


def path_sensitivities(path_set: PathSet, split_ratios, normalized: bool = False) -> np.ndarray:
    """Per-path sensitivity ``S_p = r_p / C_p``.

    Args:
        path_set: Candidate paths.
        split_ratios: A TEConfiguration or an array of per-path split ratios.
        normalized: If True, use capacities normalised to the topology's
            smallest edge capacity (the convention of Figure 8).
    """
    ratios = getattr(split_ratios, "split_ratios", split_ratios)
    ratios = np.asarray(ratios, dtype=float)
    caps = normalized_path_capacities(path_set) if normalized else path_set.path_capacities
    return ratios / caps


def max_sensitivity_per_pair(path_set: PathSet, split_ratios, normalized: bool = False) -> np.ndarray:
    """``S^max_sd``: the maximum sensitivity among each SD pair's paths.

    Returns an array of length ``num_sd_pairs`` in SD-pair order.  This is
    the quantity weighted by per-pair traffic variance in FIGRET's loss
    (Equation 8).
    """
    sens = path_sensitivities(path_set, split_ratios, normalized=normalized)
    result = np.zeros(path_set.num_sd_pairs)
    np.maximum.at(result, path_set.path_sd_index, sens)
    return result
