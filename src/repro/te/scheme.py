"""Common interface implemented by every TE scheme in this repository.

A TE scheme's lifecycle in the paper's evaluation is:

1. ``precompute(train_sequence)`` -- one-time work performed on the training
   portion of the trace: training the DNN (FIGRET/DOTE), estimating per-pair
   statistics (Des TE, heuristic-F schemes), or solving the oblivious/COPE
   LPs.
2. ``configure(history)`` -- called once per evaluation interval with the
   ``H`` most recent demand vectors; must return the TE configuration that
   will carry the *next* (unseen) demand matrix.

All schemes operate on a shared :class:`~repro.paths.path_set.PathSet`, so
their outputs are directly comparable.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.paths.path_set import PathSet
from repro.te.config import TEConfiguration
from repro.traffic.matrix import TrafficMatrixSequence

__all__ = ["TEScheme"]


class TEScheme(abc.ABC):
    """Abstract base class for traffic engineering schemes.

    Args:
        path_set: The candidate paths shared by all schemes under comparison.
        name: Human readable scheme name used in reports.
    """

    def __init__(self, path_set: PathSet, name: str) -> None:
        self.path_set = path_set
        self.name = name

    def precompute(self, train_sequence: TrafficMatrixSequence) -> None:
        """One-time precomputation / training on historical traffic.

        The default implementation does nothing, which is correct for
        schemes that need no training (e.g. plain prediction-based LP TE).
        """

    @abc.abstractmethod
    def configure(self, history: np.ndarray) -> TEConfiguration:
        """Produce the configuration for the next interval.

        Args:
            history: Array of shape ``(H, num_sd_pairs)`` holding the ``H``
                most recent demand vectors, oldest first.  Schemes that only
                need the most recent matrix use ``history[-1]``.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r})"
