"""Common interface implemented by every TE scheme in this repository.

A TE scheme's lifecycle in the paper's evaluation is:

1. ``precompute(train_sequence)`` -- one-time work performed on the training
   portion of the trace: training the DNN (FIGRET/DOTE), estimating per-pair
   statistics (Des TE, heuristic-F schemes), or solving the oblivious/COPE
   LPs.
2. ``configure(history)`` -- called once per evaluation interval with the
   ``H`` most recent demand vectors; must return the TE configuration that
   will carry the *next* (unseen) demand matrix.

Batch-oriented replay (the evaluation engine) instead calls
``configure_batch(windows)`` once with *every* history window of the test
trace stacked into a single ``(T, H, num_sd_pairs)`` array.  The base class
falls back to looping ``configure``; schemes whose configuration is a pure
function of the window (the neural schemes in particular) override it with a
single vectorized pass.

All schemes operate on a shared :class:`~repro.paths.path_set.PathSet`, so
their outputs are directly comparable.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.paths.path_set import PathSet
from repro.te.config import TEConfiguration
from repro.traffic.matrix import TrafficMatrixSequence

__all__ = ["TEScheme"]


class TEScheme(abc.ABC):
    """Abstract base class for traffic engineering schemes.

    Args:
        path_set: The candidate paths shared by all schemes under comparison.
        name: Human readable scheme name used in reports.
    """

    def __init__(self, path_set: PathSet, name: str) -> None:
        self.path_set = path_set
        self.name = name

    def precompute(self, train_sequence: TrafficMatrixSequence) -> None:
        """One-time precomputation / training on historical traffic.

        The default implementation does nothing, which is correct for
        schemes that need no training (e.g. plain prediction-based LP TE).
        """

    @abc.abstractmethod
    def configure(self, history: np.ndarray) -> TEConfiguration:
        """Produce the configuration for the next interval.

        Args:
            history: Array of shape ``(H, num_sd_pairs)`` holding the ``H``
                most recent demand vectors, oldest first.  Schemes that only
                need the most recent matrix use ``history[-1]``.
        """

    def configure_batch(self, windows: np.ndarray) -> np.ndarray:
        """Split ratios for a whole batch of history windows at once.

        Args:
            windows: Array of shape ``(T, H, num_sd_pairs)``: one history
                window (oldest demand first) per evaluation interval.

        Returns:
            Array of shape ``(T, num_paths)`` whose rows are valid split
            ratios (non-negative, summing to one within each SD pair) --
            row ``i`` equals ``configure(windows[i]).split_ratios``.

        The default implementation loops :meth:`configure`; schemes with a
        vectorized forward pass override it to process all windows in one
        shot.
        """
        windows = np.asarray(windows, dtype=float)
        if windows.ndim != 3:
            raise ValueError(
                f"windows must have shape (T, H, num_sd_pairs), got {windows.shape}"
            )
        if windows.shape[0] == 0:
            return np.zeros((0, self.path_set.num_paths))
        return np.stack([self.configure(window).split_ratios for window in windows])

    def _static_batch(self, windows: np.ndarray, configuration: TEConfiguration) -> np.ndarray:
        """Batch output for schemes whose configuration never changes.

        Broadcasts one configuration's ratios over the batch (a read-only
        view -- downstream consumers only read).  Shared by Oblivious and
        COPE so the shape validation stays in one place.
        """
        windows = np.asarray(windows, dtype=float)
        if windows.ndim != 3:
            raise ValueError(
                f"windows must have shape (T, H, num_sd_pairs), got {windows.shape}"
            )
        return np.broadcast_to(
            configuration.split_ratios, (windows.shape[0], self.path_set.num_paths)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r})"
