"""TE configurations: per-path split ratios.

A TE configuration specifies, for every SD pair, how its demand is split over
the pair's candidate paths (Section 3 of the paper).  The split ratios of a
pair must be non-negative and sum to one.
"""

from __future__ import annotations

import numpy as np

from repro.paths.path_set import PathSet

__all__ = ["TEConfiguration"]


class TEConfiguration:
    """Split ratios over the candidate paths of a :class:`PathSet`.

    Args:
        path_set: The candidate paths the ratios refer to.
        split_ratios: Array of length ``path_set.num_paths`` with the fraction
            of each SD pair's demand carried by each path.
        normalize: If True (default), ratios are re-normalised per SD pair so
            they sum to one; if a pair's ratios are all zero they are replaced
            by a uniform split.  If False the ratios must already be valid.

    Raises:
        ValueError: If ratios are negative, have the wrong length, or (with
            ``normalize=False``) do not sum to one for some pair.
    """

    #: Tolerance used when checking that per-pair ratios sum to one.
    SUM_TOLERANCE = 1e-6

    def __init__(self, path_set: PathSet, split_ratios, normalize: bool = True) -> None:
        ratios = np.asarray(split_ratios, dtype=float).copy()
        if ratios.shape != (path_set.num_paths,):
            raise ValueError(
                f"expected {path_set.num_paths} split ratios, got shape {ratios.shape}"
            )
        if np.any(ratios < -self.SUM_TOLERANCE):
            raise ValueError("split ratios must be non-negative")
        ratios = np.clip(ratios, 0.0, None)
        sums = path_set.sd_to_path @ ratios
        if normalize:
            ratios = self._normalized(path_set, ratios, sums)
        else:
            if np.any(np.abs(sums - 1.0) > 1e-4):
                bad = int(np.argmax(np.abs(sums - 1.0)))
                raise ValueError(
                    f"split ratios for SD pair {path_set.sd_pairs[bad]} sum to {sums[bad]:.6f}"
                )
        self.path_set = path_set
        self.split_ratios = ratios

    @staticmethod
    def _normalized(path_set: PathSet, ratios: np.ndarray, sums: np.ndarray) -> np.ndarray:
        normalized = ratios.copy()
        for pair_idx, (src, dst) in enumerate(path_set.sd_pairs):
            indices = list(path_set.path_indices_for(src, dst))
            total = sums[pair_idx]
            if total <= TEConfiguration.SUM_TOLERANCE:
                normalized[indices] = 1.0 / len(indices)
            else:
                normalized[indices] = ratios[indices] / total
        return normalized

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def uniform(cls, path_set: PathSet) -> "TEConfiguration":
        """Equal split over every pair's candidate paths (TE scheme 2 style)."""
        return cls(path_set, np.ones(path_set.num_paths), normalize=True)

    @classmethod
    def shortest_path(cls, path_set: PathSet) -> "TEConfiguration":
        """All traffic on each pair's first (shortest) candidate path."""
        ratios = np.zeros(path_set.num_paths)
        for src, dst in path_set.topology.sd_pairs():
            indices = path_set.path_indices_for(src, dst)
            ratios[indices[0]] = 1.0
        return cls(path_set, ratios, normalize=False)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    def ratios_for(self, src: int, dst: int) -> np.ndarray:
        """Split ratios of the candidate paths serving ``src -> dst``."""
        indices = list(self.path_set.path_indices_for(src, dst))
        return self.split_ratios[indices]

    def copy(self) -> "TEConfiguration":
        """Deep copy of this configuration."""
        return TEConfiguration(self.path_set, self.split_ratios.copy(), normalize=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"TEConfiguration(paths={self.path_set.num_paths}, "
            f"pairs={self.path_set.num_sd_pairs})"
        )
