"""Mapping TE configurations and demands to link loads and MLU.

This implements Function 1 of Appendix D.1 as NumPy matrix operations:

    FlowOnPath = demand_per_path * split_ratios
    FlowOnEdge = PathToEdge^T @ FlowOnPath
    MLU        = max(FlowOnEdge / capacities)

All functions accept either a single demand vector (1-D, in SD-pair order) or
a batch of demand vectors (2-D with shape ``(batch, num_sd_pairs)``).
"""

from __future__ import annotations

import numpy as np

from repro.backend import ArrayBackend, resolve_backend
from repro.paths.path_set import PathSet

__all__ = ["link_loads", "link_utilization", "max_link_utilization"]


def _split_ratio_array(split_ratios) -> np.ndarray:
    # Accept a TEConfiguration-like object or a raw array.
    ratios = getattr(split_ratios, "split_ratios", split_ratios)
    return np.asarray(ratios, dtype=float)


def link_loads(path_set: PathSet, split_ratios, demands) -> np.ndarray:
    """Traffic volume carried by every edge.

    Args:
        path_set: Candidate paths.
        split_ratios: A :class:`~repro.te.config.TEConfiguration` or an array
            of per-path split ratios.
        demands: Demand vector in SD-pair order, or a batch of such vectors.

    Returns:
        Array of per-edge loads with shape ``(num_edges,)`` or
        ``(batch, num_edges)``.
    """
    ratios = _split_ratio_array(split_ratios)
    demand = np.asarray(demands, dtype=float)
    demand_per_path = path_set.demand_per_path(demand)
    flow_on_path = demand_per_path * ratios
    # path_to_edge is (paths, edges); flow_on_path is (..., paths).
    return _sparse_dot(path_set, flow_on_path)


def _sparse_dot(path_set: PathSet, flow_on_path: np.ndarray) -> np.ndarray:
    """Multiply per-path flows by the path-to-edge incidence (sparse-aware)."""
    if flow_on_path.ndim == 1:
        return path_set.path_to_edge.T @ flow_on_path
    # csr_matrix.T @ dense works column-wise; transpose to keep batch leading.
    return (path_set.path_to_edge.T @ flow_on_path.T).T


def link_utilization(path_set: PathSet, split_ratios, demands) -> np.ndarray:
    """Per-edge utilisation (load divided by capacity)."""
    loads = link_loads(path_set, split_ratios, demands)
    return loads / path_set.topology.capacities


def max_link_utilization(
    path_set: PathSet,
    split_ratios,
    demands,
    backend: ArrayBackend | str | None = None,
) -> float | np.ndarray:
    """Maximum link utilisation (the TE objective ``M(R, D)`` of Section 3).

    Returns a scalar for a single demand vector or an array of shape
    ``(batch,)`` for a batch of demand vectors.

    Args:
        backend: Array backend computing the batched gather / product /
            incidence-matmul / max pipeline (the active backend when
            omitted).  The default numpy backend runs the original
            scipy-sparse path bit-identically; alternates copy the batch to
            the device once and match within their declared tolerance.
    """
    xb = resolve_backend(backend)
    if not xb.native_numpy:
        return _max_link_utilization_generic(path_set, split_ratios, demands, xb)
    utilization = link_utilization(path_set, split_ratios, demands)
    result = utilization.max(axis=-1)
    if np.ndim(result) == 0:
        return float(result)
    return result


def _max_link_utilization_generic(
    path_set: PathSet, split_ratios, demands, xb: ArrayBackend
) -> float | np.ndarray:
    """Backend-generic MLU: gather -> product -> incidence matmul -> max."""
    ratios = np.asarray(_split_ratio_array(split_ratios), dtype=float)
    demand = np.asarray(demands, dtype=float)
    if demand.shape[-1] != path_set.num_sd_pairs:
        raise ValueError(
            f"demand vector must have {path_set.num_sd_pairs} entries, got {demand.shape}"
        )
    single = ratios.ndim == 1 and demand.ndim == 1
    data = xb.path_set_data(path_set)
    demand_rows = xb.atleast_2d(xb.asarray(demand, dtype=xb.compute_dtype))
    ratio_rows = xb.atleast_2d(xb.asarray(ratios, dtype=xb.compute_dtype))
    flow_on_path = xb.mul(xb.take_last(demand_rows, data["index"]), ratio_rows)
    loads = xb.edge_loads(data, flow_on_path)
    utilization = xb.div(loads, data["capacities"])
    result = np.asarray(xb.to_numpy(xb.max_last(utilization)), dtype=float)
    if single:
        return float(result[0])
    return result
