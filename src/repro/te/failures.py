"""Link-failure handling (Section 4.5).

When links fail, paths traversing them become unusable.  The widely adopted
recovery strategy reproduced here redistributes each SD pair's traffic from
failed paths onto its surviving paths:

* proportionally to the surviving paths' existing split ratios when at least
  one surviving path had a positive ratio, or
* uniformly across the surviving paths when all surviving ratios are zero.

Handling failures this way requires no retraining of FIGRET/DOTE and no
re-solving of the LP baselines.
"""

from __future__ import annotations

import numpy as np

from repro.backend import ArrayBackend, resolve_backend
from repro.te.config import TEConfiguration

__all__ = [
    "reroute_around_failures",
    "reroute_ratios_around_failures",
    "sample_failed_links",
]


def reroute_ratios_around_failures(
    path_set,
    ratios: np.ndarray,
    working_mask: np.ndarray,
    backend: ArrayBackend | str | None = None,
) -> np.ndarray:
    """Vectorized failure rerouting on raw split-ratio arrays.

    Implements the same redistribution policy as
    :func:`reroute_around_failures` but operates directly on one ratio vector
    ``(num_paths,)`` or a batch ``(T, num_paths)`` with no Python loop over
    SD pairs -- the per-(trial, interval) hot path of the failure experiment.

    Args:
        path_set: The paths the ratios refer to.
        ratios: Valid per-pair-normalised split ratios (one row per interval).
        working_mask: Boolean mask of surviving paths (as produced by
            :meth:`PathSet.restrict_to_working_paths`).
        backend: Array backend for the batched redistribution (the active
            backend when omitted).  The default numpy backend runs the
            original path bit-identically; alternates match within their
            declared tolerance.  Mask-derived per-path constants are always
            computed host-side (the mask lives there anyway).

    Returns:
        Rerouted ratios of the same shape.
    """
    arr = np.asarray(ratios, dtype=float)
    single = arr.ndim == 1
    rows = np.atleast_2d(arr)
    mask = np.asarray(working_mask, dtype=bool)
    if mask.shape != (path_set.num_paths,):
        raise ValueError("working_mask must have one entry per path")
    if mask.all():
        return arr.copy()
    xb = resolve_backend(backend)
    if not xb.native_numpy:
        out = _reroute_generic(path_set, rows, mask, xb)
        return out[0] if single else out

    idx = path_set.path_sd_index
    pair_counts = np.asarray(path_set.sd_to_path.sum(axis=1)).ravel()
    surviving_counts = path_set.sd_to_path @ mask.astype(float)
    # Per-row, per-pair mass on surviving paths.
    surviving_total = (path_set.sd_to_path @ (rows * mask).T).T

    per_path_total = surviving_total[:, idx]
    per_path_surv_count = surviving_counts[idx]
    per_path_pair_count = pair_counts[idx]

    # Proportional redistribution where surviving mass remains...
    has_mass = per_path_total > TEConfiguration.SUM_TOLERANCE
    safe_total = np.where(has_mass, per_path_total, 1.0)
    proportional = np.where(mask, rows / safe_total, 0.0)
    # ...uniform over surviving paths where it does not...
    uniform_surviving = np.where(
        mask, 1.0 / np.maximum(per_path_surv_count, 1.0), 0.0
    )
    out = np.where(has_mass, proportional, uniform_surviving)
    # ...and uniform over *all* candidate paths for fully partitioned pairs.
    out = np.where(per_path_surv_count == 0, 1.0 / per_path_pair_count, out)
    # Pairs untouched by the failures keep their exact original ratios.
    untouched = (surviving_counts == pair_counts)[idx]
    out = np.where(untouched, rows, out)
    return out[0] if single else out


def _reroute_generic(
    path_set, rows: np.ndarray, mask: np.ndarray, xb: ArrayBackend
) -> np.ndarray:
    """Backend-generic redistribution (same policy as the numpy path).

    The per-path constants implied by the mask alone -- surviving counts,
    the uniform fallbacks, the untouched-pair mask -- are tiny ``(P,)``
    vectors computed in numpy; only the per-(interval, path) tensors run on
    the backend.
    """
    idx = path_set.path_sd_index
    pair_counts = np.asarray(path_set.sd_to_path.sum(axis=1)).ravel()
    surviving_counts = path_set.sd_to_path @ mask.astype(float)
    per_path_surv_count = surviving_counts[idx]
    uniform_surviving = np.where(
        mask, 1.0 / np.maximum(per_path_surv_count, 1.0), 0.0
    )
    partitioned = per_path_surv_count == 0
    partition_uniform = 1.0 / pair_counts[idx]
    untouched = (surviving_counts == pair_counts)[idx]

    data = xb.path_set_data(path_set)
    row_t = xb.asarray(rows, dtype=xb.compute_dtype)
    mask_f = xb.asarray(mask.astype(float), dtype=xb.compute_dtype)
    surviving_total = xb.segment_sum(
        xb.mul(row_t, mask_f), data["index"], data["num_pairs"]
    )
    per_path_total = xb.take_last(surviving_total, data["index"])
    has_mass = xb.greater(per_path_total, TEConfiguration.SUM_TOLERANCE)
    safe_total = xb.where(has_mass, per_path_total, 1.0)
    proportional = xb.where(
        xb.asarray(mask, dtype=bool), xb.div(row_t, safe_total), 0.0
    )
    out = xb.where(
        has_mass,
        proportional,
        xb.asarray(uniform_surviving, dtype=xb.compute_dtype),
    )
    out = xb.where(
        xb.asarray(partitioned, dtype=bool),
        xb.asarray(partition_uniform, dtype=xb.compute_dtype),
        out,
    )
    out = xb.where(xb.asarray(untouched, dtype=bool), row_t, out)
    return np.asarray(xb.to_numpy(out), dtype=float)


def reroute_around_failures(
    config: TEConfiguration,
    failed_edges: set[tuple[int, int]] | list[tuple[int, int]],
) -> TEConfiguration:
    """Redistribute traffic away from paths that traverse failed edges.

    Args:
        config: The TE configuration computed before the failures.
        failed_edges: Directed edges that have failed.  For an undirected
            physical link failure, include both directions.

    Returns:
        A new configuration in which no failed path carries traffic.  SD
        pairs whose candidate paths have *all* failed keep a uniform split
        over their (failed) paths -- their traffic is effectively lost, which
        mirrors reality when a pair is partitioned.
    """
    path_set = config.path_set
    failed_set = set(failed_edges)
    working_mask = path_set.restrict_to_working_paths(failed_set)
    new_ratios = config.split_ratios.copy()

    for src, dst in path_set.sd_pairs:
        indices = np.array(path_set.path_indices_for(src, dst))
        working = working_mask[indices]
        if working.all():
            continue
        if not working.any():
            # Pair fully partitioned w.r.t. its candidate paths; keep uniform
            # ratios so the configuration stays well formed.
            new_ratios[indices] = 1.0 / len(indices)
            continue
        surviving = indices[working]
        surviving_total = config.split_ratios[surviving].sum()
        new_ratios[indices] = 0.0
        if surviving_total > TEConfiguration.SUM_TOLERANCE:
            new_ratios[surviving] = config.split_ratios[surviving] / surviving_total
        else:
            new_ratios[surviving] = 1.0 / len(surviving)
    return TEConfiguration(path_set, new_ratios, normalize=False)


def sample_failed_links(
    topology,
    num_failures: int,
    rng: np.random.Generator,
    bidirectional: bool = True,
) -> set[tuple[int, int]]:
    """Sample random link failures.

    Args:
        topology: The topology whose links may fail.
        num_failures: Number of physical links to fail.
        rng: NumPy random generator.
        bidirectional: If True (default), failing a link removes both
            directed edges between its endpoints (physical link failure).

    Returns:
        The set of failed directed edges.
    """
    undirected = sorted({tuple(sorted((e.src, e.dst))) for e in topology.edges})
    if num_failures > len(undirected):
        raise ValueError("cannot fail more links than the topology has")
    chosen = rng.choice(len(undirected), size=num_failures, replace=False)
    failed: set[tuple[int, int]] = set()
    for idx in chosen:
        a, b = undirected[int(idx)]
        failed.add((a, b))
        if bidirectional:
            failed.add((b, a))
    return failed
