"""Declarative experiment specs: plain-data descriptions of evaluation cells.

An experiment cell is everything one table entry of the paper needs: a
scenario (registered name, inline config, or live objects), a scheme
(builder spec or live instance), a perturbation / failure profile, and the
evaluation knobs (history length, interval cap, streaming).  Cells are plain
dicts all the way down, so a whole study grid can live in a JSON file and
ride through :meth:`ResultSet.to_json` as provenance.

Grids are declared with :class:`sweep` axes::

    spec = {
        "scenario": sweep("geant_small", "pfabric_small"),
        "scheme": sweep({"kind": "figret"}, {"kind": "dote"}),
        "perturbation": sweep({"kind": "none"},
                              {"kind": "fluctuation", "alpha": 1.0}),
    }

:func:`expand_spec` turns that into the 2 x 2 x 2 = 8 concrete cells (the
cross product, later axes varying fastest).  In pure-JSON specs the marker
is spelled ``{"sweep": [...]}``.

The scheme side mirrors the scenario registry: every bundled TE scheme has a
builder registered under a ``kind`` name, and :func:`register_scheme` opens
the table up so new schemes are data too.
"""

from __future__ import annotations

import functools
import itertools
import json
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.datasets.registry import Scenario
from repro.paths.path_set import PathSet
from repro.te.scheme import TEScheme
from repro.traffic.matrix import TrafficMatrixSequence

__all__ = [
    "sweep",
    "expand_spec",
    "ExperimentSpec",
    "InlineScenario",
    "register_scheme",
    "available_schemes",
    "build_scheme",
    "canonical_json",
]


class sweep:
    """Marks a spec value as a grid axis: one cell per listed value."""

    def __init__(self, *values: Any) -> None:
        if not values:
            raise ValueError("sweep(...) needs at least one value")
        self.values = tuple(values)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"sweep({', '.join(map(repr, self.values))})"


def _is_sweep_dict(node: Any) -> bool:
    """The pure-JSON spelling of a sweep axis: ``{"sweep": [...]}``."""
    return (
        isinstance(node, Mapping)
        and set(node.keys()) == {"sweep"}
        and isinstance(node["sweep"], Sequence)
        and not isinstance(node["sweep"], (str, bytes))
    )


def _find_axes(node: Any, path: tuple, axes: list) -> None:
    if isinstance(node, sweep):
        axes.append((path, node.values))
    elif _is_sweep_dict(node):
        axes.append((path, tuple(node["sweep"])))
    elif isinstance(node, Mapping):
        for key, value in node.items():
            _find_axes(value, path + (key,), axes)
    elif isinstance(node, (list, tuple)):
        for index, item in enumerate(node):
            _find_axes(item, path + (index,), axes)


def _substitute(node: Any, assignment: dict, path: tuple) -> Any:
    if path in assignment:
        return assignment[path]
    if isinstance(node, Mapping):
        return {key: _substitute(value, assignment, path + (key,)) for key, value in node.items()}
    if isinstance(node, (list, tuple)):
        return [_substitute(item, assignment, path + (index,)) for index, item in enumerate(node)]
    return node


def expand_spec(spec: Mapping) -> list[dict]:
    """Expand a study spec's sweep axes into the cross product of cell dicts.

    Axes expand in discovery order (depth-first over keys), the last axis
    varying fastest.  A spec with no sweeps expands to a single cell.
    """
    if not isinstance(spec, Mapping):
        raise TypeError(f"study spec must be a mapping, got {type(spec).__name__}")
    axes: list[tuple[tuple, tuple]] = []
    _find_axes(spec, (), axes)
    if not axes:
        return [_substitute(spec, {}, ())]
    cells = []
    paths = [path for path, _ in axes]
    for combo in itertools.product(*(values for _, values in axes)):
        assignment = dict(zip(paths, combo))
        cells.append(_substitute(spec, assignment, ()))
    return cells


# --------------------------------------------------------------------------- #
# JSON-safe canonicalisation (cell provenance and dedup keys)
# --------------------------------------------------------------------------- #
def _jsonify(value: Any) -> Any:
    """Convert a spec value into plain JSON types (tuples -> lists, ...)."""
    if isinstance(value, Mapping):
        return {str(key): _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise TypeError(f"spec value {value!r} is not JSON-serialisable")


def canonical_json(value: Any) -> str:
    """Deterministic JSON encoding used as a dedup/cache key."""
    return json.dumps(_jsonify(value), sort_keys=True, separators=(",", ":"))


_REGISTRY_REF_KEYS = frozenset({"name", "seed", "num_intervals"})


def scenario_cache_key(scenario) -> str:
    """Canonical dedup key of a scenario reference (any accepted form).

    Registry references normalise to ``name + seed + num_intervals`` (a bare
    string name means default seed / length); inline configs key by their
    canonical JSON; live objects key by identity.

    Raises:
        ValueError: If a registry reference dict carries unknown keys (a
            typo like ``intervals`` would otherwise silently load -- and
            cache-collide with -- a different trace than declared).
    """
    if isinstance(scenario, str):
        return canonical_json({"name": scenario, "seed": 0, "num_intervals": None})
    if isinstance(scenario, Mapping):
        if "name" in scenario and "topology" not in scenario:
            unknown = set(scenario) - _REGISTRY_REF_KEYS
            if unknown:
                raise ValueError(
                    f"unknown scenario reference key(s) {sorted(unknown)}; a registry "
                    f"reference allows {sorted(_REGISTRY_REF_KEYS)} (inline configs "
                    "need a 'topology' entry)"
                )
            return canonical_json(
                {
                    "name": scenario["name"],
                    "seed": scenario.get("seed", 0),
                    "num_intervals": scenario.get("num_intervals"),
                }
            )
        return canonical_json(scenario)
    return f"object:{id(scenario)}"


# --------------------------------------------------------------------------- #
# Scheme builder registry
# --------------------------------------------------------------------------- #
_SCHEME_BUILDERS: dict[str, Callable] = {}


def register_scheme(kind: str, overwrite: bool = False):
    """Register a TE-scheme builder under a spec ``kind`` name.

    The decorated builder is called as ``builder(path_set, *, cache=None,
    lp_workers=None, **params)`` with the remaining spec keys as ``params``
    and must return a :class:`~repro.te.scheme.TEScheme`.  ``cache`` /
    ``lp_workers`` carry the study engine's LP cache and pool width; builders
    of schemes that never solve training-time LPs may ignore them.

    Raises:
        ValueError: If ``kind`` is already registered and ``overwrite`` is
            not set.
    """

    def decorator(builder: Callable) -> Callable:
        if kind in _SCHEME_BUILDERS and not overwrite:
            raise ValueError(
                f"scheme kind {kind!r} is already registered; pass overwrite=True to replace it"
            )
        _SCHEME_BUILDERS[kind] = builder
        return builder

    return decorator


def available_schemes() -> list[str]:
    """Names of all registered scheme kinds."""
    return sorted(_SCHEME_BUILDERS)


def build_scheme(
    spec: Mapping,
    path_set: PathSet,
    cache=None,
    lp_workers: int | None = None,
) -> TEScheme:
    """Build a (untrained) scheme instance from a plain-dict spec.

    Args:
        spec: ``{"kind": <registered name>, ...builder params}``; an optional
            ``"label"`` key (the record display name) is stripped here.
        path_set: Candidate paths the scheme operates on.
        cache: Optimal-MLU cache for training-time normalisers.
        lp_workers: LP process-pool width for training-time solves.

    Raises:
        ValueError: If the kind is missing or unknown.
    """
    params = dict(spec)
    kind = params.pop("kind", None)
    params.pop("label", None)
    if kind is None:
        raise ValueError(f"scheme spec {dict(spec)!r} is missing its 'kind' key")
    builder = _SCHEME_BUILDERS.get(kind)
    if builder is None:
        raise ValueError(
            f"unknown scheme kind {kind!r}; available: {', '.join(available_schemes())}"
        )
    return builder(path_set, cache=cache, lp_workers=lp_workers, **params)


def _training_config(params: dict):
    from repro.core.config import TrainingConfig

    if "hidden_sizes" in params:
        params["hidden_sizes"] = tuple(params["hidden_sizes"])
    return TrainingConfig(**params)


@register_scheme("figret")
def _build_figret(path_set, *, cache=None, lp_workers=None, **params):
    from repro.core.figret import Figret

    return Figret(path_set, _training_config(params), cache=cache, lp_workers=lp_workers)


@register_scheme("dote")
def _build_dote(path_set, *, cache=None, lp_workers=None, **params):
    from repro.core.dote import Dote

    return Dote(path_set, _training_config(params), cache=cache, lp_workers=lp_workers)


@register_scheme("teal")
def _build_teal(path_set, *, cache=None, lp_workers=None, **params):
    from repro.core.teal_like import TealLike

    return TealLike(path_set, _training_config(params), cache=cache, lp_workers=lp_workers)


@register_scheme("des_te")
def _build_des_te(path_set, *, cache=None, lp_workers=None, **params):
    from repro.solvers.desensitization import DesensitizationTE

    return DesensitizationTE(path_set, **params)


@register_scheme("fa_des_te")
def _build_fa_des_te(path_set, *, cache=None, lp_workers=None, **params):
    from repro.solvers.desensitization import FaultAwareDesensitizationTE

    return FaultAwareDesensitizationTE(path_set, **params)


@register_scheme("linear_sens")
def _build_linear_sens(path_set, *, cache=None, lp_workers=None, **params):
    from repro.solvers.heuristic_f import LinearSensitivityTE

    return LinearSensitivityTE(path_set, **params)


@register_scheme("piecewise_sens")
def _build_piecewise_sens(path_set, *, cache=None, lp_workers=None, **params):
    from repro.solvers.heuristic_f import PiecewiseSensitivityTE

    return PiecewiseSensitivityTE(path_set, **params)


@register_scheme("pred_te")
def _build_pred_te(path_set, *, cache=None, lp_workers=None, **params):
    from repro.solvers.lp import PredictionBasedTE

    return PredictionBasedTE(path_set, **params)


@register_scheme("omniscient")
def _build_omniscient(path_set, *, cache=None, lp_workers=None, **params):
    from repro.solvers.lp import OmniscientTE

    return OmniscientTE(path_set, **params)


@register_scheme("oblivious")
def _build_oblivious(path_set, *, cache=None, lp_workers=None, **params):
    from repro.solvers.oblivious import ObliviousTE

    return ObliviousTE(path_set, **params)


@register_scheme("cope")
def _build_cope(path_set, *, cache=None, lp_workers=None, **params):
    from repro.solvers.cope import CopeTE

    return CopeTE(path_set, **params)


# --------------------------------------------------------------------------- #
# Cell specs
# --------------------------------------------------------------------------- #
@dataclass
class InlineScenario:
    """Live-object scenario context (the legacy facades' calling convention).

    Carries pre-split sequences instead of a registered scenario, so the
    :mod:`repro.evaluation.runner` facades can route through the study
    executor without re-deriving splits.  Not JSON-reproducible: result
    provenance records it as ``{"inline": name}``.
    """

    paths: PathSet | None = None
    train: TrafficMatrixSequence | None = None
    test: TrafficMatrixSequence | None = None
    traffic: TrafficMatrixSequence | None = None
    history_len: int | None = None
    name: str = "inline"


_PERTURBATION_DEFAULTS: dict[str, dict[str, Any]] = {
    "none": {},
    "fluctuation": {"alpha": None, "worst_case": False, "seed": 0},
    "failure": {"num_failures": None, "num_trials": 10, "seed": 0, "fault_aware": None},
    "drift": {"train_segment": None, "test_segment": (0.75, 1.0)},
}

#: Perturbation keys that must be given explicitly (no sensible default).
_PERTURBATION_REQUIRED = {"fluctuation": ("alpha",), "failure": ("num_failures",), "drift": ("train_segment",)}

_CELL_KEYS = frozenset(
    {
        "scenario",
        "scheme",
        "perturbation",
        "history_len",
        "max_intervals",
        "streaming",
        "chunk_size",
        "oracle_demand",
        "train",
        "tags",
    }
)


def _normalize_perturbation(perturbation: Mapping | None) -> dict:
    if perturbation is None:
        return {"kind": "none"}
    if not isinstance(perturbation, Mapping):
        raise TypeError(f"perturbation must be a mapping, got {type(perturbation).__name__}")
    params = dict(perturbation)
    kind = params.pop("kind", None)
    if kind not in _PERTURBATION_DEFAULTS:
        raise ValueError(
            f"unknown perturbation kind {kind!r}; available: "
            f"{', '.join(sorted(_PERTURBATION_DEFAULTS))}"
        )
    normalized = {"kind": kind}
    defaults = _PERTURBATION_DEFAULTS[kind]
    unknown = set(params) - set(defaults)
    if unknown:
        raise ValueError(
            f"unknown key(s) {sorted(unknown)} for perturbation kind {kind!r}; "
            f"allowed: {sorted(defaults)}"
        )
    for key, default in defaults.items():
        normalized[key] = params.get(key, default)
    for key in _PERTURBATION_REQUIRED.get(kind, ()):
        if normalized[key] is None:
            raise ValueError(f"perturbation kind {kind!r} requires {key!r}")
    return normalized


@dataclass
class ExperimentSpec:
    """One fully specified experiment cell.

    Attributes:
        scenario: Registered scenario name (``str``), registry reference
            (``{"name": ..., "seed": ..., "num_intervals": ...}``), inline
            scenario config (a dict with a ``"topology"`` key, see
            :func:`repro.datasets.from_config`), a built
            :class:`~repro.datasets.Scenario`, or an :class:`InlineScenario`.
        scheme: Scheme spec dict (``{"kind": ..., ...params, "label": ...}``),
            a live :class:`~repro.te.scheme.TEScheme`, or a zero-argument
            factory returning one (required for drift cells that retrain).
        perturbation: ``{"kind": "none" | "fluctuation" | "failure" |
            "drift", ...}``; defaults to no perturbation (a plain replay).
        history_len: History window override (scenario default if ``None``).
        max_intervals: Cap on evaluated test intervals (slices the test
            split to ``history_len + max_intervals`` rows).
        streaming: Replay through the O(chunk)-memory streaming path.
        chunk_size: Streaming chunk size.
        oracle_demand: Hand the scheme the true next demand (Omniscient).
        train: Whether the study trains (``precompute``) the scheme on the
            scenario's training split; set ``False`` for pre-trained live
            instances.
        tags: Free-form provenance carried into the result record.
    """

    scenario: Any
    scheme: Any
    perturbation: Mapping | None = None
    history_len: int | None = None
    max_intervals: int | None = None
    streaming: bool = False
    chunk_size: int = 256
    oracle_demand: bool = False
    train: bool = True
    tags: Mapping = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.scenario is None:
            raise ValueError("an experiment cell requires a scenario")
        if self.scheme is None:
            raise ValueError("an experiment cell requires a scheme")
        if not isinstance(self.tags, Mapping):
            raise TypeError(
                f"cell tags must be a mapping, got {type(self.tags).__name__}"
            )
        # Tags ride into result provenance and warehouse exports; failing a
        # non-JSON-safe tag here (cell construction) beats failing it after
        # the cell has already been executed.
        _jsonify(self.tags)
        self.perturbation = _normalize_perturbation(self.perturbation)
        if isinstance(self.scheme, Mapping):
            # Fail fast on unknown kinds, before any cell executes.
            kind = self.scheme.get("kind")
            if kind not in _SCHEME_BUILDERS:
                raise ValueError(
                    f"unknown scheme kind {kind!r}; available: {', '.join(available_schemes())}"
                )

    @classmethod
    def from_dict(cls, cell: Mapping) -> "ExperimentSpec":
        """Build a cell from its plain-dict form (unknown keys rejected)."""
        unknown = set(cell) - _CELL_KEYS
        if unknown:
            raise ValueError(
                f"unknown experiment spec key(s) {sorted(unknown)}; allowed: {sorted(_CELL_KEYS)}"
            )
        return cls(**cell)

    # ------------------------------------------------------------------ #
    # Dedup keys (cached: specs are treated as immutable once built)
    # ------------------------------------------------------------------ #
    @functools.cached_property
    def scenario_key(self) -> str:
        """Canonical key identifying the resolved scenario (for dedup)."""
        return scenario_cache_key(self.scenario)

    @functools.cached_property
    def scheme_key(self) -> str:
        """Canonical key identifying the scheme spec (for training dedup)."""
        if isinstance(self.scheme, Mapping):
            spec = {key: value for key, value in self.scheme.items() if key != "label"}
            return canonical_json(spec)
        return f"object:{id(self.scheme)}"

    @functools.cached_property
    def eval_key(self) -> str:
        """Canonical key of the replay knobs (baseline-replay dedup)."""
        return canonical_json(
            {
                "history_len": self.history_len,
                "max_intervals": self.max_intervals,
                "oracle_demand": self.oracle_demand,
                "streaming": self.streaming,
                "chunk_size": self.chunk_size if self.streaming else None,
            }
        )

    # ------------------------------------------------------------------ #
    # Provenance
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """JSON-safe provenance of this cell.

        Declarative cells round-trip losslessly; live objects (schemes /
        scenarios passed by instance) are recorded as ``{"inline": <name>}``
        markers since they cannot be rebuilt from JSON.  Computed once per
        cell; every record of the cell shares the dict.
        """
        cached = self.__dict__.get("_provenance")
        if cached is not None:
            return cached
        if isinstance(self.scenario, (str, Mapping)):
            scenario: Any = _jsonify(self.scenario)
        elif isinstance(self.scenario, (Scenario, InlineScenario)):
            scenario = {"inline": self.scenario.name}
        else:
            scenario = {"inline": type(self.scenario).__name__}
        if isinstance(self.scheme, Mapping):
            scheme: Any = _jsonify(self.scheme)
        elif isinstance(self.scheme, TEScheme):
            scheme = {"inline": self.scheme.name}
        else:
            scheme = {"inline": getattr(self.scheme, "__name__", type(self.scheme).__name__)}
        provenance = {
            "scenario": scenario,
            "scheme": scheme,
            "perturbation": _jsonify(self.perturbation),
        }
        defaults = {
            "history_len": None,
            "max_intervals": None,
            "streaming": False,
            "chunk_size": 256,
            "oracle_demand": False,
            "train": True,
        }
        for key, default in defaults.items():
            value = getattr(self, key)
            if value != default:
                provenance[key] = _jsonify(value)
        if self.tags:
            provenance["tags"] = _jsonify(self.tags)
        self.__dict__["_provenance"] = provenance
        return provenance
