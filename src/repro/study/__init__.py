"""Declarative experiment-spec API: studies over scenarios x schemes x perturbations.

The paper's evaluation is a grid -- topologies x traffic models x schemes x
perturbation/failure profiles.  This package exposes that grid as data: an
:class:`ExperimentSpec` describes one cell with plain dicts, :class:`sweep`
marks grid axes, :class:`Study` expands and executes the grid (deduplicating
scenario builds, scheme trainings, baseline replays and LP normaliser
solves), and :class:`ResultSet` collects uniform records with spec
provenance and a lossless JSON round-trip.

>>> from repro.study import Study, sweep
>>> results = Study({
...     "scenario": sweep("geant_small", "pfabric_small"),
...     "scheme": sweep({"kind": "figret"}, {"kind": "dote"}),
...     "perturbation": sweep({"kind": "none"},
...                           {"kind": "fluctuation", "alpha": 1.0}),
...     "max_intervals": 30,
... }).run()
>>> print(results.to_table())

Long grids are crash-safe and parallel: ``Study.run(checkpoint=path)``
appends every finished cell to an on-disk :class:`StudyCheckpoint` and
``Study.resume(path)`` restarts an interrupted grid where it died (zero
repeat trainings or LP solves for finished cells), while
``Study.run(cell_workers=N)`` fans independent cells -- and distinct scheme
trainings -- out over a process pool with bit-identical results.

Above single studies sits the *suite* layer: a :class:`Suite` descriptor
declares studies x seeds x repetitions x free-form annotations as one plain
dict, expands to cells with suite provenance stamped into their tags, and a
:class:`ResultWarehouse` -- a durable, append-only JSONL store -- accumulates
finished cells across sessions with filtering
(:meth:`~repro.study.warehouse.ResultWarehouse.query`), repetition/seed
aggregation with confidence intervals
(:meth:`~repro.study.warehouse.ResultWarehouse.aggregate`), and a flat CSV
export (:meth:`~repro.study.warehouse.ResultWarehouse.export_csv`).

Run a JSON spec from the shell with ``python -m repro.study spec.json``
(``--checkpoint`` / ``--resume`` / ``--cell-workers`` expose the same
knobs); ``python -m repro.study suite | query | export`` run and analyze a
whole suite against a warehouse.

For long-lived workloads the *study service* keeps the runner warm:
``python -m repro.study serve`` starts a Unix-socket daemon
(:class:`StudyServer`) with a FIFO job queue and one process-wide LP
cache, scenario cache, and trained-scheme store shared across every
submitted job, so identical or overlapping grids from any client
(:class:`StudyClient`, or ``submit``/``status``/``cancel`` from the
shell) re-run with zero repeat LP solves or trainings.  Underneath,
``Study.run`` is a facade over :meth:`Study.plan` +
:meth:`Study.execute` -- the scheduler-owns-the-loop split the daemon
(and any notebook) builds on.
"""

from repro.study.client import JobOutcome, StudyClient, StudyServiceError
from repro.study.results import (
    CheckpointError,
    JsonlRecordStore,
    ResultSet,
    StudyCheckpoint,
    StudyResult,
)
from repro.study.spec import (
    ExperimentSpec,
    InlineScenario,
    available_schemes,
    build_scheme,
    expand_spec,
    register_scheme,
    sweep,
)
from repro.study.server import StudyServer
from repro.study.study import Study, StudyCancelled, StudyPlan
from repro.study.suite import Suite, expand_suite
from repro.study.warehouse import ResultWarehouse, WarehouseError

__all__ = [
    "Study",
    "StudyCancelled",
    "StudyPlan",
    "Suite",
    "StudyServer",
    "StudyClient",
    "StudyServiceError",
    "JobOutcome",
    "expand_suite",
    "ExperimentSpec",
    "InlineScenario",
    "CheckpointError",
    "ResultSet",
    "JsonlRecordStore",
    "ResultWarehouse",
    "StudyCheckpoint",
    "StudyResult",
    "WarehouseError",
    "sweep",
    "expand_spec",
    "register_scheme",
    "available_schemes",
    "build_scheme",
]
