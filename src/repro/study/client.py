"""Client for the study service (:mod:`repro.study.server`).

:class:`StudyClient` speaks the daemon's newline-delimited JSON protocol
over its Unix socket: one request per connection, one JSON object per line
back.  ``submit`` blocks until the job finishes and returns a
:class:`JobOutcome` whose ``results`` is a fully reconstructed
:class:`~repro.study.results.ResultSet` (each streamed ``record`` payload is
the :class:`~repro.study.results.StudyCheckpoint` wire format, so
:meth:`~repro.study.results.StudyResult.from_dict` round-trips it
losslessly); ``submit_iter`` yields the raw protocol messages as they
arrive for callers that want streaming progress.

>>> from repro.study.client import StudyClient
>>> client = StudyClient("/tmp/repro.sock")
>>> outcome = client.submit({"scenario": "geant_small",
...                          "scheme": {"kind": "figret"}})
>>> print(outcome.summary["lp_solves"], len(outcome.results))
"""

from __future__ import annotations

import json
import socket
import time
from collections.abc import Iterator, Mapping
from dataclasses import dataclass, field

from repro.study.results import ResultSet, StudyResult

__all__ = ["StudyClient", "StudyServiceError", "JobOutcome"]


class StudyServiceError(RuntimeError):
    """A structured error reply (or protocol violation) from the daemon."""


@dataclass
class JobOutcome:
    """What a blocking :meth:`StudyClient.submit` call produced.

    Attributes:
        job: Server-assigned job id.
        status: Terminal status: ``"done"`` or ``"cancelled"`` (a
            ``"failed"`` terminal raises :class:`StudyServiceError` instead).
        results: The streamed records, reconstructed in cell order.
        summary: The terminal protocol message (for ``done`` jobs this
            carries ``lp_solves`` / ``trainings`` / ``wall_seconds``).
        records_by_index: The same records keyed by grid cell index --
            ``cancel`` leaves holes, and resuming fills exactly those.
    """

    job: str
    status: str
    results: ResultSet
    summary: dict
    records_by_index: dict[int, StudyResult] = field(default_factory=dict)


class StudyClient:
    """Talk to a :class:`~repro.study.server.StudyServer` daemon."""

    def __init__(self, socket_path, timeout: float | None = None) -> None:
        self.socket_path = str(socket_path)
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def _connect(self) -> socket.socket:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            sock.settimeout(self.timeout)
        try:
            sock.connect(self.socket_path)
        except OSError as exc:
            sock.close()
            raise StudyServiceError(
                f"cannot reach study daemon at {self.socket_path}: {exc} "
                "(is it running? start one with 'python -m repro.study serve')"
            ) from None
        return sock

    @staticmethod
    def _parse(line: bytes) -> dict:
        try:
            message = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise StudyServiceError(
                f"undecodable reply from study daemon: {exc}"
            ) from None
        if not isinstance(message, Mapping):
            raise StudyServiceError(
                f"study daemon sent a non-object reply: {message!r}"
            )
        return dict(message)

    def request(self, payload: Mapping) -> dict:
        """Send one request, return the single reply object.

        Raises :class:`StudyServiceError` on an ``error`` reply or a
        dropped connection.
        """
        with self._connect() as sock:
            sock.sendall((json.dumps(dict(payload)) + "\n").encode("utf-8"))
            line = sock.makefile("rb").readline()
        if not line:
            raise StudyServiceError(
                "study daemon closed the connection without replying"
            )
        message = self._parse(line)
        if message.get("type") == "error":
            raise StudyServiceError(message.get("error", "unknown error"))
        return message

    # ------------------------------------------------------------------ #
    # One-shot ops
    # ------------------------------------------------------------------ #
    def ping(self) -> dict:
        """Liveness check; returns the daemon's ``pong`` payload."""
        return self.request({"op": "ping"})

    def status(self, job: str | None = None) -> dict:
        """Daemon status: uptime, warm-cache sizes, and per-job progress."""
        payload: dict = {"op": "status"}
        if job is not None:
            payload["job"] = job
        return self.request(payload)

    def cancel(self, job: str) -> dict:
        """Cancel a queued/running job (it stays checkpointed + resumable)."""
        return self.request({"op": "cancel", "job": job})

    def shutdown(self) -> dict:
        """Ask the daemon to stop gracefully (running job is checkpointed)."""
        return self.request({"op": "shutdown"})

    @staticmethod
    def wait_until_ready(socket_path, timeout: float = 10.0) -> None:
        """Block until a daemon accepts connections on ``socket_path``."""
        deadline = time.monotonic() + timeout
        while True:
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            probe.settimeout(0.5)
            try:
                probe.connect(str(socket_path))
            except OSError:
                if time.monotonic() >= deadline:
                    raise StudyServiceError(
                        f"no study daemon became ready on {socket_path} "
                        f"within {timeout:.0f}s"
                    ) from None
                time.sleep(0.05)
            else:
                return
            finally:
                probe.close()

    # ------------------------------------------------------------------ #
    # Submit
    # ------------------------------------------------------------------ #
    def _submit_payload(
        self,
        spec: Mapping,
        kind: str,
        checkpoint: str | None,
        resume: bool,
        warehouse=None,
    ) -> dict:
        payload: dict = {"op": "submit", "kind": kind, "spec": dict(spec)}
        if checkpoint is not None:
            payload["checkpoint"] = checkpoint
        if resume:
            payload["resume"] = True
        if warehouse is not None:
            payload["warehouse"] = str(warehouse)
        return payload

    def submit_iter(
        self,
        spec: Mapping,
        kind: str = "study",
        checkpoint: str | None = None,
        resume: bool = False,
        warehouse=None,
    ) -> Iterator[dict]:
        """Submit a spec and yield protocol messages as they arrive.

        Yields the ``accepted`` message, then a ``record`` message per
        finished cell, then the terminal ``done`` / ``cancelled`` /
        ``failed`` message.  An ``error`` reply (spec rejected before
        queuing) raises :class:`StudyServiceError`.
        """
        payload = self._submit_payload(spec, kind, checkpoint, resume, warehouse)
        with self._connect() as sock:
            sock.sendall((json.dumps(payload) + "\n").encode("utf-8"))
            reader = sock.makefile("rb")
            while True:
                line = reader.readline()
                if not line:
                    raise StudyServiceError(
                        "study daemon dropped the connection mid-stream "
                        "(did it crash or shut down?)"
                    )
                message = self._parse(line)
                mtype = message.get("type")
                if mtype == "error":
                    raise StudyServiceError(
                        message.get("error", "unknown error")
                    )
                yield message
                if mtype in ("done", "cancelled", "failed"):
                    return

    def submit(
        self,
        spec: Mapping,
        kind: str = "study",
        checkpoint: str | None = None,
        resume: bool = False,
        warehouse=None,
        on_message=None,
    ) -> JobOutcome:
        """Submit a spec, block until the job finishes, collect the records.

        Args:
            spec: Study spec (``kind="study"``) or suite descriptor
                (``kind="suite"``) as a plain dict.
            checkpoint: Optional checkpoint *name*, resolved under the
                daemon's spool directory -- required for ``resume`` and for
                surviving a daemon restart.
            resume: Re-submit a cancelled/killed checkpointed job; cells
                already on disk stream back immediately without re-running.
            warehouse: Optional warehouse path overriding the daemon's
                default.
            on_message: Optional callback receiving every raw protocol
                message (for progress display).

        Returns:
            A :class:`JobOutcome`; ``status`` is ``"done"`` or
            ``"cancelled"``.

        Raises:
            StudyServiceError: on a rejected spec or a ``failed`` job.
        """
        job_id = "?"
        records: dict[int, StudyResult] = {}
        terminal: dict = {}
        for message in self.submit_iter(
            spec, kind=kind, checkpoint=checkpoint, resume=resume,
            warehouse=warehouse,
        ):
            if on_message is not None:
                on_message(message)
            mtype = message.get("type")
            if mtype == "accepted":
                job_id = message.get("job", job_id)
            elif mtype == "record":
                records[int(message["index"])] = StudyResult.from_dict(
                    message["record"]
                )
            elif mtype == "failed":
                raise StudyServiceError(
                    f"job {message.get('job', job_id)} failed: "
                    f"{message.get('error', 'unknown error')}"
                )
            elif mtype in ("done", "cancelled"):
                terminal = message
        return JobOutcome(
            job=terminal.get("job", job_id),
            status=terminal.get("type", "done"),
            results=ResultSet(records[i] for i in sorted(records)),
            summary=terminal,
            records_by_index=records,
        )
