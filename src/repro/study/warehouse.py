"""The results warehouse: a durable, queryable, append-only store of records.

A study grid produces thousands of cells (scenarios x schemes x
perturbations x seeds x repetitions); this module is where they accumulate
*across sessions*.  :class:`ResultWarehouse` is a
:class:`~repro.study.results.JsonlRecordStore` -- the same crash-safe
atomic-header + flushed/fsynced-append + torn-tail-compaction idiom as
:class:`~repro.study.results.StudyCheckpoint` and the persistent
:class:`~repro.solvers.lp.OptimalMLUCache` -- plus the analysis side:

* :meth:`~ResultWarehouse.query` filters by scenario / scheme / experiment
  and by suite provenance tags (``suite`` / ``study`` / ``seed`` /
  ``repetition`` / free-form annotations);
* :meth:`~ResultWarehouse.aggregate` groups records and reports each group's
  metric as mean +/- a Student-t confidence half-width over the group's
  records (seeds x repetitions), with percentile-MLU columns recomputed from
  the *pooled* stored series via
  :func:`~repro.evaluation.metrics.normalized_mlu_statistics`;
* :meth:`~ResultWarehouse.export_csv` writes a ``run_table``-style flat CSV
  (one row per record, provenance columns + the union of metric columns).

Studies append finished cells as they complete (``Study.run(warehouse=...)``)
and :meth:`~ResultWarehouse.sync` reconciles a finished result set against
the store, so a crash between the checkpoint append and the warehouse append
can never lose a record permanently.
"""

from __future__ import annotations

import csv
from collections import Counter
from collections.abc import Iterable, Mapping, Sequence
from pathlib import Path

import numpy as np

from repro.evaluation.metrics import (
    mean_confidence_interval,
    normalized_mlu_statistics,
)
from repro.evaluation.reporting import format_table
from repro.study.results import (
    _DEFAULT_TABLE_METRICS,
    JsonlRecordStore,
    ResultSet,
    StudyResult,
    _matches,
)
from repro.study.spec import canonical_json

__all__ = ["ResultWarehouse", "WarehouseError"]


class WarehouseError(ValueError):
    """A warehouse file is corrupt, foreign, or version-incompatible.

    A :class:`ValueError` subclass so generic ``except ValueError`` callers
    keep working while the CLI can print one clean line instead of a
    traceback.
    """


#: On-disk format marker / version of the results warehouse (JSON lines).
WAREHOUSE_FORMAT = "repro-study-warehouse"
WAREHOUSE_VERSION = 1

#: Record columns resolved from suite provenance tags (in export order).
_TAG_COLUMNS = ("suite", "study", "seed", "repetition")

#: Record columns resolved from :class:`StudyResult` attributes.
_ATTR_COLUMNS = ("scenario", "scheme", "experiment")


def _column_value(record: StudyResult, column: str):
    """Resolve a group-by / export column on a record (attr, then tag)."""
    if column in _ATTR_COLUMNS:
        return getattr(record, column)
    return record.tags.get(column)


def _metric_columns(records: Iterable[StudyResult]) -> list[str]:
    """Union of metric names in canonical order (common columns first)."""
    present: set[str] = set()
    for record in records:
        present.update(record.metrics)
    ordered = [name for name in _DEFAULT_TABLE_METRICS if name in present]
    ordered.extend(sorted(present - set(ordered)))
    return ordered


class ResultWarehouse(JsonlRecordStore):
    """Append-only, versioned on-disk store of study results across sessions.

    See the module docstring for the durability contract (shared with
    :class:`~repro.study.results.StudyCheckpoint`): complete records survive
    any crash, a torn trailing append is dropped with a warning and the file
    compacted, and corrupt / foreign / version-mismatched files raise a
    :class:`WarehouseError` naming the path -- a warehouse holds finished
    science, so silently misreading one would be worse than stopping.
    """

    _format = WAREHOUSE_FORMAT
    _version = WAREHOUSE_VERSION
    _error = WarehouseError
    _kind = "results warehouse"
    _torn_tail_hint = "resume the interrupted study (or sync its results) to restore it"

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def results(self) -> ResultSet:
        """Every complete record as a :class:`ResultSet` (empty if missing).

        A *missing* file is an empty warehouse (the store is created lazily
        by the first append); anything unreadable raises
        :class:`WarehouseError` as described in the class docstring.
        """
        if not self.exists():
            return ResultSet()
        return ResultSet(self.load())

    def query(
        self,
        scenario=None,
        scheme=None,
        experiment=None,
        suite=None,
        study=None,
        seed=None,
        repetition=None,
        tags: Mapping | None = None,
        where=None,
    ) -> ResultSet:
        """Select records by labels and suite provenance.

        ``scenario`` / ``scheme`` / ``experiment`` match the record labels,
        ``suite`` / ``study`` / ``seed`` / ``repetition`` (and any extra
        ``tags``) match the cell's provenance tags.  Each selector is an
        exact value, a collection of values, or a callable; ``where`` sees
        the whole record.
        """
        tag_selectors = dict(tags or {})
        for name, selector in (
            ("suite", suite),
            ("study", study),
            ("seed", seed),
            ("repetition", repetition),
        ):
            if selector is not None:
                tag_selectors[name] = selector

        def _tag_match(record: StudyResult) -> bool:
            record_tags = record.tags
            for name, selector in tag_selectors.items():
                value = record_tags.get(name)
                if callable(selector):
                    if not selector(value):
                        return False
                elif isinstance(selector, (list, tuple, set, frozenset)):
                    if value not in selector:
                        return False
                elif value != selector:
                    return False
            return where is None or where(record)

        results = self.results()
        selected = [
            record
            for record in results
            if _matches(record.scenario, scenario)
            and _matches(record.scheme, scheme)
            and _matches(record.experiment, experiment)
            and _tag_match(record)
        ]
        return ResultSet(selected)

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    def aggregate(
        self,
        results: ResultSet | None = None,
        group_by: Sequence[str] = ("scenario", "scheme", "experiment"),
        metric: str = "mean",
        confidence: float = 0.95,
    ) -> list[dict]:
        """Group records and summarise each group's spread and distribution.

        Every group row carries:

        * the ``group_by`` columns (record attributes or provenance tags);
        * ``n`` -- the number of records pooled (seeds x repetitions when
          grouping collapses the suite axes);
        * ``<metric>`` / ``ci<level>`` -- the mean of the per-record
          ``metric`` values and its Student-t confidence half-width over the
          group (:func:`~repro.evaluation.metrics.mean_confidence_interval`);
        * ``p90`` / ``p99`` / ``worst`` / ``severe_congestion_fraction`` /
          ``num_samples`` -- recomputed by
          :func:`~repro.evaluation.metrics.normalized_mlu_statistics` over
          the group's pooled stored series (``None`` when no record of the
          group stored a series).

        Args:
            results: Records to aggregate (the whole warehouse if omitted --
                pass a :meth:`query` result to aggregate a slice).
            group_by: Column names; attributes (``scenario`` / ``scheme`` /
                ``experiment``) and tag keys (``suite`` / ``study`` /
                ``seed`` / ``repetition`` / annotations) mix freely.
            metric: The per-record metric summarised as mean +/- half-width.
            confidence: Two-sided confidence level of the half-width.
        """
        if results is None:
            results = self.results()
        groups: dict[tuple, list[StudyResult]] = {}
        for record in results:
            key = tuple(_column_value(record, column) for column in group_by)
            groups.setdefault(key, []).append(record)
        ci_column = f"ci{round(confidence * 100):g}"
        rows = []
        for key in sorted(groups, key=lambda k: tuple(str(part) for part in k)):
            group = groups[key]
            row: dict = dict(zip(group_by, key))
            row["n"] = len(group)
            values = [record.metrics[metric] for record in group if metric in record.metrics]
            if values:
                row[metric], row[ci_column] = mean_confidence_interval(values, confidence)
            else:
                row[metric] = row[ci_column] = None
            pooled = [record.series for record in group if record.series is not None]
            if pooled:
                stats = normalized_mlu_statistics(np.concatenate(pooled))
                row["p90"] = stats.p90
                row["p99"] = stats.p99
                row["worst"] = stats.worst
                row["severe_congestion_fraction"] = stats.severe_congestion_fraction
                row["num_samples"] = stats.num_samples
            else:
                row["p90"] = row["p99"] = row["worst"] = None
                row["severe_congestion_fraction"] = row["num_samples"] = None
            rows.append(row)
        return rows

    def aggregate_table(
        self,
        results: ResultSet | None = None,
        group_by: Sequence[str] = ("scenario", "scheme", "experiment"),
        metric: str = "mean",
        confidence: float = 0.95,
        title: str | None = None,
        float_format: str = "{:.4f}",
    ) -> str:
        """Render :meth:`aggregate` rows as an aligned ASCII table."""
        rows = self.aggregate(results, group_by, metric, confidence)
        if not rows:
            headers = [*group_by, "n"]
            return format_table(headers, [], title=title)
        headers = list(rows[0])
        table_rows = []
        for row in rows:
            cells = []
            for name in headers:
                value = row[name]
                if isinstance(value, float):
                    cells.append(float_format.format(value))
                else:
                    cells.append("" if value is None else value)
            table_rows.append(cells)
        return format_table(headers, table_rows, title=title)

    # ------------------------------------------------------------------ #
    # Flat export
    # ------------------------------------------------------------------ #
    def run_table(
        self, results: ResultSet | None = None
    ) -> tuple[list[str], list[list]]:
        """One flat row per record: provenance columns + metric columns.

        The muBench-style ``run_table`` shape -- every cell of every study
        as one spreadsheet row, ready for pandas / gnuplot / a notebook.
        Returns ``(headers, rows)``; missing values are empty strings.
        """
        if results is None:
            results = self.results()
        metric_columns = _metric_columns(results)
        headers = [*_TAG_COLUMNS, *_ATTR_COLUMNS, *metric_columns]
        rows = []
        for record in results:
            row: list = []
            for column in (*_TAG_COLUMNS, *_ATTR_COLUMNS):
                value = _column_value(record, column)
                row.append("" if value is None else value)
            for name in metric_columns:
                value = record.metrics.get(name)
                row.append("" if value is None else value)
            rows.append(row)
        return headers, rows

    def export_csv(self, path, results: ResultSet | None = None) -> int:
        """Write the :meth:`run_table` to ``path`` as CSV.

        Returns the number of data rows written (the header line is not
        counted), so callers can assert the export round-trips the record
        count.
        """
        headers, rows = self.run_table(results)
        path = Path(path).expanduser()
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(headers)
            writer.writerows(rows)
        return len(rows)

    # ------------------------------------------------------------------ #
    # Reconciliation
    # ------------------------------------------------------------------ #
    def sync(self, results: Iterable[StudyResult]) -> int:
        """Append the records of ``results`` not already in the store.

        Records are matched by canonical spec provenance, counting
        duplicates -- if ``results`` holds two records of one provenance
        (deliberately duplicated cells), the store ends up with at least
        two.  Used after a resumed run: cells finished by a *previous*
        session were appended by that session, so only the ones lost in a
        crash window (checkpointed but not yet warehoused) are appended
        here.  Returns the number of records appended.
        """
        have = Counter()
        if not self._needs_header():
            for record in self.load():
                have[canonical_json(record.spec)] += 1
        added = 0
        for record in results:
            key = canonical_json(record.spec)
            if have[key] > 0:
                have[key] -= 1
                continue
            self.append(record)
            added += 1
        return added
