"""The :class:`Study` orchestrator: expand a spec grid, dedup, execute.

A study turns a declarative spec (see :mod:`repro.study.spec`) into a
:class:`~repro.study.results.ResultSet` by running every cell through the
batched/streaming :class:`~repro.evaluation.engine.EvaluationEngine`.  The
orchestration layer's whole job is deduplicating the shared work of a grid:

* **Scenarios** are built once per distinct scenario reference (name + seed +
  trace length, or canonical inline config) and shared by every cell.
* **Schemes** are trained once per distinct scheme spec per scenario (and per
  drift training segment); the scheme axis of a grid never retrains.
* **Baseline replays** (the unperturbed run that fluctuation / drift declines
  are measured against) run once per scenario x scheme x eval knobs.
* **LP normalisers** are served by the engine's
  :class:`~repro.solvers.lp.OptimalMLUCache` -- one optimal-MLU pass per
  distinct demand matrix across the *whole* grid, so adding schemes or
  re-running a study never repeats an LP solve (assert it with
  :func:`~repro.solvers.lp.count_lp_solves`).  Cold solves fan out over the
  LP process pool when ``lp_workers`` is set.

Pass ``scheme_cache`` / ``scenario_cache`` dicts to share the first two
dedup layers across studies in one process (the benchmark harness does).
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Mapping
from dataclasses import dataclass

import numpy as np

from repro.datasets import registry as datasets_registry
from repro.datasets.registry import Scenario
from repro.evaluation.engine import EvaluationEngine, EvaluationResult
from repro.evaluation.metrics import MLUStatistics, normalized_mlu_statistics
from repro.paths.path_set import PathSet
from repro.solvers.lp import shared_cache
from repro.study.results import ResultSet, StudyResult
from repro.study.spec import (
    ExperimentSpec,
    InlineScenario,
    build_scheme,
    expand_spec,
    scenario_cache_key,
)
from repro.te.scheme import TEScheme
from repro.traffic.matrix import TrafficMatrixSequence
from repro.traffic.perturb import gaussian_fluctuation, reverse_rank_fluctuation

__all__ = ["Study"]


@dataclass
class _ScenarioContext:
    """A scenario resolved into the pieces cell execution needs."""

    key: str
    name: str
    paths: PathSet | None
    train: TrafficMatrixSequence | None
    test: TrafficMatrixSequence | None
    traffic: TrafficMatrixSequence | None
    history_len: int | None
    _pair_std: np.ndarray | None = None

    def pair_std(self) -> np.ndarray:
        """The training split's per-pair std (computed once per scenario)."""
        if self._pair_std is None:
            self._pair_std = self.train.pair_std()
        return self._pair_std


class Study:
    """Declarative experiment orchestrator.

    Args:
        spec: A study spec mapping (sweep axes expand into the grid), an
            :class:`ExperimentSpec`, or an iterable of either.  ``None``
            starts empty (use :meth:`add`, or just the :meth:`scenario` /
            :meth:`trained_scheme` dedup helpers).
        scheme_cache: Optional dict holding trained schemes keyed by
            (scenario, scheme spec, training segment); pass a shared dict to
            reuse trainings across studies.
        scenario_cache: Optional dict holding built scenarios keyed by
            canonical reference; shareable the same way.

    Example::

        study = Study({
            "scenario": sweep("geant_small", "pfabric_small"),
            "scheme": sweep({"kind": "figret"}, {"kind": "dote"}),
            "perturbation": sweep({"kind": "none"},
                                  {"kind": "fluctuation", "alpha": 1.0}),
        })
        results = study.run()
        print(results.to_table())
    """

    def __init__(
        self,
        spec=None,
        scheme_cache: dict | None = None,
        scenario_cache: dict | None = None,
    ) -> None:
        self.specs: list[ExperimentSpec] = []
        self._scheme_cache = scheme_cache if scheme_cache is not None else {}
        # Live-instance / factory schemes key by object identity, which is
        # only stable while this study's specs pin the objects -- so they
        # dedup per study and never enter the (possibly shared) scheme_cache.
        self._object_scheme_cache: dict = {}
        self._scenario_cache = scenario_cache if scenario_cache is not None else {}
        self._baselines: dict[tuple, tuple[EvaluationResult, MLUStatistics]] = {}
        self._contexts: dict[str, _ScenarioContext] = {}
        self._test_slices: dict[tuple, TrafficMatrixSequence] = {}
        if spec is not None:
            self.add(spec)

    @classmethod
    def from_spec(cls, spec: Mapping, **kwargs) -> "Study":
        """Build a study from a plain-dict spec (sweep axes expanded)."""
        return cls(spec, **kwargs)

    @classmethod
    def from_json(cls, text: str, **kwargs) -> "Study":
        """Build a study from a JSON spec document."""
        return cls(json.loads(text), **kwargs)

    def add(self, spec) -> "Study":
        """Append cells: a spec mapping (expanded), a cell, or an iterable."""
        if isinstance(spec, ExperimentSpec):
            self.specs.append(spec)
        elif isinstance(spec, Mapping):
            self.specs.extend(ExperimentSpec.from_dict(cell) for cell in expand_spec(spec))
        elif isinstance(spec, Iterable) and not isinstance(spec, (str, bytes)):
            for item in spec:
                self.add(item)
        else:
            raise TypeError(
                "Study accepts a spec mapping, an ExperimentSpec, or an iterable of those; "
                f"got {type(spec).__name__}"
            )
        return self

    def __len__(self) -> int:
        return len(self.specs)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(
        self,
        engine: EvaluationEngine | None = None,
        backend: str | None = None,
        lp_workers: int | str | None = None,
    ) -> ResultSet:
        """Execute every cell and collect the uniform result records.

        Args:
            engine: Evaluation engine (the process-wide default -- and its
                shared LP cache -- if omitted).
            backend: Array backend for the replay hot path; when given
                without an explicit engine, a backend-pinned engine sharing
                the process-wide LP cache is used.
            lp_workers: LP process-pool width for cold normaliser batches
                (``"auto"`` derives one from the CPU count).
        """
        engine = self._resolve_engine(engine, backend, lp_workers)
        return ResultSet(self._run_cell(cell, engine) for cell in self.specs)

    @staticmethod
    def _resolve_engine(
        engine: EvaluationEngine | None,
        backend: str | None,
        lp_workers: int | str | None,
    ) -> EvaluationEngine:
        if engine is not None:
            return engine
        if backend is None and lp_workers is None:
            from repro.evaluation.runner import default_engine

            return default_engine()
        return EvaluationEngine(cache=shared_cache(), lp_workers=lp_workers, backend=backend)

    # ------------------------------------------------------------------ #
    # Shared-work resolution (the dedup layers)
    # ------------------------------------------------------------------ #
    def scenario(self, reference) -> Scenario | InlineScenario:
        """Resolve (and cache) a scenario reference of any accepted form."""
        key = scenario_cache_key(reference)
        cached = self._scenario_cache.get(key)
        if cached is not None:
            return cached
        if isinstance(reference, (Scenario, InlineScenario)):
            scenario = reference
        elif isinstance(reference, str):
            scenario = datasets_registry.load(reference)
        elif isinstance(reference, Mapping):
            if "name" in reference and "topology" not in reference:
                scenario = datasets_registry.load(
                    reference["name"],
                    seed=reference.get("seed", 0),
                    num_intervals=reference.get("num_intervals"),
                )
            else:
                scenario = datasets_registry.from_config(reference)
        else:
            raise TypeError(
                "scenario must be a registered name, a registry reference dict, an inline "
                f"config dict, or a Scenario; got {type(reference).__name__}"
            )
        self._scenario_cache[key] = scenario
        return scenario

    def _context(self, cell: ExperimentSpec) -> _ScenarioContext:
        key = cell.scenario_key
        ctx = self._contexts.get(key)
        if ctx is not None:
            return ctx
        scenario = self.scenario(cell.scenario)
        if isinstance(scenario, InlineScenario):
            ctx = _ScenarioContext(
                key=key,
                name=scenario.name,
                paths=scenario.paths,
                train=scenario.train,
                test=scenario.test,
                traffic=scenario.traffic,
                history_len=scenario.history_len,
            )
        else:
            train, test = scenario.split()
            ctx = _ScenarioContext(
                key=key,
                name=scenario.name,
                paths=scenario.paths,
                train=train,
                test=test,
                traffic=scenario.traffic,
                history_len=scenario.history_len,
            )
        self._contexts[key] = ctx
        return ctx

    def trained_scheme(
        self, cell: ExperimentSpec | Mapping, engine: EvaluationEngine | None = None
    ) -> TEScheme:
        """Resolve (and cache) the trained scheme a cell would evaluate.

        Exposed so callers can pre-train a grid's schemes -- or share one
        training across studies via a common ``scheme_cache`` -- without
        running any replay.
        """
        if not isinstance(cell, ExperimentSpec):
            cell = ExperimentSpec.from_dict(cell)
        engine = self._resolve_engine(engine, None, None)
        ctx = self._context(cell)
        return self._resolve_scheme(cell, ctx, engine, ctx.train, "default")

    def _resolve_scheme(
        self,
        cell: ExperimentSpec,
        ctx: _ScenarioContext,
        engine: EvaluationEngine,
        train_sequence: TrafficMatrixSequence | None,
        train_key: str,
    ) -> TEScheme:
        cache = self._scheme_cache if isinstance(cell.scheme, Mapping) else self._object_scheme_cache
        key = (ctx.key, cell.scheme_key, train_key)
        cached = cache.get(key)
        if cached is not None:
            return cached
        if isinstance(cell.scheme, TEScheme):
            scheme = cell.scheme
        elif isinstance(cell.scheme, Mapping):
            if ctx.paths is None:
                raise ValueError(
                    f"cell scenario {ctx.name!r} provides no path set to build scheme "
                    f"{cell.scheme.get('kind')!r} on"
                )
            scheme = build_scheme(
                cell.scheme, ctx.paths, cache=engine.cache, lp_workers=engine.lp_workers
            )
        elif callable(cell.scheme):
            scheme = cell.scheme()
        else:
            raise TypeError(
                "scheme must be a spec dict, a TEScheme, or a zero-argument factory; "
                f"got {type(cell.scheme).__name__}"
            )
        if ctx.paths is not None and scheme.path_set.fingerprint != ctx.paths.fingerprint:
            raise ValueError(
                f"scheme {scheme.name!r} uses a different path set than scenario "
                f"{ctx.name!r}; schemes under one scenario must share its PathSet so "
                "their normalised MLUs are comparable"
            )
        if cell.train:
            if train_sequence is None:
                raise ValueError(
                    f"scenario {ctx.name!r} provides no training data; pass train=False "
                    "for pre-trained schemes or use a scenario with a training split"
                )
            scheme.precompute(train_sequence)
        cache[key] = scheme
        return scheme

    # ------------------------------------------------------------------ #
    # Cell execution
    # ------------------------------------------------------------------ #
    @staticmethod
    def _history_len(cell: ExperimentSpec, ctx: _ScenarioContext) -> int:
        history = cell.history_len if cell.history_len is not None else ctx.history_len
        if history is None:
            raise ValueError(
                f"cell on scenario {ctx.name!r} has no history_len (set it on the cell "
                "or the scenario)"
            )
        return history

    def _sliced_test(
        self,
        ctx_key: str,
        test: TrafficMatrixSequence,
        history_len: int,
        max_intervals: int | None,
    ) -> TrafficMatrixSequence:
        """Cap the test split at ``history_len + max_intervals`` rows.

        Sliced once per scenario x knobs -- every cell of a grid row shares
        the same sequence object.
        """
        if max_intervals is None:
            return test
        key = (ctx_key, id(test), history_len, max_intervals)
        sliced = self._test_slices.get(key)
        if sliced is None:
            limit = history_len + max_intervals
            sliced = test[: min(len(test), limit)]
            self._test_slices[key] = sliced
        return sliced

    def _drift_test_segment(
        self, ctx: _ScenarioContext, traffic: TrafficMatrixSequence, test_segment: tuple
    ) -> TrafficMatrixSequence:
        """The drift protocol's held-out test slice (cut once per scenario)."""
        key = (ctx.key, "drift_test", test_segment)
        cached = self._test_slices.get(key)
        if cached is None:
            cached = traffic.segment(*test_segment)
            self._test_slices[key] = cached
        return cached

    def _replay(
        self,
        cell: ExperimentSpec,
        engine: EvaluationEngine,
        scheme: TEScheme,
        test: TrafficMatrixSequence,
        history_len: int,
    ) -> EvaluationResult:
        if cell.streaming:
            return engine.evaluate_streaming(
                scheme,
                test,
                history_len,
                chunk_size=cell.chunk_size,
                oracle_demand=cell.oracle_demand,
            )
        return engine.evaluate_scheme(
            scheme, test, history_len, oracle_demand=cell.oracle_demand
        )

    def _baseline(
        self,
        cell: ExperimentSpec,
        engine: EvaluationEngine,
        ctx: _ScenarioContext,
        scheme: TEScheme,
        test: TrafficMatrixSequence,
        history_len: int,
        train_key: str = "default",
    ) -> tuple[EvaluationResult, MLUStatistics]:
        """The unperturbed replay of a cell (one per scenario x scheme x knobs)."""
        key = (ctx.key, cell.scheme_key, cell.eval_key, train_key)
        cached = self._baselines.get(key)
        if cached is None:
            result = self._replay(cell, engine, scheme, test, history_len)
            cached = (result, result.statistics)
            self._baselines[key] = cached
        return cached

    @staticmethod
    def _scheme_label(cell: ExperimentSpec, scheme: TEScheme) -> str:
        if isinstance(cell.scheme, Mapping) and cell.scheme.get("label"):
            return str(cell.scheme["label"])
        return scheme.name

    def _record(
        self,
        cell: ExperimentSpec,
        ctx: _ScenarioContext,
        scheme_label: str,
        experiment: str,
        metrics: dict,
        series: np.ndarray | None,
        result: EvaluationResult | None = None,
    ) -> StudyResult:
        return StudyResult(
            scenario=ctx.name,
            scheme=scheme_label,
            experiment=experiment,
            spec=cell.to_dict(),
            metrics=metrics,
            series=series,
            result=result,
        )

    def _run_cell(self, cell: ExperimentSpec, engine: EvaluationEngine) -> StudyResult:
        ctx = self._context(cell)
        kind = cell.perturbation["kind"]
        if kind == "drift":
            return self._run_drift(cell, ctx, engine)
        if ctx.test is None:
            raise ValueError(f"scenario {ctx.name!r} provides no test sequence")
        history_len = self._history_len(cell, ctx)
        test = self._sliced_test(ctx.key, ctx.test, history_len, cell.max_intervals)
        scheme = self._resolve_scheme(cell, ctx, engine, ctx.train, "default")
        if kind == "none":
            result, stats = self._baseline(cell, engine, ctx, scheme, test, history_len)
            metrics = dict(vars(stats))
            return self._record(
                cell,
                ctx,
                self._scheme_label(cell, scheme),
                "replay",
                metrics,
                result.normalized_mlus,
                result,
            )
        if kind == "fluctuation":
            return self._run_fluctuation(cell, ctx, engine, scheme, test, history_len)
        return self._run_failure(cell, ctx, engine, scheme, test, history_len)

    def _run_fluctuation(
        self, cell, ctx, engine, scheme, test, history_len
    ) -> StudyResult:
        perturbation = cell.perturbation
        if ctx.train is None:
            raise ValueError(
                f"scenario {ctx.name!r} provides no training split (fluctuation cells "
                "need it for the per-pair reference std)"
            )
        _, base_stats = self._baseline(cell, engine, ctx, scheme, test, history_len)
        perturb = reverse_rank_fluctuation if perturbation["worst_case"] else gaussian_fluctuation
        perturbed = perturb(
            test, perturbation["alpha"], ctx.pair_std(), seed=perturbation["seed"]
        )
        result = self._replay(cell, engine, scheme, perturbed, history_len)
        stats = result.statistics
        metrics = dict(vars(stats))
        metrics["average_decline"] = stats.mean / base_stats.mean - 1.0
        metrics["p90_decline"] = stats.p90 / base_stats.p90 - 1.0
        return self._record(
            cell,
            ctx,
            self._scheme_label(cell, scheme),
            "fluctuation",
            metrics,
            result.normalized_mlus,
            result,
        )

    def _run_failure(self, cell, ctx, engine, scheme, test, history_len) -> StudyResult:
        perturbation = cell.perturbation
        if cell.streaming or cell.oracle_demand:
            raise ValueError(
                "failure cells replay through the batched failure protocol; the "
                "streaming and oracle_demand knobs do not apply to them"
            )
        fault_aware = perturbation["fault_aware"]
        if fault_aware is None:
            fault_aware = hasattr(scheme, "set_failures")
        names = (scheme.name,) if fault_aware else ()
        try:
            series = engine.failure_experiment(
                [scheme],
                test,
                history_len,
                perturbation["num_failures"],
                num_trials=perturbation["num_trials"],
                fault_aware_names=names,
                seed=perturbation["seed"],
            )[scheme.name]
        finally:
            # The failure protocol mutates fault-aware schemes (set_failures
            # per trial); clear the last trial's failures so other cells
            # reusing this cached scheme replay an intact network.
            if fault_aware and hasattr(scheme, "set_failures"):
                scheme.set_failures(set())
        metrics = dict(vars(normalized_mlu_statistics(series)))
        return self._record(
            cell, ctx, self._scheme_label(cell, scheme), "failure", metrics, series
        )

    def _run_drift(self, cell: ExperimentSpec, ctx, engine) -> StudyResult:
        perturbation = cell.perturbation
        if isinstance(cell.scheme, TEScheme):
            raise ValueError(
                "drift cells retrain from scratch per segment; pass a scheme spec dict "
                "or a zero-argument factory instead of a live instance"
            )
        if not cell.train:
            raise ValueError(
                "drift cells measure decline from retraining, which train=False "
                "disables; drop train=False (there is no pre-trained scheme to protect)"
            )
        traffic = ctx.traffic
        if traffic is None:
            raise ValueError(
                f"scenario {ctx.name!r} provides no full traffic sequence (drift cells "
                "re-split it into training segments)"
            )
        test_segment = tuple(float(v) for v in perturbation["test_segment"])
        train_segment = tuple(float(v) for v in perturbation["train_segment"])
        history_len = self._history_len(cell, ctx)
        test_full = self._drift_test_segment(ctx, traffic, test_segment)
        test = self._sliced_test(ctx.key, test_full, history_len, cell.max_intervals)

        baseline_key = f"segment:0.0-{test_segment[0]}"
        baseline_scheme = self._resolve_scheme(
            cell, ctx, engine, traffic.segment(0.0, test_segment[0]), baseline_key
        )
        # The replay cache key carries the test segment too: two drift cells
        # sharing a training prefix but held out on different slices must not
        # reuse one another's baseline replay.
        _, base_stats = self._baseline(
            cell,
            engine,
            ctx,
            baseline_scheme,
            test,
            history_len,
            train_key=f"{baseline_key}|test:{test_segment[0]}-{test_segment[1]}",
        )

        segment_key = f"segment:{train_segment[0]}-{train_segment[1]}"
        scheme = self._resolve_scheme(
            cell, ctx, engine, traffic.segment(*train_segment), segment_key
        )
        result = self._replay(cell, engine, scheme, test, history_len)
        stats = result.statistics
        metrics = dict(vars(stats))
        metrics["average_decline"] = stats.mean / base_stats.mean - 1.0
        metrics["p90_decline"] = stats.p90 / base_stats.p90 - 1.0
        return self._record(
            cell,
            ctx,
            self._scheme_label(cell, scheme),
            "drift",
            metrics,
            result.normalized_mlus,
            result,
        )
