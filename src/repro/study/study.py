"""The :class:`Study` orchestrator: expand a spec grid, dedup, execute.

A study turns a declarative spec (see :mod:`repro.study.spec`) into a
:class:`~repro.study.results.ResultSet` by running every cell through the
batched/streaming :class:`~repro.evaluation.engine.EvaluationEngine`.  The
orchestration layer's whole job is deduplicating the shared work of a grid:

* **Scenarios** are built once per distinct scenario reference (name + seed +
  trace length, or canonical inline config) and shared by every cell.
* **Schemes** are trained once per distinct scheme spec per scenario (and per
  drift training segment); the scheme axis of a grid never retrains.
* **Baseline replays** (the unperturbed run that fluctuation / drift declines
  are measured against) run once per scenario x scheme x eval knobs.
* **LP normalisers** are served by the engine's
  :class:`~repro.solvers.lp.OptimalMLUCache` -- one optimal-MLU pass per
  distinct demand matrix across the *whole* grid, so adding schemes or
  re-running a study never repeats an LP solve (assert it with
  :func:`~repro.solvers.lp.count_lp_solves`).  Cold solves fan out over the
  LP process pool when ``lp_workers`` is set.

Pass ``scheme_cache`` / ``scenario_cache`` dicts to share the first two
dedup layers across studies in one process (the benchmark harness does).
"""

from __future__ import annotations

import json
import pickle
import warnings
from collections.abc import Iterable, Mapping
from concurrent.futures import CancelledError, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

import numpy as np

from repro.datasets import registry as datasets_registry
from repro.datasets.registry import Scenario
from repro.evaluation.engine import EvaluationEngine, EvaluationResult
from repro.evaluation.metrics import MLUStatistics, normalized_mlu_statistics
from repro.paths.path_set import PathSet
from repro.solvers.lp import (
    OptimalMLUCache,
    _discard_pool,
    _pool,
    resolve_lp_workers,
    shared_cache,
)
from repro.study.results import ResultSet, StudyCheckpoint, StudyResult
from repro.study.warehouse import ResultWarehouse
from repro.study.spec import (
    ExperimentSpec,
    InlineScenario,
    build_scheme,
    canonical_json,
    expand_spec,
    scenario_cache_key,
)
from repro.te.scheme import TEScheme
from repro.traffic.matrix import TrafficMatrixSequence
from repro.traffic.perturb import gaussian_fluctuation, reverse_rank_fluctuation

__all__ = ["Study", "StudyPlan", "StudyCancelled"]


class StudyCancelled(RuntimeError):
    """Execution stopped because ``should_stop`` asked it to.

    Raised by :meth:`Study.execute` *between* cells, after the finished
    cells were checkpointed/warehoused -- so a cancelled checkpointed run is
    exactly an interrupted one: :meth:`Study.resume` (or re-submitting the
    job to a study server) completes the remainder with zero repeat work.

    Attributes:
        completed: Number of cells finished when the stop took effect
            (including cells loaded from a resumed checkpoint).
        total: Total number of cells in the study.
    """

    def __init__(self, completed: int, total: int) -> None:
        super().__init__(
            f"study cancelled after {completed}/{total} cell(s); the finished "
            "cells are checkpointed and the study is resumable"
        )
        self.completed = completed
        self.total = total


@dataclass
class StudyPlan:
    """What :meth:`Study.execute` will run, and with which resources.

    Built by :meth:`Study.plan` -- the plan-build half of the old monolithic
    ``Study.run`` loop.  A plan is inert data: nothing has been trained,
    solved, or written when it exists (checkpoint/warehouse headers are
    created by :meth:`Study.execute`), so a scheduler -- the study server's
    job queue, a notebook, a test -- can inspect what is left to do, decide
    when to run it, and own the execution loop via ``on_cell`` /
    ``should_stop`` callbacks.

    Attributes:
        pending: ``(index, cell)`` pairs still to run, in spec order.
        completed: Records already finished (loaded from a resumed
            checkpoint), keyed by cell index.
        engine: The resolved evaluation engine every cell runs through.
        cell_workers: Resolved cell process-pool width (``None`` =
            sequential).
        checkpoint: The checkpoint store finished cells append to (or
            ``None``).
        warehouse: The results warehouse finished cells append to (or
            ``None``).
    """

    pending: list[tuple[int, "ExperimentSpec"]]
    completed: dict[int, StudyResult]
    engine: EvaluationEngine
    cell_workers: int | None
    checkpoint: StudyCheckpoint | None
    warehouse: ResultWarehouse | None

    @property
    def total(self) -> int:
        """Total number of cells in the study (pending + completed)."""
        return len(self.pending) + len(self.completed)

    @property
    def remaining(self) -> int:
        """Number of cells that still need to run."""
        return len(self.pending)

#: Exceptions that mean "the process pool is unusable", not "a cell failed".
#: At submit time OSError is included (sandboxed spawn denial surfaces as
#: PermissionError); once a worker is running, an OSError coming back from
#: ``future.result()`` is an ordinary cell failure and must propagate, so the
#: drain loop matches only transport/pool-death errors.
_POOL_SUBMIT_ERRORS = (BrokenProcessPool, pickle.PicklingError, OSError)
_POOL_RESULT_ERRORS = (BrokenProcessPool, pickle.PicklingError)

_CELL_POOL_FALLBACK_WARNED = False


def _warn_cell_pool_fallback(exc: BaseException) -> None:
    """Warn (once per process) that study cells run in-process instead."""
    global _CELL_POOL_FALLBACK_WARNED
    if _CELL_POOL_FALLBACK_WARNED:
        return
    _CELL_POOL_FALLBACK_WARNED = True
    warnings.warn(
        f"study cell pool unavailable ({exc!r}); running cells sequentially "
        "in-process from now on (results are identical, just slower)",
        RuntimeWarning,
        stacklevel=3,
    )


def _run_cells_job(payload: tuple) -> tuple:
    """Process-pool worker: run a group of cells sharing one scheme training.

    The payload carries the (declarative, hence picklable) cells, the parent
    engine's backend name, a snapshot of the parent's LP-cache entries, and
    any schemes the parent had already trained for this group.  The return
    value carries the finished records plus everything the parent merges
    back: LP-cache entries solved here and schemes trained here (both keyed
    exactly as the parent keys them, so the merge is a dict update).

    A failing *cell* is returned as data (the fourth element) rather than
    raised, so the group's already-finished records still reach the parent
    -- and its checkpoint -- before the error propagates, exactly like a
    sequential run that dies mid-grid.
    """
    cells, backend_name, lp_backend_name, cache_snapshot, pretrained = payload
    cache = OptimalMLUCache()
    cache.merge_entries(cache_snapshot)
    # lp_workers is pinned to 1 (sequential): each cell worker is already one
    # process of the cell pool, and letting REPRO_LP_WORKERS leak in here
    # would nest an LP pool inside every cell worker.
    engine = EvaluationEngine(
        cache=cache,
        lp_workers=1,
        backend=backend_name,
        lp_backend=lp_backend_name,
    )
    study = Study(scheme_cache=dict(pretrained))
    finished = []
    error: Exception | None = None
    error_index: int | None = None
    for index, cell in cells:
        try:
            record = study._run_cell(cell, engine)
        except Exception as exc:
            try:
                pickle.dumps(exc)
                error = exc
            except Exception:
                error = RuntimeError(f"{type(exc).__name__}: {exc}")
            error_index = index
            break
        record.result = None  # the live EvaluationResult stays in the worker
        finished.append((index, record))
    new_entries = {
        key: value
        for key, value in cache.entries_snapshot().items()
        if key not in cache_snapshot
    }
    trained = {}
    for key, scheme in study._scheme_cache.items():
        if key in pretrained:
            continue
        try:
            pickle.dumps(scheme)
        except Exception:  # exotic registered schemes just stay worker-local
            continue
        trained[key] = scheme
    return finished, new_entries, trained, error, error_index


@dataclass
class _ScenarioContext:
    """A scenario resolved into the pieces cell execution needs."""

    key: str
    name: str
    paths: PathSet | None
    train: TrafficMatrixSequence | None
    test: TrafficMatrixSequence | None
    traffic: TrafficMatrixSequence | None
    history_len: int | None
    _pair_std: np.ndarray | None = None

    def pair_std(self) -> np.ndarray:
        """The training split's per-pair std (computed once per scenario).

        Raises:
            ValueError: If the scenario has no training split -- a spec-level
                error naming the scenario, instead of the bare
                ``AttributeError: 'NoneType' object has no attribute
                'pair_std'`` a train-less scenario used to surface.
        """
        if self.train is None:
            raise ValueError(
                f"scenario {self.name!r} provides no training split, but a "
                "fluctuation cell needs its per-pair std as the perturbation "
                "reference; use a scenario with a training split or drop the "
                "fluctuation perturbation for this scenario"
            )
        if self._pair_std is None:
            self._pair_std = self.train.pair_std()
        return self._pair_std


class Study:
    """Declarative experiment orchestrator.

    Args:
        spec: A study spec mapping (sweep axes expand into the grid), an
            :class:`ExperimentSpec`, or an iterable of either.  ``None``
            starts empty (use :meth:`add`, or just the :meth:`scenario` /
            :meth:`trained_scheme` dedup helpers).
        scheme_cache: Optional dict holding trained schemes keyed by
            (scenario, scheme spec, training segment); pass a shared dict to
            reuse trainings across studies.
        scenario_cache: Optional dict holding built scenarios keyed by
            canonical reference; shareable the same way.

    Example::

        study = Study({
            "scenario": sweep("geant_small", "pfabric_small"),
            "scheme": sweep({"kind": "figret"}, {"kind": "dote"}),
            "perturbation": sweep({"kind": "none"},
                                  {"kind": "fluctuation", "alpha": 1.0}),
        })
        results = study.run()
        print(results.to_table())
    """

    def __init__(
        self,
        spec=None,
        scheme_cache: dict | None = None,
        scenario_cache: dict | None = None,
    ) -> None:
        self.specs: list[ExperimentSpec] = []
        self._scheme_cache = scheme_cache if scheme_cache is not None else {}
        # Live-instance / factory schemes key by object identity, which is
        # only stable while this study's specs pin the objects -- so they
        # dedup per study and never enter the (possibly shared) scheme_cache.
        self._object_scheme_cache: dict = {}
        self._scenario_cache = scenario_cache if scenario_cache is not None else {}
        self._baselines: dict[tuple, tuple[EvaluationResult, MLUStatistics]] = {}
        self._contexts: dict[str, _ScenarioContext] = {}
        self._test_slices: dict[tuple, TrafficMatrixSequence] = {}
        if spec is not None:
            self.add(spec)

    @classmethod
    def from_spec(cls, spec: Mapping, **kwargs) -> "Study":
        """Build a study from a plain-dict spec (sweep axes expanded)."""
        return cls(spec, **kwargs)

    @classmethod
    def from_json(cls, text: str, **kwargs) -> "Study":
        """Build a study from a JSON spec document."""
        return cls(json.loads(text), **kwargs)

    def add(self, spec) -> "Study":
        """Append cells: a spec mapping (expanded), a cell, or an iterable."""
        if isinstance(spec, ExperimentSpec):
            self.specs.append(spec)
        elif isinstance(spec, Mapping):
            self.specs.extend(ExperimentSpec.from_dict(cell) for cell in expand_spec(spec))
        elif isinstance(spec, Iterable) and not isinstance(spec, (str, bytes)):
            for item in spec:
                self.add(item)
        else:
            raise TypeError(
                "Study accepts a spec mapping, an ExperimentSpec, or an iterable of those; "
                f"got {type(spec).__name__}"
            )
        return self

    def __len__(self) -> int:
        return len(self.specs)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(
        self,
        engine: EvaluationEngine | None = None,
        backend: str | None = None,
        lp_workers: int | str | None = None,
        checkpoint=None,
        cell_workers: int | str | None = None,
        lp_backend: str | None = None,
        warehouse=None,
    ) -> ResultSet:
        """Execute every cell and collect the uniform result records.

        Args:
            engine: Evaluation engine (the process-wide default -- and its
                shared LP cache -- if omitted).
            backend: Array backend for the replay hot path; when given
                without an explicit engine, a backend-pinned engine sharing
                the process-wide LP cache is used.
            lp_workers: LP process-pool width for cold normaliser batches
                (``"auto"`` derives one from the CPU count).
            lp_backend: LP solver backend for the omniscient normalisers
                (``"scipy"``, ``"highs"``, ``"auto"``; see
                :mod:`repro.solvers.lp_backend`).  Like ``backend``, only
                used when no explicit engine is given.
            checkpoint: Optional path of a :class:`StudyCheckpoint`.  Every
                finished cell is appended to it immediately (crash-safe
                writes), so an interrupted grid restarts where it died via
                :meth:`resume` with zero repeat trainings or LP solves for
                the cells already on disk.  The path must not already exist
                -- resuming is explicit, never accidental.
            cell_workers: Process-pool width for *cell-level* parallelism
                (``"auto"`` derives one from the CPU count, like
                ``lp_workers``).  Declarative cells are grouped by
                (scenario, scheme spec) -- one training per distinct scheme
                spec, exactly as in sequential runs -- and the groups fan
                out over a process pool; per-worker LP-cache entries and
                trained schemes are merged back on return, so a follow-up
                run repeats nothing.  Cells built from live objects (which
                cannot cross a process boundary) run in-process, and an
                unusable pool degrades to sequential execution with one
                warning.  Results are bit-identical to ``cell_workers=None``
                in either case.
            warehouse: Optional path or :class:`~repro.study.warehouse.
                ResultWarehouse` that every finished cell is appended to as
                it completes (after the checkpoint append, with the same
                crash-safe writes).  Unlike a checkpoint, a warehouse is
                *shared*: it may already hold records of other suites,
                studies, and sessions, and this run simply appends to it.

        Raises:
            FileExistsError: If ``checkpoint`` already exists (use
                :meth:`resume` to continue it).
            ValueError: If ``cell_workers`` is not ``None``, a positive int,
                or ``"auto"``.
        """
        return self.execute(
            self.plan(
                engine=engine,
                backend=backend,
                lp_workers=lp_workers,
                checkpoint=checkpoint,
                cell_workers=cell_workers,
                lp_backend=lp_backend,
                warehouse=warehouse,
            )
        )

    def resume(
        self,
        checkpoint,
        engine: EvaluationEngine | None = None,
        backend: str | None = None,
        lp_workers: int | str | None = None,
        cell_workers: int | str | None = None,
        lp_backend: str | None = None,
        warehouse=None,
    ) -> ResultSet:
        """Finish an interrupted checkpointed run (see :meth:`run`).

        The spec grid is re-expanded, cells whose provenance already appears
        in the saved checkpoint are skipped (their records are loaded from
        disk), and only the remainder runs -- appending to the same file, so
        resuming is itself interruptible.  The returned :class:`ResultSet`
        is in spec order and bit-identical to an uninterrupted
        ``run(checkpoint=...)``.

        A missing checkpoint file simply starts a fresh checkpointed run,
        which makes re-running one command until it succeeds a complete
        crash-recovery loop.  A corrupt checkpoint raises a
        :class:`ValueError` naming the file (see :class:`StudyCheckpoint`).

        Args:
            checkpoint: Path of the checkpoint written by an earlier
                ``run(checkpoint=...)`` / ``resume(...)``.
            engine / backend / lp_workers / cell_workers / lp_backend /
                warehouse: As in :meth:`run`.  Cells loaded from the
                checkpoint were appended to the warehouse by the session
                that ran them, so they are not re-appended here; a final
                :meth:`~repro.study.warehouse.ResultWarehouse.sync` pass
                restores any record lost in the crash window between a
                checkpoint append and its warehouse append.
        """
        return self.execute(
            self.plan(
                engine=engine,
                backend=backend,
                lp_workers=lp_workers,
                checkpoint=checkpoint,
                cell_workers=cell_workers,
                lp_backend=lp_backend,
                warehouse=warehouse,
                resume=True,
            )
        )

    @staticmethod
    def _reproducible(cell: ExperimentSpec) -> bool:
        """Whether a cell's provenance fully identifies it across processes.

        Live objects (scheme instances, factories, built scenarios) record
        only an ``{"inline": <name>}`` marker -- two different objects with
        one display name are indistinguishable on disk, so such cells are
        never resumed from a checkpoint (they re-run instead; serving a
        possibly-stale result silently would be worse).
        """
        return isinstance(cell.scenario, (str, Mapping)) and isinstance(
            cell.scheme, Mapping
        )

    def _match_checkpoint(
        self, saved: list[StudyResult]
    ) -> dict[int, StudyResult]:
        """Map saved records onto this study's cells by spec provenance.

        Duplicate cells (identical provenance listed twice) match records
        positionally; live-object cells never match (see
        :meth:`_reproducible`); declarative records matching no cell are
        kept on disk but excluded from the results, with a warning -- they
        usually mean the spec changed since the checkpoint was written.
        """
        by_key: dict[str, list[StudyResult]] = {}
        for record in saved:
            by_key.setdefault(canonical_json(record.spec), []).append(record)
        completed: dict[int, StudyResult] = {}
        inline_cells = 0
        inline_keys: set[str] = set()
        for index, cell in enumerate(self.specs):
            key = canonical_json(cell.to_dict())
            if not self._reproducible(cell):
                inline_cells += 1
                inline_keys.add(key)
                continue
            matches = by_key.get(key)
            if matches:
                completed[index] = matches.pop(0)
        if inline_cells:
            warnings.warn(
                f"{inline_cells} cell(s) built from live objects cannot be "
                "identified by provenance and will re-run on resume; use "
                "declarative scenario/scheme specs for resumable cells",
                RuntimeWarning,
                stacklevel=3,
            )
        unmatched = sum(
            len(records)
            for key, records in by_key.items()
            if key not in inline_keys  # live-object records re-run by design
        )
        if unmatched:
            warnings.warn(
                f"checkpoint holds {unmatched} record(s) whose provenance "
                "matches no cell of this spec (was the spec edited since the "
                "checkpoint was written?); they stay on disk but are "
                "excluded from the results",
                RuntimeWarning,
                stacklevel=3,
            )
        return completed

    def plan(
        self,
        engine: EvaluationEngine | None = None,
        backend: str | None = None,
        lp_workers: int | str | None = None,
        checkpoint=None,
        cell_workers: int | str | None = None,
        lp_backend: str | None = None,
        warehouse=None,
        resume: bool = False,
    ) -> StudyPlan:
        """Build the execution plan :meth:`run` / :meth:`resume` would run.

        The plan-build half of the orchestration loop: validate the
        checkpoint situation, match already-finished cells (when
        ``resume=True``), resolve the engine and pool widths, and return an
        inert :class:`StudyPlan` describing exactly what :meth:`execute`
        will do.  Nothing is trained, solved, or written here, so a
        scheduler (the study server's job queue, a test harness) can build
        plans eagerly and own the loop itself.

        Args:
            engine / backend / lp_workers / checkpoint / cell_workers /
                lp_backend / warehouse: As in :meth:`run`.
            resume: When true, cells whose provenance already appears in the
                (existing) checkpoint are loaded as completed instead of
                pending -- :meth:`resume` semantics; a missing checkpoint
                file simply plans a fresh run.  When false, an existing
                checkpoint raises :class:`FileExistsError` -- :meth:`run`
                semantics (resuming is explicit, never accidental).

        Raises:
            FileExistsError: If ``checkpoint`` exists and ``resume`` is
                false.
            ValueError: If ``resume`` is true without a ``checkpoint``, or
                ``cell_workers`` is invalid.
        """
        completed: dict[int, StudyResult] = {}
        if checkpoint is not None:
            store = StudyCheckpoint(checkpoint)
            if resume:
                if store.exists():
                    completed = self._match_checkpoint(store.load())
            elif store.exists():
                raise FileExistsError(
                    f"checkpoint {store.path} already exists; call "
                    f"Study.resume({str(store.path)!r}) to continue it, or "
                    "remove the file to start over"
                )
        elif resume:
            raise ValueError("resume=True needs a checkpoint path to resume from")
        engine = self._resolve_engine(engine, backend, lp_workers, lp_backend)
        # Same accepted forms as lp_workers, but cell_workers must not
        # inherit REPRO_LP_WORKERS: that variable names the LP pool width,
        # and the cell pool nests an engine (with its own lp_workers) inside
        # every worker.
        cell_workers = resolve_lp_workers(cell_workers, use_env=False)
        writer = StudyCheckpoint(checkpoint) if checkpoint is not None else None
        store = None
        if warehouse is not None:
            store = (
                warehouse
                if isinstance(warehouse, ResultWarehouse)
                else ResultWarehouse(warehouse)
            )
        pending = [
            (index, cell)
            for index, cell in enumerate(self.specs)
            if index not in completed
        ]
        return StudyPlan(
            pending=pending,
            completed=completed,
            engine=engine,
            cell_workers=cell_workers,
            checkpoint=writer,
            warehouse=store,
        )

    def execute(
        self,
        plan: StudyPlan,
        on_cell=None,
        should_stop=None,
    ) -> ResultSet:
        """Run a :class:`StudyPlan` and collect the uniform result records.

        The execution half of the orchestration loop.  ``run()`` is exactly
        ``execute(plan())`` and ``resume(path)`` is exactly
        ``execute(plan(checkpoint=path, resume=True))``; a scheduler calls
        this directly to observe and steer the loop:

        Args:
            plan: The plan built by :meth:`plan`.
            on_cell: Optional ``on_cell(index, record)`` callback invoked
                after each newly finished cell is checkpointed/warehoused --
                the study server streams records to its clients from here.
                Called in completion order (spec order when sequential; pool
                completion order under ``cell_workers``).
            should_stop: Optional zero-argument callable polled between
                cells (and before a pooled fan-out).  When it returns true,
                execution stops *cleanly*: everything finished so far is
                already on disk, and :class:`StudyCancelled` is raised so
                the caller knows the run is partial but resumable.

        Raises:
            StudyCancelled: When ``should_stop`` returned true before the
                grid finished.
        """
        engine = plan.engine
        writer = plan.checkpoint
        if writer is not None and writer._needs_header():
            writer.create()
        store = plan.warehouse
        if store is not None and store._needs_header():
            store.create()
        records: dict[int, StudyResult] = dict(plan.completed)
        pending = list(plan.pending)
        total = len(self.specs)

        def _notify(index: int, record: StudyResult) -> None:
            if writer is not None:
                writer.append(record)
            if store is not None:
                store.append(record)
            if on_cell is not None:
                on_cell(index, record)

        cell_workers = plan.cell_workers
        if cell_workers is not None and cell_workers > 1 and len(pending) > 1:
            if should_stop is not None and should_stop():
                raise StudyCancelled(len(records), total)
            pending = self._run_pooled(
                pending, engine, cell_workers, records, _notify
            )
        for index, cell in pending:
            if should_stop is not None and should_stop():
                raise StudyCancelled(len(records), total)
            try:
                record = self._run_cell(cell, engine)
            except Exception as exc:
                if hasattr(exc, "add_note"):
                    exc.add_note(
                        f"raised by study cell {index + 1}/{len(self.specs)} "
                        f"(spec: {canonical_json(cell.to_dict())})"
                    )
                raise
            records[index] = record
            _notify(index, record)
        results = ResultSet(records[index] for index in range(len(self.specs)))
        if store is not None and plan.completed:
            # Resumed cells were warehoused by the session that ran them --
            # except any lost in the crash window between their checkpoint
            # append and their warehouse append.  Reconcile by provenance so
            # the warehouse ends up complete without duplicating anything.
            store.sync(results)
        return results

    def _run_pooled(
        self,
        pending: list[tuple[int, ExperimentSpec]],
        engine: EvaluationEngine,
        cell_workers: int,
        records: dict[int, StudyResult],
        notify,
    ) -> list[tuple[int, ExperimentSpec]]:
        """Fan pending cells out over a process pool.

        Cells are grouped by (scenario, scheme spec) so a distinct scheme
        spec trains exactly once -- in whichever worker owns its group --
        while distinct specs train in parallel.  The known trade-off of this
        grouping: on a *cold* LP cache, groups sharing a scenario each solve
        that scenario's replay normalisers in their own worker (deduped only
        at merge-back), so pooled cold runs do up to schemes-per-scenario
        times the sequential LP work; with a warm snapshot -- the bench
        harness, resumes, any second run -- there is no duplication.
        Pre-solving normalisers in the parent would need the per-cell
        perturbed demand streams, i.e. most of cell execution; grouping by
        scenario instead would serialise the trainings.  Returns the cells
        that must still run in-process: ones carrying live objects, plus
        everything handed back by pool-infrastructure failures (never cell
        failures, which propagate after the surviving jobs are drained and
        checkpointed).
        """
        local: list[tuple[int, ExperimentSpec]] = []
        groups: dict[tuple[str, str], list[tuple[int, ExperimentSpec]]] = {}
        for index, cell in pending:
            if self._reproducible(cell):
                groups.setdefault(
                    (cell.scenario_key, cell.scheme_key), []
                ).append((index, cell))
            else:
                local.append((index, cell))
        if not groups:
            return local
        backend_name = engine.backend.name if engine.backend is not None else None
        lp_backend_name = (
            engine.lp_backend.name if engine.lp_backend is not None else None
        )
        snapshot = engine.cache.entries_snapshot()
        # Ship each group only the cache entries of its own path set (keyed
        # by fingerprint) instead of pickling the whole -- possibly huge --
        # snapshot once per job.  Resolving the scenario context here builds
        # each scenario once in the parent (the cheap dedup layer; training
        # stays in the workers), which both reveals the fingerprint and
        # pre-warms the caches the in-process leftovers use.
        per_fingerprint: dict[str, dict] = {}

        def _snapshot_for(cell: ExperimentSpec) -> dict:
            ctx = self._context(cell)
            if ctx.paths is None:
                return snapshot
            fingerprint = ctx.paths.fingerprint
            filtered = per_fingerprint.get(fingerprint)
            if filtered is None:
                filtered = {
                    key: value for key, value in snapshot.items() if key[0] == fingerprint
                }
                per_fingerprint[fingerprint] = filtered
            return filtered

        jobs = []
        for (scenario_key, scheme_key), cells in groups.items():
            pretrained = {}
            for key, scheme in self._scheme_cache.items():
                if key[0] != scenario_key or key[1] != scheme_key:
                    continue
                # Probe picklability up front: the probe re-serialises the
                # weights once (cheap next to a training), and without it one
                # exotic cached scheme would surface as a submit-time
                # pickling error that falls back the *entire* pool.
                try:
                    pickle.dumps(scheme)
                except Exception:
                    continue  # worker retrains; still correct, just slower
                pretrained[key] = scheme
            jobs.append(
                (
                    cells,
                    backend_name,
                    lp_backend_name,
                    _snapshot_for(cells[0][1]),
                    pretrained,
                )
            )
        try:
            pool = _pool(cell_workers)
            futures = {pool.submit(_run_cells_job, job): job for job in jobs}
        except _POOL_SUBMIT_ERRORS as exc:
            _warn_cell_pool_fallback(exc)
            _discard_pool(cell_workers)
            return sorted(local + [item for job in jobs for item in job[0]])
        leftover = list(local)
        first_error: Exception | None = None
        for future in as_completed(futures):
            job = futures[future]
            try:
                finished, new_entries, trained, cell_error, error_index = future.result()
            except CancelledError:
                # A sibling infra failure discarded the pool and cancelled
                # this still-queued job; its cells just run in-process.
                leftover.extend(job[0])
                continue
            except _POOL_RESULT_ERRORS as exc:
                _warn_cell_pool_fallback(exc)
                _discard_pool(cell_workers)
                leftover.extend(job[0])
                continue
            engine.cache.merge_entries(new_entries)
            for key, scheme in trained.items():
                self._scheme_cache.setdefault(tuple(key), scheme)
            for index, record in finished:
                records[index] = record
                notify(index, record)
            if cell_error is not None and first_error is None:
                # A *cell* failed; its group's finished records were still
                # merged and checkpointed above.  Keep draining the other
                # jobs, then raise -- with the same cell-identifying note
                # the sequential path attaches.
                if hasattr(cell_error, "add_note") and error_index is not None:
                    failed = dict(job[0]).get(error_index)
                    spec_note = (
                        canonical_json(failed.to_dict()) if failed is not None else "?"
                    )
                    cell_error.add_note(
                        f"raised by study cell {error_index + 1}/{len(self.specs)} "
                        f"(spec: {spec_note})"
                    )
                first_error = cell_error
        if first_error is not None:
            raise first_error
        return sorted(leftover)

    @staticmethod
    def _resolve_engine(
        engine: EvaluationEngine | None,
        backend: str | None,
        lp_workers: int | str | None,
        lp_backend: str | None = None,
    ) -> EvaluationEngine:
        if engine is not None:
            return engine
        if backend is None and lp_workers is None and lp_backend is None:
            from repro.evaluation.runner import default_engine

            return default_engine()
        return EvaluationEngine(
            cache=shared_cache(),
            lp_workers=lp_workers,
            backend=backend,
            lp_backend=lp_backend,
        )

    # ------------------------------------------------------------------ #
    # Shared-work resolution (the dedup layers)
    # ------------------------------------------------------------------ #
    def scenario(self, reference) -> Scenario | InlineScenario:
        """Resolve (and cache) a scenario reference of any accepted form."""
        key = scenario_cache_key(reference)
        cached = self._scenario_cache.get(key)
        if cached is not None:
            return cached
        if isinstance(reference, (Scenario, InlineScenario)):
            scenario = reference
        elif isinstance(reference, str):
            scenario = datasets_registry.load(reference)
        elif isinstance(reference, Mapping):
            if "name" in reference and "topology" not in reference:
                scenario = datasets_registry.load(
                    reference["name"],
                    seed=reference.get("seed", 0),
                    num_intervals=reference.get("num_intervals"),
                )
            else:
                scenario = datasets_registry.from_config(reference)
        else:
            raise TypeError(
                "scenario must be a registered name, a registry reference dict, an inline "
                f"config dict, or a Scenario; got {type(reference).__name__}"
            )
        self._scenario_cache[key] = scenario
        return scenario

    def _context(self, cell: ExperimentSpec) -> _ScenarioContext:
        key = cell.scenario_key
        ctx = self._contexts.get(key)
        if ctx is not None:
            return ctx
        scenario = self.scenario(cell.scenario)
        if isinstance(scenario, InlineScenario):
            ctx = _ScenarioContext(
                key=key,
                name=scenario.name,
                paths=scenario.paths,
                train=scenario.train,
                test=scenario.test,
                traffic=scenario.traffic,
                history_len=scenario.history_len,
            )
        else:
            train, test = scenario.split()
            ctx = _ScenarioContext(
                key=key,
                name=scenario.name,
                paths=scenario.paths,
                train=train,
                test=test,
                traffic=scenario.traffic,
                history_len=scenario.history_len,
            )
        self._contexts[key] = ctx
        return ctx

    def trained_scheme(
        self, cell: ExperimentSpec | Mapping, engine: EvaluationEngine | None = None
    ) -> TEScheme:
        """Resolve (and cache) the trained scheme a cell would evaluate.

        Exposed so callers can pre-train a grid's schemes -- or share one
        training across studies via a common ``scheme_cache`` -- without
        running any replay.
        """
        if not isinstance(cell, ExperimentSpec):
            cell = ExperimentSpec.from_dict(cell)
        engine = self._resolve_engine(engine, None, None, None)
        ctx = self._context(cell)
        return self._resolve_scheme(cell, ctx, engine, ctx.train, "default")

    def _resolve_scheme(
        self,
        cell: ExperimentSpec,
        ctx: _ScenarioContext,
        engine: EvaluationEngine,
        train_sequence: TrafficMatrixSequence | None,
        train_key: str,
    ) -> TEScheme:
        cache = self._scheme_cache if isinstance(cell.scheme, Mapping) else self._object_scheme_cache
        key = (ctx.key, cell.scheme_key, train_key)
        cached = cache.get(key)
        if cached is not None:
            return cached
        if isinstance(cell.scheme, TEScheme):
            scheme = cell.scheme
        elif isinstance(cell.scheme, Mapping):
            if ctx.paths is None:
                raise ValueError(
                    f"cell scenario {ctx.name!r} provides no path set to build scheme "
                    f"{cell.scheme.get('kind')!r} on"
                )
            scheme = build_scheme(
                cell.scheme, ctx.paths, cache=engine.cache, lp_workers=engine.lp_workers
            )
        elif callable(cell.scheme):
            scheme = cell.scheme()
        else:
            raise TypeError(
                "scheme must be a spec dict, a TEScheme, or a zero-argument factory; "
                f"got {type(cell.scheme).__name__}"
            )
        if ctx.paths is not None and scheme.path_set.fingerprint != ctx.paths.fingerprint:
            raise ValueError(
                f"scheme {scheme.name!r} uses a different path set than scenario "
                f"{ctx.name!r}; schemes under one scenario must share its PathSet so "
                "their normalised MLUs are comparable"
            )
        if cell.train:
            if train_sequence is None:
                raise ValueError(
                    f"scenario {ctx.name!r} provides no training data; pass train=False "
                    "for pre-trained schemes or use a scenario with a training split"
                )
            scheme.precompute(train_sequence)
        cache[key] = scheme
        return scheme

    # ------------------------------------------------------------------ #
    # Cell execution
    # ------------------------------------------------------------------ #
    @staticmethod
    def _history_len(cell: ExperimentSpec, ctx: _ScenarioContext) -> int:
        history = cell.history_len if cell.history_len is not None else ctx.history_len
        if history is None:
            raise ValueError(
                f"cell on scenario {ctx.name!r} has no history_len (set it on the cell "
                "or the scenario)"
            )
        return history

    def _sliced_test(
        self,
        ctx_key: str,
        test: TrafficMatrixSequence,
        history_len: int,
        max_intervals: int | None,
    ) -> TrafficMatrixSequence:
        """Cap the test split at ``history_len + max_intervals`` rows.

        Sliced once per scenario x knobs -- every cell of a grid row shares
        the same sequence object.
        """
        if max_intervals is None:
            return test
        key = (ctx_key, id(test), history_len, max_intervals)
        sliced = self._test_slices.get(key)
        if sliced is None:
            limit = history_len + max_intervals
            sliced = test[: min(len(test), limit)]
            self._test_slices[key] = sliced
        return sliced

    def _drift_test_segment(
        self, ctx: _ScenarioContext, traffic: TrafficMatrixSequence, test_segment: tuple
    ) -> TrafficMatrixSequence:
        """The drift protocol's held-out test slice (cut once per scenario)."""
        key = (ctx.key, "drift_test", test_segment)
        cached = self._test_slices.get(key)
        if cached is None:
            cached = traffic.segment(*test_segment)
            self._test_slices[key] = cached
        return cached

    def _replay(
        self,
        cell: ExperimentSpec,
        engine: EvaluationEngine,
        scheme: TEScheme,
        test: TrafficMatrixSequence,
        history_len: int,
    ) -> EvaluationResult:
        if cell.streaming:
            return engine.evaluate_streaming(
                scheme,
                test,
                history_len,
                chunk_size=cell.chunk_size,
                oracle_demand=cell.oracle_demand,
            )
        return engine.evaluate_scheme(
            scheme, test, history_len, oracle_demand=cell.oracle_demand
        )

    def _baseline(
        self,
        cell: ExperimentSpec,
        engine: EvaluationEngine,
        ctx: _ScenarioContext,
        scheme: TEScheme,
        test: TrafficMatrixSequence,
        history_len: int,
        train_key: str = "default",
    ) -> tuple[EvaluationResult, MLUStatistics]:
        """The unperturbed replay of a cell (one per scenario x scheme x knobs)."""
        key = (ctx.key, cell.scheme_key, cell.eval_key, train_key)
        cached = self._baselines.get(key)
        if cached is None:
            result = self._replay(cell, engine, scheme, test, history_len)
            cached = (result, result.statistics)
            self._baselines[key] = cached
        return cached

    @staticmethod
    def _scheme_label(cell: ExperimentSpec, scheme: TEScheme) -> str:
        if isinstance(cell.scheme, Mapping) and cell.scheme.get("label"):
            return str(cell.scheme["label"])
        return scheme.name

    def _record(
        self,
        cell: ExperimentSpec,
        ctx: _ScenarioContext,
        scheme_label: str,
        experiment: str,
        metrics: dict,
        series: np.ndarray | None,
        result: EvaluationResult | None = None,
    ) -> StudyResult:
        return StudyResult(
            scenario=ctx.name,
            scheme=scheme_label,
            experiment=experiment,
            spec=cell.to_dict(),
            metrics=metrics,
            series=series,
            result=result,
        )

    def _run_cell(self, cell: ExperimentSpec, engine: EvaluationEngine) -> StudyResult:
        ctx = self._context(cell)
        kind = cell.perturbation["kind"]
        if kind == "drift":
            return self._run_drift(cell, ctx, engine)
        if ctx.test is None:
            raise ValueError(f"scenario {ctx.name!r} provides no test sequence")
        history_len = self._history_len(cell, ctx)
        test = self._sliced_test(ctx.key, ctx.test, history_len, cell.max_intervals)
        scheme = self._resolve_scheme(cell, ctx, engine, ctx.train, "default")
        if kind == "none":
            result, stats = self._baseline(cell, engine, ctx, scheme, test, history_len)
            metrics = dict(vars(stats))
            return self._record(
                cell,
                ctx,
                self._scheme_label(cell, scheme),
                "replay",
                metrics,
                result.normalized_mlus,
                result,
            )
        if kind == "fluctuation":
            return self._run_fluctuation(cell, ctx, engine, scheme, test, history_len)
        return self._run_failure(cell, ctx, engine, scheme, test, history_len)

    def _run_fluctuation(
        self, cell, ctx, engine, scheme, test, history_len
    ) -> StudyResult:
        perturbation = cell.perturbation
        # Resolved before the baseline replay: a train-less scenario fails
        # with pair_std's spec-level error instead of replaying first.
        pair_std = ctx.pair_std()
        _, base_stats = self._baseline(cell, engine, ctx, scheme, test, history_len)
        perturb = reverse_rank_fluctuation if perturbation["worst_case"] else gaussian_fluctuation
        perturbed = perturb(
            test, perturbation["alpha"], pair_std, seed=perturbation["seed"]
        )
        result = self._replay(cell, engine, scheme, perturbed, history_len)
        stats = result.statistics
        metrics = dict(vars(stats))
        metrics["average_decline"] = stats.mean / base_stats.mean - 1.0
        metrics["p90_decline"] = stats.p90 / base_stats.p90 - 1.0
        return self._record(
            cell,
            ctx,
            self._scheme_label(cell, scheme),
            "fluctuation",
            metrics,
            result.normalized_mlus,
            result,
        )

    def _run_failure(self, cell, ctx, engine, scheme, test, history_len) -> StudyResult:
        perturbation = cell.perturbation
        if cell.streaming or cell.oracle_demand:
            raise ValueError(
                "failure cells replay through the batched failure protocol; the "
                "streaming and oracle_demand knobs do not apply to them"
            )
        fault_aware = perturbation["fault_aware"]
        if fault_aware is None:
            fault_aware = hasattr(scheme, "set_failures")
        names = (scheme.name,) if fault_aware else ()
        try:
            series = engine.failure_experiment(
                [scheme],
                test,
                history_len,
                perturbation["num_failures"],
                num_trials=perturbation["num_trials"],
                fault_aware_names=names,
                seed=perturbation["seed"],
            )[scheme.name]
        finally:
            # The failure protocol mutates fault-aware schemes (set_failures
            # per trial); clear the last trial's failures so other cells
            # reusing this cached scheme replay an intact network.
            if fault_aware and hasattr(scheme, "set_failures"):
                scheme.set_failures(set())
        metrics = dict(vars(normalized_mlu_statistics(series)))
        return self._record(
            cell, ctx, self._scheme_label(cell, scheme), "failure", metrics, series
        )

    def _run_drift(self, cell: ExperimentSpec, ctx, engine) -> StudyResult:
        perturbation = cell.perturbation
        if isinstance(cell.scheme, TEScheme):
            raise ValueError(
                "drift cells retrain from scratch per segment; pass a scheme spec dict "
                "or a zero-argument factory instead of a live instance"
            )
        if not cell.train:
            raise ValueError(
                "drift cells measure decline from retraining, which train=False "
                "disables; drop train=False (there is no pre-trained scheme to protect)"
            )
        traffic = ctx.traffic
        if traffic is None:
            raise ValueError(
                f"scenario {ctx.name!r} provides no full traffic sequence (drift cells "
                "re-split it into training segments)"
            )
        test_segment = tuple(float(v) for v in perturbation["test_segment"])
        train_segment = tuple(float(v) for v in perturbation["train_segment"])
        history_len = self._history_len(cell, ctx)
        test_full = self._drift_test_segment(ctx, traffic, test_segment)
        test = self._sliced_test(ctx.key, test_full, history_len, cell.max_intervals)

        baseline_key = f"segment:0.0-{test_segment[0]}"
        baseline_scheme = self._resolve_scheme(
            cell, ctx, engine, traffic.segment(0.0, test_segment[0]), baseline_key
        )
        # The replay cache key carries the test segment too: two drift cells
        # sharing a training prefix but held out on different slices must not
        # reuse one another's baseline replay.
        _, base_stats = self._baseline(
            cell,
            engine,
            ctx,
            baseline_scheme,
            test,
            history_len,
            train_key=f"{baseline_key}|test:{test_segment[0]}-{test_segment[1]}",
        )

        segment_key = f"segment:{train_segment[0]}-{train_segment[1]}"
        scheme = self._resolve_scheme(
            cell, ctx, engine, traffic.segment(*train_segment), segment_key
        )
        result = self._replay(cell, engine, scheme, test, history_len)
        stats = result.statistics
        metrics = dict(vars(stats))
        metrics["average_decline"] = stats.mean / base_stats.mean - 1.0
        metrics["p90_decline"] = stats.p90 / base_stats.p90 - 1.0
        return self._record(
            cell,
            ctx,
            self._scheme_label(cell, scheme),
            "drift",
            metrics,
            result.normalized_mlus,
            result,
        )
