"""Uniform study results: per-cell records with spec provenance.

Every executed cell produces one :class:`StudyResult` -- scenario / scheme /
experiment labels, the cell's plain-dict spec (provenance), a flat metrics
dict, and the normalised-MLU series.  A :class:`ResultSet` is the ordered
collection with filtering, table rendering (through
:mod:`repro.evaluation.reporting`) and a lossless JSON round-trip, so a grid
run can be stored next to the paper's tables and re-loaded for comparison.
"""

from __future__ import annotations

import json
from collections.abc import Callable, Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.evaluation.metrics import MLUStatistics, normalized_mlu_statistics
from repro.evaluation.reporting import format_table

__all__ = ["StudyResult", "ResultSet"]

#: On-disk format marker / version of serialized result sets.
RESULTSET_FORMAT = "repro-study-resultset"
RESULTSET_VERSION = 1

#: Metric columns shown by :meth:`ResultSet.to_table` when present.
_DEFAULT_TABLE_METRICS = (
    "mean",
    "p90",
    "p99",
    "worst",
    "severe_congestion_fraction",
    "average_decline",
    "p90_decline",
)


@dataclass
class StudyResult:
    """Outcome of one experiment cell.

    Attributes:
        scenario: Scenario display name.
        scheme: Scheme display name (the spec's ``label`` when given).
        experiment: Cell kind: ``replay`` / ``fluctuation`` / ``failure`` /
            ``drift``.
        spec: JSON-safe provenance -- the cell spec that produced this record.
        metrics: Flat metric dict (normalised-MLU statistics, declines, ...).
        series: Per-interval normalised MLUs (``None`` for records loaded
            from trimmed JSON).
        result: The in-memory :class:`~repro.evaluation.engine.
            EvaluationResult` for replay-style cells (not serialized).
    """

    scenario: str
    scheme: str
    experiment: str
    spec: dict
    metrics: dict
    series: np.ndarray | None = None
    result: object | None = field(default=None, repr=False, compare=False)

    @property
    def statistics(self) -> MLUStatistics:
        """Summary statistics recomputed from the stored series."""
        if self.series is None:
            raise ValueError("record has no stored series")
        return normalized_mlu_statistics(self.series)

    def to_dict(self, include_series: bool = True) -> dict:
        record = {
            "scenario": self.scenario,
            "scheme": self.scheme,
            "experiment": self.experiment,
            "spec": self.spec,
            "metrics": self.metrics,
        }
        if include_series and self.series is not None:
            record["series"] = np.asarray(self.series, dtype=float).tolist()
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "StudyResult":
        series = record.get("series")
        return cls(
            scenario=record["scenario"],
            scheme=record["scheme"],
            experiment=record["experiment"],
            spec=record.get("spec", {}),
            metrics=record.get("metrics", {}),
            series=np.asarray(series, dtype=float) if series is not None else None,
        )


def _matches(value: str, selector) -> bool:
    if selector is None:
        return True
    if callable(selector):
        return bool(selector(value))
    if isinstance(selector, str):
        return value == selector
    return value in selector


class ResultSet:
    """Ordered collection of :class:`StudyResult` records."""

    def __init__(self, results: Iterable[StudyResult] = ()) -> None:
        self.results: list[StudyResult] = list(results)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[StudyResult]:
        return iter(self.results)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return ResultSet(self.results[index])
        return self.results[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ResultSet({len(self.results)} records)"

    # ------------------------------------------------------------------ #
    # Selection
    # ------------------------------------------------------------------ #
    def filter(
        self,
        scenario=None,
        scheme=None,
        experiment=None,
        where: Callable[[StudyResult], bool] | None = None,
    ) -> "ResultSet":
        """Select records by scenario / scheme / experiment (and a predicate).

        Each selector is a string (exact match), a collection of strings, or
        a callable over the label; ``where`` sees the whole record.
        """
        selected = [
            record
            for record in self.results
            if _matches(record.scenario, scenario)
            and _matches(record.scheme, scheme)
            and _matches(record.experiment, experiment)
            and (where is None or where(record))
        ]
        return ResultSet(selected)

    def only(self, **selectors) -> StudyResult:
        """The single record matching the selectors (raise otherwise)."""
        matches = self.filter(**selectors)
        if len(matches) != 1:
            raise ValueError(f"expected exactly one matching record, found {len(matches)}")
        return matches[0]

    def scheme_statistics(self, scenario=None) -> dict[str, MLUStatistics]:
        """Per-scheme statistics of the plain-replay records (Figure 5 style)."""
        return {
            record.scheme: record.statistics
            for record in self.filter(scenario=scenario, experiment="replay")
            if record.series is not None
        }

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def to_table(
        self,
        metrics: Sequence[str] | None = None,
        title: str | None = None,
        float_format: str = "{:.3f}",
    ) -> str:
        """Render the records as an aligned ASCII table.

        Args:
            metrics: Metric columns; defaults to the common ones present in
                at least one record, in canonical order.
            title: Optional table title.
            float_format: Format applied to float metric values.
        """
        if metrics is None:
            present = set()
            for record in self.results:
                present.update(record.metrics)
            metrics = [name for name in _DEFAULT_TABLE_METRICS if name in present]
        headers = ["scenario", "scheme", "experiment", *metrics]
        rows = []
        for record in self.results:
            row: list[object] = [record.scenario, record.scheme, record.experiment]
            for name in metrics:
                value = record.metrics.get(name)
                if isinstance(value, float):
                    row.append(float_format.format(value))
                else:
                    row.append("" if value is None else value)
            rows.append(row)
        return format_table(headers, rows, title=title)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def to_json(self, indent: int | None = 2, include_series: bool = True) -> str:
        """Serialize to JSON (spec provenance and series included)."""
        payload = {
            "format": RESULTSET_FORMAT,
            "version": RESULTSET_VERSION,
            "results": [record.to_dict(include_series=include_series) for record in self.results],
        }
        return json.dumps(payload, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ResultSet":
        """Rebuild a result set from :meth:`to_json` output."""
        payload = json.loads(text)
        if not isinstance(payload, dict) or payload.get("format") != RESULTSET_FORMAT:
            raise ValueError("not a repro study result-set document")
        if payload.get("version") != RESULTSET_VERSION:
            raise ValueError(
                f"unsupported result-set version {payload.get('version')!r} "
                f"(this build reads version {RESULTSET_VERSION})"
            )
        return cls(StudyResult.from_dict(record) for record in payload.get("results", []))

    def save(self, path) -> Path:
        """Write :meth:`to_json` output to ``path``."""
        path = Path(path).expanduser()
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @classmethod
    def load(cls, path) -> "ResultSet":
        """Read a result set saved with :meth:`save`."""
        return cls.from_json(Path(path).expanduser().read_text(encoding="utf-8"))
