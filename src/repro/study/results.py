"""Uniform study results: per-cell records with spec provenance.

Every executed cell produces one :class:`StudyResult` -- scenario / scheme /
experiment labels, the cell's plain-dict spec (provenance), a flat metrics
dict, and the normalised-MLU series.  A :class:`ResultSet` is the ordered
collection with filtering, table rendering (through
:mod:`repro.evaluation.reporting`) and a lossless JSON round-trip, so a grid
run can be stored next to the paper's tables and re-loaded for comparison.
"""

from __future__ import annotations

import json
import os
import warnings
from collections.abc import Callable, Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.evaluation.metrics import MLUStatistics, normalized_mlu_statistics
from repro.evaluation.reporting import format_table

__all__ = [
    "StudyResult",
    "ResultSet",
    "JsonlRecordStore",
    "StudyCheckpoint",
    "CheckpointError",
]


def fsync_directory(path: Path) -> None:
    """Flush a directory entry to disk (best effort).

    After an ``os.replace`` (or a first append creating a file), the *file*
    contents are durable once fsynced, but the directory entry pointing at
    them is not until the directory itself is synced -- a crash could roll
    the rename back.  Platforms without directory fds (or filesystems that
    refuse to fsync them) are silently tolerated; durability degrades to
    what the platform offers.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class CheckpointError(ValueError):
    """A checkpoint file is corrupt, foreign, or version-incompatible.

    A :class:`ValueError` subclass so existing ``except ValueError`` callers
    keep working, while the CLI can distinguish checkpoint problems (clean
    one-line error) from cell failures (full traceback).
    """

#: On-disk format marker / version of serialized result sets.
RESULTSET_FORMAT = "repro-study-resultset"
RESULTSET_VERSION = 1

#: On-disk format marker / version of study checkpoints (JSON lines).
CHECKPOINT_FORMAT = "repro-study-checkpoint"
CHECKPOINT_VERSION = 1

#: Metric columns shown by :meth:`ResultSet.to_table` when present.
_DEFAULT_TABLE_METRICS = (
    "mean",
    "p90",
    "p99",
    "worst",
    "severe_congestion_fraction",
    "average_decline",
    "p90_decline",
)


@dataclass
class StudyResult:
    """Outcome of one experiment cell.

    Attributes:
        scenario: Scenario display name.
        scheme: Scheme display name (the spec's ``label`` when given).
        experiment: Cell kind: ``replay`` / ``fluctuation`` / ``failure`` /
            ``drift``.
        spec: JSON-safe provenance -- the cell spec that produced this record.
        metrics: Flat metric dict (normalised-MLU statistics, declines, ...).
        series: Per-interval normalised MLUs (``None`` for records loaded
            from trimmed JSON).
        result: The in-memory :class:`~repro.evaluation.engine.
            EvaluationResult` for replay-style cells (not serialized).
    """

    scenario: str
    scheme: str
    experiment: str
    spec: dict
    metrics: dict
    series: np.ndarray | None = None
    result: object | None = field(default=None, repr=False, compare=False)

    @property
    def tags(self) -> dict:
        """Free-form provenance tags carried by the cell spec.

        Suites stamp ``suite`` / ``study`` / ``seed`` / ``repetition`` (plus
        any annotations) in here; the warehouse filters, groups, and exports
        by these keys.
        """
        if isinstance(self.spec, dict):
            tags = self.spec.get("tags")
            if isinstance(tags, dict):
                return tags
        return {}

    @property
    def statistics(self) -> MLUStatistics:
        """Summary statistics recomputed from the stored series."""
        if self.series is None:
            raise ValueError("record has no stored series")
        return normalized_mlu_statistics(self.series)

    def to_dict(self, include_series: bool = True) -> dict:
        record = {
            "scenario": self.scenario,
            "scheme": self.scheme,
            "experiment": self.experiment,
            "spec": self.spec,
            "metrics": self.metrics,
        }
        if include_series and self.series is not None:
            record["series"] = np.asarray(self.series, dtype=float).tolist()
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "StudyResult":
        series = record.get("series")
        return cls(
            scenario=record["scenario"],
            scheme=record["scheme"],
            experiment=record["experiment"],
            spec=record.get("spec", {}),
            metrics=record.get("metrics", {}),
            series=np.asarray(series, dtype=float) if series is not None else None,
        )


def _matches(value: str, selector) -> bool:
    if selector is None:
        return True
    if callable(selector):
        return bool(selector(value))
    if isinstance(selector, str):
        return value == selector
    return value in selector


class ResultSet:
    """Ordered collection of :class:`StudyResult` records."""

    def __init__(self, results: Iterable[StudyResult] = ()) -> None:
        self.results: list[StudyResult] = list(results)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[StudyResult]:
        return iter(self.results)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return ResultSet(self.results[index])
        return self.results[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ResultSet({len(self.results)} records)"

    # ------------------------------------------------------------------ #
    # Selection
    # ------------------------------------------------------------------ #
    def filter(
        self,
        scenario=None,
        scheme=None,
        experiment=None,
        where: Callable[[StudyResult], bool] | None = None,
    ) -> "ResultSet":
        """Select records by scenario / scheme / experiment (and a predicate).

        Each selector is a string (exact match), a collection of strings, or
        a callable over the label; ``where`` sees the whole record.
        """
        selected = [
            record
            for record in self.results
            if _matches(record.scenario, scenario)
            and _matches(record.scheme, scheme)
            and _matches(record.experiment, experiment)
            and (where is None or where(record))
        ]
        return ResultSet(selected)

    def only(self, **selectors) -> StudyResult:
        """The single record matching the selectors (raise otherwise)."""
        matches = self.filter(**selectors)
        if len(matches) != 1:
            raise ValueError(f"expected exactly one matching record, found {len(matches)}")
        return matches[0]

    def scheme_statistics(self, scenario=None) -> dict[str, MLUStatistics]:
        """Per-scheme statistics of the plain-replay records (Figure 5 style)."""
        return {
            record.scheme: record.statistics
            for record in self.filter(scenario=scenario, experiment="replay")
            if record.series is not None
        }

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def to_table(
        self,
        metrics: Sequence[str] | None = None,
        title: str | None = None,
        float_format: str = "{:.3f}",
    ) -> str:
        """Render the records as an aligned ASCII table.

        Args:
            metrics: Metric columns; defaults to the common ones present in
                at least one record, in canonical order.
            title: Optional table title.
            float_format: Format applied to float metric values.
        """
        if metrics is None:
            present = set()
            for record in self.results:
                present.update(record.metrics)
            metrics = [name for name in _DEFAULT_TABLE_METRICS if name in present]
        headers = ["scenario", "scheme", "experiment", *metrics]
        rows = []
        for record in self.results:
            row: list[object] = [record.scenario, record.scheme, record.experiment]
            for name in metrics:
                value = record.metrics.get(name)
                if isinstance(value, float):
                    row.append(float_format.format(value))
                else:
                    row.append("" if value is None else value)
            rows.append(row)
        return format_table(headers, rows, title=title)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def to_json(self, indent: int | None = 2, include_series: bool = True) -> str:
        """Serialize to JSON (spec provenance and series included)."""
        payload = {
            "format": RESULTSET_FORMAT,
            "version": RESULTSET_VERSION,
            "results": [record.to_dict(include_series=include_series) for record in self.results],
        }
        return json.dumps(payload, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ResultSet":
        """Rebuild a result set from :meth:`to_json` output."""
        payload = json.loads(text)
        if not isinstance(payload, dict) or payload.get("format") != RESULTSET_FORMAT:
            raise ValueError("not a repro study result-set document")
        if payload.get("version") != RESULTSET_VERSION:
            raise ValueError(
                f"unsupported result-set version {payload.get('version')!r} "
                f"(this build reads version {RESULTSET_VERSION})"
            )
        results = payload.get("results")
        if not isinstance(results, list):
            # A correct header with a missing/mangled body is corruption, not
            # an empty result set: silently returning zero records would make
            # a truncated file look like a study that produced nothing.
            raise ValueError(
                "corrupt result-set document: 'results' is "
                f"{type(results).__name__ if results is not None else 'missing'}, "
                "expected a list of records"
            )
        return cls(StudyResult.from_dict(record) for record in results)

    def save(self, path) -> Path:
        """Write :meth:`to_json` output to ``path`` atomically and durably.

        The document is written to a temp file in the same directory,
        flushed and fsynced, and moved into place with :func:`os.replace`
        (followed by a directory fsync), so a crash at any point leaves
        either the previous file or the complete new one -- never a
        truncated document that a later :meth:`load` (or a study resume)
        would choke on, and never a rename the filesystem quietly rolls
        back.  Parent directories are created as needed.
        """
        path = Path(path).expanduser()
        path.parent.mkdir(parents=True, exist_ok=True)
        temp = path.with_name(path.name + ".tmp")
        with open(temp, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, path)
        fsync_directory(path.parent)
        return path

    @classmethod
    def load(cls, path) -> "ResultSet":
        """Read a result set saved with :meth:`save`.

        Raises:
            ValueError: On malformed content, naming the offending path (a
                bare JSON traceback would not say *which* file is broken).
        """
        path = Path(path).expanduser()
        text = path.read_text(encoding="utf-8")
        try:
            return cls.from_json(text)
        except (json.JSONDecodeError, ValueError) as exc:
            raise ValueError(f"could not read result set {path}: {exc}") from exc


class JsonlRecordStore:
    """Crash-safe, append-only JSON-lines store of :class:`StudyResult` records.

    The shared persistence idiom of the study layer (checkpoints, the results
    warehouse): a versioned header line followed by one
    :meth:`StudyResult.to_dict` record per line.  The header is created
    atomically (temp file + :func:`os.replace` + directory fsync) and every
    record is appended as a single flushed+fsynced write, so the store is
    readable after a crash or Ctrl-C at any point:

    * a fully appended record is durable and complete;
    * a partially appended trailing record (crash mid-write) is dropped with
      a warning and the file is compacted (atomically) so later appends never
      concatenate onto the torn line;
    * anything else that fails to parse (a corrupt header, junk mid-file)
      raises the store's error class naming the path and line, because
      silently dropping finished work -- or treating foreign files as this
      store's -- would be worse than stopping.

    Subclasses pin the on-disk identity via ``_format`` / ``_version`` /
    ``_error`` and the human noun used in messages via ``_kind`` /
    ``_torn_tail_hint``.
    """

    #: On-disk format marker (subclasses must override).
    _format = ""
    #: On-disk format version (bump to invalidate existing files).
    _version = 0
    #: Error raised on corrupt / foreign / version-mismatched files.
    _error: type[ValueError] = ValueError
    #: Human name used in error and warning messages.
    _kind = "record store"
    #: Appended to the torn-tail warning (what dropping the record means).
    _torn_tail_hint = "the interrupted append must be retried"

    def __init__(self, path) -> None:
        self.path = Path(path).expanduser()

    def exists(self) -> bool:
        """Whether the checkpoint file is already on disk."""
        return self.path.exists()

    def _needs_header(self) -> bool:
        """True when appending would need the header written first.

        Covers both a missing file and a pre-existing *empty* one (e.g. a
        ``touch``-ed path): appending records without a header would leave a
        file no later :meth:`load` accepts.
        """
        try:
            return self.path.stat().st_size == 0
        except FileNotFoundError:
            return True

    def create(self) -> None:
        """Write a fresh store containing only the header (atomic)."""
        self._rewrite([])

    def _rewrite(self, records: Sequence[StudyResult]) -> None:
        """Atomically + durably replace the file with header + the records."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        temp = self.path.with_name(self.path.name + ".tmp")
        header = {"format": self._format, "version": self._version}
        with open(temp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header) + "\n")
            for record in records:
                handle.write(json.dumps(record.to_dict(include_series=True)) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, self.path)
        fsync_directory(self.path.parent)

    def append(self, record: StudyResult) -> None:
        """Append one record (one flushed+fsynced line)."""
        if self._needs_header():
            self.create()
        line = json.dumps(record.to_dict(include_series=True))
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        fsync_directory(self.path.parent)

    def extend(self, records: Iterable[StudyResult]) -> None:
        """Append several records (each its own crash-safe line)."""
        for record in records:
            self.append(record)

    def load(self) -> list[StudyResult]:
        """Read every complete record (see the class docstring for errors)."""
        text = self.path.read_text(encoding="utf-8")
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            return []
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise self._error(
                f"corrupt {self._kind} {self.path}: unreadable header ({exc})"
            ) from exc
        if not isinstance(header, dict) or header.get("format") != self._format:
            raise self._error(
                f"{self.path} is not a {self._kind} (expected a "
                f"{self._format!r} header)"
            )
        if header.get("version") != self._version:
            raise self._error(
                f"unsupported {self._kind} version {header.get('version')!r} in "
                f"{self.path} (this build reads version {self._version})"
            )
        records: list[StudyResult] = []
        torn_tail = False
        for number, line in enumerate(lines[1:], start=2):
            try:
                payload = json.loads(line)
                record = StudyResult.from_dict(payload)
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                # Only a JSON decode failure on the *last* line can be a
                # crash-truncated append; a well-formed JSON line that is
                # not a valid record (hand edit, writer bug) is corruption
                # wherever it sits -- deleting it via the torn-tail
                # compaction would silently destroy data.
                if number == len(lines) and isinstance(exc, json.JSONDecodeError):
                    warnings.warn(
                        f"{self._kind} {self.path}: dropping partially "
                        "written trailing record (interrupted mid-append); "
                        f"{self._torn_tail_hint}",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    torn_tail = True
                    break
                raise self._error(
                    f"corrupt {self._kind} {self.path}: unreadable record "
                    f"on line {number} ({exc})"
                ) from exc
            records.append(record)
        if torn_tail:
            # Compact the file so a later append starts on a clean line
            # instead of concatenating onto the torn one.
            self._rewrite(records)
        return records


class StudyCheckpoint(JsonlRecordStore):
    """Crash-safe, append-only store of finished study cells.

    A :class:`JsonlRecordStore` whose records are the finished cells of one
    study run: a fully appended record means that cell is done and will be
    skipped by :meth:`repro.study.Study.resume`; a torn trailing record is
    dropped (its cell simply re-runs); corrupt or foreign files raise a
    :class:`CheckpointError` naming the path and line.
    """

    _format = CHECKPOINT_FORMAT
    _version = CHECKPOINT_VERSION
    _error = CheckpointError
    _kind = "study checkpoint"
    _torn_tail_hint = "its cell will re-run"
