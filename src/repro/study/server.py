"""The study service: a long-lived daemon + FIFO job queue over :class:`Study`.

Every ``python -m repro.study`` invocation pays full process startup: a cold
LP cache, re-built scenarios, re-trained schemes.  :class:`StudyServer` makes
the *runner* persistent instead -- one daemon process listening on a local
Unix socket, accepting study/suite descriptors as newline-delimited JSON,
running them through a FIFO job queue, and keeping one warm process-wide
:class:`~repro.solvers.lp.OptimalMLUCache`, scenario cache, and
trained-scheme store across *all* submitted jobs.  A second client submitting
an overlapping grid triggers zero repeat LP solves and zero repeat trainings
-- the "many tenants, shared warm state" shape the ROADMAP's north star asks
for.

Protocol (one request per connection, every message one JSON object per
line):

* ``{"op": "submit", "kind": "study"|"suite", "spec": {...}}`` -- expand
  and enqueue the spec.  Optional keys: ``"checkpoint"`` (a name resolved
  under the server's spool directory, making the job cancellable *and*
  resumable), ``"resume"`` (re-submit of a cancelled/killed checkpointed
  job: finished cells load from disk), ``"warehouse"`` (path records are
  appended to; defaults to the server's ``--warehouse``).  The reply is one
  ``accepted`` message, then one ``record`` message per finished cell as it
  checkpoints -- the record payload is exactly the
  :class:`~repro.study.results.StudyCheckpoint` wire format
  (:meth:`~repro.study.results.StudyResult.to_dict`) -- then one terminal
  ``done`` / ``cancelled`` / ``failed`` message carrying the job's LP-solve
  and training counters.
* ``{"op": "status"}`` (optionally ``"job": id``) -- server uptime, warm
  cache sizes, and per-job progress.
* ``{"op": "cancel", "job": id}`` -- stop that job after its current cell
  (already-finished cells stay checkpointed, so it is resumable); cancelling
  an unknown or already-finished job is a structured error, never a crash.
* ``{"op": "ping"}`` / ``{"op": "shutdown"}`` -- liveness / graceful stop
  (the running job is cancelled cleanly, i.e. checkpointed).

Malformed request lines get a structured ``error`` reply and the daemon
keeps serving.  A client that disconnects mid-stream cancels *its own* job
only.  A stale socket file left by a killed daemon is detected (nothing
accepts connections on it) and replaced on restart; a live daemon on the
same path refuses to be shadowed.

Jobs execute through the :meth:`~repro.study.study.Study.plan` /
:meth:`~repro.study.study.Study.execute` split: the queue worker owns the
loop, streaming each record from ``on_cell`` and polling the job's cancel
flag via ``should_stop``.
"""

from __future__ import annotations

import json
import queue
import select
import socket
import threading
import time
import warnings
from collections.abc import Mapping
from pathlib import Path

from repro.evaluation.engine import EvaluationEngine
from repro.solvers.lp import OptimalMLUCache, count_lp_solves
from repro.study.results import StudyResult
from repro.study.spec import ExperimentSpec, expand_spec
from repro.study.study import Study, StudyCancelled
from repro.study.suite import expand_suite

__all__ = ["StudyServer", "PROTOCOL_VERSION"]

#: Wire protocol version, echoed in ``pong`` / ``status`` replies so clients
#: can detect a daemon speaking a different dialect.
PROTOCOL_VERSION = 1

#: Job lifecycle states (terminal: done / failed / cancelled).
QUEUED, RUNNING, DONE, FAILED, CANCELLED = (
    "queued", "running", "done", "failed", "cancelled",
)
_TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})

#: Keys a submit request may carry (anything else is a structured error --
#: a typo'd option should not be silently ignored).
_SUBMIT_KEYS = frozenset(
    {"op", "kind", "spec", "checkpoint", "resume", "warehouse"}
)


class _Job:
    """One queued/running/finished unit of work and its client stream."""

    def __init__(
        self,
        job_id: str,
        kind: str,
        cells: list[ExperimentSpec],
        checkpoint: Path | None,
        resume: bool,
        warehouse,
        stream: socket.socket | None,
    ) -> None:
        self.id = job_id
        self.kind = kind
        self.cells = cells
        self.checkpoint = checkpoint
        self.resume = resume
        self.warehouse = warehouse
        self.status = QUEUED
        self.error: str | None = None
        self.cancel_reason: str | None = None
        self.completed = 0          # records emitted (including resumed ones)
        self.total = len(cells)
        self.lp_solves: int | None = None
        self.trainings: int | None = None
        self.submitted_at = time.time()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.cancel_event = threading.Event()
        self.done_event = threading.Event()
        # The submitting client's connection; records stream to it from the
        # queue worker.  Guarded by stream_lock (the monitor thread clears it
        # on disconnect while the worker writes to it).
        self.stream = stream
        self.stream_lock = threading.Lock()

    def describe(self) -> dict:
        """The job's status payload (used by ``status`` replies)."""
        return {
            "job": self.id,
            "kind": self.kind,
            "status": self.status,
            "cells": self.total,
            "completed": self.completed,
            "checkpoint": str(self.checkpoint) if self.checkpoint else None,
            "resume": self.resume,
            "lp_solves": self.lp_solves,
            "trainings": self.trainings,
            "error": self.error,
            "cancel_reason": self.cancel_reason,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }


class StudyServer:
    """A long-lived study daemon on a local Unix socket.

    Args:
        socket_path: Path of the Unix socket to listen on.  A stale socket
            file (left by a killed daemon) is replaced; a live daemon on the
            path raises :class:`OSError`.
        warehouse: Default results warehouse path jobs append to (a job's
            own ``"warehouse"`` option overrides it; ``None`` = no
            warehouse unless the job asks for one).
        spool_dir: Directory job checkpoint names resolve under (created on
            demand).  Defaults to ``<socket_path>.spool/`` so checkpoints
            survive a daemon restart next to the socket they belong to.
        backend / lp_workers / lp_backend: Engine knobs, as in
            :class:`~repro.evaluation.engine.EvaluationEngine`.  The server
            builds ONE engine with ONE warm LP cache shared by every job.
        cell_workers: Cell process-pool width every job runs with
            (sequential by default -- the daemon's parallelism axis is the
            shared warm state, not per-job pools; cancellation is polled
            between cells either way).
    """

    def __init__(
        self,
        socket_path,
        warehouse=None,
        spool_dir=None,
        backend: str | None = None,
        lp_workers: int | str | None = None,
        lp_backend: str | None = None,
        cell_workers: int | str | None = None,
    ) -> None:
        self.socket_path = Path(socket_path).expanduser()
        self.spool_dir = (
            Path(spool_dir).expanduser()
            if spool_dir is not None
            else self.socket_path.with_name(self.socket_path.name + ".spool")
        )
        self.default_warehouse = warehouse
        self.cell_workers = cell_workers
        # One warm engine for every job: the LP cache, and the scenario /
        # trained-scheme dicts below, ARE the service -- they make a second
        # client's overlapping grid free.
        self.engine = EvaluationEngine(
            cache=OptimalMLUCache(),
            lp_workers=lp_workers,
            backend=backend,
            lp_backend=lp_backend,
        )
        self._scheme_cache: dict = {}
        self._scenario_cache: dict = {}
        self._jobs: dict[str, _Job] = {}
        self._queue: queue.Queue[_Job] = queue.Queue()
        self._lock = threading.Lock()
        self._stopping = threading.Event()
        self._sock: socket.socket | None = None
        self._worker: threading.Thread | None = None
        self._job_counter = 0
        self._started_at = time.time()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def _bind(self) -> None:
        """Bind the listening socket, replacing a stale socket file.

        A socket file with nothing listening behind it (daemon killed with
        SIGKILL, machine reboot) would otherwise make every restart fail
        with ``Address already in use``; one with a live daemon must win --
        silently stealing its clients would be worse than refusing to start.
        """
        if self.socket_path.exists():
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            probe.settimeout(0.5)
            try:
                probe.connect(str(self.socket_path))
            except OSError:
                # Nothing accepting: a stale file from a dead daemon.
                self.socket_path.unlink(missing_ok=True)
            else:
                probe.close()
                raise OSError(
                    f"a study daemon is already listening on {self.socket_path}; "
                    "stop it first (or serve on a different --socket path)"
                )
            finally:
                probe.close()
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.bind(str(self.socket_path))
        sock.listen(16)
        # A timeout makes accept() poll the stop flag: closing a listening
        # socket from another thread does NOT wake a blocked accept() on
        # Linux, so a plain blocking accept would hang serve_forever past
        # stop().  (Accepted connections come back in blocking mode.)
        sock.settimeout(0.2)
        self._sock = sock

    def serve_forever(self, ready: threading.Event | None = None) -> None:
        """Bind, start the queue worker, and accept clients until stopped.

        Args:
            ready: Optional event set once the socket is listening (tests
                and the CLI use it to print/await readiness without racing
                the bind).
        """
        self._bind()
        self._worker = threading.Thread(
            target=self._worker_loop, name="study-server-worker", daemon=True
        )
        self._worker.start()
        if ready is not None:
            ready.set()
        try:
            while not self._stopping.is_set():
                try:
                    conn, _ = self._sock.accept()
                except TimeoutError:
                    continue
                except OSError:
                    # stop() closed the listening socket under us.
                    break
                threading.Thread(
                    target=self._serve_connection, args=(conn,), daemon=True
                ).start()
        finally:
            # Let the worker finish (and checkpoint) the current cell, then
            # remove the socket file so the next start needs no stale-file
            # recovery.
            if self._worker is not None:
                self._worker.join()
            self.socket_path.unlink(missing_ok=True)

    def stop(self) -> None:
        """Gracefully stop: cancel running/queued jobs, close the socket.

        Safe to call from any thread (the CLI's SIGTERM/SIGINT handlers call
        it).  The running job stops after its current cell with everything
        finished so far checkpointed, so a ``SIGTERM``-ed daemon's jobs are
        resumable by re-submitting with ``"resume": true``.
        """
        if self._stopping.is_set():
            return
        self._stopping.set()
        with self._lock:
            jobs = list(self._jobs.values())
        for job in jobs:
            if job.status in (QUEUED, RUNNING):
                self._request_cancel(job, "server shutting down")
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close() on a dead socket
                pass

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    def _send(self, conn: socket.socket, payload: dict) -> bool:
        try:
            conn.sendall((json.dumps(payload) + "\n").encode("utf-8"))
            return True
        except OSError:
            return False

    def _serve_connection(self, conn: socket.socket) -> None:
        """Handle one client connection (one request, one reply stream)."""
        try:
            with conn:
                reader = conn.makefile("rb")
                line = reader.readline()
                if not line.strip():
                    return  # client connected and left (a ready-probe)
                try:
                    request = json.loads(line.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    self._send(
                        conn,
                        {"type": "error", "error": f"malformed request line: {exc}"},
                    )
                    return
                if not isinstance(request, Mapping):
                    self._send(
                        conn,
                        {
                            "type": "error",
                            "error": "a request must be a JSON object with an 'op' key, "
                            f"got {type(request).__name__}",
                        },
                    )
                    return
                op = request.get("op")
                if op == "submit":
                    self._handle_submit(conn, request)
                elif op == "status":
                    self._handle_status(conn, request)
                elif op == "cancel":
                    self._handle_cancel(conn, request)
                elif op == "ping":
                    self._send(
                        conn,
                        {
                            "type": "pong",
                            "protocol": PROTOCOL_VERSION,
                            "uptime_seconds": time.time() - self._started_at,
                        },
                    )
                elif op == "shutdown":
                    self._send(conn, {"type": "shutting_down"})
                    self.stop()
                else:
                    self._send(
                        conn,
                        {
                            "type": "error",
                            "error": f"unknown op {op!r}; expected one of "
                            "submit/status/cancel/ping/shutdown",
                        },
                    )
        except Exception as exc:  # pragma: no cover - belt and braces
            # A handler bug must never take the daemon down with it.
            warnings.warn(
                f"study server connection handler failed: {exc!r}",
                RuntimeWarning,
                stacklevel=2,
            )

    def _error(self, conn: socket.socket, message: str) -> None:
        self._send(conn, {"type": "error", "error": message})

    def _handle_submit(self, conn: socket.socket, request: Mapping) -> None:
        unknown = set(request) - _SUBMIT_KEYS
        if unknown:
            self._error(
                conn,
                f"unknown submit key(s) {sorted(unknown)}; allowed: "
                f"{sorted(_SUBMIT_KEYS - {'op'})}",
            )
            return
        kind = request.get("kind", "study")
        if kind not in ("study", "suite"):
            self._error(conn, f"kind must be 'study' or 'suite', got {kind!r}")
            return
        spec = request.get("spec")
        if not isinstance(spec, Mapping):
            self._error(
                conn,
                "submit needs a JSON object under 'spec' (a study spec or a "
                f"suite descriptor), got {type(spec).__name__}",
            )
            return
        try:
            if kind == "suite":
                cells = expand_suite(spec)
            else:
                cells = [
                    ExperimentSpec.from_dict(cell) for cell in expand_spec(spec)
                ]
        except (TypeError, ValueError) as exc:
            self._error(conn, f"invalid {kind} spec: {exc}")
            return
        checkpoint_name = request.get("checkpoint")
        checkpoint: Path | None = None
        if checkpoint_name is not None:
            if not isinstance(checkpoint_name, str) or not checkpoint_name:
                self._error(
                    conn,
                    "'checkpoint' must be a non-empty name (resolved under "
                    f"the server spool directory), got {checkpoint_name!r}",
                )
                return
            checkpoint = Path(checkpoint_name)
            if not checkpoint.is_absolute():
                checkpoint = self.spool_dir / checkpoint
        resume = request.get("resume", False)
        if not isinstance(resume, bool):
            self._error(conn, f"'resume' must be a boolean, got {resume!r}")
            return
        if resume and checkpoint is None:
            self._error(
                conn,
                "'resume': true needs a 'checkpoint' name (the one the "
                "cancelled/killed job ran with)",
            )
            return
        warehouse = request.get("warehouse", self.default_warehouse)
        with self._lock:
            if self._stopping.is_set():
                self._error(conn, "the study daemon is shutting down")
                return
            self._job_counter += 1
            job = _Job(
                job_id=f"job-{self._job_counter:04d}",
                kind=kind,
                cells=cells,
                checkpoint=checkpoint,
                resume=resume,
                warehouse=warehouse,
                stream=conn,
            )
            self._jobs[job.id] = job
            position = self._queue.qsize()
        if not self._send(
            conn,
            {
                "type": "accepted",
                "job": job.id,
                "kind": kind,
                "cells": job.total,
                "queued_ahead": position,
            },
        ):
            return  # client vanished before the ack; never enqueue its work
        self._queue.put(job)
        self._monitor_stream(conn, job)

    def _monitor_stream(self, conn: socket.socket, job: _Job) -> None:
        """Keep the submit connection open; a client hang-up cancels its job.

        The client sends nothing after the request line, so any readable
        data is either junk (ignored) or EOF -- and EOF means the client
        stopped caring about this job's results.  Cancelling *only that job*
        keeps an abandoned 10k-cell grid from hogging the FIFO queue while
        other tenants wait.
        """
        while not job.done_event.wait(timeout=0.05):
            try:
                readable, _, _ = select.select([conn], [], [], 0.2)
            except OSError:
                readable = [conn]
            if not readable:
                continue
            try:
                data = conn.recv(4096)
            except OSError:
                data = b""
            if data:
                continue  # stray bytes; the protocol is one request per conn
            with job.stream_lock:
                job.stream = None
            if job.status not in _TERMINAL_STATES:
                self._request_cancel(job, "client disconnected mid-stream")
            return

    def _handle_status(self, conn: socket.socket, request: Mapping) -> None:
        job_id = request.get("job")
        with self._lock:
            if job_id is not None:
                job = self._jobs.get(job_id)
                if job is None:
                    self._error(conn, f"unknown job {job_id!r}")
                    return
                jobs = [job.describe()]
            else:
                jobs = [job.describe() for job in self._jobs.values()]
        self._send(
            conn,
            {
                "type": "status",
                "protocol": PROTOCOL_VERSION,
                "uptime_seconds": time.time() - self._started_at,
                "warm": {
                    "lp_cache_entries": len(self.engine.cache),
                    "trained_schemes": len(self._scheme_cache),
                    "scenarios": len(self._scenario_cache),
                },
                "jobs": jobs,
            },
        )

    def _request_cancel(self, job: _Job, reason: str) -> bool:
        """Flag a job for cancellation (idempotent; returns False if late)."""
        with self._lock:
            if job.status in _TERMINAL_STATES or job.cancel_event.is_set():
                return False
            job.cancel_reason = reason
            job.cancel_event.set()
            queued = job.status == QUEUED
            if queued:
                # Mark immediately: the worker may be busy for a long time,
                # and a queued job needs no cell-boundary to stop at.
                job.status = CANCELLED
                job.finished_at = time.time()
        if queued:
            self._emit(
                job,
                {
                    "type": "cancelled",
                    "job": job.id,
                    "completed": job.completed,
                    "total": job.total,
                    "reason": reason,
                },
            )
            job.done_event.set()
        return True

    def _handle_cancel(self, conn: socket.socket, request: Mapping) -> None:
        job_id = request.get("job")
        if not isinstance(job_id, str) or not job_id:
            self._error(conn, "cancel needs a 'job' id string")
            return
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            self._error(conn, f"unknown job {job_id!r}")
            return
        if job.status in _TERMINAL_STATES:
            self._error(conn, f"job {job_id} already {job.status}")
            return
        if not self._request_cancel(job, "cancelled by client"):
            # Lost the race with another cancel (or the job finishing).
            self._error(
                conn,
                f"job {job_id} is already being cancelled"
                if job.status not in _TERMINAL_STATES
                else f"job {job_id} already {job.status}",
            )
            return
        self._send(
            conn,
            {
                "type": "cancelling" if job.status == RUNNING else "cancelled",
                "job": job.id,
                "status": job.status,
            },
        )

    # ------------------------------------------------------------------ #
    # Job execution (the FIFO queue worker)
    # ------------------------------------------------------------------ #
    def _emit(self, job: _Job, payload: dict) -> None:
        """Stream one message to the job's submitting client (if still there).

        A failed write means the client went away: the stream is dropped and
        the job cancelled (the monitor thread usually notices EOF first; this
        is the belt-and-braces path for an abrupt teardown).
        """
        with job.stream_lock:
            stream = job.stream
            if stream is None:
                return
            try:
                stream.sendall((json.dumps(payload) + "\n").encode("utf-8"))
                return
            except OSError:
                job.stream = None
        if job.status not in _TERMINAL_STATES:
            self._request_cancel(job, "client disconnected mid-stream")

    def _worker_loop(self) -> None:
        while True:
            try:
                job = self._queue.get(timeout=0.1)
            except queue.Empty:
                if self._stopping.is_set():
                    return
                continue
            if job.status == CANCELLED:
                continue  # cancelled while queued; already told the client
            self._run_job(job)
            if self._stopping.is_set() and self._queue.empty():
                return

    def _run_job(self, job: _Job) -> None:
        with self._lock:
            job.status = RUNNING
            job.started_at = time.time()
        schemes_before = set(self._scheme_cache)
        study = Study(
            job.cells,
            scheme_cache=self._scheme_cache,
            scenario_cache=self._scenario_cache,
        )

        def on_cell(index: int, record: StudyResult) -> None:
            job.completed += 1
            self._emit(
                job,
                {
                    "type": "record",
                    "job": job.id,
                    "index": index,
                    "completed": job.completed,
                    "total": job.total,
                    "record": record.to_dict(include_series=True),
                },
            )

        terminal: dict | None = None
        try:
            with count_lp_solves() as tally:
                plan = study.plan(
                    engine=self.engine,
                    checkpoint=job.checkpoint,
                    cell_workers=self.cell_workers,
                    warehouse=job.warehouse,
                    resume=job.resume,
                )
                # Cells loaded from a resumed checkpoint count as completed
                # work the client never has to wait for; stream them too so
                # a resumed submit still receives the full record set.
                for index in sorted(plan.completed):
                    on_cell(index, plan.completed[index])
                results = study.execute(
                    plan, on_cell=on_cell, should_stop=job.cancel_event.is_set
                )
        except StudyCancelled:
            status = CANCELLED
            terminal = {
                "type": "cancelled",
                "job": job.id,
                "completed": job.completed,
                "total": job.total,
                "reason": job.cancel_reason or "cancelled",
            }
        except Exception as exc:
            status = FAILED
            job.error = f"{type(exc).__name__}: {exc}"
            terminal = {"type": "failed", "job": job.id, "error": job.error}
        else:
            status = DONE
            terminal = {
                "type": "done",
                "job": job.id,
                "records": len(results),
                "lp_solves": tally.count,
                "trainings": len(set(self._scheme_cache) - schemes_before),
                "wall_seconds": time.time() - job.started_at,
            }
        with self._lock:
            job.status = status
            job.finished_at = time.time()
            job.lp_solves = tally.count
            job.trainings = len(set(self._scheme_cache) - schemes_before)
        self._emit(job, terminal)
        job.done_event.set()
