"""Run a declarative study from the command line.

Usage::

    python -m repro.study spec.json [--out results.json] [--backend numpy]
                                    [--lp-workers auto] [--cell-workers 4]
                                    [--lp-backend highs]
                                    [--checkpoint run.ckpt [--resume]]
    python -m repro.study --list-scenarios
    python -m repro.study --list-schemes

The spec file is a JSON study spec (sweep axes spelled ``{"sweep": [...]}``);
the run prints the result table and optionally writes the full
:class:`~repro.study.results.ResultSet` (spec provenance + series) to
``--out``.

Crash recovery: with ``--checkpoint`` every finished cell is appended to the
given file as it completes, and re-running the same command with ``--resume``
added skips the finished cells and completes the remainder -- so a killed
200-cell grid restarts where it died instead of from scratch.
"""

from __future__ import annotations

import argparse
import json
import sys


def _workers_type(value: str):
    """Shared ``type=`` parser for ``--lp-workers`` / ``--cell-workers``.

    Turns bad input into a clean ``parser.error`` line instead of the raw
    ``ValueError`` traceback ``int(...)`` used to produce.  The accepted
    forms live in one place -- :func:`repro.solvers.lp.resolve_lp_workers`
    validates here too, so the CLI can never drift from the library layer.
    """
    from repro.solvers.lp import resolve_lp_workers

    try:
        workers = value if value == "auto" else int(value)
        resolve_lp_workers(workers)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected 'auto' or a positive integer, got {value!r}"
        ) from None
    return workers


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.study",
        description="Expand and run a declarative experiment-study spec.",
    )
    parser.add_argument("spec", nargs="?", help="path to a JSON study spec")
    parser.add_argument("--out", help="write the full ResultSet JSON here")
    parser.add_argument("--backend", help="array backend for the replay hot path")
    parser.add_argument(
        "--lp-workers",
        default=None,
        type=_workers_type,
        metavar="N",
        help="LP process-pool width for cold normaliser batches ('auto' or a positive int)",
    )
    parser.add_argument(
        "--cell-workers",
        default=None,
        type=_workers_type,
        metavar="N",
        help="process-pool width for cell-level parallelism ('auto' or a positive int)",
    )
    parser.add_argument(
        "--lp-backend",
        default=None,
        metavar="NAME",
        help=(
            "LP solver backend for the omniscient normalisers ('scipy', "
            "'highs', or 'auto'; default: the REPRO_LP_BACKEND environment "
            "variable, scipy if unset)"
        ),
    )
    parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="append every finished cell to this crash-safe checkpoint file",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip cells already in --checkpoint and run only the remainder",
    )
    parser.add_argument(
        "--list-scenarios", action="store_true", help="print registered scenarios and exit"
    )
    parser.add_argument(
        "--list-schemes", action="store_true", help="print registered scheme kinds and exit"
    )
    args = parser.parse_args(argv)

    if args.list_scenarios:
        from repro.datasets import available_scenarios

        print("\n".join(available_scenarios()))
        return 0
    if args.list_schemes:
        from repro.study.spec import available_schemes

        print("\n".join(available_schemes()))
        return 0
    if not args.spec:
        parser.error("a spec file is required (or --list-scenarios / --list-schemes)")
    if args.resume and not args.checkpoint:
        parser.error("--resume requires --checkpoint (the file to resume from)")

    from repro.study.results import CheckpointError, StudyCheckpoint
    from repro.study.study import Study

    if args.checkpoint and not args.resume and StudyCheckpoint(args.checkpoint).exists():
        parser.error(
            f"checkpoint {args.checkpoint} already exists; pass --resume to "
            "continue it, or remove the file to start over"
        )

    with open(args.spec, encoding="utf-8") as handle:
        spec = json.load(handle)
    study = Study(spec)
    run_kwargs = dict(
        backend=args.backend,
        lp_workers=args.lp_workers,
        cell_workers=args.cell_workers,
        lp_backend=args.lp_backend,
    )
    if args.resume:
        print(f"Resuming {len(study)} experiment cell(s) from {args.checkpoint} ...")
        try:
            results = study.resume(args.checkpoint, **run_kwargs)
        except CheckpointError as exc:
            # A corrupt/foreign checkpoint is one clean line, not a
            # traceback; cell failures still traceback as usual.
            parser.error(str(exc))
    else:
        print(f"Running {len(study)} experiment cell(s) ...")
        results = study.run(checkpoint=args.checkpoint, **run_kwargs)
    print(results.to_table(title=f"Study results ({args.spec})"))
    if args.out:
        path = results.save(args.out)
        print(f"\nWrote {len(results)} records to {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
