"""Run a declarative study from the command line.

Usage::

    python -m repro.study spec.json [--out results.json] [--backend numpy]
    python -m repro.study --list-scenarios
    python -m repro.study --list-schemes

The spec file is a JSON study spec (sweep axes spelled ``{"sweep": [...]}``);
the run prints the result table and optionally writes the full
:class:`~repro.study.results.ResultSet` (spec provenance + series) to
``--out``.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.study.spec import available_schemes
from repro.study.study import Study


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.study",
        description="Expand and run a declarative experiment-study spec.",
    )
    parser.add_argument("spec", nargs="?", help="path to a JSON study spec")
    parser.add_argument("--out", help="write the full ResultSet JSON here")
    parser.add_argument("--backend", help="array backend for the replay hot path")
    parser.add_argument(
        "--lp-workers",
        default=None,
        help="LP process-pool width for cold normaliser batches ('auto' or an int)",
    )
    parser.add_argument(
        "--list-scenarios", action="store_true", help="print registered scenarios and exit"
    )
    parser.add_argument(
        "--list-schemes", action="store_true", help="print registered scheme kinds and exit"
    )
    args = parser.parse_args(argv)

    if args.list_scenarios:
        from repro.datasets import available_scenarios

        print("\n".join(available_scenarios()))
        return 0
    if args.list_schemes:
        print("\n".join(available_schemes()))
        return 0
    if not args.spec:
        parser.error("a spec file is required (or --list-scenarios / --list-schemes)")

    with open(args.spec, encoding="utf-8") as handle:
        spec = json.load(handle)
    lp_workers = args.lp_workers
    if lp_workers is not None and lp_workers != "auto":
        lp_workers = int(lp_workers)
    study = Study(spec)
    print(f"Running {len(study)} experiment cell(s) ...")
    results = study.run(backend=args.backend, lp_workers=lp_workers)
    print(results.to_table(title=f"Study results ({args.spec})"))
    if args.out:
        path = results.save(args.out)
        print(f"\nWrote {len(results)} records to {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
