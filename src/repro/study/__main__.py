"""Run declarative studies and suites from the command line.

Usage::

    python -m repro.study spec.json [--out results.json] [--backend numpy]
                                    [--lp-workers auto] [--cell-workers 4]
                                    [--lp-backend highs] [--warehouse wh.jsonl]
                                    [--checkpoint run.ckpt [--resume]]
    python -m repro.study suite suite.json --warehouse wh.jsonl
                                    [--checkpoint run.ckpt [--resume]] [...]
    python -m repro.study query wh.jsonl [--suite S] [--study T] [--seed N]
                                    [--scenario X] [--scheme Y] [--group-by cols]
    python -m repro.study export wh.jsonl out.csv [same filters as query]
    python -m repro.study --list-scenarios
    python -m repro.study --list-schemes

The first form runs one study spec (sweep axes spelled ``{"sweep": [...]}``),
prints the result table, and optionally writes the full
:class:`~repro.study.results.ResultSet` to ``--out``.  The ``suite`` form
runs a whole suite descriptor (studies x seeds x repetitions, see
:mod:`repro.study.suite`) appending every finished cell to the given
warehouse; ``query`` aggregates a warehouse (mean +/- confidence half-width
over repetitions, pooled percentile columns) and ``export`` writes the
``run_table``-style flat CSV.

Crash recovery: with ``--checkpoint`` every finished cell is appended to the
given file as it completes, and re-running the same command with ``--resume``
added skips the finished cells and completes the remainder -- so a killed
200-cell suite restarts where it died instead of from scratch, with its
warehouse reconciled (no lost or duplicated records).
"""

from __future__ import annotations

import argparse
import json
import sys


def _workers_type(value: str):
    """Shared ``type=`` parser for ``--lp-workers`` / ``--cell-workers``.

    Turns bad input into a clean ``parser.error`` line instead of the raw
    ``ValueError`` traceback ``int(...)`` used to produce.  The accepted
    forms live in one place -- :func:`repro.solvers.lp.resolve_lp_workers`
    validates here too, so the CLI can never drift from the library layer.
    """
    from repro.solvers.lp import resolve_lp_workers

    try:
        workers = value if value == "auto" else int(value)
        resolve_lp_workers(workers)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected 'auto' or a positive integer, got {value!r}"
        ) from None
    return workers


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    """The execution knobs shared by the study and suite runners."""
    parser.add_argument("--backend", help="array backend for the replay hot path")
    parser.add_argument(
        "--lp-workers",
        default=None,
        type=_workers_type,
        metavar="N",
        help="LP process-pool width for cold normaliser batches ('auto' or a positive int)",
    )
    parser.add_argument(
        "--cell-workers",
        default=None,
        type=_workers_type,
        metavar="N",
        help="process-pool width for cell-level parallelism ('auto' or a positive int)",
    )
    parser.add_argument(
        "--lp-backend",
        default=None,
        metavar="NAME",
        help=(
            "LP solver backend for the omniscient normalisers ('scipy', "
            "'highs', or 'auto'; default: the REPRO_LP_BACKEND environment "
            "variable, scipy if unset)"
        ),
    )
    parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="append every finished cell to this crash-safe checkpoint file",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip cells already in --checkpoint and run only the remainder",
    )
    parser.add_argument(
        "--warehouse",
        metavar="PATH",
        help="append every finished cell to this durable results warehouse",
    )


def _run_kwargs(args) -> dict:
    return dict(
        backend=args.backend,
        lp_workers=args.lp_workers,
        cell_workers=args.cell_workers,
        lp_backend=args.lp_backend,
        warehouse=args.warehouse,
    )


def _check_run_flags(parser: argparse.ArgumentParser, args) -> None:
    from repro.study.results import StudyCheckpoint

    if args.resume and not args.checkpoint:
        parser.error("--resume requires --checkpoint (the file to resume from)")
    if args.checkpoint and not args.resume and StudyCheckpoint(args.checkpoint).exists():
        parser.error(
            f"checkpoint {args.checkpoint} already exists; pass --resume to "
            "continue it, or remove the file to start over"
        )


def _add_query_filters(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scenario", help="filter: scenario display name")
    parser.add_argument("--scheme", help="filter: scheme display name")
    parser.add_argument(
        "--experiment", help="filter: experiment kind (replay/fluctuation/failure/drift)"
    )
    parser.add_argument("--suite", help="filter: suite name tag")
    parser.add_argument("--study", help="filter: study name tag")
    parser.add_argument("--seed", type=int, help="filter: suite seed tag")
    parser.add_argument("--repetition", type=int, help="filter: repetition tag")


def _queried(parser: argparse.ArgumentParser, args):
    """Open the warehouse and apply the shared filters (clean CLI errors)."""
    from repro.study.warehouse import ResultWarehouse, WarehouseError

    store = ResultWarehouse(args.warehouse)
    if not store.exists():
        parser.error(f"no results warehouse at {args.warehouse}")
    try:
        results = store.query(
            scenario=args.scenario,
            scheme=args.scheme,
            experiment=args.experiment,
            suite=args.suite,
            study=args.study,
            seed=args.seed,
            repetition=args.repetition,
        )
    except WarehouseError as exc:
        parser.error(str(exc))
    return store, results


def _cmd_suite(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.study suite",
        description=(
            "Run a suite descriptor (studies x seeds x repetitions) into a "
            "results warehouse."
        ),
    )
    parser.add_argument("descriptor", help="path to a JSON suite descriptor")
    parser.add_argument("--out", help="write the full ResultSet JSON here")
    _add_run_options(parser)
    args = parser.parse_args(argv)
    _check_run_flags(parser, args)

    from repro.study.results import CheckpointError
    from repro.study.suite import Suite

    with open(args.descriptor, encoding="utf-8") as handle:
        descriptor = json.load(handle)
    try:
        suite = Suite(descriptor)
    except ValueError as exc:
        parser.error(str(exc))
    run_kwargs = _run_kwargs(args)
    if args.resume:
        print(
            f"Resuming suite {suite.name!r}: {len(suite)} cell(s) from "
            f"{args.checkpoint} ..."
        )
        try:
            results = suite.resume(args.checkpoint, **run_kwargs)
        except CheckpointError as exc:
            parser.error(str(exc))
    else:
        print(f"Running suite {suite.name!r}: {len(suite)} experiment cell(s) ...")
        results = suite.run(checkpoint=args.checkpoint, **run_kwargs)
    print(results.to_table(title=f"Suite results ({suite.name})"))
    if args.warehouse:
        print(f"\nWarehoused {len(results)} record(s) in {args.warehouse}")
    if args.out:
        path = results.save(args.out)
        print(f"Wrote {len(results)} records to {path}")
    return 0


def _cmd_query(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.study query",
        description=(
            "Filter and aggregate a results warehouse: mean +/- confidence "
            "half-width over the grouped records, percentile columns "
            "recomputed from the pooled stored series."
        ),
    )
    parser.add_argument("warehouse", help="path to a results warehouse (JSONL)")
    _add_query_filters(parser)
    parser.add_argument(
        "--group-by",
        default="scenario,scheme,experiment",
        metavar="COLS",
        help=(
            "comma-separated group columns (record attributes scenario/"
            "scheme/experiment and tag keys suite/study/seed/repetition mix "
            "freely; default: %(default)s)"
        ),
    )
    parser.add_argument(
        "--metric",
        default="mean",
        help="per-record metric aggregated as mean +/- half-width (default: %(default)s)",
    )
    parser.add_argument(
        "--confidence",
        type=float,
        default=0.95,
        help="two-sided confidence level of the half-width (default: %(default)s)",
    )
    parser.add_argument(
        "--json", action="store_true", help="print the aggregate rows as JSON"
    )
    args = parser.parse_args(argv)
    if not 0.0 < args.confidence < 1.0:
        parser.error(f"--confidence must be in (0, 1), got {args.confidence}")
    store, results = _queried(parser, args)
    group_by = [column.strip() for column in args.group_by.split(",") if column.strip()]
    if not group_by:
        parser.error("--group-by needs at least one column")
    rows = store.aggregate(
        results, group_by=group_by, metric=args.metric, confidence=args.confidence
    )
    if args.json:
        print(json.dumps(rows, indent=2))
        return 0
    print(f"{len(results)} record(s) match")
    print(
        store.aggregate_table(
            results,
            group_by=group_by,
            metric=args.metric,
            confidence=args.confidence,
            title=f"Warehouse aggregate ({args.warehouse})",
        )
    )
    return 0


def _cmd_export(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.study export",
        description=(
            "Export a results warehouse as a run_table-style flat CSV: one "
            "row per record, provenance columns + every metric column."
        ),
    )
    parser.add_argument("warehouse", help="path to a results warehouse (JSONL)")
    parser.add_argument("csv", help="output CSV path")
    _add_query_filters(parser)
    args = parser.parse_args(argv)
    store, results = _queried(parser, args)
    count = store.export_csv(args.csv, results)
    print(f"Wrote {count} row(s) to {args.csv}")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    # Subcommand dispatch keeps the original `python -m repro.study spec.json`
    # form working verbatim (a spec file literally named `suite` would need
    # `./suite`).
    if argv[:1] == ["suite"]:
        return _cmd_suite(argv[1:])
    if argv[:1] == ["query"]:
        return _cmd_query(argv[1:])
    if argv[:1] == ["export"]:
        return _cmd_export(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro.study",
        description=(
            "Expand and run a declarative experiment-study spec "
            "(subcommands: suite, query, export)."
        ),
    )
    parser.add_argument("spec", nargs="?", help="path to a JSON study spec")
    parser.add_argument("--out", help="write the full ResultSet JSON here")
    _add_run_options(parser)
    parser.add_argument(
        "--list-scenarios", action="store_true", help="print registered scenarios and exit"
    )
    parser.add_argument(
        "--list-schemes", action="store_true", help="print registered scheme kinds and exit"
    )
    args = parser.parse_args(argv)

    if args.list_scenarios:
        from repro.datasets import available_scenarios

        print("\n".join(available_scenarios()))
        return 0
    if args.list_schemes:
        from repro.study.spec import available_schemes

        print("\n".join(available_schemes()))
        return 0
    if not args.spec:
        parser.error("a spec file is required (or --list-scenarios / --list-schemes)")
    _check_run_flags(parser, args)

    from repro.study.results import CheckpointError
    from repro.study.study import Study

    with open(args.spec, encoding="utf-8") as handle:
        spec = json.load(handle)
    study = Study(spec)
    run_kwargs = _run_kwargs(args)
    if args.resume:
        print(f"Resuming {len(study)} experiment cell(s) from {args.checkpoint} ...")
        try:
            results = study.resume(args.checkpoint, **run_kwargs)
        except CheckpointError as exc:
            # A corrupt/foreign checkpoint is one clean line, not a
            # traceback; cell failures still traceback as usual.
            parser.error(str(exc))
    else:
        print(f"Running {len(study)} experiment cell(s) ...")
        results = study.run(checkpoint=args.checkpoint, **run_kwargs)
    print(results.to_table(title=f"Study results ({args.spec})"))
    if args.out:
        path = results.save(args.out)
        print(f"\nWrote {len(results)} records to {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
