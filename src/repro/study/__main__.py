"""Run declarative studies and suites from the command line.

Usage::

    python -m repro.study spec.json [--out results.json] [--backend numpy]
                                    [--lp-workers auto] [--cell-workers 4]
                                    [--lp-backend highs] [--warehouse wh.jsonl]
                                    [--checkpoint run.ckpt [--resume]]
    python -m repro.study suite suite.json --warehouse wh.jsonl
                                    [--checkpoint run.ckpt [--resume]] [...]
    python -m repro.study query wh.jsonl [--suite S] [--study T] [--seed N]
                                    [--scenario X] [--scheme Y] [--group-by cols]
    python -m repro.study export wh.jsonl out.csv [same filters as query]
    python -m repro.study serve --socket /tmp/repro.sock [--warehouse wh.jsonl]
                                    [--spool-dir DIR] [run knobs]
    python -m repro.study submit spec.json --socket /tmp/repro.sock [--suite]
                                    [--checkpoint NAME [--resume]]
                                    [--warehouse wh.jsonl] [--out results.json]
    python -m repro.study status --socket /tmp/repro.sock [--job JOB]
    python -m repro.study cancel JOB --socket /tmp/repro.sock
    python -m repro.study --list-scenarios
    python -m repro.study --list-schemes

The first form runs one study spec (sweep axes spelled ``{"sweep": [...]}``),
prints the result table, and optionally writes the full
:class:`~repro.study.results.ResultSet` to ``--out``.  The ``suite`` form
runs a whole suite descriptor (studies x seeds x repetitions, see
:mod:`repro.study.suite`) appending every finished cell to the given
warehouse; ``query`` aggregates a warehouse (mean +/- confidence half-width
over repetitions, pooled percentile columns) and ``export`` writes the
``run_table``-style flat CSV.

Crash recovery: with ``--checkpoint`` every finished cell is appended to the
given file as it completes, and re-running the same command with ``--resume``
added skips the finished cells and completes the remainder -- so a killed
200-cell suite restarts where it died instead of from scratch, with its
warehouse reconciled (no lost or duplicated records).

The ``serve`` form starts the long-lived study daemon
(:mod:`repro.study.server`): one warm LP cache, scenario cache, and
trained-scheme store shared across every job any client submits.
``submit`` sends a spec (or, with ``--suite``, a suite descriptor) to a
running daemon and streams per-cell records back as they finish;
``status`` / ``cancel`` inspect and stop queued or running jobs (cancelled
jobs stay checkpointed and resumable via ``submit --resume``).
"""

from __future__ import annotations

import argparse
import json
import sys


def _workers_type(value: str):
    """Shared ``type=`` parser for ``--lp-workers`` / ``--cell-workers``.

    Turns bad input into a clean ``parser.error`` line instead of the raw
    ``ValueError`` traceback ``int(...)`` used to produce.  The accepted
    forms live in one place -- :func:`repro.solvers.lp.resolve_lp_workers`
    validates here too, so the CLI can never drift from the library layer.
    """
    from repro.solvers.lp import resolve_lp_workers

    try:
        workers = value if value == "auto" else int(value)
        resolve_lp_workers(workers)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected 'auto' or a positive integer, got {value!r}"
        ) from None
    return workers


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    """The execution knobs shared by the study and suite runners."""
    parser.add_argument("--backend", help="array backend for the replay hot path")
    parser.add_argument(
        "--lp-workers",
        default=None,
        type=_workers_type,
        metavar="N",
        help="LP process-pool width for cold normaliser batches ('auto' or a positive int)",
    )
    parser.add_argument(
        "--cell-workers",
        default=None,
        type=_workers_type,
        metavar="N",
        help="process-pool width for cell-level parallelism ('auto' or a positive int)",
    )
    parser.add_argument(
        "--lp-backend",
        default=None,
        metavar="NAME",
        help=(
            "LP solver backend for the omniscient normalisers ('scipy', "
            "'highs', or 'auto'; default: the REPRO_LP_BACKEND environment "
            "variable, scipy if unset)"
        ),
    )
    parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="append every finished cell to this crash-safe checkpoint file",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip cells already in --checkpoint and run only the remainder",
    )
    parser.add_argument(
        "--warehouse",
        metavar="PATH",
        help="append every finished cell to this durable results warehouse",
    )


def _run_kwargs(args) -> dict:
    return dict(
        backend=args.backend,
        lp_workers=args.lp_workers,
        cell_workers=args.cell_workers,
        lp_backend=args.lp_backend,
        warehouse=args.warehouse,
    )


def _check_run_flags(parser: argparse.ArgumentParser, args) -> None:
    from repro.study.results import StudyCheckpoint

    if args.resume and not args.checkpoint:
        parser.error("--resume requires --checkpoint (the file to resume from)")
    if args.checkpoint and not args.resume and StudyCheckpoint(args.checkpoint).exists():
        parser.error(
            f"checkpoint {args.checkpoint} already exists; pass --resume to "
            "continue it, or remove the file to start over"
        )


def _load_json_file(parser: argparse.ArgumentParser, path: str, what: str) -> dict:
    """Read a JSON file with CLI-grade errors.

    A missing spec file or a syntax error in it is operator input, so it
    exits via ``parser.error`` like every other bad argument -- not an
    ``OSError`` / ``JSONDecodeError`` traceback.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except OSError as exc:
        parser.error(f"cannot read {what} {path}: {exc.strerror or exc}")
    except json.JSONDecodeError as exc:
        parser.error(f"{what} {path} is not valid JSON: {exc}")


def _socket_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--socket",
        required=True,
        metavar="PATH",
        help="Unix socket path of the study daemon",
    )


def _add_query_filters(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scenario", help="filter: scenario display name")
    parser.add_argument("--scheme", help="filter: scheme display name")
    parser.add_argument(
        "--experiment", help="filter: experiment kind (replay/fluctuation/failure/drift)"
    )
    parser.add_argument("--suite", help="filter: suite name tag")
    parser.add_argument("--study", help="filter: study name tag")
    parser.add_argument("--seed", type=int, help="filter: suite seed tag")
    parser.add_argument("--repetition", type=int, help="filter: repetition tag")


def _queried(parser: argparse.ArgumentParser, args):
    """Open the warehouse and apply the shared filters (clean CLI errors)."""
    from repro.study.warehouse import ResultWarehouse, WarehouseError

    store = ResultWarehouse(args.warehouse)
    if not store.exists():
        parser.error(f"no results warehouse at {args.warehouse}")
    try:
        results = store.query(
            scenario=args.scenario,
            scheme=args.scheme,
            experiment=args.experiment,
            suite=args.suite,
            study=args.study,
            seed=args.seed,
            repetition=args.repetition,
        )
    except WarehouseError as exc:
        parser.error(str(exc))
    return store, results


def _cmd_suite(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.study suite",
        description=(
            "Run a suite descriptor (studies x seeds x repetitions) into a "
            "results warehouse."
        ),
    )
    parser.add_argument("descriptor", help="path to a JSON suite descriptor")
    parser.add_argument("--out", help="write the full ResultSet JSON here")
    _add_run_options(parser)
    args = parser.parse_args(argv)
    _check_run_flags(parser, args)

    from repro.study.results import CheckpointError
    from repro.study.suite import Suite

    descriptor = _load_json_file(parser, args.descriptor, "suite descriptor")
    try:
        suite = Suite(descriptor)
    except (TypeError, ValueError) as exc:
        parser.error(str(exc))
    run_kwargs = _run_kwargs(args)
    if args.resume:
        print(
            f"Resuming suite {suite.name!r}: {len(suite)} cell(s) from "
            f"{args.checkpoint} ..."
        )
        try:
            results = suite.resume(args.checkpoint, **run_kwargs)
        except CheckpointError as exc:
            parser.error(str(exc))
    else:
        print(f"Running suite {suite.name!r}: {len(suite)} experiment cell(s) ...")
        results = suite.run(checkpoint=args.checkpoint, **run_kwargs)
    print(results.to_table(title=f"Suite results ({suite.name})"))
    if args.warehouse:
        print(f"\nWarehoused {len(results)} record(s) in {args.warehouse}")
    if args.out:
        path = results.save(args.out)
        print(f"Wrote {len(results)} records to {path}")
    return 0


def _cmd_query(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.study query",
        description=(
            "Filter and aggregate a results warehouse: mean +/- confidence "
            "half-width over the grouped records, percentile columns "
            "recomputed from the pooled stored series."
        ),
    )
    parser.add_argument("warehouse", help="path to a results warehouse (JSONL)")
    _add_query_filters(parser)
    parser.add_argument(
        "--group-by",
        default="scenario,scheme,experiment",
        metavar="COLS",
        help=(
            "comma-separated group columns (record attributes scenario/"
            "scheme/experiment and tag keys suite/study/seed/repetition mix "
            "freely; default: %(default)s)"
        ),
    )
    parser.add_argument(
        "--metric",
        default="mean",
        help="per-record metric aggregated as mean +/- half-width (default: %(default)s)",
    )
    parser.add_argument(
        "--confidence",
        type=float,
        default=0.95,
        help="two-sided confidence level of the half-width (default: %(default)s)",
    )
    parser.add_argument(
        "--json", action="store_true", help="print the aggregate rows as JSON"
    )
    args = parser.parse_args(argv)
    if not 0.0 < args.confidence < 1.0:
        parser.error(f"--confidence must be in (0, 1), got {args.confidence}")
    store, results = _queried(parser, args)
    group_by = [column.strip() for column in args.group_by.split(",") if column.strip()]
    if not group_by:
        parser.error("--group-by needs at least one column")
    rows = store.aggregate(
        results, group_by=group_by, metric=args.metric, confidence=args.confidence
    )
    if args.json:
        print(json.dumps(rows, indent=2))
        return 0
    print(f"{len(results)} record(s) match")
    print(
        store.aggregate_table(
            results,
            group_by=group_by,
            metric=args.metric,
            confidence=args.confidence,
            title=f"Warehouse aggregate ({args.warehouse})",
        )
    )
    return 0


def _cmd_export(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.study export",
        description=(
            "Export a results warehouse as a run_table-style flat CSV: one "
            "row per record, provenance columns + every metric column."
        ),
    )
    parser.add_argument("warehouse", help="path to a results warehouse (JSONL)")
    parser.add_argument("csv", help="output CSV path")
    _add_query_filters(parser)
    args = parser.parse_args(argv)
    store, results = _queried(parser, args)
    count = store.export_csv(args.csv, results)
    print(f"Wrote {count} row(s) to {args.csv}")
    return 0


def _cmd_serve(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.study serve",
        description=(
            "Start the long-lived study daemon: a Unix-socket service with "
            "a FIFO job queue and one warm LP/scenario/scheme cache shared "
            "across every submitted job."
        ),
    )
    _socket_option(parser)
    parser.add_argument(
        "--warehouse",
        metavar="PATH",
        help="default results warehouse jobs append to (a submit may override)",
    )
    parser.add_argument(
        "--spool-dir",
        metavar="DIR",
        help=(
            "directory job checkpoint names resolve under "
            "(default: <socket>.spool/ next to the socket)"
        ),
    )
    parser.add_argument("--backend", help="array backend for the replay hot path")
    parser.add_argument(
        "--lp-workers", default=None, type=_workers_type, metavar="N",
        help="LP process-pool width for cold normaliser batches",
    )
    parser.add_argument(
        "--cell-workers", default=None, type=_workers_type, metavar="N",
        help="process-pool width jobs run their cells with (default: sequential)",
    )
    parser.add_argument(
        "--lp-backend", default=None, metavar="NAME",
        help="LP solver backend ('scipy', 'highs', or 'auto')",
    )
    args = parser.parse_args(argv)

    import signal
    import threading

    from repro.study.server import StudyServer

    server = StudyServer(
        args.socket,
        warehouse=args.warehouse,
        spool_dir=args.spool_dir,
        backend=args.backend,
        lp_workers=args.lp_workers,
        lp_backend=args.lp_backend,
        cell_workers=args.cell_workers,
    )

    def _stop(signum, frame):  # noqa: ARG001 - signal handler signature
        print(
            f"\nStopping study daemon ({signal.Signals(signum).name}): "
            "cancelling jobs at the next cell boundary ...",
            flush=True,
        )
        server.stop()

    signal.signal(signal.SIGTERM, _stop)
    signal.signal(signal.SIGINT, _stop)

    ready = threading.Event()

    def _announce() -> None:
        if ready.wait(timeout=30):
            print(
                f"Study daemon listening on {server.socket_path} "
                f"(spool: {server.spool_dir})",
                flush=True,
            )

    threading.Thread(target=_announce, daemon=True).start()
    try:
        server.serve_forever(ready=ready)
    except OSError as exc:
        # e.g. a live daemon already owns the socket path
        parser.error(str(exc))
    print("Study daemon stopped.")
    return 0


def _cmd_submit(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.study submit",
        description=(
            "Submit a study spec (or suite descriptor) to a running study "
            "daemon and stream per-cell records back as they finish."
        ),
    )
    parser.add_argument("spec", help="path to a JSON study spec (or suite descriptor)")
    _socket_option(parser)
    parser.add_argument(
        "--suite", action="store_true",
        help="treat the file as a suite descriptor instead of a study spec",
    )
    parser.add_argument(
        "--checkpoint", metavar="NAME",
        help=(
            "checkpoint name, resolved under the daemon's spool directory "
            "(makes the job cancellable and resumable)"
        ),
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume a cancelled/killed checkpointed job (needs --checkpoint)",
    )
    parser.add_argument(
        "--warehouse", metavar="PATH",
        help="results warehouse override for this job",
    )
    parser.add_argument("--out", help="write the full ResultSet JSON here")
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress lines"
    )
    args = parser.parse_args(argv)
    if args.resume and not args.checkpoint:
        parser.error("--resume requires --checkpoint (the name the job ran with)")

    from repro.study.client import StudyClient, StudyServiceError

    spec = _load_json_file(
        parser, args.spec, "suite descriptor" if args.suite else "study spec"
    )

    def _progress(message: dict) -> None:
        if args.quiet:
            return
        mtype = message.get("type")
        if mtype == "accepted":
            print(
                f"Accepted as {message['job']}: {message['cells']} cell(s), "
                f"{message['queued_ahead']} job(s) queued ahead"
            )
        elif mtype == "record":
            record = message["record"]
            print(
                f"  [{message['completed']}/{message['total']}] "
                f"{record['scenario']} / {record['scheme']} / {record['experiment']}"
            )

    client = StudyClient(args.socket)
    try:
        outcome = client.submit(
            spec,
            kind="suite" if args.suite else "study",
            checkpoint=args.checkpoint,
            resume=args.resume,
            warehouse=args.warehouse,
            on_message=_progress,
        )
    except StudyServiceError as exc:
        parser.error(str(exc))
    if outcome.status == "cancelled":
        print(
            f"Job {outcome.job} cancelled after "
            f"{outcome.summary.get('completed', 0)}/{outcome.summary.get('total', '?')} "
            f"cell(s): {outcome.summary.get('reason', 'cancelled')} "
            "(re-submit with --resume to finish it)"
        )
        return 1
    summary = outcome.summary
    print(outcome.results.to_table(title=f"Study results ({outcome.job})"))
    print(
        f"\n{summary.get('records', len(outcome.results))} record(s) in "
        f"{summary.get('wall_seconds', 0.0):.2f}s -- {summary.get('lp_solves')} "
        f"LP solve(s), {summary.get('trainings')} training(s) "
        "(0/0 = fully served from the daemon's warm caches)"
    )
    if args.out:
        path = outcome.results.save(args.out)
        print(f"Wrote {len(outcome.results)} records to {path}")
    return 0


def _cmd_status(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.study status",
        description=(
            "Show a running study daemon's uptime, warm-cache sizes, and "
            "per-job progress (as JSON)."
        ),
    )
    _socket_option(parser)
    parser.add_argument("--job", metavar="JOB", help="show only this job")
    args = parser.parse_args(argv)

    from repro.study.client import StudyClient, StudyServiceError

    try:
        status = StudyClient(args.socket).status(job=args.job)
    except StudyServiceError as exc:
        parser.error(str(exc))
    print(json.dumps(status, indent=2, sort_keys=True))
    return 0


def _cmd_cancel(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.study cancel",
        description=(
            "Cancel a queued or running job on the study daemon; finished "
            "cells stay checkpointed, so the job is resumable with "
            "'submit --resume'."
        ),
    )
    parser.add_argument("job", help="job id (as printed by submit/status)")
    _socket_option(parser)
    args = parser.parse_args(argv)

    from repro.study.client import StudyClient, StudyServiceError

    try:
        reply = StudyClient(args.socket).cancel(args.job)
    except StudyServiceError as exc:
        parser.error(str(exc))
    print(f"Job {args.job}: {reply.get('type', 'cancelled')}")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    # Subcommand dispatch keeps the original `python -m repro.study spec.json`
    # form working verbatim (a spec file literally named `suite` would need
    # `./suite`).
    if argv[:1] == ["suite"]:
        return _cmd_suite(argv[1:])
    if argv[:1] == ["query"]:
        return _cmd_query(argv[1:])
    if argv[:1] == ["export"]:
        return _cmd_export(argv[1:])
    if argv[:1] == ["serve"]:
        return _cmd_serve(argv[1:])
    if argv[:1] == ["submit"]:
        return _cmd_submit(argv[1:])
    if argv[:1] == ["status"]:
        return _cmd_status(argv[1:])
    if argv[:1] == ["cancel"]:
        return _cmd_cancel(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro.study",
        description=(
            "Expand and run a declarative experiment-study spec "
            "(subcommands: suite, query, export, serve, submit, status, cancel)."
        ),
    )
    parser.add_argument("spec", nargs="?", help="path to a JSON study spec")
    parser.add_argument("--out", help="write the full ResultSet JSON here")
    _add_run_options(parser)
    parser.add_argument(
        "--list-scenarios", action="store_true", help="print registered scenarios and exit"
    )
    parser.add_argument(
        "--list-schemes", action="store_true", help="print registered scheme kinds and exit"
    )
    args = parser.parse_args(argv)

    if args.list_scenarios:
        from repro.datasets import available_scenarios

        print("\n".join(available_scenarios()))
        return 0
    if args.list_schemes:
        from repro.study.spec import available_schemes

        print("\n".join(available_schemes()))
        return 0
    if not args.spec:
        parser.error("a spec file is required (or --list-scenarios / --list-schemes)")
    _check_run_flags(parser, args)

    from repro.study.results import CheckpointError
    from repro.study.study import Study

    spec = _load_json_file(parser, args.spec, "study spec")
    try:
        study = Study(spec)
    except (TypeError, ValueError) as exc:
        parser.error(str(exc))
    run_kwargs = _run_kwargs(args)
    if args.resume:
        print(f"Resuming {len(study)} experiment cell(s) from {args.checkpoint} ...")
        try:
            results = study.resume(args.checkpoint, **run_kwargs)
        except CheckpointError as exc:
            # A corrupt/foreign checkpoint is one clean line, not a
            # traceback; cell failures still traceback as usual.
            parser.error(str(exc))
    else:
        print(f"Running {len(study)} experiment cell(s) ...")
        results = study.run(checkpoint=args.checkpoint, **run_kwargs)
    print(results.to_table(title=f"Study results ({args.spec})"))
    if args.out:
        path = results.save(args.out)
        print(f"\nWrote {len(results)} records to {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
