"""Suite descriptors: studies x seeds x repetitions x annotations, as data.

A *suite* is the layer above a study: one plain-dict descriptor declaring
several study specs plus the statistical axes the paper's evaluation needs
-- a ``seeds`` axis (each seed re-generates the scenarios' synthetic
traffic) and a ``repetitions`` count (exact repeats of every cell) -- with
free-form annotations riding along as provenance.  The descriptor is plain
data all the way down, so a whole evaluation campaign lives in one JSON
file::

    {
        "name": "robustness-campaign",
        "annotations": {"machine": "bench-box-2"},
        "seeds": [0, 1, 2],
        "repetitions": 2,
        "studies": [
            {"name": "replay", "spec": {
                "scenario": "geant_small",
                "scheme": {"sweep": [{"kind": "figret"}, {"kind": "dote"}]},
            }},
            {"name": "fluctuation", "spec": {...}}
        ]
    }

:func:`expand_suite` turns that into concrete
:class:`~repro.study.spec.ExperimentSpec` cells through the existing
:func:`~repro.study.spec.expand_spec` machinery -- each study spec's own
sweep axes expand first, then the suite clones every cell per seed and
repetition, rewriting the scenario reference's seed and stamping
``suite`` / ``study`` / ``seed`` / ``repetition`` (plus the annotations)
into the cell's tags, which ride into every result record's spec
provenance.  :class:`Suite` wraps the expansion with run / resume /
warehouse plumbing; ``python -m repro.study suite`` drives it from the
shell.

Seed semantics (deliberately explicit):

* A seed rewrites **declarative scenario references**: a bare name becomes
  ``{"name": ..., "seed": <seed>}``, a registry reference gets its seed
  set, and an inline config gets ``traffic.seed`` set.  A study spec that
  *pins* one of those seeds conflicts with a suite-level ``seeds`` axis and
  is rejected -- two declarations of one knob should be loud, not silently
  resolved.
* A perturbation carrying a ``seed`` knob (fluctuation / failure) gets the
  suite seed *unless the study spec pinned one explicitly* -- a pinned
  perturbation seed means common random numbers across the seed axis, which
  is a legitimate design.
* Repetitions are **exact repeats** distinguished only by their
  ``repetition`` tag.  The pipeline is deterministic, so their spread
  measures run-to-run nondeterminism (and gives the warehouse its
  repetition axis); use more seeds, not more repetitions, for statistical
  power.
"""

from __future__ import annotations

import copy
import json
from collections.abc import Mapping, Sequence

from repro.study.results import ResultSet
from repro.study.spec import ExperimentSpec, expand_spec
from repro.study.study import Study

__all__ = ["Suite", "expand_suite", "RESERVED_TAG_KEYS"]

#: Tag keys the suite expansion owns; study specs and annotations may not
#: set them (the provenance would be ambiguous).
RESERVED_TAG_KEYS = frozenset({"suite", "study", "seed", "repetition"})

_SUITE_KEYS = frozenset({"name", "annotations", "seeds", "repetitions", "studies"})
_STUDY_ENTRY_KEYS = frozenset({"name", "spec", "annotations"})

#: Perturbation kinds whose ``seed`` knob the suite seed fills when unset.
_SEEDED_PERTURBATIONS = frozenset({"fluctuation", "failure"})


def _validated_annotations(annotations, owner: str) -> dict:
    if annotations is None:
        return {}
    if not isinstance(annotations, Mapping):
        raise ValueError(
            f"{owner} annotations must be a mapping, got {type(annotations).__name__}"
        )
    reserved = RESERVED_TAG_KEYS & set(annotations)
    if reserved:
        raise ValueError(
            f"{owner} annotations use reserved tag key(s) {sorted(reserved)}; "
            f"{sorted(RESERVED_TAG_KEYS)} are stamped by the suite expansion"
        )
    return dict(annotations)


def _validated_seeds(seeds) -> tuple:
    if seeds is None:
        return (None,)
    if isinstance(seeds, (str, bytes)) or not isinstance(seeds, Sequence):
        raise ValueError(f"suite seeds must be a sequence of ints, got {seeds!r}")
    validated = []
    for seed in seeds:
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise ValueError(f"suite seeds must be ints, got {seed!r}")
        validated.append(seed)
    if not validated:
        raise ValueError("suite seeds must not be empty (omit the key for no seed axis)")
    if len(set(validated)) != len(validated):
        raise ValueError(f"suite seeds contain duplicates: {validated}")
    return tuple(validated)


def _validated_repetitions(repetitions) -> int:
    if repetitions is None:
        return 1
    if isinstance(repetitions, bool) or not isinstance(repetitions, int) or repetitions < 1:
        raise ValueError(f"suite repetitions must be a positive int, got {repetitions!r}")
    return repetitions


def _study_entries(studies) -> list[tuple[str, Mapping, dict]]:
    """Normalise the ``studies`` list to ``(name, spec, annotations)`` triples."""
    if isinstance(studies, (str, bytes)) or not isinstance(studies, Sequence) or not studies:
        raise ValueError("suite 'studies' must be a non-empty list of study entries")
    entries = []
    names = set()
    for index, entry in enumerate(studies):
        if not isinstance(entry, Mapping):
            raise ValueError(
                f"study entry {index} must be a mapping (a spec, or "
                f"{{'name', 'spec'}}), got {type(entry).__name__}"
            )
        if "spec" in entry:
            unknown = set(entry) - _STUDY_ENTRY_KEYS
            if unknown:
                raise ValueError(
                    f"unknown study entry key(s) {sorted(unknown)} in study entry "
                    f"{index}; allowed: {sorted(_STUDY_ENTRY_KEYS)}"
                )
            name = entry.get("name", f"study-{index}")
            spec = entry["spec"]
            annotations = _validated_annotations(
                entry.get("annotations"), f"study {name!r}"
            )
            if not isinstance(spec, Mapping):
                raise ValueError(
                    f"study {name!r} 'spec' must be a mapping, got {type(spec).__name__}"
                )
        else:
            # A bare study spec; its cells carry a positional study name.
            name, spec, annotations = f"study-{index}", entry, {}
        if not isinstance(name, str) or not name:
            raise ValueError(f"study entry {index} has an invalid name {name!r}")
        if name in names:
            raise ValueError(f"duplicate study name {name!r} in suite")
        names.add(name)
        entries.append((name, spec, annotations))
    return entries


def _seeded_scenario(scenario, seed: int, study: str):
    """Rewrite a declarative scenario reference to the suite seed."""
    if isinstance(scenario, str):
        return {"name": scenario, "seed": seed}
    if isinstance(scenario, Mapping):
        if "name" in scenario and "topology" not in scenario:
            if "seed" in scenario:
                raise ValueError(
                    f"study {study!r} pins scenario seed {scenario['seed']!r} but the "
                    "suite declares a seeds axis; drop the pinned seed (the suite owns "
                    "the seed axis) or drop the suite's 'seeds' key"
                )
            return {**scenario, "seed": seed}
        if "topology" in scenario:
            traffic = scenario.get("traffic")
            if isinstance(traffic, Mapping):
                if "seed" in traffic:
                    raise ValueError(
                        f"study {study!r} pins traffic seed {traffic['seed']!r} in an "
                        "inline scenario config but the suite declares a seeds axis; "
                        "drop the pinned seed or the suite's 'seeds' key"
                    )
                return {**scenario, "traffic": {**traffic, "seed": seed}}
            return scenario
    raise ValueError(
        f"study {study!r} uses a live scenario object; suites are declarative "
        "(registered names, registry references, or inline configs) so their "
        "cells can be resumed and identified in the warehouse"
    )


def _seeded_perturbation(perturbation, seed: int):
    """Fill an unset perturbation seed with the suite seed (pinned ones win)."""
    if (
        isinstance(perturbation, Mapping)
        and perturbation.get("kind") in _SEEDED_PERTURBATIONS
        and "seed" not in perturbation
    ):
        return {**perturbation, "seed": seed}
    return perturbation


def expand_suite(descriptor: Mapping) -> list[ExperimentSpec]:
    """Expand a suite descriptor into its concrete experiment cells.

    Cells come out ordered study-major: for each study (in declaration
    order), for each seed, for each repetition, the study spec's own
    expanded cells.  Every cell's tags carry ``suite`` / ``study`` (always),
    ``seed`` (when the suite declares a seeds axis), ``repetition``
    (always), the suite and study annotations, and the cell's own tags --
    whose keys may not collide with the reserved ones.

    Raises:
        ValueError: On unknown descriptor keys, invalid axes, live-object
            scenarios/schemes, pinned-seed conflicts, or reserved-tag
            collisions (see the module docstring for the seed rules).
    """
    if not isinstance(descriptor, Mapping):
        raise ValueError(
            f"a suite descriptor must be a mapping, got {type(descriptor).__name__}"
        )
    unknown = set(descriptor) - _SUITE_KEYS
    if unknown:
        raise ValueError(
            f"unknown suite descriptor key(s) {sorted(unknown)}; allowed: "
            f"{sorted(_SUITE_KEYS)}"
        )
    name = descriptor.get("name", "suite")
    if not isinstance(name, str) or not name:
        raise ValueError(f"suite name must be a non-empty string, got {name!r}")
    annotations = _validated_annotations(descriptor.get("annotations"), "suite")
    seeds = _validated_seeds(descriptor.get("seeds"))
    repetitions = _validated_repetitions(descriptor.get("repetitions"))
    entries = _study_entries(descriptor.get("studies"))

    cells: list[ExperimentSpec] = []
    for study_name, study_spec, study_annotations in entries:
        base_cells = expand_spec(study_spec)
        for seed in seeds:
            for repetition in range(repetitions):
                for base in base_cells:
                    cell = copy.deepcopy(base)
                    if seed is not None:
                        cell["scenario"] = _seeded_scenario(
                            cell.get("scenario"), seed, study_name
                        )
                        cell["perturbation"] = _seeded_perturbation(
                            cell.get("perturbation"), seed
                        )
                        if cell["perturbation"] is None:
                            del cell["perturbation"]
                    elif not isinstance(cell.get("scenario"), (str, Mapping)):
                        raise ValueError(
                            f"study {study_name!r} uses a live scenario object; "
                            "suites are declarative so their cells can be resumed "
                            "and identified in the warehouse"
                        )
                    if not isinstance(cell.get("scheme"), Mapping):
                        raise ValueError(
                            f"study {study_name!r} uses a live scheme object; suites "
                            "are declarative (scheme spec dicts) so their cells can "
                            "be resumed and identified in the warehouse"
                        )
                    own_tags = cell.get("tags") or {}
                    if not isinstance(own_tags, Mapping):
                        raise ValueError(
                            f"cell tags in study {study_name!r} must be a mapping, "
                            f"got {type(own_tags).__name__}"
                        )
                    reserved = RESERVED_TAG_KEYS & set(own_tags)
                    if reserved:
                        raise ValueError(
                            f"cell tags in study {study_name!r} use reserved key(s) "
                            f"{sorted(reserved)}; {sorted(RESERVED_TAG_KEYS)} are "
                            "stamped by the suite expansion"
                        )
                    tags = {**annotations, **study_annotations, **own_tags}
                    tags["suite"] = name
                    tags["study"] = study_name
                    if seed is not None:
                        tags["seed"] = seed
                    tags["repetition"] = repetition
                    cell["tags"] = tags
                    cells.append(ExperimentSpec.from_dict(cell))
    return cells


class Suite:
    """A validated suite descriptor bound to one :class:`Study`.

    The suite expands eagerly (descriptor errors surface at construction,
    before anything runs) and keeps one study instance, so consecutive
    :meth:`run` / :meth:`resume` calls share its scenario / scheme / replay
    dedup caches.

    Args:
        descriptor: The plain-dict suite descriptor (see module docstring).
        scheme_cache / scenario_cache: Shared dedup dicts, as in
            :class:`~repro.study.study.Study`.
    """

    def __init__(
        self,
        descriptor: Mapping,
        scheme_cache: dict | None = None,
        scenario_cache: dict | None = None,
    ) -> None:
        self.descriptor = descriptor
        self.name = descriptor.get("name", "suite") if isinstance(descriptor, Mapping) else "suite"
        self.cells = expand_suite(descriptor)
        self.study = Study(
            self.cells, scheme_cache=scheme_cache, scenario_cache=scenario_cache
        )

    @classmethod
    def from_json(cls, text: str, **kwargs) -> "Suite":
        """Build a suite from a JSON descriptor document."""
        return cls(json.loads(text), **kwargs)

    def __len__(self) -> int:
        return len(self.cells)

    def run(self, warehouse=None, checkpoint=None, **run_kwargs) -> ResultSet:
        """Run every cell (see :meth:`repro.study.study.Study.run`).

        ``warehouse`` is a path or :class:`~repro.study.warehouse.
        ResultWarehouse` that every finished cell is appended to as it
        completes.
        """
        return self.study.run(warehouse=warehouse, checkpoint=checkpoint, **run_kwargs)

    def resume(self, checkpoint, warehouse=None, **run_kwargs) -> ResultSet:
        """Finish an interrupted run (see :meth:`repro.study.study.Study.resume`).

        Cells loaded from the checkpoint are *not* re-appended to the
        warehouse; a final reconciliation pass
        (:meth:`~repro.study.warehouse.ResultWarehouse.sync`) fills any
        record lost in the crash window between a checkpoint append and its
        warehouse append.
        """
        return self.study.resume(checkpoint, warehouse=warehouse, **run_kwargs)

    def plan(self, **plan_kwargs):
        """Build the suite's execution plan (see :meth:`repro.study.study.Study.plan`).

        The scheduler-facing half of :meth:`run` / :meth:`resume`: the study
        server plans a submitted suite eagerly and owns the execution loop
        through :meth:`execute`.
        """
        return self.study.plan(**plan_kwargs)

    def execute(self, plan, on_cell=None, should_stop=None) -> ResultSet:
        """Run a plan built by :meth:`plan` (see :meth:`repro.study.study.Study.execute`)."""
        return self.study.execute(plan, on_cell=on_cell, should_stop=should_stop)
