"""CuPy backend (optional; auto-detected).

A nearly 1:1 transcription of the numpy ops onto ``cupy`` arrays, computing
in float32 by default (``REPRO_BACKEND_DTYPE=float64`` overrides).  Importing
this module raises :class:`ImportError` when cupy is missing; the registry in
:mod:`repro.backend` turns that into a one-time warning and a numpy fallback.
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import ArrayBackend

import cupy as cp  # noqa: E402  (the gating import)
import cupyx  # noqa: E402

__all__ = ["CupyBackend"]


class CupyBackend(ArrayBackend):
    """CuPy arrays on the current CUDA device."""

    name = "cupy"
    tolerance = 1e-6

    def __init__(self, dtype=np.float32) -> None:
        super().__init__()
        self.compute_dtype = np.dtype(dtype).type

    def asarray(self, values, dtype=None):
        if isinstance(values, cp.ndarray):
            return values if dtype is None else values.astype(dtype, copy=False)
        arr = np.asarray(values)
        if dtype is None and arr.dtype.kind != "f":
            dtype = self.compute_dtype
        return cp.asarray(arr, dtype=dtype)

    def to_numpy(self, array) -> np.ndarray:
        if isinstance(array, cp.ndarray):
            return cp.asnumpy(array)
        return np.asarray(array)

    def index_array(self, indices):
        return cp.asarray(np.asarray(indices, dtype=np.int64))

    def add(self, a, b):
        return a + b

    def mul(self, a, b):
        return a * b

    def div(self, a, b):
        return a / b

    def matmul(self, a, b):
        return a @ b

    def relu(self, x):
        return cp.maximum(x, 0)

    def sigmoid(self, x):
        positive = 1.0 / (1.0 + cp.exp(-cp.clip(x, 0.0, 60.0)))
        negative_exp = cp.exp(cp.clip(x, -60.0, 0.0))
        return cp.where(x >= 0, positive, negative_exp / (1.0 + negative_exp))

    def where(self, condition, a, b):
        return cp.where(condition, a, b)

    def greater(self, a, b):
        return a > b

    def less_equal(self, a, b):
        return a <= b

    def atleast_2d(self, x):
        return cp.atleast_2d(x)

    def take_last(self, x, indices):
        return x[..., indices]

    def segment_sum(self, x, indices, num_segments: int):
        flat = x.reshape(-1, x.shape[-1])
        out = cp.zeros((flat.shape[0], num_segments), dtype=x.dtype)
        # scatter_add accumulates along the first axis; work transposed.
        cupyx.scatter_add(out.T, indices, flat.T)
        return out.reshape(x.shape[:-1] + (num_segments,))

    def max_last(self, x):
        return x.max(axis=-1)
