"""NumPy backends: the default float64 backend and a float32 variant.

``numpy`` is the default everywhere and is special: the hot-path functions
detect it (``native_numpy``) and run their original, pre-backend code path
verbatim, so ``REPRO_BACKEND=numpy`` replay is bit-identical to the
pre-backend engine by construction.

``numpy32`` computes through the *generic* backend code path in float32.  It
exists so the float32 tolerance plumbing (the ~1e-6 bound GPU backends need)
is exercised on every machine, GPU or not -- the same role the pure-python
backend plays for the generic path's correctness.
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import ArrayBackend

__all__ = ["NumpyBackend", "Numpy32Backend"]


class NumpyBackend(ArrayBackend):
    """The default backend: float64 NumPy, bit-identical to the seed path."""

    name = "numpy"
    compute_dtype = np.float64
    tolerance = 0.0
    native_numpy = True

    def asarray(self, values, dtype=None):
        if dtype is None and isinstance(values, np.ndarray) and values.dtype.kind == "f":
            return values
        return np.asarray(values, dtype=dtype if dtype is not None else self.compute_dtype)

    def to_numpy(self, array) -> np.ndarray:
        return np.asarray(array)

    def index_array(self, indices):
        return np.asarray(indices, dtype=np.int64)

    def add(self, a, b):
        return a + b

    def mul(self, a, b):
        return a * b

    def div(self, a, b):
        return a / b

    def matmul(self, a, b):
        return a @ b

    def relu(self, x):
        return x * (x > 0)

    def sigmoid(self, x):
        positive = 1.0 / (1.0 + np.exp(-np.clip(x, 0.0, 60.0)))
        negative_exp = np.exp(np.clip(x, -60.0, 0.0))
        return np.where(x >= 0, positive, negative_exp / (1.0 + negative_exp))

    def where(self, condition, a, b):
        return np.where(condition, a, b)

    def greater(self, a, b):
        return a > b

    def less_equal(self, a, b):
        return a <= b

    def atleast_2d(self, x):
        return np.atleast_2d(x)

    def take_last(self, x, indices):
        return x[..., indices]

    def segment_sum(self, x, indices, num_segments: int):
        out = np.zeros(x.shape[:-1] + (num_segments,), dtype=x.dtype)
        np.add.at(out, (..., indices), x)
        return out

    def max_last(self, x):
        return x.max(axis=-1)


class Numpy32Backend(NumpyBackend):
    """Float32 NumPy through the generic code path (float32 CI coverage)."""

    name = "numpy32"
    compute_dtype = np.float32
    tolerance = 1e-6
    native_numpy = False
