"""Pure-python reference backend.

This backend implements the generic hot-path op set with plain Python lists
and ``math`` -- no numpy inside the ops.  It is deliberately slow and exists
for one reason: CI determinism checks.  The torch/cupy backends run the same
*generic* code path in the hot functions, so pinning the pure-python backend
to the numpy replay (float64, ~1e-9 -- only summation-order rounding differs)
proves that code path is correct on machines with no GPU and no optional
dependencies at all.

Arrays are :class:`PyArray`: a flat row-major ``list[float]`` plus a shape
tuple, supporting 1-D and 2-D shapes with numpy-style broadcasting across
the leading axis (everything the replay hot path uses).
"""

from __future__ import annotations

import math

import numpy as np

from repro.backend.base import ArrayBackend

__all__ = ["PyArray", "PythonBackend"]


class PyArray:
    """A 1-D or 2-D array of python floats (row-major flat storage)."""

    __slots__ = ("shape", "data")

    def __init__(self, shape: tuple[int, ...], data: list[float]) -> None:
        if len(shape) not in (1, 2):
            raise ValueError(f"PyArray supports 1-D and 2-D shapes, got {shape}")
        size = shape[0] if len(shape) == 1 else shape[0] * shape[1]
        if size != len(data):
            raise ValueError(f"shape {shape} does not match {len(data)} elements")
        self.shape = shape
        self.data = data

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def rows_cols(self) -> tuple[int, int]:
        """Logical (rows, cols) with 1-D treated as a single row."""
        if len(self.shape) == 1:
            return 1, self.shape[0]
        return self.shape

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PyArray(shape={self.shape})"


def _broadcast_binary(a: PyArray, b, fn) -> PyArray:
    """Apply ``fn`` elementwise with scalar / row / full broadcasting."""
    if not isinstance(b, PyArray):
        scalar = float(b)
        return PyArray(a.shape, [fn(v, scalar) for v in a.data])
    ra, ca = a.rows_cols()
    rb, cb = b.rows_cols()
    if ca != cb:
        raise ValueError(f"incompatible shapes {a.shape} and {b.shape}")
    rows = max(ra, rb)
    if ra not in (1, rows) or rb not in (1, rows):
        raise ValueError(f"incompatible shapes {a.shape} and {b.shape}")
    out = [0.0] * (rows * ca)
    for r in range(rows):
        base = r * ca
        base_a = (r if ra > 1 else 0) * ca
        base_b = (r if rb > 1 else 0) * cb
        da, db = a.data, b.data
        for c in range(ca):
            out[base + c] = fn(da[base_a + c], db[base_b + c])
    shape = (rows, ca) if max(a.ndim, b.ndim) == 2 else (ca,)
    return PyArray(shape, out)


def _stable_sigmoid(value: float) -> float:
    if value >= 0:
        return 1.0 / (1.0 + math.exp(-min(value, 60.0)))
    bounded = math.exp(max(value, -60.0))
    return bounded / (1.0 + bounded)


class PythonBackend(ArrayBackend):
    """The pure-python reference backend (generic-path determinism checks)."""

    name = "python"
    compute_dtype = np.float64
    tolerance = 1e-9
    native_numpy = False

    def asarray(self, values, dtype=None):
        if isinstance(values, PyArray):
            return values
        arr = np.asarray(values, dtype=float)
        if arr.ndim == 0:
            arr = arr.reshape(1)
        if arr.ndim > 2:
            raise ValueError(f"python backend supports 1-D/2-D arrays, got {arr.shape}")
        return PyArray(arr.shape, [float(v) for v in arr.ravel()])

    def to_numpy(self, array) -> np.ndarray:
        if not isinstance(array, PyArray):
            return np.asarray(array, dtype=float)
        return np.array(array.data, dtype=float).reshape(array.shape)

    def index_array(self, indices):
        return [int(i) for i in np.asarray(indices).ravel()]

    def add(self, a, b):
        return _broadcast_binary(a, b, lambda x, y: x + y)

    def mul(self, a, b):
        return _broadcast_binary(a, b, lambda x, y: x * y)

    def div(self, a, b):
        return _broadcast_binary(a, b, lambda x, y: x / y)

    def matmul(self, a: PyArray, b: PyArray) -> PyArray:
        rows, inner = a.rows_cols()
        rb, cols = b.rows_cols()
        if b.ndim != 2 or inner != rb:
            raise ValueError(f"cannot matmul {a.shape} with {b.shape}")
        out = [0.0] * (rows * cols)
        for r in range(rows):
            row_base = r * inner
            out_base = r * cols
            for k in range(inner):
                left = a.data[row_base + k]
                if left == 0.0:
                    continue
                b_base = k * cols
                for c in range(cols):
                    out[out_base + c] += left * b.data[b_base + c]
        shape = (rows, cols) if a.ndim == 2 else (cols,)
        return PyArray(shape, out)

    def relu(self, x: PyArray) -> PyArray:
        return PyArray(x.shape, [v if v > 0.0 else 0.0 for v in x.data])

    def sigmoid(self, x: PyArray) -> PyArray:
        return PyArray(x.shape, [_stable_sigmoid(v) for v in x.data])

    def where(self, condition: PyArray, a, b) -> PyArray:
        operands = [condition] + [v for v in (a, b) if isinstance(v, PyArray)]
        cols = operands[0].rows_cols()[1]
        rows = max(op.rows_cols()[0] for op in operands)
        ndim = max(op.ndim for op in operands)
        for op in operands:
            r, c = op.rows_cols()
            if c != cols or r not in (1, rows):
                raise ValueError(f"incompatible where shapes {[o.shape for o in operands]}")

        def element(operand, r: int, c: int) -> float:
            if not isinstance(operand, PyArray):
                return float(operand)
            orows, _ = operand.rows_cols()
            return operand.data[(r if orows > 1 else 0) * cols + c]

        out = [
            element(a, r, c) if element(condition, r, c) != 0.0 else element(b, r, c)
            for r in range(rows)
            for c in range(cols)
        ]
        shape = (rows, cols) if ndim == 2 else (cols,)
        return PyArray(shape, out)

    def greater(self, a, b):
        return _broadcast_binary(a, b, lambda x, y: 1.0 if x > y else 0.0)

    def less_equal(self, a, b):
        return _broadcast_binary(a, b, lambda x, y: 1.0 if x <= y else 0.0)

    def atleast_2d(self, x: PyArray) -> PyArray:
        if x.ndim == 2:
            return x
        return PyArray((1, x.shape[0]), list(x.data))

    def take_last(self, x: PyArray, indices) -> PyArray:
        rows, cols = x.rows_cols()
        out = [0.0] * (rows * len(indices))
        for r in range(rows):
            base_in = r * cols
            base_out = r * len(indices)
            for j, idx in enumerate(indices):
                out[base_out + j] = x.data[base_in + idx]
        shape = (rows, len(indices)) if x.ndim == 2 else (len(indices),)
        return PyArray(shape, out)

    def segment_sum(self, x: PyArray, indices, num_segments: int) -> PyArray:
        rows, cols = x.rows_cols()
        if cols != len(indices):
            raise ValueError("segment ids must match the last axis")
        out = [0.0] * (rows * num_segments)
        for r in range(rows):
            base_in = r * cols
            base_out = r * num_segments
            for j, idx in enumerate(indices):
                out[base_out + idx] += x.data[base_in + j]
        shape = (rows, num_segments) if x.ndim == 2 else (num_segments,)
        return PyArray(shape, out)

    def max_last(self, x: PyArray) -> PyArray:
        rows, cols = x.rows_cols()
        out = [max(x.data[r * cols : (r + 1) * cols]) for r in range(rows)]
        shape = (rows,) if x.ndim == 2 else (1,)
        return PyArray(shape, out)
