"""PyTorch backend (optional; auto-detected).

Runs the generic hot-path code on torch tensors -- on CUDA when available,
otherwise on CPU (where ``asarray``/``to_numpy`` are zero-copy for matching
dtypes, so the backend costs almost nothing).  The compute dtype defaults to
float32, matching what a GPU deployment would use; set
``REPRO_BACKEND_DTYPE=float64`` to run torch in double precision.

Importing this module raises :class:`ImportError` when torch is missing;
the registry in :mod:`repro.backend` turns that into a one-time warning and
a numpy fallback.
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import ArrayBackend

import torch  # noqa: E402  (the gating import -- keep it after the cheap ones)

__all__ = ["TorchBackend"]


class TorchBackend(ArrayBackend):
    """Torch tensors on CUDA when available, CPU otherwise."""

    name = "torch"
    tolerance = 1e-6

    def __init__(self, dtype=np.float32) -> None:
        super().__init__()
        self.compute_dtype = np.dtype(dtype).type
        self.device = torch.device("cuda" if torch.cuda.is_available() else "cpu")

    @staticmethod
    def _torch_dtype(dtype):
        if dtype is None:
            return None
        kind = np.dtype(dtype)
        if kind == np.bool_:
            return torch.bool
        if kind == np.float32:
            return torch.float32
        if kind == np.float64:
            return torch.float64
        raise ValueError(f"unsupported dtype for the torch backend: {dtype!r}")

    def asarray(self, values, dtype=None):
        if isinstance(values, torch.Tensor):
            wanted = self._torch_dtype(dtype)
            return values if wanted is None else values.to(wanted)
        # ascontiguousarray: broadcast views (zero strides) from the static
        # schemes are not valid torch storage.
        arr = np.ascontiguousarray(np.asarray(values))
        wanted = self._torch_dtype(dtype)
        if wanted is None and arr.dtype.kind != "f":
            wanted = self._torch_dtype(self.compute_dtype)
        return torch.as_tensor(arr, dtype=wanted, device=self.device)

    def to_numpy(self, array) -> np.ndarray:
        if isinstance(array, torch.Tensor):
            return array.detach().cpu().numpy()
        return np.asarray(array)

    def index_array(self, indices):
        return torch.as_tensor(
            np.asarray(indices, dtype=np.int64), device=self.device
        )

    def add(self, a, b):
        return a + b

    def mul(self, a, b):
        return a * b

    def div(self, a, b):
        return a / b

    def matmul(self, a, b):
        return a @ b

    def relu(self, x):
        return torch.relu(x)

    def sigmoid(self, x):
        return torch.sigmoid(x)

    def where(self, condition, a, b):
        if not isinstance(a, torch.Tensor):
            a = torch.as_tensor(a, dtype=b.dtype if isinstance(b, torch.Tensor) else None, device=self.device)
        if not isinstance(b, torch.Tensor):
            b = torch.as_tensor(b, dtype=a.dtype, device=self.device)
        return torch.where(condition, a, b)

    def greater(self, a, b):
        return a > b

    def less_equal(self, a, b):
        return a <= b

    def atleast_2d(self, x):
        return x.unsqueeze(0) if x.dim() == 1 else x

    def take_last(self, x, indices):
        return x[..., indices]

    def segment_sum(self, x, indices, num_segments: int):
        out = torch.zeros(
            x.shape[:-1] + (num_segments,), dtype=x.dtype, device=x.device
        )
        return out.index_add_(x.dim() - 1, indices, x)

    def max_last(self, x):
        return x.max(dim=-1).values
