"""The :class:`ArrayBackend` abstraction shared by every array backend.

The batched replay hot path (PR 1-2) reduced whole-trace evaluation to a
handful of vectorized passes: the ``FigretNet`` forward (a chain of dense
matmuls), the batched MLU computation (a gather, an elementwise product and
one incidence matmul), and the vectorized failure rerouting.  All three are
expressible over any numpy-like array module, which is what this class
captures: a small set of *functional* operations (no reliance on operator
overloading, so even a pure-python reference implementation fits) plus a
per-:class:`~repro.paths.path_set.PathSet` cache of device-resident
constants.

Contracts every backend honours:

* Public functions stay **numpy at the boundary**: inputs are converted with
  :meth:`asarray` (one host-to-device copy -- per *chunk* in the streaming
  replay, which is the batching unit) and results come back through
  :meth:`to_numpy`.  Only the small ``(T, num_paths)`` / ``(T,)`` outputs
  round-trip the host.
* ``compute_dtype`` is the dtype the hot path computes in (float32 on GPU
  backends); :attr:`tolerance` is the equivalence bound the test suites pin
  that backend to against the default numpy path.
* The LP normalisers never touch a backend -- they stay on CPU/HiGHS behind
  the persistent :class:`~repro.solvers.lp.OptimalMLUCache`.
"""

from __future__ import annotations

import weakref
from typing import Any

import numpy as np

__all__ = ["ArrayBackend"]


class ArrayBackend:
    """Base class for array backends.

    Subclasses set :attr:`name`, :attr:`compute_dtype` and
    :attr:`tolerance`, and implement the small functional op set below.
    Arrays handled by these ops are *backend-native* (numpy arrays, torch
    tensors, cupy arrays, or the pure-python reference's ``PyArray``);
    conversion happens only in :meth:`asarray` / :meth:`to_numpy`.

    Attributes:
        name: Registry name (``"numpy"``, ``"torch"``, ...).
        compute_dtype: Numpy dtype the hot path computes in.
        tolerance: Absolute tolerance the equivalence suites use when
            pinning this backend to the default numpy replay (0.0 means
            bit-identical).
        native_numpy: True only for the default numpy backend, which makes
            the hot-path functions take their original (pre-backend) code
            path verbatim -- the bit-identicality guarantee.
    """

    name: str = "abstract"
    compute_dtype: Any = np.float64
    tolerance: float = 0.0
    native_numpy: bool = False

    def __init__(self) -> None:
        self._path_data: "weakref.WeakKeyDictionary[Any, dict]" = (
            weakref.WeakKeyDictionary()
        )

    # ------------------------------------------------------------------ #
    # Conversion
    # ------------------------------------------------------------------ #
    def asarray(self, values, dtype=None):
        """Convert to a backend-native array.

        ``dtype=None`` preserves a floating input's dtype (float32 in ->
        float32 out); the hot path passes ``dtype=self.compute_dtype``
        explicitly.  Backend-native inputs pass through without copying.
        """
        raise NotImplementedError

    def to_numpy(self, array) -> np.ndarray:
        """Convert a backend-native array back to numpy (dtype preserved)."""
        raise NotImplementedError

    def index_array(self, indices):
        """Convert an integer index array to the backend's native form."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Elementwise / shape ops (numpy-style broadcasting)
    # ------------------------------------------------------------------ #
    def add(self, a, b):
        raise NotImplementedError

    def mul(self, a, b):
        raise NotImplementedError

    def div(self, a, b):
        raise NotImplementedError

    def matmul(self, a, b):
        raise NotImplementedError

    def relu(self, x):
        raise NotImplementedError

    def sigmoid(self, x):
        raise NotImplementedError

    def where(self, condition, a, b):
        """Elementwise select; ``a`` / ``b`` may be scalars or arrays."""
        raise NotImplementedError

    def greater(self, a, b):
        raise NotImplementedError

    def less_equal(self, a, b):
        raise NotImplementedError

    def atleast_2d(self, x):
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Gather / segment / reduction ops
    # ------------------------------------------------------------------ #
    def take_last(self, x, indices):
        """``x[..., indices]`` with a native integer index array."""
        raise NotImplementedError

    def segment_sum(self, x, indices, num_segments: int):
        """Sum the last axis of ``x`` grouped by segment id."""
        raise NotImplementedError

    def max_last(self, x):
        """Maximum over the last axis."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Path-set constants
    # ------------------------------------------------------------------ #
    def edge_loads(self, data: dict, flow_on_path):
        """Per-edge loads of a ``(T, num_paths)`` flow matrix.

        The default multiplies by the dense path-to-edge incidence prepared
        in :meth:`path_set_data` -- the replay is then literally two matmuls
        per scheme, as ROADMAP's accelerator notes anticipated.  Backends
        with a fast sparse matmul may override.
        """
        return self.matmul(flow_on_path, data["path_to_edge"])

    def path_set_data(self, path_set) -> dict:
        """Device-resident constants of a path set (cached per backend).

        One conversion per (backend, path set) pair: the SD-pair index, the
        dense path-to-edge incidence, capacities, and the per-path uniform
        fallback ratios used by dead-pair handling and failure rerouting.
        """
        data = self._path_data.get(path_set)
        if data is None:
            counts = np.asarray(path_set.sd_to_path.sum(axis=1)).ravel()
            data = {
                "index": self.index_array(path_set.path_sd_index),
                "num_pairs": path_set.num_sd_pairs,
                "path_to_edge": self.asarray(
                    path_set.path_to_edge.toarray(), dtype=self.compute_dtype
                ),
                "capacities": self.asarray(
                    path_set.topology.capacities, dtype=self.compute_dtype
                ),
                "uniform": self.asarray(
                    1.0 / counts[path_set.path_sd_index], dtype=self.compute_dtype
                ),
            }
            self._path_data[path_set] = data
        return data

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"dtype={np.dtype(self.compute_dtype).name})"
        )
