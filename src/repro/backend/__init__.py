"""Pluggable array backends for the batched replay hot path.

The replay engine (PR 1-2) reduced whole-trace evaluation to a few
vectorized passes, which makes the forward path a drop-in target for
accelerator array modules.  This package provides:

* :class:`~repro.backend.base.ArrayBackend` -- the small functional op set
  the hot path needs (see ``base.py``);
* the default ``numpy`` backend (bit-identical to the pre-backend engine),
  a ``numpy32`` float32 variant, a pure-``python`` reference backend for CI
  determinism checks, and optional ``torch`` / ``cupy`` backends that are
  auto-detected and fall back to numpy (with one warning) when missing;
* selection via the ``REPRO_BACKEND`` environment variable, an explicit
  argument (every backend-aware function takes ``backend=``), or the
  :func:`use_backend` override used by :class:`EvaluationEngine`.

``REPRO_BACKEND_DTYPE`` (``float32`` / ``float64``) picks the compute dtype
of the GPU backends; the numpy default always computes in float64.

Example:
    >>> from repro.backend import get_backend, use_backend
    >>> get_backend().name
    'numpy'
    >>> with use_backend("python"):
    ...     ...  # replay runs through the pure-python reference ops
"""

from __future__ import annotations

import importlib.util
import os
import warnings
from contextlib import contextmanager

import numpy as np

from repro.backend.base import ArrayBackend
from repro.backend.numpy_backend import Numpy32Backend, NumpyBackend

__all__ = [
    "ArrayBackend",
    "BACKEND_ENV_VAR",
    "available_backends",
    "importable_backends",
    "get_backend",
    "active_backend",
    "resolve_backend",
    "use_backend",
]

#: Environment variable naming the default backend for the process.
BACKEND_ENV_VAR = "REPRO_BACKEND"
#: Environment variable selecting the GPU backends' compute dtype.
DTYPE_ENV_VAR = "REPRO_BACKEND_DTYPE"

#: Optional backends in auto-detection preference order.
_OPTIONAL = ("cupy", "torch")


def _gpu_dtype():
    """Compute dtype for the optional GPU backends (float32 by default)."""
    name = os.environ.get(DTYPE_ENV_VAR, "float32").strip().lower()
    if name not in ("float32", "float64"):
        raise ValueError(
            f"{DTYPE_ENV_VAR} must be 'float32' or 'float64', got {name!r}"
        )
    return np.float32 if name == "float32" else np.float64


def _make_torch() -> ArrayBackend:
    from repro.backend.torch_backend import TorchBackend

    return TorchBackend(dtype=_gpu_dtype())


def _make_cupy() -> ArrayBackend:
    from repro.backend.cupy_backend import CupyBackend

    return CupyBackend(dtype=_gpu_dtype())


def _make_python() -> ArrayBackend:
    from repro.backend.python_backend import PythonBackend

    return PythonBackend()


_FACTORIES = {
    "numpy": NumpyBackend,
    "numpy32": Numpy32Backend,
    "python": _make_python,
    "torch": _make_torch,
    "cupy": _make_cupy,
}

_INSTANCES: dict[str, ArrayBackend] = {}
_FALLBACK_WARNED: set[str] = set()
_OVERRIDE: ArrayBackend | None = None


def available_backends() -> tuple[str, ...]:
    """Registered backend names (optional ones may not be importable)."""
    return tuple(_FACTORIES)


def importable_backends() -> tuple[str, ...]:
    """Backends that can actually run on this machine (no fallbacks).

    The always-available trio plus whichever optional GPU backends have
    their dependency installed.  The equivalence test suites parameterize
    over exactly this list.
    """
    names = ["numpy", "numpy32", "python"]
    names.extend(
        name for name in _OPTIONAL if importlib.util.find_spec(name) is not None
    )
    return tuple(names)


def _instantiate(name: str) -> ArrayBackend:
    backend = _INSTANCES.get(name)
    if (
        backend is not None
        and name in _OPTIONAL
        and backend.name == name  # not a cached numpy fallback
        and np.dtype(backend.compute_dtype) != np.dtype(_gpu_dtype())
    ):
        # REPRO_BACKEND_DTYPE changed since this instance was built: rebuild
        # so the documented dtype override is never silently ignored.
        backend = None
    if backend is None:
        backend = _FACTORIES[name]()
        _INSTANCES[name] = backend
    return backend


def get_backend(name: str | None = None) -> ArrayBackend:
    """Resolve a backend by name, environment variable, or default.

    Args:
        name: Backend name, or None to consult ``REPRO_BACKEND`` (falling
            back to ``numpy``).  The special name ``auto`` picks the first
            importable of ``cupy``, ``torch``, ``numpy``.

    Returns:
        The (cached) backend instance.  A *known but unimportable* optional
        backend falls back to numpy with a single warning per process;
        an *unknown* name raises :class:`ValueError`.
    """
    if name is None:
        name = os.environ.get(BACKEND_ENV_VAR) or "numpy"
    name = name.strip().lower()
    if name == "auto":
        for candidate in _OPTIONAL:
            try:
                return _instantiate(candidate)
            except ImportError:
                continue
        return _instantiate("numpy")
    if name not in _FACTORIES:
        raise ValueError(
            f"unknown array backend {name!r} (from {BACKEND_ENV_VAR} or an "
            f"explicit argument); known backends: "
            f"{', '.join(sorted(_FACTORIES))}, or 'auto'"
        )
    try:
        return _instantiate(name)
    except ImportError as exc:
        if name not in _FALLBACK_WARNED:
            _FALLBACK_WARNED.add(name)
            warnings.warn(
                f"array backend {name!r} is not importable ({exc}); "
                "falling back to numpy",
                RuntimeWarning,
                stacklevel=2,
            )
        # Cache the fallback under the failing name: with REPRO_BACKEND set
        # to a missing backend, every hot-path call resolves the backend, and
        # re-attempting the failed import each time would pay a module-finder
        # scan per call.
        fallback = _instantiate("numpy")
        _INSTANCES[name] = fallback
        return fallback


def active_backend() -> ArrayBackend:
    """The backend in effect: a :func:`use_backend` override, else the env."""
    if _OVERRIDE is not None:
        return _OVERRIDE
    return get_backend(None)


def resolve_backend(backend: ArrayBackend | str | None) -> ArrayBackend:
    """Normalise a function's ``backend`` argument.

    ``None`` means "whatever is active" (override or environment), a string
    is looked up in the registry, and an instance passes through.
    """
    if backend is None:
        return active_backend()
    if isinstance(backend, ArrayBackend):
        return backend
    return get_backend(backend)


@contextmanager
def use_backend(backend: ArrayBackend | str | None):
    """Temporarily force the active backend (no-op when ``backend`` is None).

    This is how :class:`~repro.evaluation.engine.EvaluationEngine` threads an
    explicit backend through ``scheme.configure_batch`` without changing the
    :class:`~repro.te.scheme.TEScheme` interface.
    """
    global _OVERRIDE
    if backend is None:
        yield active_backend()
        return
    previous = _OVERRIDE
    _OVERRIDE = resolve_backend(backend)
    try:
        yield _OVERRIDE
    finally:
        _OVERRIDE = previous
