"""Network topology substrate: capacitated directed graphs and generators."""

from repro.topology.graph import Topology
from repro.topology import generators, zoo

__all__ = ["Topology", "generators", "zoo"]
