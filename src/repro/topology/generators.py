"""Topology generators used throughout the paper's evaluation.

The paper evaluates on three classes of topologies:

* WAN topologies (GEANT, UsCarrier, Cogentco) -- sparse, irregular graphs.
* PoD-level data center topologies -- small fully connected direct-connect
  graphs (Meta DB: 4 pods, Meta WEB: 8 pods).
* ToR-level data center topologies -- large random regular graphs
  (direct-connect, as in Jellyfish), plus the 9-ToR pFabric full mesh.

This module also contains the small illustrative topologies used by the
paper's motivating examples (the triangle of Figure 3 and the capacity
mismatch example of Figure 19).
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.topology.graph import Topology

__all__ = [
    "triangle",
    "line",
    "star",
    "fully_connected",
    "random_regular",
    "leaf_spine_direct_connect",
    "wan_like",
    "mismatch_example",
]


def triangle(capacity: float = 2.0) -> Topology:
    """The 3-node triangle of Figure 3 with all link capacities equal.

    Nodes are A=0, B=1, C=2 and each undirected link has capacity
    ``capacity`` (2 in the paper's example).
    """
    nodes = 3
    edges = []
    for a in range(nodes):
        for b in range(nodes):
            if a != b:
                edges.append((a, b, capacity))
    return Topology(nodes, edges, name="triangle")


def line(num_nodes: int, capacity: float = 1.0) -> Topology:
    """A bidirectional line topology ``0 - 1 - ... - n-1``."""
    edges = []
    for i in range(num_nodes - 1):
        edges.append((i, i + 1, capacity))
        edges.append((i + 1, i, capacity))
    return Topology(num_nodes, edges, name=f"line{num_nodes}")


def star(num_leaves: int, capacity: float = 1.0) -> Topology:
    """A star with node 0 at the hub and ``num_leaves`` leaves."""
    edges = []
    for leaf in range(1, num_leaves + 1):
        edges.append((0, leaf, capacity))
        edges.append((leaf, 0, capacity))
    return Topology(num_leaves + 1, edges, name=f"star{num_leaves}")


def fully_connected(num_nodes: int, capacity: float = 1.0, name: str | None = None) -> Topology:
    """A full mesh direct-connect topology (PoD-level Meta clusters, pFabric).

    Every ordered pair of distinct nodes is connected by a directed edge of
    the given capacity.
    """
    edges = [
        (a, b, capacity)
        for a in range(num_nodes)
        for b in range(num_nodes)
        if a != b
    ]
    return Topology(num_nodes, edges, name=name or f"mesh{num_nodes}")


def random_regular(
    num_nodes: int,
    degree: int,
    capacity: float = 1.0,
    seed: int = 0,
    name: str | None = None,
) -> Topology:
    """A random regular direct-connect graph (ToR-level topology, Jellyfish-style).

    The paper uses random regular graphs for ToR-level Meta topologies
    (Table 1).  The generated graph is undirected-regular; each undirected
    edge becomes two directed edges of equal capacity.  The generator retries
    with different seeds until it produces a connected graph.
    """
    if degree >= num_nodes:
        raise ValueError("degree must be smaller than the number of nodes")
    if (degree * num_nodes) % 2 != 0:
        raise ValueError("degree * num_nodes must be even for a regular graph")
    rng_seed = seed
    for _ in range(100):
        graph = nx.random_regular_graph(degree, num_nodes, seed=rng_seed)
        if nx.is_connected(graph):
            break
        rng_seed += 1
    else:  # pragma: no cover - astronomically unlikely for sane parameters
        raise RuntimeError("failed to generate a connected random regular graph")
    edges = []
    for a, b in graph.edges():
        edges.append((int(a), int(b), capacity))
        edges.append((int(b), int(a), capacity))
    return Topology(num_nodes, edges, name=name or f"rrg{num_nodes}d{degree}")


def leaf_spine_direct_connect(num_tors: int = 9, capacity: float = 1.0) -> Topology:
    """The pFabric topology converted to a direct-connect full mesh.

    The paper converts pFabric's 9-ToR leaf-spine fabric into a fully
    connected direct-connect network because TE is rarely used in leaf-spine
    fabrics (Section 5.1, Table 1: 9 nodes, 72 directed edges).
    """
    return fully_connected(num_tors, capacity=capacity, name=f"pfabric{num_tors}")


def wan_like(
    num_nodes: int,
    num_undirected_edges: int,
    seed: int = 0,
    capacity_levels: tuple[float, ...] = (10.0, 40.0, 100.0),
    name: str | None = None,
) -> Topology:
    """A synthetic WAN-like topology with a target node/edge count.

    Construction: start from a random spanning ring (guaranteeing strong
    connectivity), then add random chords preferring geographically close
    nodes (nodes are embedded on a unit square), which mimics the sparse,
    locally clustered structure of Topology-Zoo carrier backbones.  Each
    undirected link gets a capacity drawn from ``capacity_levels`` (mimicking
    the mix of OC-48/OC-192-style link tiers in carrier networks) and is
    represented by two directed edges.

    Args:
        num_nodes: Number of routers.
        num_undirected_edges: Target number of undirected links (must be at
            least ``num_nodes``).
        seed: RNG seed.
        capacity_levels: Candidate link capacities.
        name: Optional topology name.
    """
    if num_undirected_edges < num_nodes:
        raise ValueError("a connected WAN needs at least num_nodes undirected links")
    rng = np.random.default_rng(seed)
    coords = rng.random((num_nodes, 2))
    order = list(rng.permutation(num_nodes))
    undirected: set[tuple[int, int]] = set()

    def norm(a: int, b: int) -> tuple[int, int]:
        return (a, b) if a < b else (b, a)

    for i in range(num_nodes):
        a, b = order[i], order[(i + 1) % num_nodes]
        undirected.add(norm(a, b))

    # Candidate chords sorted by Euclidean distance: carriers mostly connect
    # nearby cities, which yields realistic sparse clustered graphs.
    candidates = []
    for a in range(num_nodes):
        for b in range(a + 1, num_nodes):
            if norm(a, b) not in undirected:
                dist = float(np.linalg.norm(coords[a] - coords[b]))
                candidates.append((dist, a, b))
    candidates.sort()
    # Take close pairs with probability decaying in rank so the graph is not
    # a pure geometric graph (real carriers include a few long-haul links).
    idx = 0
    while len(undirected) < num_undirected_edges and idx < len(candidates):
        _, a, b = candidates[idx]
        idx += 1
        if rng.random() < 0.7:
            undirected.add(norm(a, b))
    # If probability-skipping left us short, fill deterministically.
    idx = 0
    while len(undirected) < num_undirected_edges and idx < len(candidates):
        _, a, b = candidates[idx]
        undirected.add(norm(a, b))
        idx += 1

    edges = []
    for a, b in sorted(undirected):
        cap = float(rng.choice(capacity_levels))
        edges.append((a, b, cap))
        edges.append((b, a, cap))
    topo = Topology(num_nodes, edges, name=name or f"wan{num_nodes}")
    if not topo.is_strongly_connected():  # pragma: no cover - ring guarantees this
        raise RuntimeError("generated WAN topology is not strongly connected")
    return topo


def mismatch_example() -> Topology:
    """The 4-node example of Figure 19 (Appendix G.1).

    Nodes: s=0, r=1, t1=2, t2=3.  Edge capacities: s->t1 = 50, s->t2 = 100,
    s->r = 50, r->t1 = 50, r->t2 = 100 (and the reverse directions), so that
    traffic towards t2 rides higher-capacity paths and mispredicting it harms
    MLU less than mispredicting traffic towards t1.
    """
    caps = {
        (0, 2): 50.0,
        (0, 3): 100.0,
        (0, 1): 50.0,
        (1, 2): 50.0,
        (1, 3): 100.0,
    }
    edges = []
    for (a, b), cap in caps.items():
        edges.append((a, b, cap))
        edges.append((b, a, cap))
    return Topology(4, edges, name="mismatch-example")
