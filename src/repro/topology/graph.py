"""Capacitated directed network topology.

The :class:`Topology` class is the foundation of every other subsystem.  It
stores a directed multigraph-free edge list with per-edge capacities, provides
constant-time lookup of edge indices, and exposes conversions to
:mod:`networkx` graphs for algorithms that need them (shortest paths,
connectivity checks).

Edges are directed.  Undirected physical links are represented by two directed
edges with equal capacity, which is the convention used by the paper (GEANT's
74 directed edges correspond to 37 physical links).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

__all__ = ["Topology", "Edge"]


@dataclass(frozen=True)
class Edge:
    """A directed capacitated edge.

    Attributes:
        src: Source node index.
        dst: Destination node index.
        capacity: Edge capacity in arbitrary traffic units (must be > 0).
    """

    src: int
    dst: int
    capacity: float

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"self-loop edge {self.src}->{self.dst} is not allowed")
        if self.capacity <= 0:
            raise ValueError(f"edge capacity must be positive, got {self.capacity}")


class Topology:
    """A directed capacitated network topology.

    Args:
        num_nodes: Number of nodes, labelled ``0 .. num_nodes - 1``.
        edges: Iterable of ``(src, dst, capacity)`` triples or :class:`Edge`
            objects.  Duplicate ``(src, dst)`` pairs are rejected.
        name: Optional human readable name (e.g. ``"GEANT"``).

    Attributes:
        num_nodes: Number of nodes.
        num_edges: Number of directed edges.
        name: Topology name.
    """

    def __init__(self, num_nodes: int, edges, name: str = "topology") -> None:
        if num_nodes < 2:
            raise ValueError("a topology needs at least two nodes")
        self.num_nodes = int(num_nodes)
        self.name = name
        edge_objs: list[Edge] = []
        seen: set[tuple[int, int]] = set()
        for item in edges:
            edge = item if isinstance(item, Edge) else Edge(int(item[0]), int(item[1]), float(item[2]))
            if not (0 <= edge.src < num_nodes and 0 <= edge.dst < num_nodes):
                raise ValueError(f"edge {edge} references a node outside [0, {num_nodes})")
            key = (edge.src, edge.dst)
            if key in seen:
                raise ValueError(f"duplicate edge {key}")
            seen.add(key)
            edge_objs.append(edge)
        if not edge_objs:
            raise ValueError("a topology needs at least one edge")
        self._edges: tuple[Edge, ...] = tuple(edge_objs)
        self._edge_index: dict[tuple[int, int], int] = {
            (e.src, e.dst): i for i, e in enumerate(self._edges)
        }
        self._capacities = np.array([e.capacity for e in self._edges], dtype=float)

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return len(self._edges)

    @property
    def edges(self) -> tuple[Edge, ...]:
        """All edges in index order."""
        return self._edges

    @property
    def capacities(self) -> np.ndarray:
        """Vector of edge capacities, indexed by edge index (read-only copy)."""
        return self._capacities.copy()

    def edge_index(self, src: int, dst: int) -> int:
        """Return the index of the directed edge ``src -> dst``.

        Raises:
            KeyError: If the edge does not exist.
        """
        return self._edge_index[(src, dst)]

    def has_edge(self, src: int, dst: int) -> bool:
        """Return True if the directed edge ``src -> dst`` exists."""
        return (src, dst) in self._edge_index

    def capacity(self, src: int, dst: int) -> float:
        """Capacity of the directed edge ``src -> dst``."""
        return self._edges[self.edge_index(src, dst)].capacity

    def sd_pairs(self) -> list[tuple[int, int]]:
        """All ordered source-destination pairs (s != d), row-major order."""
        return [
            (s, d)
            for s in range(self.num_nodes)
            for d in range(self.num_nodes)
            if s != d
        ]

    @property
    def num_sd_pairs(self) -> int:
        """Number of ordered source-destination pairs."""
        return self.num_nodes * (self.num_nodes - 1)

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    def to_networkx(self, weight: str = "weight") -> nx.DiGraph:
        """Convert to a :class:`networkx.DiGraph`.

        Each edge gets attributes ``capacity`` and ``weight`` where weight
        defaults to 1 (hop count) and can be overridden by path algorithms.
        """
        graph = nx.DiGraph()
        graph.add_nodes_from(range(self.num_nodes))
        for edge in self._edges:
            graph.add_edge(edge.src, edge.dst, capacity=edge.capacity, **{weight: 1.0})
        return graph

    def reversed_copy(self) -> "Topology":
        """Return a topology with every edge direction reversed."""
        return Topology(
            self.num_nodes,
            [(e.dst, e.src, e.capacity) for e in self._edges],
            name=f"{self.name}-reversed",
        )

    def with_scaled_capacities(self, factor: float) -> "Topology":
        """Return a copy with all capacities multiplied by ``factor``."""
        if factor <= 0:
            raise ValueError("capacity scale factor must be positive")
        return Topology(
            self.num_nodes,
            [(e.src, e.dst, e.capacity * factor) for e in self._edges],
            name=self.name,
        )

    def without_edges(self, failed: set[tuple[int, int]] | list[tuple[int, int]]) -> "Topology":
        """Return a copy with the given directed edges removed.

        Used by failure experiments.  Raises if removing the edges would leave
        no edges at all.
        """
        failed_set = set(failed)
        remaining = [e for e in self._edges if (e.src, e.dst) not in failed_set]
        return Topology(self.num_nodes, remaining, name=f"{self.name}-failed")

    # ------------------------------------------------------------------ #
    # Properties of the graph
    # ------------------------------------------------------------------ #
    def is_strongly_connected(self) -> bool:
        """Return True if every node can reach every other node."""
        return nx.is_strongly_connected(self.to_networkx())

    def adjacency_matrix(self) -> np.ndarray:
        """Dense capacity adjacency matrix (0 where no edge)."""
        mat = np.zeros((self.num_nodes, self.num_nodes), dtype=float)
        for edge in self._edges:
            mat[edge.src, edge.dst] = edge.capacity
        return mat

    def total_capacity(self) -> float:
        """Sum of all edge capacities."""
        return float(self._capacities.sum())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Topology(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return (
            self.num_nodes == other.num_nodes
            and len(self._edges) == len(other._edges)
            and all(a == b for a, b in zip(self._edges, other._edges))
        )

    def __hash__(self) -> int:
        return hash((self.num_nodes, self._edges))
