"""Demand-oblivious traffic engineering (Applegate & Cohen, 2003).

Oblivious TE (baseline (3) of Section 5.1) chooses one fixed routing that
minimises the *oblivious performance ratio*: the worst case, over every
possible demand matrix, of the routing's MLU divided by the best possible MLU
for that demand.  Applegate & Cohen showed the problem is a polynomially
sized LP by dualising the inner adversarial maximisation; this module
implements their formulation restricted to a candidate path set (our routing
splits demand over the path set; the adversary's optimal routing may use any
edge, which keeps the guarantee conservative).

Formulation (variables ``r_p`` for path split ratios, ``t`` for the oblivious
ratio, and per observed edge ``a``: edge weights ``w_a(l) >= 0`` and node
potentials ``pi_a(s, j) >= 0`` with ``pi_a(s, s) = 0``):

    minimise t
    s.t.  sum_{p in P_sd} r_p = 1                          for every SD pair
          sum_l c(l) * w_a(l) <= t                          for every edge a
          pi_a(s, j) - pi_a(s, i) <= w_a(i, j)              for every a, s, (i, j)
          g_a(s, d) / c(a) <= pi_a(s, d)                    for every a, (s, d)
          where g_a(s, d) = sum_{p in P_sd, a in p} r_p

The LP grows as O(|E|^2 + |E| |V|^2) variables, which is why the paper (and
this reproduction) only runs Oblivious/COPE on small topologies (Table 2
marks larger instances infeasible).  COPE (see :mod:`repro.solvers.cope`)
re-uses the same dual blocks with a constant worst-case bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.paths.path_set import PathSet
from repro.solvers.lp import LPSolveError
from repro.te.config import TEConfiguration
from repro.te.scheme import TEScheme
from repro.traffic.matrix import TrafficMatrixSequence

__all__ = [
    "solve_oblivious_routing",
    "ObliviousTE",
    "oblivious_problem_size",
    "ObliviousDualBlocks",
    "build_dual_blocks",
]

#: Above this many LP variables the oblivious formulation is declared
#: infeasible for practical purposes (mirrors the paper's Table 2).
MAX_PRACTICAL_VARIABLES = 2_000_000


def oblivious_problem_size(path_set: PathSet) -> int:
    """Number of LP variables the oblivious formulation would need."""
    num_edges = path_set.topology.num_edges
    num_nodes = path_set.topology.num_nodes
    return (
        path_set.num_paths
        + 1
        + num_edges * num_edges
        + num_edges * num_nodes * num_nodes
    )


@dataclass
class ObliviousDualBlocks:
    """Sparse pieces of the Applegate-Cohen dual constraints.

    Attributes:
        a_ub: Inequality matrix over the full variable vector.
        b_ub: Right-hand sides.
        num_vars: Total number of LP variables (paths + ratio + duals).
        t_index: Column index of the oblivious-ratio variable ``t``.
    """

    a_ub: sparse.csr_matrix
    b_ub: np.ndarray
    num_vars: int
    t_index: int


def build_dual_blocks(path_set: PathSet, ratio_bound: float | None = None) -> ObliviousDualBlocks:
    """Build the dual constraint blocks shared by Oblivious TE and COPE.

    Args:
        path_set: Candidate paths.
        ratio_bound: If ``None``, the per-edge weight budget is bounded by the
            LP variable ``t`` (pure oblivious objective).  If a float, the
            budget is bounded by that constant instead (COPE's penalty
            envelope), leaving ``t`` free for another role.

    Raises:
        LPSolveError: If the topology is too large for the formulation.
    """
    topology = path_set.topology
    num_paths = path_set.num_paths
    num_edges = topology.num_edges
    num_nodes = topology.num_nodes
    capacities = topology.capacities

    total_vars = oblivious_problem_size(path_set)
    if total_vars > MAX_PRACTICAL_VARIABLES:
        raise LPSolveError(
            f"oblivious LP would need {total_vars} variables; "
            "the formulation is impractical for this topology (cf. Table 2)"
        )

    # Variable layout:
    #   [r_0 .. r_{P-1}, t, w_{a, l} (a major, l minor), pi_{a}(s, j)]
    t_index = num_paths
    w_offset = num_paths + 1
    pi_offset = w_offset + num_edges * num_edges
    num_vars = pi_offset + num_edges * num_nodes * num_nodes

    def w_index(a: int, l: int) -> int:
        return w_offset + a * num_edges + l

    def pi_index(a: int, s: int, j: int) -> int:
        return pi_offset + (a * num_nodes + s) * num_nodes + j

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    b_ub: list[float] = []
    row = 0

    def add_entry(r: int, c: int, v: float) -> None:
        rows.append(r)
        cols.append(c)
        vals.append(v)

    # Paths crossing each edge, grouped later by SD pair.
    paths_on_edge: list[list[int]] = [[] for _ in range(num_edges)]
    incidence = path_set.path_to_edge.tocoo()
    for p_idx, e_idx in zip(incidence.row, incidence.col):
        paths_on_edge[int(e_idx)].append(int(p_idx))

    edge_endpoints = [(e.src, e.dst) for e in topology.edges]
    sd_pairs = path_set.sd_pairs

    for a in range(num_edges):
        # (1) sum_l c(l) w_a(l) <= t  (or <= ratio_bound for COPE).
        for l in range(num_edges):
            add_entry(row, w_index(a, l), capacities[l])
        if ratio_bound is None:
            add_entry(row, t_index, -1.0)
            b_ub.append(0.0)
        else:
            b_ub.append(float(ratio_bound))
        row += 1

        # (2) triangle inequalities: pi_a(s, j) - pi_a(s, i) - w_a(i, j) <= 0.
        for l, (i, j) in enumerate(edge_endpoints):
            for s in range(num_nodes):
                if j == s:
                    # pi_a(s, s) = 0, and -pi_a(s, i) <= w_a is implied by the
                    # non-negativity bounds, so the row is redundant.
                    continue
                add_entry(row, pi_index(a, s, j), 1.0)
                if i != s:
                    add_entry(row, pi_index(a, s, i), -1.0)
                add_entry(row, w_index(a, l), -1.0)
                b_ub.append(0.0)
                row += 1

        # (3) g_a(s, d) / c(a) - pi_a(s, d) <= 0.
        inv_cap_a = 1.0 / capacities[a]
        per_pair_paths: dict[int, list[int]] = {}
        for p_idx in paths_on_edge[a]:
            per_pair_paths.setdefault(int(path_set.path_sd_index[p_idx]), []).append(p_idx)
        for pair_idx, p_indices in per_pair_paths.items():
            s, d = sd_pairs[pair_idx]
            for p_idx in p_indices:
                add_entry(row, p_idx, inv_cap_a)
            add_entry(row, pi_index(a, s, d), -1.0)
            b_ub.append(0.0)
            row += 1

    a_ub = sparse.csr_matrix((vals, (rows, cols)), shape=(row, num_vars))
    return ObliviousDualBlocks(
        a_ub=a_ub, b_ub=np.array(b_ub), num_vars=num_vars, t_index=t_index
    )


def split_ratio_equalities(path_set: PathSet, num_vars: int) -> tuple[sparse.csr_matrix, np.ndarray]:
    """Per-pair "split ratios sum to one" equality rows over ``num_vars`` columns."""
    rows, cols, vals = [], [], []
    for pair_idx, (s, d) in enumerate(path_set.sd_pairs):
        for p_idx in path_set.path_indices_for(s, d):
            rows.append(pair_idx)
            cols.append(p_idx)
            vals.append(1.0)
    a_eq = sparse.csr_matrix((vals, (rows, cols)), shape=(path_set.num_sd_pairs, num_vars))
    return a_eq, np.ones(path_set.num_sd_pairs)


def solve_oblivious_routing(path_set: PathSet) -> tuple[TEConfiguration, float]:
    """Solve the oblivious-routing LP over a candidate path set.

    Returns:
        ``(configuration, oblivious ratio)``.

    Raises:
        LPSolveError: If the topology is too large or the LP fails.
    """
    blocks = build_dual_blocks(path_set, ratio_bound=None)
    a_eq, b_eq = split_ratio_equalities(path_set, blocks.num_vars)

    cost = np.zeros(blocks.num_vars)
    cost[blocks.t_index] = 1.0
    bounds = [(0.0, 1.0)] * path_set.num_paths + [(0.0, None)] * (
        blocks.num_vars - path_set.num_paths
    )
    result = linprog(
        cost,
        A_ub=blocks.a_ub,
        b_ub=blocks.b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        raise LPSolveError(f"oblivious LP failed: {result.message}")
    ratios = result.x[: path_set.num_paths]
    return TEConfiguration(path_set, ratios, normalize=True), float(result.fun)


class ObliviousTE(TEScheme):
    """Demand-oblivious TE: one fixed routing optimised for the worst case.

    The routing is computed once during :meth:`precompute` (or lazily on the
    first :meth:`configure` call) and never updated, matching the paper's
    treatment in Table 2.
    """

    def __init__(self, path_set: PathSet) -> None:
        super().__init__(path_set, name="Oblivious")
        self._config: TEConfiguration | None = None
        self.oblivious_ratio: float | None = None

    def precompute(self, train_sequence: TrafficMatrixSequence) -> None:
        self._solve()

    def _solve(self) -> None:
        if self._config is None:
            self._config, self.oblivious_ratio = solve_oblivious_routing(self.path_set)

    def configure(self, history: np.ndarray) -> TEConfiguration:
        self._solve()
        assert self._config is not None
        return self._config

    def configure_batch(self, windows: np.ndarray) -> np.ndarray:
        """The routing is static, so the batch is one broadcast of the solution."""
        self._solve()
        assert self._config is not None
        return self._static_batch(windows, self._config)
