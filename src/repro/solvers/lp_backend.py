"""Pluggable LP solver backends for the MLU-minimisation hot path.

Every number the paper reports is normalised by the omniscient MLU LP
(Appendix B, Equation 9), so the LP solver *is* the cold-run hot path.  This
module puts a small backend layer behind :func:`repro.solvers.lp.solve_mlu_lp`
/ :func:`~repro.solvers.lp.solve_mlu_lp_batch`, mirroring the
:mod:`repro.backend` array-backend pattern:

* :class:`ScipyLinprogBackend` (name ``"scipy"``) -- the default.  Runs
  today's ``scipy.optimize.linprog(method="highs")`` code path verbatim, so
  with no backend selected results stay bit-identical to every previous
  release.
* :class:`PersistentHighsBackend` (name ``"highs"``) -- builds one persistent
  HiGHS model per ``(PathSet, ratio-upper-bounds)`` key and re-solves each
  demand warm-started from the previous optimal basis: no model rebuild, no
  re-presolve, dual-simplex hot restarts across a whole demand family.
  Roughly an order of magnitude more fresh solves/sec on trace replay
  workloads (see ``BENCH_lp_warmstart.json``).

Selection follows the array-backend conventions: the ``REPRO_LP_BACKEND``
environment variable, explicit ``lp_backend=`` / ``backend=`` arguments on
the solver entry points, the engine and the study layer, or ``"auto"``
(HiGHS when importable, scipy otherwise).  A known-but-unimportable backend
falls back to scipy with a single :class:`RuntimeWarning` per process.

The ``highs`` backend needs the ``highspy`` bindings.  When the standalone
``highspy`` package is missing, the backend transparently uses the private
copy scipy >= 1.15 vendors for its own ``linprog``/``milp`` (the same
pybind11 module, so no new dependency is required); with neither available
it is unimportable and selection falls back to scipy.

Warm-start formulation
----------------------

The ratio LP's demand enters the *coefficients* of the edge-load rows, and
coefficient edits invalidate a simplex basis factorisation.  The persistent
model therefore solves the equivalent flow form with explicit per-pair
supply slacks (``x_p = r_p * d_{sd(p)}``)::

    minimise    t
    subject to  sum_{p in P_i} x_p - s_i = 0      for every SD pair i
                sum_{p: e in p} x_p - c(e) t <= 0 for every edge e
                x >= 0, t >= 0, s_i = d_i  (fixed by its bounds)

A new demand is then *one* bulk column-bounds update (``s_i in [d_i, d_i]``),
which preserves dual feasibility of the previous basis -- exactly the hot
restart dual simplex is built for.  The optimal objective equals the ratio
LP's optimal MLU; the optimal *vertex* may differ (degenerate LPs have many),
which is why equivalence is asserted on the MLU, not on the split ratios.
"""

from __future__ import annotations

import os
import warnings
from collections import OrderedDict

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

__all__ = [
    "LP_BACKEND_ENV_VAR",
    "LPBackend",
    "ScipyLinprogBackend",
    "PersistentHighsBackend",
    "available_lp_backends",
    "importable_lp_backends",
    "get_lp_backend",
    "resolve_lp_backend",
]

#: Environment variable naming the default LP backend for the process.
LP_BACKEND_ENV_VAR = "REPRO_LP_BACKEND"

#: Persistent HiGHS models kept per backend instance (LRU beyond this).
MAX_PERSISTENT_MODELS = 8


class LPBackend:
    """Interface of an MLU-LP solver backend.

    Backends receive the demand vector together with the already-resolved
    per-path ratio upper bounds (sensitivity caps x failure masks, feasibility
    relaxation applied -- see ``repro.solvers.lp._ratio_upper_bounds``), and
    return raw arrays; the public :func:`~repro.solvers.lp.solve_mlu_lp`
    wrapper owns validation, the solve counter and the
    :class:`~repro.te.config.TEConfiguration` packaging.
    """

    #: Registry name of the backend.
    name = "abstract"

    def solve(self, path_set, demand_vector, upper) -> tuple[np.ndarray, float]:
        """Solve one LP; return ``(split_ratios, optimal_mlu)``.

        Raises:
            repro.solvers.lp.LPSolveError: If the LP is infeasible or the
                solver fails, with the solver's status message.
        """
        raise NotImplementedError

    def solve_mlu(self, path_set, demand_vector, upper) -> float:
        """Optimal MLU only -- the normaliser fast path.

        Backends that can skip extracting the full solution vector override
        this; the default just discards the ratios.
        """
        return self.solve(path_set, demand_vector, upper)[1]


class ScipyLinprogBackend(LPBackend):
    """The historical ``scipy.optimize.linprog(method="highs")`` path.

    Each solve hands scipy a freshly rescaled constraint matrix (sparsity
    arrays shared via :class:`~repro.solvers.lp.MLUConstraintStructure`), so
    results are bit-identical to the pre-backend implementation.
    """

    name = "scipy"

    def _run(self, path_set, demand_vector, upper):
        from repro.solvers.lp import LPSolveError, constraint_structure

        structure = constraint_structure(path_set)
        result = linprog(
            structure.cost,
            A_ub=structure.a_ub(demand_vector),
            b_ub=structure.b_ub,
            A_eq=structure.a_eq,
            b_eq=structure.b_eq,
            bounds=structure.bounds_array(upper),
            method="highs",
        )
        if not result.success:
            raise LPSolveError(f"MLU LP failed: {result.message}")
        return result

    def solve(self, path_set, demand_vector, upper):
        result = self._run(path_set, demand_vector, upper)
        return result.x[: path_set.num_paths], float(result.x[-1])

    def solve_mlu(self, path_set, demand_vector, upper) -> float:
        # scipy returns the full solution either way; skipping the ratio
        # slice only saves the caller the TEConfiguration packaging.
        return float(self._run(path_set, demand_vector, upper).x[-1])


def _load_highspy():
    """The highspy bindings: the standalone package, else scipy's vendored copy.

    Returns ``(module_like, Highs_class)``.  Raises :class:`ImportError` when
    neither is available (old scipy without the vendored solver).
    """
    try:
        import highspy

        return highspy, highspy.Highs
    except ImportError:
        pass
    try:
        from scipy.optimize._highspy import _core

        return _core, _core._Highs
    except (ImportError, AttributeError) as exc:
        raise ImportError(
            "the 'highs' LP backend needs the highspy bindings (pip install "
            "highspy), and this scipy does not vendor them"
        ) from exc


class _PersistentModel:
    """One warm-startable HiGHS model for a ``(PathSet, upper-bounds)`` key."""

    def __init__(self, hs, highs_cls, path_set, structure, upper) -> None:
        num_paths = path_set.num_paths
        num_pairs = path_set.num_sd_pairs
        num_edges = structure.b_ub.shape[0]
        num_cols = num_paths + 1 + num_pairs
        inf = hs.kHighsInf

        self._path_sd_index = path_set.path_sd_index
        self._num_paths = num_paths
        self._num_pairs = num_pairs
        #: Indices of the per-pair supply slacks (their bounds carry the demand).
        self._slack_cols = np.arange(num_paths + 1, num_cols, dtype=np.int32)
        # Fractional sensitivity caps (0 < u < 1) scale with the demand, so
        # those flow columns get per-solve bounds u_p * d_{sd(p)}; u >= 1 is
        # implied by the supply equality, u == 0 is fixed at build time.
        fractional = np.flatnonzero((upper > 0.0) & (upper < 1.0))
        self._frac_cols = fractional.astype(np.int32)
        self._frac_caps = np.ascontiguousarray(upper[fractional], dtype=float)
        self._frac_sd = self._path_sd_index[fractional]
        self._frac_lower = np.zeros(fractional.size)
        # Zero-demand pairs carry no flow, so any caps-respecting split is
        # optimal; distribute proportionally to the upper bounds (feasible
        # because the relaxation guarantees they sum to >= 1 per pair).
        cap_sums = np.zeros(num_pairs)
        np.add.at(cap_sums, self._path_sd_index, upper)
        # A pair with an all-zero upper only occurs when infeasibility is
        # being forced deliberately (the relaxation otherwise prevents it);
        # the LP will fail before these placeholder ratios are ever used.
        path_cap_sums = cap_sums[self._path_sd_index]
        self._zero_demand_ratios = np.divide(
            upper,
            path_cap_sums,
            out=np.zeros(num_paths),
            where=path_cap_sums > 0.0,
        )

        # [ sd_to_path | 0 | -I ] x,t,s = 0   (pair supply rows)
        # [ path_to_edge^T | -c | 0 ] <= 0    (edge load rows)
        equality = sparse.hstack(
            [structure.a_eq, -sparse.identity(num_pairs, format="csr")]
        )
        load = sparse.hstack(
            [structure._template, sparse.csr_matrix((num_edges, num_pairs))]
        )
        matrix = sparse.vstack([equality, load]).tocsc()
        matrix.sort_indices()

        lp = hs.HighsLp()
        lp.num_col_ = num_cols
        lp.num_row_ = num_pairs + num_edges
        cost = np.zeros(num_cols)
        cost[num_paths] = 1.0
        lp.col_cost_ = cost
        col_upper = np.full(num_cols, inf)
        col_upper[np.flatnonzero(upper == 0.0)] = 0.0
        lp.col_lower_ = np.zeros(num_cols)
        lp.col_upper_ = col_upper
        lp.row_lower_ = np.concatenate(
            [np.zeros(num_pairs), np.full(num_edges, -inf)]
        )
        lp.row_upper_ = np.zeros(num_pairs + num_edges)
        lp.a_matrix_.format_ = hs.MatrixFormat.kColwise
        lp.a_matrix_.start_ = matrix.indptr
        lp.a_matrix_.index_ = matrix.indices
        lp.a_matrix_.value_ = matrix.data

        solver = highs_cls()
        solver.setOptionValue("output_flag", False)
        # Measured on trace replay: skipping the basis-condition check and
        # raising the factorisation-update limit keeps the hot restart on the
        # updated factors, and devex pricing beats the steepest-edge default
        # by ~25% on the short re-solves this model exists for (steepest-edge
        # weights go stale with every bounds flip; devex re-primes cheaply).
        # Every other non-default option (presolve off, dantzig pricing, no
        # scaling, primal simplex, looser pivot tolerance) solved slower or
        # traded stability for nothing.
        solver.setOptionValue("simplex_initial_condition_check", False)
        solver.setOptionValue("simplex_update_limit", 20000)
        solver.setOptionValue("simplex_dual_edge_weight_strategy", 1)  # devex
        solver.passModel(lp)
        self._solver = solver
        self._optimal = hs.HighsModelStatus.kOptimal

    def _run(self, demand_vector: np.ndarray) -> float:
        from repro.solvers.lp import LPSolveError

        solver = self._solver
        demand = np.ascontiguousarray(demand_vector, dtype=float)
        if self._frac_cols.size:
            solver.changeColsBounds(
                self._frac_cols.size,
                self._frac_cols,
                self._frac_lower,
                self._frac_caps * demand[self._frac_sd],
            )
        solver.changeColsBounds(self._num_pairs, self._slack_cols, demand, demand)
        solver.run()
        status = solver.getModelStatus()
        if status != self._optimal:
            raise LPSolveError(
                f"MLU LP failed: {solver.modelStatusToString(status)}"
            )
        return float(solver.getObjectiveValue())

    def solve_mlu(self, demand_vector: np.ndarray) -> float:
        return self._run(demand_vector)

    def solve(self, demand_vector: np.ndarray) -> tuple[np.ndarray, float]:
        mlu = self._run(demand_vector)
        flows = np.asarray(
            self._solver.getSolution().col_value[: self._num_paths], dtype=float
        )
        demand_per_path = np.asarray(demand_vector, dtype=float)[self._path_sd_index]
        carried = demand_per_path > 0.0
        ratios = np.where(
            carried,
            flows / np.where(carried, demand_per_path, 1.0),
            self._zero_demand_ratios,
        )
        return ratios, mlu


class PersistentHighsBackend(LPBackend):
    """Warm-started persistent HiGHS models, one per (PathSet, bounds) key.

    The first solve for a key builds and factorises the model; subsequent
    solves only move the demand-carrying column bounds and hot-restart the
    dual simplex from the previous basis.  Models are kept per backend
    instance in an LRU of :data:`MAX_PERSISTENT_MODELS`.

    The optimal MLU matches :class:`ScipyLinprogBackend` to solver tolerance
    (the equivalence suite pins 1e-9); the returned split ratios can sit on a
    different optimal vertex of degenerate LPs.
    """

    name = "highs"

    def __init__(self) -> None:
        self._hs, self._highs_cls = _load_highspy()
        self._models: OrderedDict[tuple[str, bytes], _PersistentModel] = OrderedDict()

    def clear_models(self) -> None:
        """Drop every persistent model (frees the solver instances)."""
        self._models.clear()

    @property
    def num_models(self) -> int:
        """Number of persistent models currently cached."""
        return len(self._models)

    def _model(self, path_set, upper) -> _PersistentModel:
        key = (path_set.fingerprint, np.ascontiguousarray(upper).tobytes())
        model = self._models.get(key)
        if model is None:
            from repro.solvers.lp import constraint_structure

            model = _PersistentModel(
                self._hs, self._highs_cls, path_set, constraint_structure(path_set), upper
            )
            self._models[key] = model
            if len(self._models) > MAX_PERSISTENT_MODELS:
                self._models.popitem(last=False)
        else:
            self._models.move_to_end(key)
        return model

    def solve(self, path_set, demand_vector, upper):
        return self._model(path_set, upper).solve(demand_vector)

    def solve_mlu(self, path_set, demand_vector, upper) -> float:
        return self._model(path_set, upper).solve_mlu(demand_vector)


_FACTORIES = {
    "scipy": ScipyLinprogBackend,
    "highs": PersistentHighsBackend,
}

_INSTANCES: dict[str, LPBackend] = {}
_FALLBACK_WARNED: set[str] = set()


def available_lp_backends() -> tuple[str, ...]:
    """Registered LP backend names (``highs`` may not be importable)."""
    return tuple(_FACTORIES)


def importable_lp_backends() -> tuple[str, ...]:
    """LP backends that can actually run on this machine (no fallbacks)."""
    names = ["scipy"]
    try:
        _load_highspy()
    except ImportError:
        pass
    else:
        names.append("highs")
    return tuple(names)


def _instantiate(name: str) -> LPBackend:
    backend = _INSTANCES.get(name)
    if backend is None:
        backend = _FACTORIES[name]()
        _INSTANCES[name] = backend
    return backend


def get_lp_backend(name: str | None = None) -> LPBackend:
    """Resolve an LP backend by name, environment variable, or default.

    Args:
        name: Backend name, or None to consult ``REPRO_LP_BACKEND`` (falling
            back to ``scipy``, the bit-identical default).  The special name
            ``auto`` picks ``highs`` when importable, ``scipy`` otherwise.

    Returns:
        The (cached) backend instance.  A *known but unimportable* backend
        falls back to scipy with a single warning per process; an *unknown*
        name raises :class:`ValueError`.
    """
    if name is None:
        name = os.environ.get(LP_BACKEND_ENV_VAR) or "scipy"
    name = name.strip().lower()
    if name == "auto":
        try:
            return _instantiate("highs")
        except ImportError:
            return _instantiate("scipy")
    if name not in _FACTORIES:
        raise ValueError(
            f"unknown LP backend {name!r} (from {LP_BACKEND_ENV_VAR} or an "
            f"explicit argument); known backends: "
            f"{', '.join(sorted(_FACTORIES))}, or 'auto'"
        )
    try:
        return _instantiate(name)
    except ImportError as exc:
        if name not in _FALLBACK_WARNED:
            _FALLBACK_WARNED.add(name)
            warnings.warn(
                f"LP backend {name!r} is not importable ({exc}); "
                "falling back to scipy",
                RuntimeWarning,
                stacklevel=2,
            )
        # Cache the fallback under the failing name so hot-path resolution
        # does not re-attempt the import on every solve.
        fallback = _instantiate("scipy")
        _INSTANCES[name] = fallback
        return fallback


def resolve_lp_backend(backend: "LPBackend | str | None") -> LPBackend:
    """Normalise a function's ``backend`` argument.

    ``None`` means the environment default (``REPRO_LP_BACKEND``, scipy if
    unset), a string is looked up in the registry, and an instance passes
    through.
    """
    if backend is None:
        return get_lp_backend(None)
    if isinstance(backend, LPBackend):
        return backend
    return get_lp_backend(backend)
