"""COPE: Common-case Optimisation with Penalty Envelope (Wang et al., 2006).

COPE (baseline (5) of Section 5.1) improves on purely oblivious TE by
optimising the normalised MLU over a *set of predicted demand matrices*
(recently observed DMs and, implicitly, their convex hull) while retaining a
worst-case guarantee over *all* demand matrices -- the "penalty envelope".

The reproduction formulates COPE as a single LP:

    minimise t
    s.t.  split ratios of every SD pair sum to one
          load_e(D_i) <= t * OPT(D_i) * c(e)     for every predicted DM D_i
                                                  and every edge e
          [Applegate-Cohen dual blocks]           bounding the oblivious
                                                  ratio by the penalty
                                                  envelope beta

Because the predicted-set constraint is linear in the demand, constraining
the vertices of the prediction set also constrains its convex hull, exactly
as in the original COPE formulation.  The penalty envelope defaults to a
multiple of the optimal oblivious ratio, which is how the COPE paper selects
it.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.paths.path_set import PathSet
from repro.solvers.lp import LPSolveError, omniscient_mlu
from repro.solvers.oblivious import (
    build_dual_blocks,
    solve_oblivious_routing,
    split_ratio_equalities,
)
from repro.te.config import TEConfiguration
from repro.te.scheme import TEScheme
from repro.traffic.matrix import TrafficMatrixSequence

__all__ = ["solve_cope", "CopeTE"]


def solve_cope(
    path_set: PathSet,
    predicted_demands: np.ndarray,
    penalty_envelope: float,
) -> tuple[TEConfiguration, float]:
    """Solve the COPE LP.

    Args:
        path_set: Candidate paths.
        predicted_demands: Array of shape ``(K, num_sd_pairs)`` holding the
            prediction set (recently observed demand vectors).
        penalty_envelope: Absolute bound on the oblivious performance ratio
            the solution must guarantee for demands outside the prediction
            set.

    Returns:
        ``(configuration, worst normalised MLU over the prediction set)``.

    Raises:
        LPSolveError: If the LP is infeasible (e.g. the penalty envelope is
            tighter than the best achievable oblivious ratio) or the topology
            is too large for the dual blocks.
    """
    predicted = np.atleast_2d(np.asarray(predicted_demands, dtype=float))
    if predicted.shape[1] != path_set.num_sd_pairs:
        raise ValueError("predicted demands must have one column per SD pair")
    if penalty_envelope <= 0:
        raise ValueError("penalty_envelope must be positive")

    blocks = build_dual_blocks(path_set, ratio_bound=penalty_envelope)
    num_vars = blocks.num_vars
    t_index = blocks.t_index
    num_paths = path_set.num_paths
    capacities = path_set.topology.capacities
    num_edges = path_set.topology.num_edges

    # Predicted-set rows: load_e(D_i) - t * OPT_i * c_e <= 0.
    pred_rows: list[sparse.csr_matrix] = []
    pred_b: list[np.ndarray] = []
    for demand in predicted:
        opt = omniscient_mlu(path_set, demand)
        demand_per_path = path_set.demand_per_path(demand)
        scaled = path_set.path_to_edge.T @ sparse.diags(demand_per_path)
        t_col = sparse.csr_matrix(
            (
                -opt * capacities,
                (np.arange(num_edges), np.full(num_edges, t_index)),
            ),
            shape=(num_edges, num_vars),
        )
        load_block = sparse.hstack(
            [scaled, sparse.csr_matrix((num_edges, num_vars - num_paths))]
        )
        pred_rows.append((load_block + t_col).tocsr())
        pred_b.append(np.zeros(num_edges))

    a_ub = sparse.vstack([blocks.a_ub] + pred_rows).tocsr()
    b_ub = np.concatenate([blocks.b_ub] + pred_b)
    a_eq, b_eq = split_ratio_equalities(path_set, num_vars)

    cost = np.zeros(num_vars)
    cost[t_index] = 1.0
    bounds = [(0.0, 1.0)] * num_paths + [(0.0, None)] * (num_vars - num_paths)

    result = linprog(
        cost,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        raise LPSolveError(f"COPE LP failed: {result.message}")
    ratios = result.x[:num_paths]
    return TEConfiguration(path_set, ratios, normalize=True), float(result.fun)


class CopeTE(TEScheme):
    """COPE as an evaluation scheme.

    The LP is solved once on the tail of the training trace (Table 2 treats
    COPE as precompute-only) and the resulting configuration is reused for
    every test interval.

    Args:
        path_set: Candidate paths.
        prediction_set_size: Number of most recent training DMs forming the
            prediction set.
        penalty_envelope_factor: The penalty envelope is this factor times
            the optimal oblivious ratio of the topology.
    """

    def __init__(
        self,
        path_set: PathSet,
        prediction_set_size: int = 6,
        penalty_envelope_factor: float = 2.0,
    ) -> None:
        super().__init__(path_set, name="COPE")
        if prediction_set_size < 1:
            raise ValueError("prediction_set_size must be at least 1")
        if penalty_envelope_factor < 1.0:
            raise ValueError("penalty_envelope_factor must be at least 1")
        self.prediction_set_size = prediction_set_size
        self.penalty_envelope_factor = penalty_envelope_factor
        self._config: TEConfiguration | None = None
        self.predicted_set_mlu: float | None = None
        self.penalty_envelope: float | None = None

    def precompute(self, train_sequence: TrafficMatrixSequence) -> None:
        _, oblivious_ratio = solve_oblivious_routing(self.path_set)
        self.penalty_envelope = self.penalty_envelope_factor * oblivious_ratio
        demands = train_sequence.flat_demands()[-self.prediction_set_size :]
        self._config, self.predicted_set_mlu = solve_cope(
            self.path_set, demands, self.penalty_envelope
        )

    def configure(self, history: np.ndarray) -> TEConfiguration:
        if self._config is None:
            raise RuntimeError("CopeTE.configure called before precompute()")
        return self._config

    def configure_batch(self, windows: np.ndarray) -> np.ndarray:
        """The routing is static, so the batch is one broadcast of the solution."""
        if self._config is None:
            raise RuntimeError("CopeTE.configure_batch called before precompute()")
        return self._static_batch(windows, self._config)
