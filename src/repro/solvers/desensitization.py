"""Desensitization-based TE (Google Jupiter's hedging mechanism).

This is baseline (2) of Section 5.1: the scheme deployed in Google's Jupiter
data centers.  It builds an *anticipated* demand matrix from the per-pair
peak over a recent window and minimises MLU under a uniform path-sensitivity
constraint ``S_p = r_p / C_p <= threshold`` that forces every flow to hedge
across multiple paths.

The fault-aware variant (``FA Des TE`` in Figure 7) additionally knows which
links will fail and optimises only over the surviving paths.
"""

from __future__ import annotations

import numpy as np

from repro.paths.path_set import PathSet
from repro.solvers.lp import predict_demand, solve_mlu_lp
from repro.te.config import TEConfiguration
from repro.te.scheme import TEScheme
from repro.te.sensitivity import normalized_path_capacities

__all__ = ["DesensitizationTE", "FaultAwareDesensitizationTE"]

#: Default uniform sensitivity threshold, expressed w.r.t. capacities
#: normalised so the smallest edge capacity equals 1 (the "Original" setting
#: of Appendix C, Tables 7 and 8).
DEFAULT_SENSITIVITY_THRESHOLD = 2.0 / 3.0


class DesensitizationTE(TEScheme):
    """Google-Jupiter-style hedging TE with a fixed sensitivity threshold.

    Args:
        path_set: Candidate paths.
        sensitivity_threshold: Uniform upper bound on the (capacity
            normalised) path sensitivity.  If the bound would make some SD
            pair infeasible (because even spreading over all of its paths
            cannot satisfy it), the bound is relaxed for that pair to the
            smallest feasible value.
        window: Number of recent demand matrices whose per-pair peak forms
            the anticipated matrix.
    """

    def __init__(
        self,
        path_set: PathSet,
        sensitivity_threshold: float = DEFAULT_SENSITIVITY_THRESHOLD,
        window: int = 12,
    ) -> None:
        super().__init__(path_set, name="Des TE")
        if sensitivity_threshold <= 0:
            raise ValueError("sensitivity_threshold must be positive")
        if window < 1:
            raise ValueError("window must be at least 1")
        self.sensitivity_threshold = sensitivity_threshold
        self.window = window
        self._caps = self._feasible_caps(
            np.full(path_set.num_sd_pairs, sensitivity_threshold)
        )

    def _feasible_caps(self, per_pair_threshold: np.ndarray) -> np.ndarray:
        """Translate per-pair sensitivity thresholds into per-path ratio caps.

        The ratio cap of path ``p`` serving pair ``sd`` is
        ``threshold_sd * C_p`` (with normalised capacities).  If the caps of a
        pair's paths sum to less than one, the pair's threshold is raised to
        the smallest feasible value so that the LP stays solvable -- this is
        the feasibility caveat discussed in Appendix C.1.
        """
        norm_caps = normalized_path_capacities(self.path_set)
        thresholds = np.asarray(per_pair_threshold, dtype=float).copy()
        for pair_idx, (src, dst) in enumerate(self.path_set.sd_pairs):
            indices = np.array(self.path_set.path_indices_for(src, dst))
            total = float(norm_caps[indices].sum())
            min_feasible = 1.0 / total if total > 0 else np.inf
            if thresholds[pair_idx] < min_feasible:
                thresholds[pair_idx] = min_feasible
        return thresholds[self.path_set.path_sd_index] * norm_caps

    def anticipated_demand(self, history: np.ndarray) -> np.ndarray:
        """Per-pair peak over the most recent ``window`` demand vectors."""
        history = np.asarray(history, dtype=float)
        recent = history[-self.window :]
        return predict_demand(recent, strategy="peak")

    def configure(self, history: np.ndarray) -> TEConfiguration:
        anticipated = self.anticipated_demand(history)
        config, _ = solve_mlu_lp(self.path_set, anticipated, sensitivity_caps=self._caps)
        return config


class FaultAwareDesensitizationTE(DesensitizationTE):
    """Des TE with oracle knowledge of upcoming link failures (``FA Des TE``).

    Args:
        path_set: Candidate paths.
        failed_edges: Directed edges known to fail; paths traversing them are
            excluded from the optimisation.
        sensitivity_threshold: As in :class:`DesensitizationTE`.
        window: As in :class:`DesensitizationTE`.
    """

    def __init__(
        self,
        path_set: PathSet,
        failed_edges: set[tuple[int, int]] | None = None,
        sensitivity_threshold: float = DEFAULT_SENSITIVITY_THRESHOLD,
        window: int = 12,
    ) -> None:
        super().__init__(path_set, sensitivity_threshold=sensitivity_threshold, window=window)
        self.name = "FA Des TE"
        self.failed_edges: set[tuple[int, int]] = set(failed_edges or set())

    def set_failures(self, failed_edges: set[tuple[int, int]]) -> None:
        """Update the set of links the scheme knows will fail."""
        self.failed_edges = set(failed_edges)

    def configure(self, history: np.ndarray) -> TEConfiguration:
        anticipated = self.anticipated_demand(history)
        mask = self.path_set.restrict_to_working_paths(self.failed_edges)
        config, _ = solve_mlu_lp(
            self.path_set,
            anticipated,
            sensitivity_caps=self._caps,
            path_mask=mask,
        )
        return config
