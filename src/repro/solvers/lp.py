"""Linear-programming MLU minimisation (Appendix B, Equation 9).

Given a demand matrix and a candidate path set, the optimal split ratios that
minimise the maximum link utilisation are the solution of the LP:

    minimise    t
    subject to  sum_{p in P_sd} r_p = 1                      for every SD pair
                sum_{p: e in p} D_{sd(p)} r_p <= t * c(e)    for every edge e
                r_p >= 0

This module provides the raw solver (:func:`solve_mlu_lp`), a batched variant
(:func:`solve_mlu_lp_batch`) with optional process-pool fan-out, the
omniscient benchmark used to normalise every MLU the paper reports
(:func:`omniscient_mlu`), a disk-persistable cache for those normalisers
(:class:`OptimalMLUCache`, with a process-wide instance via
:func:`shared_cache`), and the two simplest schemes built directly on
the LP: :class:`OmniscientTE` (perfect knowledge of the next demand) and
:class:`PredictionBasedTE` (solve for a demand predicted from history).

The LP's constraint matrices depend on the demand only through a diagonal
rescale of the path-to-edge incidence, so everything demand-independent
(sparsity pattern, equality rows, capacity column, bounds template) is
precomputed once per :class:`PathSet` in :class:`MLUConstraintStructure` and
shared by every subsequent solve.

The solver itself is pluggable (see :mod:`repro.solvers.lp_backend`): the
default ``scipy`` backend runs ``linprog`` exactly as before, while the
``highs`` backend keeps one persistent warm-started HiGHS model per
(path set, bounds) key -- selected per call (``backend=``), per process
(``REPRO_LP_BACKEND``), or ``"auto"``.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import pickle
import warnings
import weakref
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path

import numpy as np
from scipy import sparse

from repro.paths.path_set import PathSet
from repro.solvers.lp_backend import (
    LPBackend,
    available_lp_backends,
    resolve_lp_backend,
)
from repro.te.config import TEConfiguration
from repro.te.scheme import TEScheme

__all__ = [
    "LPSolveError",
    "MLUConstraintStructure",
    "constraint_structure",
    "solve_mlu_lp",
    "solve_mlu_lp_batch",
    "omniscient_mlu",
    "OptimalMLUCache",
    "shared_cache",
    "default_lp_workers",
    "resolve_lp_workers",
    "LP_WORKERS_ENV_VAR",
    "lp_solve_calls",
    "count_lp_solves",
    "LPSolveTally",
    "OmniscientTE",
    "PredictionBasedTE",
    "predict_demand",
]


class LPSolveError(RuntimeError):
    """Raised when the LP solver fails to find an optimal solution."""


#: Raw LP solve counter (this process only); see :func:`lp_solve_calls`.
_LP_SOLVE_CALLS = 0


def lp_solve_calls() -> int:
    """Number of raw MLU LP solves performed so far in this process.

    Process-pool workers count in their own processes, so with ``workers``
    set the parent's counter only reflects in-process solves.  Prefer
    :func:`count_lp_solves` for assertions: absolute values of this
    process-global counter depend on everything that ran earlier in the
    process (other tests, a warm shared cache, ...), so they cross-
    contaminate between suites and between CI jobs sharing a worker.
    """
    return _LP_SOLVE_CALLS


class LPSolveTally:
    """A scoped view of the LP solve counter (see :func:`count_lp_solves`)."""

    def __init__(self) -> None:
        self._start = _LP_SOLVE_CALLS

    @property
    def count(self) -> int:
        """Raw LP solves since this tally was started."""
        return _LP_SOLVE_CALLS - self._start

    def reset(self) -> None:
        """Restart the tally at the current counter value."""
        self._start = _LP_SOLVE_CALLS


class count_lp_solves:
    """Context manager scoping the process-global LP solve counter.

    Yields an :class:`LPSolveTally` whose ``count`` is relative to scope
    entry, so concurrent/ordered test runs (pytest-xdist workers, the CI
    backend matrix) can assert exact solve counts without caring what ran
    before them in the process::

        with count_lp_solves() as tally:
            engine.evaluate_scheme(...)
        assert tally.count == 0   # warm cache: no new solves

    The tally keeps counting after the ``with`` block exits; nesting is
    fine (each scope has its own baseline).
    """

    def __enter__(self) -> LPSolveTally:
        self._tally = LPSolveTally()
        return self._tally

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


def default_lp_workers(cap: int = 8) -> int:
    """Process-pool width derived from the machine's CPU count.

    Leaves one core for the parent process and caps the width: LP batches
    are short-lived, so very wide pools pay more in pickling/startup than
    they win back.  Returns 1 (sequential) on single-core machines.
    """
    return max(1, min(cap, (os.cpu_count() or 1) - 1))


class MLUConstraintStructure:
    """Demand-independent pieces of the MLU LP for one :class:`PathSet`.

    Variable layout: ``[r_0 ... r_{P-1}, t]``.  The inequality matrix
    ``A_ub = [PathToEdge^T * diag(demand_per_path) | -capacities]`` only
    depends on the demand through a per-column rescale, so the template is
    assembled once in CSC form and each solve merely multiplies the stored
    base data by its column's demand -- a cheap :func:`numpy` gather instead
    of a sparse-matrix build.
    """

    def __init__(self, path_set: PathSet) -> None:
        # Deliberately no reference to the PathSet itself: instances live as
        # values of a WeakKeyDictionary keyed by the PathSet, so holding it
        # here would keep the key alive forever.  Only the arrays a_ub()
        # needs are kept.
        self.num_paths = path_set.num_paths
        self.num_sd_pairs = path_set.num_sd_pairs
        self._path_sd_index = path_set.path_sd_index
        num_paths = path_set.num_paths
        num_edges = path_set.topology.num_edges
        num_pairs = path_set.num_sd_pairs

        self.cost = np.zeros(num_paths + 1)
        self.cost[-1] = 1.0

        # Equality: per-pair ratios sum to one.
        self.a_eq = sparse.hstack(
            [path_set.sd_to_path, sparse.csr_matrix((num_pairs, 1))]
        ).tocsr()
        self.b_eq = np.ones(num_pairs)
        self.b_ub = np.zeros(num_edges)

        # Inequality template: per-edge load minus t * capacity <= 0, with the
        # demand scaling left at one.
        capacity_col = sparse.csr_matrix(
            (-path_set.topology.capacities, (np.arange(num_edges), np.zeros(num_edges, dtype=int))),
            shape=(num_edges, 1),
        )
        template = sparse.hstack([path_set.path_to_edge.T, capacity_col]).tocsc()
        template.sort_indices()
        self._template = template
        self._base_data = template.data.copy()
        # Column index of every stored non-zero (for the diagonal rescale).
        self._nnz_column = np.repeat(
            np.arange(num_paths + 1), np.diff(template.indptr)
        )
        self._trivial_upper: np.ndarray | None = None
        self._trivial_bounds: np.ndarray | None = None

    @property
    def trivial_upper(self) -> np.ndarray:
        """Per-path ratio upper bounds with no caps and no mask (all ones).

        Built lazily, cached, and returned as the *same* array every call, so
        the common omniscient path allocates nothing per demand and callers
        can use an identity check for the trivial case.
        """
        if self._trivial_upper is None:
            upper = np.ones(self.num_paths)
            upper.setflags(write=False)
            self._trivial_upper = upper
        return self._trivial_upper

    @property
    def trivial_bounds(self) -> np.ndarray:
        """The cached ``(num_paths + 1, 2)`` linprog bounds of the trivial case."""
        if self._trivial_bounds is None:
            self._trivial_bounds = self._bounds_from(self.trivial_upper)
            self._trivial_bounds.setflags(write=False)
        return self._trivial_bounds

    def _bounds_from(self, upper: np.ndarray) -> np.ndarray:
        bounds = np.zeros((self.num_paths + 1, 2))
        bounds[: self.num_paths, 1] = upper
        bounds[self.num_paths, 1] = np.inf
        return bounds

    def bounds_array(self, upper: np.ndarray) -> np.ndarray:
        """Vectorised ``linprog`` bounds ``[(0, u_p)..., (0, inf)]`` for ``upper``.

        One ``(n + 1, 2)`` ndarray instead of a per-solve Python list of
        tuples; the trivial (no caps, no mask) array is cached.
        """
        if upper is self.trivial_upper:
            return self.trivial_bounds
        return self._bounds_from(upper)

    def a_ub(self, demand_vector: np.ndarray) -> sparse.csc_matrix:
        """Inequality matrix for one demand vector (shared sparsity arrays)."""
        num_paths = self.num_paths
        demand = np.asarray(demand_vector, dtype=float)
        if demand.shape != (self.num_sd_pairs,):
            raise ValueError(
                f"demand vector must have {self.num_sd_pairs} entries, got {demand.shape}"
            )
        scale = np.empty(num_paths + 1)
        scale[:num_paths] = demand[self._path_sd_index]
        scale[num_paths] = 1.0
        data = self._base_data * scale[self._nnz_column]
        return sparse.csc_matrix(
            (data, self._template.indices, self._template.indptr),
            shape=self._template.shape,
        )


_STRUCTURES: "weakref.WeakKeyDictionary[PathSet, MLUConstraintStructure]" = (
    weakref.WeakKeyDictionary()
)


def constraint_structure(path_set: PathSet) -> MLUConstraintStructure:
    """The (cached) precomputed constraint structure of a path set."""
    structure = _STRUCTURES.get(path_set)
    if structure is None:
        structure = MLUConstraintStructure(path_set)
        _STRUCTURES[path_set] = structure
    return structure


def _ratio_upper_bounds(
    path_set: PathSet,
    sensitivity_caps: np.ndarray | None,
    path_mask: np.ndarray | None,
) -> np.ndarray:
    """Per-path ratio upper bounds implied by sensitivity caps and failures."""
    num_paths = path_set.num_paths
    num_pairs = path_set.num_sd_pairs
    upper = np.ones(num_paths)
    if sensitivity_caps is not None:
        caps = np.asarray(sensitivity_caps, dtype=float)
        if caps.shape != (num_paths,):
            raise ValueError("sensitivity_caps must have one entry per path")
        upper = np.minimum(upper, np.clip(caps, 0.0, 1.0))
    if path_mask is not None:
        mask = np.asarray(path_mask, dtype=bool)
        if mask.shape != (num_paths,):
            raise ValueError("path_mask must have one entry per path")
        # Pairs whose candidate paths have all been masked keep the LP
        # feasible by re-allowing all of their paths (their traffic is lost
        # in reality; the caller decides how to account for it).
        pair_has_path = np.zeros(num_pairs, dtype=bool)
        np.logical_or.at(pair_has_path, path_set.path_sd_index, mask)
        effective_mask = mask | ~pair_has_path[path_set.path_sd_index]
        upper = np.where(effective_mask, upper, 0.0)

    # Guarantee feasibility: if a pair's ratio upper bounds sum to less than
    # one (tight sensitivity caps, possibly combined with masked paths), relax
    # that pair's usable caps to 1 -- the same escape hatch Appendix C.1
    # describes for over-tight constraints.
    cap_sums = np.zeros(num_pairs)
    np.add.at(cap_sums, path_set.path_sd_index, upper)
    infeasible_pairs = cap_sums < 1.0 - 1e-9
    if infeasible_pairs.any():
        relax = infeasible_pairs[path_set.path_sd_index] & (upper > 0.0)
        upper = np.where(relax, 1.0, upper)
        # A pair whose caps were all zero (fully masked and zero-capped) gets
        # every path re-enabled so the LP remains well posed.
        cap_sums = np.zeros(num_pairs)
        np.add.at(cap_sums, path_set.path_sd_index, upper)
        still_bad = cap_sums < 1.0 - 1e-9
        if still_bad.any():
            upper = np.where(still_bad[path_set.path_sd_index], 1.0, upper)
    return upper


def _resolved_upper_bounds(
    path_set: PathSet,
    structure: MLUConstraintStructure,
    sensitivity_caps: np.ndarray | None,
    path_mask: np.ndarray | None,
) -> np.ndarray:
    """Ratio upper bounds, served from the structure cache when trivial."""
    if sensitivity_caps is None and path_mask is None:
        return structure.trivial_upper
    return _ratio_upper_bounds(path_set, sensitivity_caps, path_mask)


def _checked_demand(demand_vector, num_sd_pairs: int) -> np.ndarray:
    demand = np.asarray(demand_vector, dtype=float)
    if demand.shape != (num_sd_pairs,):
        raise ValueError(
            f"demand vector must have {num_sd_pairs} entries, got {demand.shape}"
        )
    return demand


def solve_mlu_lp(
    path_set: PathSet,
    demand_vector: np.ndarray,
    sensitivity_caps: np.ndarray | None = None,
    path_mask: np.ndarray | None = None,
    backend: "LPBackend | str | None" = None,
) -> tuple[TEConfiguration, float]:
    """Solve the MLU-minimisation LP for a single demand vector.

    The demand-independent constraint structure is precomputed once per
    path set (see :class:`MLUConstraintStructure`), so repeated solves over
    the same path set only pay for the diagonal rescale and the solver run.

    Args:
        path_set: Candidate paths.
        demand_vector: Demands in SD-pair order.
        sensitivity_caps: Optional per-path upper bounds on the split ratio
            implied by a path-sensitivity constraint (``r_p <= cap_p``).  This
            is how the Desensitization-based and heuristic-F schemes restrict
            the solution space.
        path_mask: Optional boolean mask of usable paths (False = the path is
            unavailable, e.g. it traverses a failed link).  Pairs whose paths
            are all masked keep a uniform split.
        backend: LP solver backend -- an :class:`~repro.solvers.lp_backend.
            LPBackend` instance, a registered name (``"scipy"``, ``"highs"``,
            ``"auto"``), or None for the process default
            (``REPRO_LP_BACKEND``, scipy if unset).

    Returns:
        ``(configuration, optimal MLU)``.

    Raises:
        LPSolveError: If the LP is infeasible or the solver fails.
    """
    global _LP_SOLVE_CALLS
    _LP_SOLVE_CALLS += 1
    structure = constraint_structure(path_set)
    demand = _checked_demand(demand_vector, structure.num_sd_pairs)
    upper = _resolved_upper_bounds(path_set, structure, sensitivity_caps, path_mask)
    ratios, mlu = resolve_lp_backend(backend).solve(path_set, demand, upper)
    return TEConfiguration(path_set, ratios, normalize=True), mlu


def _solve_batch_chunk(args) -> list[tuple[np.ndarray | None, float]]:
    """Process-pool worker: solve a chunk of demands over one path set.

    The chunk resolves its LP backend once, so with the persistent ``highs``
    backend every solve after the first warm-starts one model built for the
    whole chunk -- the pool path amortises exactly like the sequential path.
    """
    global _LP_SOLVE_CALLS
    path_set, demands, sensitivity_caps, path_mask, backend_name, mlu_only = args
    lp_backend = resolve_lp_backend(backend_name)
    structure = constraint_structure(path_set)
    upper = _resolved_upper_bounds(path_set, structure, sensitivity_caps, path_mask)
    out: list[tuple[np.ndarray | None, float]] = []
    for demand in demands:
        _LP_SOLVE_CALLS += 1
        demand = _checked_demand(demand, structure.num_sd_pairs)
        if mlu_only:
            out.append((None, lp_backend.solve_mlu(path_set, demand, upper)))
        else:
            ratios, mlu = lp_backend.solve(path_set, demand, upper)
            config = TEConfiguration(path_set, ratios, normalize=True)
            out.append((config.split_ratios, mlu))
    return out


#: Long-lived process pools keyed by width, reused across batch calls so a
#: streaming replay does not pay pool startup once per chunk.
_POOL_CACHE: dict[int, ProcessPoolExecutor] = {}


def _shutdown_pools() -> None:
    for pool in _POOL_CACHE.values():
        try:
            pool.shutdown(cancel_futures=True)
        except Exception:
            pass
    _POOL_CACHE.clear()


atexit.register(_shutdown_pools)


def _pool(workers: int) -> ProcessPoolExecutor:
    pool = _POOL_CACHE.get(workers)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=workers)
        _POOL_CACHE[workers] = pool
    return pool


def _discard_pool(workers: int) -> None:
    pool = _POOL_CACHE.pop(workers, None)
    if pool is not None:
        try:
            pool.shutdown(cancel_futures=True)
        except Exception:
            pass


#: Environment variable naming the default LP process-pool width.
LP_WORKERS_ENV_VAR = "REPRO_LP_WORKERS"


def _env_lp_workers() -> int | None:
    """The ``REPRO_LP_WORKERS`` default, validated like an explicit argument."""
    raw = os.environ.get(LP_WORKERS_ENV_VAR)
    if raw is None or not raw.strip():
        return None
    raw = raw.strip()
    if raw.lower() == "auto":
        return default_lp_workers()
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{LP_WORKERS_ENV_VAR} must be unset, a positive int, or 'auto', "
            f"got {raw!r}"
        ) from None
    if value < 1:
        raise ValueError(
            f"{LP_WORKERS_ENV_VAR} must be at least 1, got {value}; unset it "
            "for sequential execution or use 'auto' for a CPU-count-derived "
            "width"
        )
    return value


def resolve_lp_workers(
    workers: int | str | None = None, use_env: bool = True
) -> int | None:
    """Normalise and validate a ``workers`` argument.

    Accepted forms: ``None`` (defer to ``REPRO_LP_WORKERS``, sequential when
    that is unset too), a positive int (pool width), or the string ``"auto"``
    (a CPU-count-derived width).  Anything else -- including ``0`` and
    negative ints, which would otherwise be silently treated as sequential
    here and then blow up (or hang) inside the process-pool layer -- raises a
    :class:`ValueError` naming the accepted forms; a contradictory
    environment value is rejected with the same error shape.

    Args:
        workers: The caller's explicit argument (always wins over the
            environment).
        use_env: Pass False for worker knobs that must *not* inherit the LP
            pool width -- the study layer's ``cell_workers`` shares this
            guard but fans out whole cells, and nesting one pool per cell
            worker inside the cell pool is never what ``REPRO_LP_WORKERS``
            means.
    """
    if workers is None:
        return _env_lp_workers() if use_env else None
    if workers == "auto":
        return default_lp_workers()
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ValueError(
            f"workers must be None, a positive int, or 'auto', got {workers!r}"
        )
    if workers < 1:
        raise ValueError(
            f"workers must be at least 1, got {workers}; pass None for sequential "
            "execution or 'auto' for a CPU-count-derived width"
        )
    return workers


def solve_mlu_lp_batch(
    path_set: PathSet,
    demands: np.ndarray,
    sensitivity_caps: np.ndarray | None = None,
    path_mask: np.ndarray | None = None,
    workers: int | str | None = None,
    backend: "LPBackend | str | None" = None,
    mlu_only: bool = False,
) -> list[tuple[TEConfiguration | None, float]]:
    """Solve the MLU LP for every row of a ``(T, num_sd_pairs)`` demand array.

    The solves are independent, so with ``workers`` set (an int, ``"auto"``
    for an ``os.cpu_count()``-derived width, or ``REPRO_LP_WORKERS`` as the
    process default) they fan out over a long-lived process pool shared by
    all batch calls of that width (each worker rebuilds the constraint
    structure -- and, for the ``highs`` backend, one persistent warm-started
    model -- once per chunk, then reuses it).  With no width configured the
    solves run sequentially in-process, still sharing one precomputed
    structure, one resolved bounds array, and one warm model.  When the pool
    cannot be used at all -- the path set fails to pickle, process spawning
    is forbidden by the sandbox, or the pool dies -- the batch falls back to
    the sequential path and a single :class:`RuntimeWarning` is emitted for
    the whole process instead of failing (or silently degrading).

    Args:
        backend: LP solver backend (instance, registered name, ``"auto"``,
            or None for the ``REPRO_LP_BACKEND`` process default).  Pool
            workers re-resolve the backend *by name* in their own process;
            an unregistered custom instance therefore solves sequentially.
        mlu_only: When True, skip building the configurations and return
            ``(None, optimal MLU)`` per row -- the normaliser fast path used
            by :class:`OptimalMLUCache` (the values are identical, solution
            extraction is just skipped).

    Returns:
        A list of ``(configuration, optimal MLU)`` tuples, one per demand row
        (``(None, optimal MLU)`` with ``mlu_only``).
    """
    demands = np.asarray(demands, dtype=float)
    if demands.ndim == 1:
        demands = demands[None, :]
    workers = resolve_lp_workers(workers)
    lp_backend = resolve_lp_backend(backend)
    pooled_name = lp_backend.name if lp_backend.name in available_lp_backends() else None
    if (
        workers is not None
        and workers > 1
        and len(demands) > 1
        and pooled_name is not None
    ):
        num_chunks = min(workers, len(demands))
        chunks = np.array_split(demands, num_chunks)
        jobs = [
            (path_set, chunk, sensitivity_caps, path_mask, pooled_name, mlu_only)
            for chunk in chunks
        ]
        try:
            chunk_results = list(_pool(workers).map(_solve_batch_chunk, jobs))
        except (
            pickle.PicklingError,
            AttributeError,  # unpicklable locals raise this from pickle
            TypeError,  # "cannot pickle ..." surfaces as TypeError too
            BrokenProcessPool,
            OSError,  # includes PermissionError from sandboxed spawns
        ) as exc:
            _discard_pool(workers)
            _warn_pool_fallback(exc)
        else:
            return [
                (
                    TEConfiguration(path_set, ratios, normalize=False)
                    if ratios is not None
                    else None,
                    mlu,
                )
                for chunk in chunk_results
                for ratios, mlu in chunk
            ]
    global _LP_SOLVE_CALLS
    structure = constraint_structure(path_set)
    upper = _resolved_upper_bounds(path_set, structure, sensitivity_caps, path_mask)
    results: list[tuple[TEConfiguration | None, float]] = []
    for demand in demands:
        _LP_SOLVE_CALLS += 1
        demand = _checked_demand(demand, structure.num_sd_pairs)
        if mlu_only:
            results.append((None, lp_backend.solve_mlu(path_set, demand, upper)))
        else:
            ratios, mlu = lp_backend.solve(path_set, demand, upper)
            results.append((TEConfiguration(path_set, ratios, normalize=True), mlu))
    return results


_POOL_FALLBACK_WARNED = False


def _warn_pool_fallback(exc: BaseException) -> None:
    """Warn (once per process) that LP batches run sequentially."""
    global _POOL_FALLBACK_WARNED
    if _POOL_FALLBACK_WARNED:
        return
    _POOL_FALLBACK_WARNED = True
    warnings.warn(
        f"process-pool LP batch failed ({exc!r}); solving sequentially "
        "in-process from now on (results are identical, just slower)",
        RuntimeWarning,
        stacklevel=3,
    )


def omniscient_mlu(path_set: PathSet, demand_vector: np.ndarray) -> float:
    """Optimal MLU with perfect knowledge of the demand (the paper's oracle).

    Every MLU reported by the paper's figures is normalised by this value.
    Returns a tiny positive floor instead of exactly zero for all-zero
    demands so normalisation never divides by zero.
    """
    _, mlu = solve_mlu_lp(path_set, demand_vector)
    return max(mlu, 1e-12)


#: On-disk format marker of the persistent cache (see :class:`OptimalMLUCache`).
CACHE_FILE_FORMAT = "repro-optimal-mlu-cache"
#: Bump to invalidate every existing cache file (e.g. if the LP, the floor,
#: or the key derivation changes in a way that alters cached values).
CACHE_FILE_VERSION = 1


def _flush_cache_ref(ref: "weakref.ref[OptimalMLUCache]") -> None:
    """atexit hook: flush a still-alive persistent cache (never raises)."""
    cache = ref()
    if cache is None:
        return
    try:
        # Only write if something is actually pending, so an already-flushed
        # cache whose directory has since been cleaned up (tmp dirs in tests)
        # is not resurrected at interpreter exit.
        if cache._unflushed or cache._needs_rewrite:
            cache.flush()
    except Exception:  # interpreter shutdown is no place for tracebacks
        pass


class OptimalMLUCache:
    """Memoises omniscient-optimal MLUs across experiments and sessions.

    Entries are keyed by ``(path-set fingerprint, demand hash, mask hash)``,
    so structurally identical path sets share entries and the cache survives
    the path-set object itself.  Values carry the same ``1e-12`` floor as
    :func:`omniscient_mlu` so they can be used as normalisers directly.

    With ``path`` set the cache is **disk-persistent**: existing entries are
    loaded on construction and new ones are appended to the file by
    :meth:`flush` (called automatically at interpreter exit, on
    ``with``-block exit, and by :meth:`close`).  The store is an append-only
    JSON-lines file whose first line is a versioned header; a file with a
    mismatched version or corrupt content is ignored with a warning (cold
    solves, never a crash) and rewritten wholesale on the next flush.

    Args:
        max_entries: Oldest entries are evicted from *memory* beyond this
            size (the values are floats, so the default allows millions of
            cached solves).  Already-flushed entries stay on disk.
        path: Optional location of the persistent store.  Parent directories
            are created on flush.
    """

    def __init__(
        self,
        max_entries: int = 1_000_000,
        path: str | os.PathLike | None = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple[str, str, str], float] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.path = Path(path).expanduser() if path is not None else None
        self.loaded = 0
        self._unflushed: list[tuple[tuple[str, str, str], float]] = []
        self._needs_rewrite = False
        if self.path is not None:
            self._load()
            # A weakref keeps short-lived caches collectable; a dead ref
            # makes the exit hook a no-op.
            atexit.register(_flush_cache_ref, weakref.ref(self))

    def __len__(self) -> int:
        return len(self._entries)

    def __enter__(self) -> "OptimalMLUCache":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.flush()

    def clear(self) -> None:
        """Drop every cached entry and reset the hit/miss counters.

        On a persistent cache the on-disk store is truncated to match at the
        next :meth:`flush`.
        """
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self._unflushed.clear()
        if self.path is not None:
            self._needs_rewrite = True

    # ------------------------------------------------------------------ #
    # Disk persistence
    # ------------------------------------------------------------------ #
    def _load(self) -> None:
        """Read the persistent store, tolerating missing/corrupt files."""
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        except FileNotFoundError:
            return
        except OSError as exc:
            warnings.warn(
                f"could not read optimal-MLU cache {self.path} ({exc}); "
                "starting cold",
                RuntimeWarning,
                stacklevel=4,
            )
            return
        if not lines:
            self._needs_rewrite = True
            return
        try:
            header = json.loads(lines[0])
            compatible = (
                isinstance(header, dict)
                and header.get("format") == CACHE_FILE_FORMAT
                and header.get("version") == CACHE_FILE_VERSION
            )
        except ValueError:
            compatible = False
        if not compatible:
            warnings.warn(
                f"ignoring optimal-MLU cache {self.path}: unrecognised or "
                f"version-mismatched header (expected {CACHE_FILE_FORMAT} "
                f"v{CACHE_FILE_VERSION}); starting cold",
                RuntimeWarning,
                stacklevel=4,
            )
            self._needs_rewrite = True
            return
        bad_lines = 0
        for line in lines[1:]:
            if not line.strip():
                continue
            try:
                fingerprint, demand_key, mask_key, value = json.loads(line)
                entry_key = (str(fingerprint), str(demand_key), str(mask_key))
                entry_value = float(value)
            except (ValueError, TypeError):
                # A partially written trailing line (crash mid-append) or
                # hand-edited junk: keep the good entries, compact the file
                # on the next flush.
                bad_lines += 1
                continue
            self._entries[entry_key] = entry_value
            if len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        self.loaded = len(self._entries)
        if bad_lines:
            warnings.warn(
                f"optimal-MLU cache {self.path}: skipped {bad_lines} corrupt "
                f"line(s), kept {self.loaded} entries",
                RuntimeWarning,
                stacklevel=4,
            )
            self._needs_rewrite = True

    @staticmethod
    def _entry_line(key: tuple[str, str, str], value: float) -> str:
        return json.dumps([key[0], key[1], key[2], value])

    def flush(self) -> None:
        """Write new entries to the persistent store (no-op when in-memory).

        Appends only what changed since the last flush; a missing, corrupt,
        or version-mismatched file is rewritten from scratch (atomically, via
        a temp file) so the store always ends up in the current format.
        """
        if self.path is None:
            return
        if self._needs_rewrite or not self.path.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
            temp = self.path.with_name(self.path.name + ".tmp")
            with open(temp, "w", encoding="utf-8") as handle:
                header = {"format": CACHE_FILE_FORMAT, "version": CACHE_FILE_VERSION}
                handle.write(json.dumps(header) + "\n")
                for key, value in self._entries.items():
                    handle.write(self._entry_line(key, value) + "\n")
                # Entries solved since the last flush but already evicted
                # from memory must still be persisted (the append branch
                # would have written them).
                for key, value in self._unflushed:
                    if key not in self._entries:
                        handle.write(self._entry_line(key, value) + "\n")
            os.replace(temp, self.path)
            self._needs_rewrite = False
        elif self._unflushed:
            with open(self.path, "a", encoding="utf-8") as handle:
                for key, value in self._unflushed:
                    handle.write(self._entry_line(key, value) + "\n")
        self._unflushed.clear()

    def close(self) -> None:
        """Flush pending entries (kept for symmetry with file-like objects)."""
        self.flush()

    # ------------------------------------------------------------------ #
    # Cross-process transport (the study layer's cell pool)
    # ------------------------------------------------------------------ #
    def entries_snapshot(self) -> dict[tuple[str, str, str], float]:
        """A plain-dict copy of the in-memory entries.

        The snapshot is what a worker process is seeded with before running
        its experiment cells, so demands already solved by the parent are
        cache hits everywhere.
        """
        return dict(self._entries)

    def merge_entries(self, entries) -> int:
        """Insert entries solved elsewhere (e.g. by a pool worker).

        Existing keys keep their current values (the solver is
        deterministic, so they are equal anyway).  On a persistent cache the
        merged entries are appended at the next :meth:`flush` like locally
        solved ones.  Returns the number of new entries inserted.
        """
        added = 0
        for key, value in entries.items():
            fingerprint, demand_key, mask_key = key
            normalised = (str(fingerprint), str(demand_key), str(mask_key))
            if normalised not in self._entries:
                self._store(normalised, float(value))
                added += 1
        return added

    @staticmethod
    def _mask_key(path_mask: np.ndarray | None) -> str:
        if path_mask is None:
            return ""
        return hashlib.sha1(
            np.ascontiguousarray(path_mask, dtype=bool).tobytes()
        ).hexdigest()

    @staticmethod
    def _demand_key(demand_vector: np.ndarray) -> str:
        return hashlib.sha1(
            np.ascontiguousarray(demand_vector, dtype=float).tobytes()
        ).hexdigest()

    def _store(self, key: tuple[str, str, str], value: float) -> None:
        self._entries[key] = value
        if self.path is not None:
            self._unflushed.append((key, value))
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def optimal_mlu(
        self,
        path_set: PathSet,
        demand_vector: np.ndarray,
        path_mask: np.ndarray | None = None,
        backend: "LPBackend | str | None" = None,
    ) -> float:
        """Cached :func:`omniscient_mlu` (optionally restricted to a path mask)."""
        demand_vector = np.asarray(demand_vector, dtype=float)
        key = (path_set.fingerprint, self._demand_key(demand_vector), self._mask_key(path_mask))
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        [(_, mlu)] = solve_mlu_lp_batch(
            path_set,
            demand_vector,
            path_mask=path_mask,
            backend=backend,
            mlu_only=True,
        )
        value = max(mlu, 1e-12)
        self._store(key, value)
        return value

    def optimal_mlus(
        self,
        path_set: PathSet,
        demands: np.ndarray,
        path_mask: np.ndarray | None = None,
        workers: int | str | None = None,
        backend: "LPBackend | str | None" = None,
    ) -> np.ndarray:
        """Cached omniscient MLUs for every row of a ``(T, pairs)`` array.

        Rows missing from the cache are solved (fanning out over a process
        pool when ``workers`` is set) and inserted; cached rows are returned
        without re-solving.  The cache only keeps the optimal values, so the
        batch runs with ``mlu_only=True`` -- solution extraction and
        configuration construction are skipped entirely.
        """
        demands = np.ascontiguousarray(np.asarray(demands, dtype=float))
        if demands.ndim == 1:
            demands = demands[None, :]
        fingerprint = path_set.fingerprint
        mask_key = self._mask_key(path_mask)
        keys = [
            (fingerprint, self._demand_key(demand), mask_key) for demand in demands
        ]
        values = np.empty(len(demands))
        missing: dict[tuple[str, str, str], list[int]] = {}
        for i, key in enumerate(keys):
            cached = self._entries.get(key)
            if cached is not None:
                self.hits += 1
                values[i] = cached
            else:
                # Duplicate demands within one batch are solved only once
                # (but each requested row still counts as a miss, keeping
                # hits + misses == rows requested).
                missing.setdefault(key, []).append(i)
                self.misses += 1
        if missing:
            rows = [indices[0] for indices in missing.values()]
            solved = solve_mlu_lp_batch(
                path_set,
                demands[rows],
                path_mask=path_mask,
                workers=workers,
                backend=backend,
                mlu_only=True,
            )
            for (key, indices), (_, mlu) in zip(missing.items(), solved):
                value = max(mlu, 1e-12)
                self._store(key, value)
                values[indices] = value
        return values


_SHARED_CACHE: OptimalMLUCache | None = None


def shared_cache() -> OptimalMLUCache:
    """The process-wide optimal-MLU cache.

    Training (:class:`~repro.core.trainer.Trainer`,
    :class:`~repro.core.teal_like.TealLike`) and the default evaluation
    engine all draw their omniscient normalisers from this one cache, so a
    demand matrix is never LP-solved twice in a process -- not even once by
    ``fit`` and once more by the subsequent replay.  Pass an explicit cache
    (or engine) to isolate workloads instead.
    """
    global _SHARED_CACHE
    if _SHARED_CACHE is None:
        _SHARED_CACHE = OptimalMLUCache()
    return _SHARED_CACHE


def predict_demand(history: np.ndarray, strategy: str = "last") -> np.ndarray:
    """Predict the next demand vector from a window of historical demands.

    Args:
        history: Array of shape ``(H, num_sd_pairs)``, oldest first.
        strategy: ``"last"`` (use the most recent matrix, the paper's choice
            for prediction-based TE), ``"mean"`` (window average), ``"ewma"``
            (exponentially weighted average), or ``"peak"`` (per-pair window
            maximum, used by the Desensitization scheme's anticipated matrix).
    """
    history = np.asarray(history, dtype=float)
    if history.ndim != 2 or history.shape[0] < 1:
        raise ValueError("history must be a (H, num_sd_pairs) array with H >= 1")
    if strategy == "last":
        return history[-1]
    if strategy == "mean":
        return history.mean(axis=0)
    if strategy == "ewma":
        weights = 0.5 ** np.arange(history.shape[0] - 1, -1, -1)
        weights = weights / weights.sum()
        return weights @ history
    if strategy == "peak":
        return history.max(axis=0)
    raise ValueError(f"unknown prediction strategy {strategy!r}")


class OmniscientTE(TEScheme):
    """Oracle TE: optimises for the demand that will actually arrive.

    The evaluation harness treats this scheme specially (it is given the true
    next demand instead of history); it exists mainly to normalise MLUs.
    """

    def __init__(self, path_set: PathSet) -> None:
        super().__init__(path_set, name="Omniscient")

    def configure(self, history: np.ndarray) -> TEConfiguration:
        # Called with the *true* demand as the last history row by the runner.
        config, _ = solve_mlu_lp(self.path_set, np.asarray(history)[-1])
        return config


class PredictionBasedTE(TEScheme):
    """Demand-prediction-based TE (B4/SWAN style, baseline (4) of Section 5.1).

    Predicts the next demand from the recent history and optimises MLU for the
    prediction with no burst-handling mechanism.

    Args:
        path_set: Candidate paths.
        strategy: Prediction strategy passed to :func:`predict_demand`.
    """

    def __init__(self, path_set: PathSet, strategy: str = "last") -> None:
        super().__init__(path_set, name=f"Pred TE ({strategy})")
        self.strategy = strategy

    def configure(self, history: np.ndarray) -> TEConfiguration:
        prediction = predict_demand(np.asarray(history), self.strategy)
        config, _ = solve_mlu_lp(self.path_set, prediction)
        return config
