"""Linear-programming MLU minimisation (Appendix B, Equation 9).

Given a demand matrix and a candidate path set, the optimal split ratios that
minimise the maximum link utilisation are the solution of the LP:

    minimise    t
    subject to  sum_{p in P_sd} r_p = 1                      for every SD pair
                sum_{p: e in p} D_{sd(p)} r_p <= t * c(e)    for every edge e
                r_p >= 0

This module provides the raw solver (:func:`solve_mlu_lp`), a batched variant
(:func:`solve_mlu_lp_batch`) with optional process-pool fan-out, the
omniscient benchmark used to normalise every MLU the paper reports
(:func:`omniscient_mlu`), a cache for those normalisers
(:class:`OptimalMLUCache`), and the two simplest schemes built directly on
the LP: :class:`OmniscientTE` (perfect knowledge of the next demand) and
:class:`PredictionBasedTE` (solve for a demand predicted from history).

The LP's constraint matrices depend on the demand only through a diagonal
rescale of the path-to-edge incidence, so everything demand-independent
(sparsity pattern, equality rows, capacity column, bounds template) is
precomputed once per :class:`PathSet` in :class:`MLUConstraintStructure` and
shared by every subsequent solve.
"""

from __future__ import annotations

import hashlib
import weakref
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.paths.path_set import PathSet
from repro.te.config import TEConfiguration
from repro.te.scheme import TEScheme

__all__ = [
    "LPSolveError",
    "MLUConstraintStructure",
    "constraint_structure",
    "solve_mlu_lp",
    "solve_mlu_lp_batch",
    "omniscient_mlu",
    "OptimalMLUCache",
    "OmniscientTE",
    "PredictionBasedTE",
    "predict_demand",
]


class LPSolveError(RuntimeError):
    """Raised when the LP solver fails to find an optimal solution."""


class MLUConstraintStructure:
    """Demand-independent pieces of the MLU LP for one :class:`PathSet`.

    Variable layout: ``[r_0 ... r_{P-1}, t]``.  The inequality matrix
    ``A_ub = [PathToEdge^T * diag(demand_per_path) | -capacities]`` only
    depends on the demand through a per-column rescale, so the template is
    assembled once in CSC form and each solve merely multiplies the stored
    base data by its column's demand -- a cheap :func:`numpy` gather instead
    of a sparse-matrix build.
    """

    def __init__(self, path_set: PathSet) -> None:
        # Deliberately no reference to the PathSet itself: instances live as
        # values of a WeakKeyDictionary keyed by the PathSet, so holding it
        # here would keep the key alive forever.  Only the arrays a_ub()
        # needs are kept.
        self.num_paths = path_set.num_paths
        self.num_sd_pairs = path_set.num_sd_pairs
        self._path_sd_index = path_set.path_sd_index
        num_paths = path_set.num_paths
        num_edges = path_set.topology.num_edges
        num_pairs = path_set.num_sd_pairs

        self.cost = np.zeros(num_paths + 1)
        self.cost[-1] = 1.0

        # Equality: per-pair ratios sum to one.
        self.a_eq = sparse.hstack(
            [path_set.sd_to_path, sparse.csr_matrix((num_pairs, 1))]
        ).tocsr()
        self.b_eq = np.ones(num_pairs)
        self.b_ub = np.zeros(num_edges)

        # Inequality template: per-edge load minus t * capacity <= 0, with the
        # demand scaling left at one.
        capacity_col = sparse.csr_matrix(
            (-path_set.topology.capacities, (np.arange(num_edges), np.zeros(num_edges, dtype=int))),
            shape=(num_edges, 1),
        )
        template = sparse.hstack([path_set.path_to_edge.T, capacity_col]).tocsc()
        template.sort_indices()
        self._template = template
        self._base_data = template.data.copy()
        # Column index of every stored non-zero (for the diagonal rescale).
        self._nnz_column = np.repeat(
            np.arange(num_paths + 1), np.diff(template.indptr)
        )

    def a_ub(self, demand_vector: np.ndarray) -> sparse.csc_matrix:
        """Inequality matrix for one demand vector (shared sparsity arrays)."""
        num_paths = self.num_paths
        demand = np.asarray(demand_vector, dtype=float)
        if demand.shape != (self.num_sd_pairs,):
            raise ValueError(
                f"demand vector must have {self.num_sd_pairs} entries, got {demand.shape}"
            )
        scale = np.empty(num_paths + 1)
        scale[:num_paths] = demand[self._path_sd_index]
        scale[num_paths] = 1.0
        data = self._base_data * scale[self._nnz_column]
        return sparse.csc_matrix(
            (data, self._template.indices, self._template.indptr),
            shape=self._template.shape,
        )


_STRUCTURES: "weakref.WeakKeyDictionary[PathSet, MLUConstraintStructure]" = (
    weakref.WeakKeyDictionary()
)


def constraint_structure(path_set: PathSet) -> MLUConstraintStructure:
    """The (cached) precomputed constraint structure of a path set."""
    structure = _STRUCTURES.get(path_set)
    if structure is None:
        structure = MLUConstraintStructure(path_set)
        _STRUCTURES[path_set] = structure
    return structure


def _ratio_upper_bounds(
    path_set: PathSet,
    sensitivity_caps: np.ndarray | None,
    path_mask: np.ndarray | None,
) -> np.ndarray:
    """Per-path ratio upper bounds implied by sensitivity caps and failures."""
    num_paths = path_set.num_paths
    num_pairs = path_set.num_sd_pairs
    upper = np.ones(num_paths)
    if sensitivity_caps is not None:
        caps = np.asarray(sensitivity_caps, dtype=float)
        if caps.shape != (num_paths,):
            raise ValueError("sensitivity_caps must have one entry per path")
        upper = np.minimum(upper, np.clip(caps, 0.0, 1.0))
    if path_mask is not None:
        mask = np.asarray(path_mask, dtype=bool)
        if mask.shape != (num_paths,):
            raise ValueError("path_mask must have one entry per path")
        # Pairs whose candidate paths have all been masked keep the LP
        # feasible by re-allowing all of their paths (their traffic is lost
        # in reality; the caller decides how to account for it).
        pair_has_path = np.zeros(num_pairs, dtype=bool)
        np.logical_or.at(pair_has_path, path_set.path_sd_index, mask)
        effective_mask = mask | ~pair_has_path[path_set.path_sd_index]
        upper = np.where(effective_mask, upper, 0.0)

    # Guarantee feasibility: if a pair's ratio upper bounds sum to less than
    # one (tight sensitivity caps, possibly combined with masked paths), relax
    # that pair's usable caps to 1 -- the same escape hatch Appendix C.1
    # describes for over-tight constraints.
    cap_sums = np.zeros(num_pairs)
    np.add.at(cap_sums, path_set.path_sd_index, upper)
    infeasible_pairs = cap_sums < 1.0 - 1e-9
    if infeasible_pairs.any():
        relax = infeasible_pairs[path_set.path_sd_index] & (upper > 0.0)
        upper = np.where(relax, 1.0, upper)
        # A pair whose caps were all zero (fully masked and zero-capped) gets
        # every path re-enabled so the LP remains well posed.
        cap_sums = np.zeros(num_pairs)
        np.add.at(cap_sums, path_set.path_sd_index, upper)
        still_bad = cap_sums < 1.0 - 1e-9
        if still_bad.any():
            upper = np.where(still_bad[path_set.path_sd_index], 1.0, upper)
    return upper


def solve_mlu_lp(
    path_set: PathSet,
    demand_vector: np.ndarray,
    sensitivity_caps: np.ndarray | None = None,
    path_mask: np.ndarray | None = None,
) -> tuple[TEConfiguration, float]:
    """Solve the MLU-minimisation LP for a single demand vector.

    The demand-independent constraint structure is precomputed once per
    path set (see :class:`MLUConstraintStructure`), so repeated solves over
    the same path set only pay for the diagonal rescale and the solver run.

    Args:
        path_set: Candidate paths.
        demand_vector: Demands in SD-pair order.
        sensitivity_caps: Optional per-path upper bounds on the split ratio
            implied by a path-sensitivity constraint (``r_p <= cap_p``).  This
            is how the Desensitization-based and heuristic-F schemes restrict
            the solution space.
        path_mask: Optional boolean mask of usable paths (False = the path is
            unavailable, e.g. it traverses a failed link).  Pairs whose paths
            are all masked keep a uniform split.

    Returns:
        ``(configuration, optimal MLU)``.

    Raises:
        LPSolveError: If the LP is infeasible or the solver fails.
    """
    structure = constraint_structure(path_set)
    num_paths = path_set.num_paths
    upper = _ratio_upper_bounds(path_set, sensitivity_caps, path_mask)
    bounds = [(0.0, float(u)) for u in upper] + [(0.0, None)]

    result = linprog(
        structure.cost,
        A_ub=structure.a_ub(demand_vector),
        b_ub=structure.b_ub,
        A_eq=structure.a_eq,
        b_eq=structure.b_eq,
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        raise LPSolveError(f"MLU LP failed: {result.message}")
    ratios = result.x[:num_paths]
    mlu = float(result.x[-1])
    return TEConfiguration(path_set, ratios, normalize=True), mlu


def _solve_batch_chunk(args) -> list[tuple[np.ndarray, float]]:
    """Process-pool worker: solve a chunk of demands over one path set."""
    path_set, demands, sensitivity_caps, path_mask = args
    out = []
    for demand in demands:
        config, mlu = solve_mlu_lp(path_set, demand, sensitivity_caps, path_mask)
        out.append((config.split_ratios, mlu))
    return out


def solve_mlu_lp_batch(
    path_set: PathSet,
    demands: np.ndarray,
    sensitivity_caps: np.ndarray | None = None,
    path_mask: np.ndarray | None = None,
    workers: int | None = None,
) -> list[tuple[TEConfiguration, float]]:
    """Solve the MLU LP for every row of a ``(T, num_sd_pairs)`` demand array.

    The solves are independent, so with ``workers`` set they fan out over a
    process pool (each worker rebuilds the constraint structure once per
    chunk, then reuses it).  With ``workers=None`` (default) the solves run
    sequentially in-process, still sharing one precomputed structure.

    Returns:
        A list of ``(configuration, optimal MLU)`` tuples, one per demand row.
    """
    demands = np.asarray(demands, dtype=float)
    if demands.ndim == 1:
        demands = demands[None, :]
    if workers is not None and workers > 1 and len(demands) > 1:
        num_chunks = min(workers, len(demands))
        chunks = np.array_split(demands, num_chunks)
        jobs = [(path_set, chunk, sensitivity_caps, path_mask) for chunk in chunks]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            chunk_results = list(pool.map(_solve_batch_chunk, jobs))
        return [
            (TEConfiguration(path_set, ratios, normalize=False), mlu)
            for chunk in chunk_results
            for ratios, mlu in chunk
        ]
    return [
        solve_mlu_lp(path_set, demand, sensitivity_caps, path_mask)
        for demand in demands
    ]


def omniscient_mlu(path_set: PathSet, demand_vector: np.ndarray) -> float:
    """Optimal MLU with perfect knowledge of the demand (the paper's oracle).

    Every MLU reported by the paper's figures is normalised by this value.
    Returns a tiny positive floor instead of exactly zero for all-zero
    demands so normalisation never divides by zero.
    """
    _, mlu = solve_mlu_lp(path_set, demand_vector)
    return max(mlu, 1e-12)


class OptimalMLUCache:
    """Memoises omniscient-optimal MLUs across experiments.

    Entries are keyed by ``(path-set fingerprint, demand hash, mask hash)``,
    so structurally identical path sets share entries and the cache survives
    the path-set object itself.  Values carry the same ``1e-12`` floor as
    :func:`omniscient_mlu` so they can be used as normalisers directly.

    Args:
        max_entries: Oldest entries are evicted beyond this size (the values
            are floats, so the default allows millions of cached solves).
    """

    def __init__(self, max_entries: int = 1_000_000) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple[str, str, str], float] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every cached entry and reset the hit/miss counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _mask_key(path_mask: np.ndarray | None) -> str:
        if path_mask is None:
            return ""
        return hashlib.sha1(
            np.ascontiguousarray(path_mask, dtype=bool).tobytes()
        ).hexdigest()

    @staticmethod
    def _demand_key(demand_vector: np.ndarray) -> str:
        return hashlib.sha1(
            np.ascontiguousarray(demand_vector, dtype=float).tobytes()
        ).hexdigest()

    def _store(self, key: tuple[str, str, str], value: float) -> None:
        self._entries[key] = value
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def optimal_mlu(
        self,
        path_set: PathSet,
        demand_vector: np.ndarray,
        path_mask: np.ndarray | None = None,
    ) -> float:
        """Cached :func:`omniscient_mlu` (optionally restricted to a path mask)."""
        demand_vector = np.asarray(demand_vector, dtype=float)
        key = (path_set.fingerprint, self._demand_key(demand_vector), self._mask_key(path_mask))
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        _, mlu = solve_mlu_lp(path_set, demand_vector, path_mask=path_mask)
        value = max(mlu, 1e-12)
        self._store(key, value)
        return value

    def optimal_mlus(
        self,
        path_set: PathSet,
        demands: np.ndarray,
        path_mask: np.ndarray | None = None,
        workers: int | None = None,
    ) -> np.ndarray:
        """Cached omniscient MLUs for every row of a ``(T, pairs)`` array.

        Rows missing from the cache are solved (fanning out over a process
        pool when ``workers`` is set) and inserted; cached rows are returned
        without re-solving.
        """
        demands = np.ascontiguousarray(np.asarray(demands, dtype=float))
        if demands.ndim == 1:
            demands = demands[None, :]
        fingerprint = path_set.fingerprint
        mask_key = self._mask_key(path_mask)
        keys = [
            (fingerprint, self._demand_key(demand), mask_key) for demand in demands
        ]
        values = np.empty(len(demands))
        missing: dict[tuple[str, str, str], list[int]] = {}
        for i, key in enumerate(keys):
            cached = self._entries.get(key)
            if cached is not None:
                self.hits += 1
                values[i] = cached
            else:
                # Duplicate demands within one batch are solved only once
                # (but each requested row still counts as a miss, keeping
                # hits + misses == rows requested).
                missing.setdefault(key, []).append(i)
                self.misses += 1
        if missing:
            rows = [indices[0] for indices in missing.values()]
            solved = solve_mlu_lp_batch(
                path_set, demands[rows], path_mask=path_mask, workers=workers
            )
            for (key, indices), (_, mlu) in zip(missing.items(), solved):
                value = max(mlu, 1e-12)
                self._store(key, value)
                values[indices] = value
        return values


def predict_demand(history: np.ndarray, strategy: str = "last") -> np.ndarray:
    """Predict the next demand vector from a window of historical demands.

    Args:
        history: Array of shape ``(H, num_sd_pairs)``, oldest first.
        strategy: ``"last"`` (use the most recent matrix, the paper's choice
            for prediction-based TE), ``"mean"`` (window average), ``"ewma"``
            (exponentially weighted average), or ``"peak"`` (per-pair window
            maximum, used by the Desensitization scheme's anticipated matrix).
    """
    history = np.asarray(history, dtype=float)
    if history.ndim != 2 or history.shape[0] < 1:
        raise ValueError("history must be a (H, num_sd_pairs) array with H >= 1")
    if strategy == "last":
        return history[-1]
    if strategy == "mean":
        return history.mean(axis=0)
    if strategy == "ewma":
        weights = 0.5 ** np.arange(history.shape[0] - 1, -1, -1)
        weights = weights / weights.sum()
        return weights @ history
    if strategy == "peak":
        return history.max(axis=0)
    raise ValueError(f"unknown prediction strategy {strategy!r}")


class OmniscientTE(TEScheme):
    """Oracle TE: optimises for the demand that will actually arrive.

    The evaluation harness treats this scheme specially (it is given the true
    next demand instead of history); it exists mainly to normalise MLUs.
    """

    def __init__(self, path_set: PathSet) -> None:
        super().__init__(path_set, name="Omniscient")

    def configure(self, history: np.ndarray) -> TEConfiguration:
        # Called with the *true* demand as the last history row by the runner.
        config, _ = solve_mlu_lp(self.path_set, np.asarray(history)[-1])
        return config


class PredictionBasedTE(TEScheme):
    """Demand-prediction-based TE (B4/SWAN style, baseline (4) of Section 5.1).

    Predicts the next demand from the recent history and optimises MLU for the
    prediction with no burst-handling mechanism.

    Args:
        path_set: Candidate paths.
        strategy: Prediction strategy passed to :func:`predict_demand`.
    """

    def __init__(self, path_set: PathSet, strategy: str = "last") -> None:
        super().__init__(path_set, name=f"Pred TE ({strategy})")
        self.strategy = strategy

    def configure(self, history: np.ndarray) -> TEConfiguration:
        prediction = predict_demand(np.asarray(history), self.strategy)
        config, _ = solve_mlu_lp(self.path_set, prediction)
        return config
