"""Linear-programming MLU minimisation (Appendix B, Equation 9).

Given a demand matrix and a candidate path set, the optimal split ratios that
minimise the maximum link utilisation are the solution of the LP:

    minimise    t
    subject to  sum_{p in P_sd} r_p = 1                      for every SD pair
                sum_{p: e in p} D_{sd(p)} r_p <= t * c(e)    for every edge e
                r_p >= 0

This module provides the raw solver (:func:`solve_mlu_lp`), the omniscient
benchmark used to normalise every MLU the paper reports
(:func:`omniscient_mlu`), and the two simplest schemes built directly on the
LP: :class:`OmniscientTE` (perfect knowledge of the next demand) and
:class:`PredictionBasedTE` (solve for a demand predicted from history).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.paths.path_set import PathSet
from repro.te.config import TEConfiguration
from repro.te.scheme import TEScheme

__all__ = [
    "LPSolveError",
    "solve_mlu_lp",
    "omniscient_mlu",
    "OmniscientTE",
    "PredictionBasedTE",
    "predict_demand",
]


class LPSolveError(RuntimeError):
    """Raised when the LP solver fails to find an optimal solution."""


def _build_edge_constraints(path_set: PathSet, demand_vector: np.ndarray) -> sparse.csr_matrix:
    """Rows = edges; columns = paths; entry = demand carried if ratio is 1."""
    demand_per_path = path_set.demand_per_path(np.asarray(demand_vector, dtype=float))
    # Scale each path's incidence column by its pair's demand.
    scaling = sparse.diags(demand_per_path)
    return (path_set.path_to_edge.T @ scaling).tocsr()


def solve_mlu_lp(
    path_set: PathSet,
    demand_vector: np.ndarray,
    sensitivity_caps: np.ndarray | None = None,
    path_mask: np.ndarray | None = None,
) -> tuple[TEConfiguration, float]:
    """Solve the MLU-minimisation LP for a single demand vector.

    Args:
        path_set: Candidate paths.
        demand_vector: Demands in SD-pair order.
        sensitivity_caps: Optional per-path upper bounds on the split ratio
            implied by a path-sensitivity constraint (``r_p <= cap_p``).  This
            is how the Desensitization-based and heuristic-F schemes restrict
            the solution space.
        path_mask: Optional boolean mask of usable paths (False = the path is
            unavailable, e.g. it traverses a failed link).  Pairs whose paths
            are all masked keep a uniform split.

    Returns:
        ``(configuration, optimal MLU)``.

    Raises:
        LPSolveError: If the LP is infeasible or the solver fails.
    """
    num_paths = path_set.num_paths
    num_edges = path_set.topology.num_edges
    num_pairs = path_set.num_sd_pairs
    demand_vector = np.asarray(demand_vector, dtype=float)

    # Variable layout: [r_0 ... r_{P-1}, t].
    cost = np.zeros(num_paths + 1)
    cost[-1] = 1.0

    # Equality: per-pair ratios sum to one.
    a_eq = sparse.hstack(
        [path_set.sd_to_path, sparse.csr_matrix((num_pairs, 1))]
    ).tocsr()
    b_eq = np.ones(num_pairs)

    # Inequality: per-edge load minus t * capacity <= 0.
    edge_rows = _build_edge_constraints(path_set, demand_vector)
    capacity_col = sparse.csr_matrix(
        (-path_set.topology.capacities, (np.arange(num_edges), np.zeros(num_edges, dtype=int))),
        shape=(num_edges, 1),
    )
    a_ub = sparse.hstack([edge_rows, capacity_col]).tocsr()
    b_ub = np.zeros(num_edges)

    upper = np.ones(num_paths)
    if sensitivity_caps is not None:
        caps = np.asarray(sensitivity_caps, dtype=float)
        if caps.shape != (num_paths,):
            raise ValueError("sensitivity_caps must have one entry per path")
        upper = np.minimum(upper, np.clip(caps, 0.0, 1.0))
    if path_mask is not None:
        mask = np.asarray(path_mask, dtype=bool)
        if mask.shape != (num_paths,):
            raise ValueError("path_mask must have one entry per path")
        # Pairs whose candidate paths have all been masked keep the LP
        # feasible by re-allowing all of their paths (their traffic is lost
        # in reality; the caller decides how to account for it).
        pair_has_path = np.zeros(num_pairs, dtype=bool)
        np.logical_or.at(pair_has_path, path_set.path_sd_index, mask)
        effective_mask = mask | ~pair_has_path[path_set.path_sd_index]
        upper = np.where(effective_mask, upper, 0.0)

    # Guarantee feasibility: if a pair's ratio upper bounds sum to less than
    # one (tight sensitivity caps, possibly combined with masked paths), relax
    # that pair's usable caps to 1 -- the same escape hatch Appendix C.1
    # describes for over-tight constraints.
    cap_sums = np.zeros(num_pairs)
    np.add.at(cap_sums, path_set.path_sd_index, upper)
    infeasible_pairs = cap_sums < 1.0 - 1e-9
    if infeasible_pairs.any():
        relax = infeasible_pairs[path_set.path_sd_index] & (upper > 0.0)
        upper = np.where(relax, 1.0, upper)
        # A pair whose caps were all zero (fully masked and zero-capped) gets
        # every path re-enabled so the LP remains well posed.
        cap_sums = np.zeros(num_pairs)
        np.add.at(cap_sums, path_set.path_sd_index, upper)
        still_bad = cap_sums < 1.0 - 1e-9
        if still_bad.any():
            upper = np.where(still_bad[path_set.path_sd_index], 1.0, upper)

    bounds = [(0.0, float(u)) for u in upper] + [(0.0, None)]

    result = linprog(
        cost,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        raise LPSolveError(f"MLU LP failed: {result.message}")
    ratios = result.x[:num_paths]
    mlu = float(result.x[-1])
    return TEConfiguration(path_set, ratios, normalize=True), mlu


def omniscient_mlu(path_set: PathSet, demand_vector: np.ndarray) -> float:
    """Optimal MLU with perfect knowledge of the demand (the paper's oracle).

    Every MLU reported by the paper's figures is normalised by this value.
    Returns a tiny positive floor instead of exactly zero for all-zero
    demands so normalisation never divides by zero.
    """
    _, mlu = solve_mlu_lp(path_set, demand_vector)
    return max(mlu, 1e-12)


def predict_demand(history: np.ndarray, strategy: str = "last") -> np.ndarray:
    """Predict the next demand vector from a window of historical demands.

    Args:
        history: Array of shape ``(H, num_sd_pairs)``, oldest first.
        strategy: ``"last"`` (use the most recent matrix, the paper's choice
            for prediction-based TE), ``"mean"`` (window average), ``"ewma"``
            (exponentially weighted average), or ``"peak"`` (per-pair window
            maximum, used by the Desensitization scheme's anticipated matrix).
    """
    history = np.asarray(history, dtype=float)
    if history.ndim != 2 or history.shape[0] < 1:
        raise ValueError("history must be a (H, num_sd_pairs) array with H >= 1")
    if strategy == "last":
        return history[-1]
    if strategy == "mean":
        return history.mean(axis=0)
    if strategy == "ewma":
        weights = 0.5 ** np.arange(history.shape[0] - 1, -1, -1)
        weights = weights / weights.sum()
        return weights @ history
    if strategy == "peak":
        return history.max(axis=0)
    raise ValueError(f"unknown prediction strategy {strategy!r}")


class OmniscientTE(TEScheme):
    """Oracle TE: optimises for the demand that will actually arrive.

    The evaluation harness treats this scheme specially (it is given the true
    next demand instead of history); it exists mainly to normalise MLUs.
    """

    def __init__(self, path_set: PathSet) -> None:
        super().__init__(path_set, name="Omniscient")

    def configure(self, history: np.ndarray) -> TEConfiguration:
        # Called with the *true* demand as the last history row by the runner.
        config, _ = solve_mlu_lp(self.path_set, np.asarray(history)[-1])
        return config


class PredictionBasedTE(TEScheme):
    """Demand-prediction-based TE (B4/SWAN style, baseline (4) of Section 5.1).

    Predicts the next demand from the recent history and optimises MLU for the
    prediction with no burst-handling mechanism.

    Args:
        path_set: Candidate paths.
        strategy: Prediction strategy passed to :func:`predict_demand`.
    """

    def __init__(self, path_set: PathSet, strategy: str = "last") -> None:
        super().__init__(path_set, name=f"Pred TE ({strategy})")
        self.strategy = strategy

    def configure(self, history: np.ndarray) -> TEConfiguration:
        prediction = predict_demand(np.asarray(history), self.strategy)
        config, _ = solve_mlu_lp(self.path_set, prediction)
        return config
