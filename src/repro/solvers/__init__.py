"""LP-based traffic engineering schemes (baselines of the paper)."""

from repro.solvers.lp import (
    solve_mlu_lp,
    solve_mlu_lp_batch,
    omniscient_mlu,
    OptimalMLUCache,
    shared_cache,
    default_lp_workers,
    resolve_lp_workers,
    LP_WORKERS_ENV_VAR,
    lp_solve_calls,
    count_lp_solves,
    LPSolveTally,
    MLUConstraintStructure,
    constraint_structure,
    OmniscientTE,
    PredictionBasedTE,
)
from repro.solvers.lp_backend import (
    LPBackend,
    ScipyLinprogBackend,
    PersistentHighsBackend,
    available_lp_backends,
    importable_lp_backends,
    get_lp_backend,
    resolve_lp_backend,
    LP_BACKEND_ENV_VAR,
)
from repro.solvers.desensitization import DesensitizationTE, FaultAwareDesensitizationTE
from repro.solvers.heuristic_f import LinearSensitivityTE, PiecewiseSensitivityTE
from repro.solvers.oblivious import ObliviousTE, solve_oblivious_routing
from repro.solvers.cope import CopeTE

__all__ = [
    "solve_mlu_lp",
    "solve_mlu_lp_batch",
    "omniscient_mlu",
    "OptimalMLUCache",
    "shared_cache",
    "default_lp_workers",
    "resolve_lp_workers",
    "LP_WORKERS_ENV_VAR",
    "LPBackend",
    "ScipyLinprogBackend",
    "PersistentHighsBackend",
    "available_lp_backends",
    "importable_lp_backends",
    "get_lp_backend",
    "resolve_lp_backend",
    "LP_BACKEND_ENV_VAR",
    "lp_solve_calls",
    "count_lp_solves",
    "LPSolveTally",
    "MLUConstraintStructure",
    "constraint_structure",
    "OmniscientTE",
    "PredictionBasedTE",
    "DesensitizationTE",
    "FaultAwareDesensitizationTE",
    "LinearSensitivityTE",
    "PiecewiseSensitivityTE",
    "ObliviousTE",
    "solve_oblivious_routing",
    "CopeTE",
]
