"""Heuristic fine-grained sensitivity constraints (Appendix C).

The paper shows that even without deep learning, replacing the fixed
sensitivity threshold of Desensitization-based TE with a simple per-pair
function ``F(s, d)`` of the pair's historical traffic variance already
improves the normal-case / burst-case balance.  Two function families are
evaluated:

* **Linear** (Appendix C.1, Figure 9 / Table 7): pairs are sorted by
  historical variance; the allowed sensitivity decreases linearly from
  ``max_threshold`` (most stable pair) to ``min_threshold`` (most bursty
  pair).
* **Piecewise** (Appendix C.2, Figure 11 / Table 8): pairs whose variance
  rank falls below a breakpoint get ``max_threshold``; the rest get
  ``min_threshold``.

Both schemes otherwise behave exactly like
:class:`~repro.solvers.desensitization.DesensitizationTE` (peak-of-window
anticipated matrix, MLU LP under the per-path caps).
"""

from __future__ import annotations

import numpy as np

from repro.paths.path_set import PathSet
from repro.solvers.desensitization import DesensitizationTE
from repro.traffic.matrix import TrafficMatrixSequence

__all__ = ["LinearSensitivityTE", "PiecewiseSensitivityTE"]


class _VarianceRankedTE(DesensitizationTE):
    """Shared machinery: per-pair thresholds derived from variance ranks."""

    def __init__(
        self,
        path_set: PathSet,
        min_threshold: float,
        max_threshold: float,
        window: int = 12,
        name: str = "Heuristic-F TE",
    ) -> None:
        if min_threshold <= 0 or max_threshold <= 0:
            raise ValueError("thresholds must be positive")
        if min_threshold > max_threshold:
            raise ValueError("min_threshold cannot exceed max_threshold")
        super().__init__(path_set, sensitivity_threshold=max_threshold, window=window)
        self.name = name
        self.min_threshold = min_threshold
        self.max_threshold = max_threshold
        self._precomputed = False

    def precompute(self, train_sequence: TrafficMatrixSequence) -> None:
        """Derive per-pair thresholds from the training-period variances."""
        variance = train_sequence.pair_variance()
        thresholds = self._thresholds_from_variance(variance)
        self._caps = self._feasible_caps(thresholds)
        self._precomputed = True

    def _thresholds_from_variance(self, variance: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @staticmethod
    def _variance_ranks(variance: np.ndarray) -> np.ndarray:
        """Rank of each pair when sorted by ascending variance (0 = most stable)."""
        order = np.argsort(variance, kind="stable")
        ranks = np.empty_like(order)
        ranks[order] = np.arange(len(order))
        return ranks


class LinearSensitivityTE(_VarianceRankedTE):
    """Linear per-pair sensitivity constraints (Appendix C.1).

    Args:
        path_set: Candidate paths.
        min_threshold: Sensitivity allowed for the most bursty pair.
        max_threshold: Sensitivity allowed for the most stable pair.
        window: Anticipated-matrix window.
    """

    def __init__(
        self,
        path_set: PathSet,
        min_threshold: float = 1.0 / 3.0,
        max_threshold: float = 5.0 / 6.0,
        window: int = 12,
    ) -> None:
        super().__init__(
            path_set,
            min_threshold=min_threshold,
            max_threshold=max_threshold,
            window=window,
            name=f"Linear-F TE [{min_threshold:.2f},{max_threshold:.2f}]",
        )

    def _thresholds_from_variance(self, variance: np.ndarray) -> np.ndarray:
        ranks = self._variance_ranks(variance)
        num_pairs = len(variance)
        if num_pairs == 1:
            return np.array([self.max_threshold])
        fraction = ranks / (num_pairs - 1)
        return self.max_threshold - fraction * (self.max_threshold - self.min_threshold)


class PiecewiseSensitivityTE(_VarianceRankedTE):
    """Piecewise (two-level) per-pair sensitivity constraints (Appendix C.2).

    Args:
        path_set: Candidate paths.
        min_threshold: Sensitivity allowed for bursty pairs (above the
            breakpoint).
        max_threshold: Sensitivity allowed for stable pairs (below the
            breakpoint).
        breakpoint: Fraction of pairs (by ascending variance rank) treated as
            stable, e.g. 0.8 means the most stable 80% of pairs get the
            relaxed threshold.
        window: Anticipated-matrix window.
    """

    def __init__(
        self,
        path_set: PathSet,
        min_threshold: float = 1.0 / 2.0,
        max_threshold: float = 2.0 / 3.0,
        breakpoint: float = 0.8,
        window: int = 12,
    ) -> None:
        if not 0.0 <= breakpoint <= 1.0:
            raise ValueError("breakpoint must be in [0, 1]")
        super().__init__(
            path_set,
            min_threshold=min_threshold,
            max_threshold=max_threshold,
            window=window,
            name=f"Piecewise-F TE [{min_threshold:.2f},{max_threshold:.2f},bp={breakpoint}]",
        )
        self.breakpoint = breakpoint

    def _thresholds_from_variance(self, variance: np.ndarray) -> np.ndarray:
        ranks = self._variance_ranks(variance)
        num_pairs = len(variance)
        cutoff = self.breakpoint * max(num_pairs - 1, 1)
        return np.where(ranks <= cutoff, self.max_threshold, self.min_threshold)
