"""Named evaluation scenarios (topology + paths + traffic + split).

The registry is open: :func:`register_scenario` adds new named workloads
and :func:`from_config` builds one from a plain (JSON-friendly) config dict,
so scenarios are data rather than code.
"""

from repro.datasets.registry import (
    Scenario,
    available_scenarios,
    from_config,
    load,
    register_scenario,
    unregister_scenario,
)

__all__ = [
    "Scenario",
    "available_scenarios",
    "load",
    "register_scenario",
    "unregister_scenario",
    "from_config",
]
