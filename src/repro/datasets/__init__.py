"""Named evaluation scenarios (topology + paths + traffic + split)."""

from repro.datasets.registry import Scenario, available_scenarios, load

__all__ = ["Scenario", "available_scenarios", "load"]
