"""Registry of the evaluation scenarios used by the paper (Table 1, Section 5.1).

A :class:`Scenario` bundles everything a TE experiment needs: a topology, a
candidate path set (Yen's 3-shortest-paths by default), a traffic matrix
sequence with the appropriate burstiness profile, and the chronological
train/test split.

Full-size scenarios match Table 1's node/edge counts.  Each also has a
``*_small`` variant with a scaled-down topology and shorter trace so the
complete benchmark harness runs on a CPU-only machine in minutes; the scaling
factors are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.paths.ksp import build_ksp_path_set
from repro.paths.path_set import PathSet
from repro.topology import generators, zoo
from repro.topology.graph import Topology
from repro.traffic.bursty import DataCenterTrafficGenerator
from repro.traffic.gravity import GravityTrafficGenerator
from repro.traffic.matrix import TrafficMatrixSequence
from repro.traffic.pfabric import PFabricTrafficGenerator
from repro.traffic.wan import GeantLikeGenerator

__all__ = ["Scenario", "available_scenarios", "load"]


@dataclass
class Scenario:
    """A complete evaluation scenario.

    Attributes:
        name: Scenario identifier.
        topology: Network topology.
        paths: Candidate path set (3 shortest paths per pair).
        traffic: Demand matrix sequence.
        train_fraction: Fraction of the trace used for training.
        history_len: Recommended history window H for this scenario.
        description: One-line description.
    """

    name: str
    topology: Topology
    paths: PathSet
    traffic: TrafficMatrixSequence
    train_fraction: float = 0.75
    history_len: int = 12
    description: str = ""

    def split(self) -> tuple[TrafficMatrixSequence, TrafficMatrixSequence]:
        """Chronological train/test split."""
        return self.traffic.split(self.train_fraction)


def _scenario(
    name: str,
    topology: Topology,
    traffic: TrafficMatrixSequence,
    history_len: int = 12,
    k_paths: int = 3,
    description: str = "",
) -> Scenario:
    paths = build_ksp_path_set(topology, k=k_paths)
    return Scenario(
        name=name,
        topology=topology,
        paths=paths,
        traffic=traffic,
        history_len=history_len,
        description=description,
    )


# --------------------------------------------------------------------------- #
# Builders (one per scenario name)
# --------------------------------------------------------------------------- #
def _build_geant(seed: int, num_intervals: int | None, small: bool) -> Scenario:
    topology = zoo.geant()
    intervals = num_intervals or (200 if small else 1000)
    traffic = GeantLikeGenerator(topology, seed=seed).generate(intervals)
    return _scenario(
        "geant_small" if small else "geant",
        topology,
        traffic,
        description="GEANT-like WAN, 23 nodes, mostly-stable 15-minute traffic with sparse bursts",
    )


def _build_wan_gravity(name: str, topology: Topology, seed: int, num_intervals: int | None, small: bool) -> Scenario:
    intervals = num_intervals or (150 if small else 600)
    traffic = GravityTrafficGenerator(topology, seed=seed).generate(intervals)
    return _scenario(
        name,
        topology,
        traffic,
        description=f"{topology.name} WAN with stable gravity-model traffic",
    )


def _build_pfabric(seed: int, num_intervals: int | None, small: bool) -> Scenario:
    topology = generators.leaf_spine_direct_connect(9, capacity=10.0)
    intervals = num_intervals or (200 if small else 800)
    traffic = PFabricTrafficGenerator(topology, seed=seed).generate(intervals)
    return _scenario(
        "pfabric_small" if small else "pfabric",
        topology,
        traffic,
        description="pFabric 9-ToR full mesh with Poisson web-search flow arrivals",
    )


def _build_meta_pod(cluster: str, seed: int, num_intervals: int | None, small: bool) -> Scenario:
    num_pods = 4 if cluster == "db" else 8
    topology = generators.fully_connected(num_pods, capacity=40.0, name=f"meta-pod-{cluster}")
    intervals = num_intervals or (300 if small else 1200)
    traffic = DataCenterTrafficGenerator(topology, level="pod", seed=seed).generate(intervals)
    name = f"meta_pod_{cluster}" + ("_small" if small else "")
    return _scenario(
        name,
        topology,
        traffic,
        description=f"Meta-like {cluster.upper()} cluster, PoD level ({num_pods} pods, full mesh), moderately bursty",
    )


def _build_meta_tor(cluster: str, seed: int, num_intervals: int | None, small: bool) -> Scenario:
    if small:
        num_tors, degree = (24, 6) if cluster == "db" else (32, 8)
    else:
        # Table 1: ToR DB 155 nodes / 7194 directed edges (degree ~46),
        #          ToR WEB 324 nodes / 31520 directed edges (degree ~97).
        num_tors, degree = (155, 46) if cluster == "db" else (324, 97)
    topology = generators.random_regular(
        num_tors, degree, capacity=10.0, seed=seed, name=f"meta-tor-{cluster}"
    )
    intervals = num_intervals or (250 if small else 800)
    traffic = DataCenterTrafficGenerator(topology, level="tor", seed=seed).generate(intervals)
    name = f"meta_tor_{cluster}" + ("_small" if small else "")
    return _scenario(
        name,
        topology,
        traffic,
        history_len=12,
        description=f"Meta-like {cluster.upper()} cluster, ToR level (random regular graph), highly dynamic traffic",
    )


_BUILDERS: dict[str, Callable[[int, int | None], Scenario]] = {
    "geant": lambda seed, n: _build_geant(seed, n, small=False),
    "geant_small": lambda seed, n: _build_geant(seed, n, small=True),
    "uscarrier": lambda seed, n: _build_wan_gravity("uscarrier", zoo.uscarrier(), seed, n, small=False),
    "uscarrier_small": lambda seed, n: _build_wan_gravity(
        "uscarrier_small", generators.wan_like(40, 52, seed=7, name="UsCarrier-small"), seed, n, small=True
    ),
    "cogentco": lambda seed, n: _build_wan_gravity("cogentco", zoo.cogentco(), seed, n, small=False),
    "cogentco_small": lambda seed, n: _build_wan_gravity(
        "cogentco_small", generators.wan_like(50, 62, seed=11, name="Cogentco-small"), seed, n, small=True
    ),
    "pfabric": lambda seed, n: _build_pfabric(seed, n, small=False),
    "pfabric_small": lambda seed, n: _build_pfabric(seed, n, small=True),
    "meta_pod_db": lambda seed, n: _build_meta_pod("db", seed, n, small=False),
    "meta_pod_db_small": lambda seed, n: _build_meta_pod("db", seed, n, small=True),
    "meta_pod_web": lambda seed, n: _build_meta_pod("web", seed, n, small=False),
    "meta_pod_web_small": lambda seed, n: _build_meta_pod("web", seed, n, small=True),
    "meta_tor_db": lambda seed, n: _build_meta_tor("db", seed, n, small=False),
    "meta_tor_db_small": lambda seed, n: _build_meta_tor("db", seed, n, small=True),
    "meta_tor_web": lambda seed, n: _build_meta_tor("web", seed, n, small=False),
    "meta_tor_web_small": lambda seed, n: _build_meta_tor("web", seed, n, small=True),
}


def available_scenarios() -> list[str]:
    """Names of all registered scenarios."""
    return sorted(_BUILDERS)


def load(name: str, seed: int = 0, num_intervals: int | None = None) -> Scenario:
    """Build a named scenario.

    Args:
        name: One of :func:`available_scenarios`.
        seed: Seed controlling the synthetic traffic (and, for ToR scenarios,
            the random regular topology).
        num_intervals: Optional override for the trace length.

    Raises:
        KeyError: If the scenario name is unknown.
    """
    if name not in _BUILDERS:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(available_scenarios())}"
        )
    return _BUILDERS[name](seed, num_intervals)
