"""Registry of the evaluation scenarios used by the paper (Table 1, Section 5.1).

A :class:`Scenario` bundles everything a TE experiment needs: a topology, a
candidate path set (Yen's 3-shortest-paths by default), a traffic matrix
sequence with the appropriate burstiness profile, and the chronological
train/test split.

Full-size scenarios match Table 1's node/edge counts.  Each also has a
``*_small`` variant with a scaled-down topology and shorter trace so the
complete benchmark harness runs on a CPU-only machine in minutes; the scaling
factors are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import inspect
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Callable

from repro.paths.ksp import build_ksp_path_set
from repro.paths.path_set import PathSet
from repro.topology import generators, zoo
from repro.topology.graph import Topology
from repro.traffic.bursty import DataCenterTrafficGenerator
from repro.traffic.gravity import GravityTrafficGenerator
from repro.traffic.matrix import TrafficMatrixSequence
from repro.traffic.pfabric import PFabricTrafficGenerator
from repro.traffic.wan import GeantLikeGenerator

__all__ = [
    "Scenario",
    "available_scenarios",
    "load",
    "register_scenario",
    "unregister_scenario",
    "from_config",
]


@dataclass
class Scenario:
    """A complete evaluation scenario.

    Attributes:
        name: Scenario identifier.
        topology: Network topology.
        paths: Candidate path set (3 shortest paths per pair).
        traffic: Demand matrix sequence.
        train_fraction: Fraction of the trace used for training.
        history_len: Recommended history window H for this scenario.
        description: One-line description.
    """

    name: str
    topology: Topology
    paths: PathSet
    traffic: TrafficMatrixSequence
    train_fraction: float = 0.75
    history_len: int = 12
    description: str = ""

    def split(self) -> tuple[TrafficMatrixSequence, TrafficMatrixSequence]:
        """Chronological train/test split."""
        return self.traffic.split(self.train_fraction)


def _scenario(
    name: str,
    topology: Topology,
    traffic: TrafficMatrixSequence,
    history_len: int = 12,
    k_paths: int = 3,
    description: str = "",
) -> Scenario:
    paths = build_ksp_path_set(topology, k=k_paths)
    return Scenario(
        name=name,
        topology=topology,
        paths=paths,
        traffic=traffic,
        history_len=history_len,
        description=description,
    )


# --------------------------------------------------------------------------- #
# Builders (one per scenario name)
# --------------------------------------------------------------------------- #
def _build_geant(seed: int, num_intervals: int | None, small: bool) -> Scenario:
    topology = zoo.geant()
    intervals = num_intervals or (200 if small else 1000)
    traffic = GeantLikeGenerator(topology, seed=seed).generate(intervals)
    return _scenario(
        "geant_small" if small else "geant",
        topology,
        traffic,
        description="GEANT-like WAN, 23 nodes, mostly-stable 15-minute traffic with sparse bursts",
    )


def _build_wan_gravity(name: str, topology: Topology, seed: int, num_intervals: int | None, small: bool) -> Scenario:
    intervals = num_intervals or (150 if small else 600)
    traffic = GravityTrafficGenerator(topology, seed=seed).generate(intervals)
    return _scenario(
        name,
        topology,
        traffic,
        description=f"{topology.name} WAN with stable gravity-model traffic",
    )


def _build_pfabric(seed: int, num_intervals: int | None, small: bool) -> Scenario:
    topology = generators.leaf_spine_direct_connect(9, capacity=10.0)
    intervals = num_intervals or (200 if small else 800)
    traffic = PFabricTrafficGenerator(topology, seed=seed).generate(intervals)
    return _scenario(
        "pfabric_small" if small else "pfabric",
        topology,
        traffic,
        description="pFabric 9-ToR full mesh with Poisson web-search flow arrivals",
    )


def _build_meta_pod(cluster: str, seed: int, num_intervals: int | None, small: bool) -> Scenario:
    num_pods = 4 if cluster == "db" else 8
    topology = generators.fully_connected(num_pods, capacity=40.0, name=f"meta-pod-{cluster}")
    intervals = num_intervals or (300 if small else 1200)
    traffic = DataCenterTrafficGenerator(topology, level="pod", seed=seed).generate(intervals)
    name = f"meta_pod_{cluster}" + ("_small" if small else "")
    return _scenario(
        name,
        topology,
        traffic,
        description=f"Meta-like {cluster.upper()} cluster, PoD level ({num_pods} pods, full mesh), moderately bursty",
    )


def _build_meta_tor(cluster: str, seed: int, num_intervals: int | None, small: bool) -> Scenario:
    if small:
        num_tors, degree = (24, 6) if cluster == "db" else (32, 8)
    else:
        # Table 1: ToR DB 155 nodes / 7194 directed edges (degree ~46),
        #          ToR WEB 324 nodes / 31520 directed edges (degree ~97).
        num_tors, degree = (155, 46) if cluster == "db" else (324, 97)
    topology = generators.random_regular(
        num_tors, degree, capacity=10.0, seed=seed, name=f"meta-tor-{cluster}"
    )
    intervals = num_intervals or (250 if small else 800)
    traffic = DataCenterTrafficGenerator(topology, level="tor", seed=seed).generate(intervals)
    name = f"meta_tor_{cluster}" + ("_small" if small else "")
    return _scenario(
        name,
        topology,
        traffic,
        history_len=12,
        description=f"Meta-like {cluster.upper()} cluster, ToR level (random regular graph), highly dynamic traffic",
    )


_BUILDERS: dict[str, Callable[[int, int | None], Scenario]] = {
    "geant": lambda seed, n: _build_geant(seed, n, small=False),
    "geant_small": lambda seed, n: _build_geant(seed, n, small=True),
    "uscarrier": lambda seed, n: _build_wan_gravity("uscarrier", zoo.uscarrier(), seed, n, small=False),
    "uscarrier_small": lambda seed, n: _build_wan_gravity(
        "uscarrier_small", generators.wan_like(40, 52, seed=7, name="UsCarrier-small"), seed, n, small=True
    ),
    "cogentco": lambda seed, n: _build_wan_gravity("cogentco", zoo.cogentco(), seed, n, small=False),
    "cogentco_small": lambda seed, n: _build_wan_gravity(
        "cogentco_small", generators.wan_like(50, 62, seed=11, name="Cogentco-small"), seed, n, small=True
    ),
    "pfabric": lambda seed, n: _build_pfabric(seed, n, small=False),
    "pfabric_small": lambda seed, n: _build_pfabric(seed, n, small=True),
    "meta_pod_db": lambda seed, n: _build_meta_pod("db", seed, n, small=False),
    "meta_pod_db_small": lambda seed, n: _build_meta_pod("db", seed, n, small=True),
    "meta_pod_web": lambda seed, n: _build_meta_pod("web", seed, n, small=False),
    "meta_pod_web_small": lambda seed, n: _build_meta_pod("web", seed, n, small=True),
    "meta_tor_db": lambda seed, n: _build_meta_tor("db", seed, n, small=False),
    "meta_tor_db_small": lambda seed, n: _build_meta_tor("db", seed, n, small=True),
    "meta_tor_web": lambda seed, n: _build_meta_tor("web", seed, n, small=False),
    "meta_tor_web_small": lambda seed, n: _build_meta_tor("web", seed, n, small=True),
}


def available_scenarios() -> list[str]:
    """Names of all registered scenarios."""
    return sorted(_BUILDERS)


def register_scenario(name: str, overwrite: bool = False):
    """Register a scenario builder under ``name`` (new workloads are data).

    The decorated builder is called as ``builder(seed, num_intervals)`` --
    the same contract :func:`load` passes to the bundled scenarios -- and
    must return a :class:`Scenario`.  Registered names show up in
    :func:`available_scenarios` and are loadable by every consumer
    (:func:`load`, the benchmark harness, :class:`repro.study.Study` specs).

    Example::

        @register_scenario("my_mesh")
        def _build(seed, num_intervals):
            return from_config({
                "name": "my_mesh",
                "topology": {"kind": "fully_connected", "num_nodes": 6},
                "traffic": {"kind": "datacenter", "seed": seed,
                            "num_intervals": num_intervals or 200},
            })

    Raises:
        ValueError: If ``name`` is taken and ``overwrite`` is not set.
    """

    def decorator(builder: Callable[[int, int | None], Scenario]):
        if name in _BUILDERS and not overwrite:
            raise ValueError(
                f"scenario {name!r} is already registered; pass overwrite=True to replace it"
            )
        _BUILDERS[name] = builder
        return builder

    return decorator


def unregister_scenario(name: str) -> None:
    """Remove a registered scenario (missing names are ignored)."""
    _BUILDERS.pop(name, None)


#: Topology builders usable from a scenario config's ``topology.kind``.
_TOPOLOGY_KINDS: dict[str, Callable[..., Topology]] = {
    "triangle": generators.triangle,
    "line": generators.line,
    "star": generators.star,
    "fully_connected": generators.fully_connected,
    "random_regular": generators.random_regular,
    "leaf_spine": generators.leaf_spine_direct_connect,
    "wan_like": generators.wan_like,
    "geant": zoo.geant,
    "uscarrier": zoo.uscarrier,
    "cogentco": zoo.cogentco,
}

#: Traffic generators usable from a scenario config's ``traffic.kind``.
_TRAFFIC_KINDS: dict[str, Callable] = {
    "gravity": GravityTrafficGenerator,
    "datacenter": DataCenterTrafficGenerator,
    "pfabric": PFabricTrafficGenerator,
    "geant_like": GeantLikeGenerator,
}


def _validate_builder_kwargs(builder, kwargs: dict, what: str, reserved: tuple = ()) -> None:
    """Reject config keys the builder cannot accept -- before anything builds.

    ``reserved`` names parameters the framework supplies itself (e.g. the
    traffic generators' ``topology``), which configs must not set.
    """
    parameters = inspect.signature(builder).parameters
    allowed = [
        name
        for name, param in parameters.items()
        if name not in reserved
        and param.kind in (param.POSITIONAL_OR_KEYWORD, param.KEYWORD_ONLY)
    ]
    unknown = [key for key in kwargs if key not in allowed]
    if unknown:
        raise ValueError(
            f"unknown key(s) {sorted(unknown)} for {what}; allowed: {sorted(allowed)}"
        )


def from_config(config: Mapping) -> Scenario:
    """Build a :class:`Scenario` from a plain config dict (JSON-friendly).

    The config mirrors what the bundled builders hard-code::

        {
            "name": "my_scenario",
            "topology": {"kind": "fully_connected", "num_nodes": 8,
                         "capacity": 40.0},
            "traffic": {"kind": "datacenter", "level": "pod",
                        "num_intervals": 300, "seed": 0},
            "paths": {"k": 3},
            "history_len": 12,
            "train_fraction": 0.75,
            "description": "..."
        }

    ``topology.kind`` selects from :data:`_TOPOLOGY_KINDS` (generator
    functions and the topology-zoo WANs); remaining keys are passed to the
    builder.  ``traffic.kind`` selects from :data:`_TRAFFIC_KINDS`; the
    generator is constructed with the remaining keys (minus the required
    ``num_intervals``, which sets the trace length).

    Raises:
        ValueError: On unknown kinds or leftover config keys.
    """
    # Validate the whole config up front: a typoed key must fail before the
    # (potentially expensive) topology / KSP / trace construction starts.
    cfg = dict(config)
    name = cfg.pop("name", "custom")
    topo_cfg = dict(cfg.pop("topology", None) or {})
    traffic_cfg = dict(cfg.pop("traffic", None) or {})
    paths_cfg = dict(cfg.pop("paths", None) or {})
    train_fraction = cfg.pop("train_fraction", 0.75)
    history_len = cfg.pop("history_len", 12)
    description = cfg.pop("description", "")
    if cfg:
        raise ValueError(
            f"unknown scenario config key(s) {sorted(cfg)}; allowed: ['name', 'topology', "
            "'traffic', 'paths', 'history_len', 'train_fraction', 'description']"
        )

    topo_kind = topo_cfg.pop("kind", None)
    if topo_kind not in _TOPOLOGY_KINDS:
        raise ValueError(
            f"unknown topology kind {topo_kind!r}; available: "
            f"{', '.join(sorted(_TOPOLOGY_KINDS))}"
        )
    _validate_builder_kwargs(_TOPOLOGY_KINDS[topo_kind], topo_cfg, f"topology kind {topo_kind!r}")
    traffic_kind = traffic_cfg.pop("kind", None)
    if traffic_kind not in _TRAFFIC_KINDS:
        raise ValueError(
            f"unknown traffic kind {traffic_kind!r}; available: "
            f"{', '.join(sorted(_TRAFFIC_KINDS))}"
        )
    num_intervals = traffic_cfg.pop("num_intervals", None)
    if num_intervals is None:
        raise ValueError("the traffic config requires 'num_intervals'")
    _validate_builder_kwargs(
        _TRAFFIC_KINDS[traffic_kind],
        traffic_cfg,
        f"traffic kind {traffic_kind!r}",
        reserved=("topology",),
    )
    k_paths = paths_cfg.pop("k", 3)
    if paths_cfg:
        raise ValueError(f"unknown paths config key(s) {sorted(paths_cfg)}; allowed: ['k']")

    topology = _TOPOLOGY_KINDS[topo_kind](**topo_cfg)
    traffic = _TRAFFIC_KINDS[traffic_kind](topology, **traffic_cfg).generate(num_intervals)
    return Scenario(
        name=name,
        topology=topology,
        paths=build_ksp_path_set(topology, k=k_paths),
        traffic=traffic,
        train_fraction=train_fraction,
        history_len=history_len,
        description=description,
    )


def load(name: str, seed: int = 0, num_intervals: int | None = None) -> Scenario:
    """Build a named scenario.

    Args:
        name: One of :func:`available_scenarios`.
        seed: Seed controlling the synthetic traffic (and, for ToR scenarios,
            the random regular topology).
        num_intervals: Optional override for the trace length.

    Raises:
        KeyError: If the scenario name is unknown.
    """
    if name not in _BUILDERS:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(available_scenarios())}"
        )
    return _BUILDERS[name](seed, num_intervals)
