"""FIGRET reproduction: fine-grained robustness-enhanced traffic engineering.

This package is a from-scratch reproduction of the system described in
*FIGRET: Fine-Grained Robustness-Enhanced Traffic Engineering* (SIGCOMM 2024),
including every substrate the paper's evaluation depends on: topologies,
traffic generators, path selection, LP-based TE baselines, a NumPy
deep-learning engine, the FIGRET / DOTE models, and the evaluation harness.

The most commonly used entry points are re-exported here:

>>> from repro import datasets, Figret
>>> scenario = datasets.load("geant_small", seed=1)
>>> model = Figret(scenario.topology, scenario.paths)

Whole experiment grids are declared as data and run through the study layer:

>>> from repro import Study, sweep
>>> results = Study({"scenario": sweep("geant_small", "pfabric_small"),
...                  "scheme": {"kind": "figret"}}).run()
"""

from repro.topology.graph import Topology
from repro.paths.path_set import PathSet
from repro.traffic.matrix import TrafficMatrix, TrafficMatrixSequence
from repro.te.config import TEConfiguration
from repro.core.figret import Figret
from repro.core.dote import Dote
from repro.study import ExperimentSpec, ResultSet, Study, sweep

__version__ = "1.1.0"

__all__ = [
    "Topology",
    "PathSet",
    "TrafficMatrix",
    "TrafficMatrixSequence",
    "TEConfiguration",
    "Figret",
    "Dote",
    "Study",
    "ExperimentSpec",
    "ResultSet",
    "sweep",
    "__version__",
]
