"""A TEAL-like baseline: learning-accelerated TE for a single given demand.

TEAL (baseline (7) of Section 5.1) learns to map a *given* traffic demand to
a network configuration tailored to that demand (GNN + reinforcement
learning).  In the paper's evaluation, since the future demand is unknown,
the configuration computed for the *previous* snapshot's demand is applied to
the next snapshot -- which is exactly why TEAL underperforms when bursts
occur.

A full GNN + RL reimplementation is out of scope for this reproduction (and,
as Appendix D.3 argues, unnecessary for the MLU objective); instead this
baseline captures TEAL's defining property -- "optimise for the demand you
were given, not for what might come next" -- with the same FCN substrate:

* input: the single most recent demand vector (H = 1);
* loss: the MLU that configuration achieves on **that same input demand**
  (not on the next one).

At test time the configuration computed from the previous snapshot is applied
to the next snapshot, mirroring the paper's methodology.  See DESIGN.md
section 1 for the substitution note.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import TrainingConfig
from repro.core.loss import TELoss
from repro.core.model import FigretNet
from repro.nn import Adam, Tensor
from repro.paths.path_set import PathSet
from repro.solvers.lp import OptimalMLUCache, shared_cache
from repro.te.config import TEConfiguration
from repro.te.scheme import TEScheme
from repro.traffic.matrix import TrafficMatrixSequence

__all__ = ["TealLike"]


class TealLike(TEScheme):
    """Learning-based TE that optimises for the observed (stale) demand.

    Args:
        path_set: Candidate paths.
        config: Training hyper-parameters (``history_len`` is forced to 1 and
            the robustness term is disabled).
        cache: Optimal-MLU cache serving the training-time normalisers (the
            process-wide :func:`~repro.solvers.lp.shared_cache` by default).
        lp_workers: Optional process-pool width for the normaliser solves.
    """

    def __init__(
        self,
        path_set: PathSet,
        config: TrainingConfig | None = None,
        cache: OptimalMLUCache | None = None,
        lp_workers: int | str | None = None,
    ) -> None:
        super().__init__(path_set, name="TEAL-like")
        base = config or TrainingConfig()
        self.config = base.replace(history_len=1, robustness_weight=0.0)
        self.cache = cache
        self.lp_workers = lp_workers
        self._model: FigretNet | None = None
        self._loss: TELoss | None = None
        self._input_scale = 1.0

    def __getstate__(self) -> dict:
        """Pickle trained weights + config, dropping the live LP cache.

        The model serialises through :class:`FigretNet`'s weights-only
        pickling and the loss holds plain arrays, so a trained TEAL-like
        scheme crosses a process-pool boundary ready for inference.
        """
        state = dict(self.__dict__)
        state["cache"] = None
        return state

    def precompute(self, train_sequence: TrafficMatrixSequence) -> None:
        """Train the network to minimise MLU on the demand it is shown."""
        config = self.config
        demands = train_sequence.flat_demands()
        self._input_scale = float(max(demands.mean(), 1e-12))
        scaled = demands / self._input_scale
        optimal = None
        if config.normalize_by_optimal:
            cache = self.cache if self.cache is not None else shared_cache()
            optimal = cache.optimal_mlus(
                self.path_set, demands, workers=self.lp_workers
            )

        self._model = FigretNet(
            self.path_set,
            history_len=1,
            hidden_sizes=config.hidden_sizes,
            seed=config.seed,
        )
        self._loss = TELoss(self.path_set, pair_variance=None, robustness_weight=0.0)
        optimizer = Adam(self._model.parameters(), lr=config.learning_rate)
        rng = np.random.default_rng(config.seed)
        num_samples = scaled.shape[0]
        for _ in range(config.epochs):
            order = rng.permutation(num_samples)
            for start in range(0, num_samples, config.batch_size):
                idx = order[start : start + config.batch_size]
                raw = self._model(Tensor(scaled[idx]))
                # The defining difference from DOTE: the loss is evaluated on
                # the *input* demand itself.
                loss, _ = self._loss(raw, demands[idx], optimal[idx] if optimal is not None else None)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()

    def configure(self, history: np.ndarray) -> TEConfiguration:
        if self._model is None:
            raise RuntimeError("TealLike.configure called before precompute()")
        latest = np.asarray(history, dtype=float)[-1]
        ratios = self._model.split_ratios(latest, input_scale=self._input_scale)
        return TEConfiguration(self.path_set, ratios, normalize=True)

    def configure_batch(self, windows: np.ndarray) -> np.ndarray:
        """One vectorized pass over the most recent demand of every window."""
        if self._model is None:
            raise RuntimeError("TealLike.configure_batch called before precompute()")
        windows = np.asarray(windows, dtype=float)
        if windows.ndim != 3:
            return super().configure_batch(windows)
        latest = windows[:, -1, :]
        return self._model.split_ratios_batch(latest, input_scale=self._input_scale)
