"""DOTE: direct optimisation of TE from historical demands (Perry et al., NSDI 23).

DOTE (baseline (6) of Section 5.1) trains a fully connected network to map
the most recent ``H`` demand matrices straight to a TE configuration, with
the expected MLU of the *next* matrix as the loss.  FIGRET generalises DOTE
by adding the fine-grained sensitivity term; setting
``robustness_weight = 0`` in the shared trainer therefore reproduces DOTE
exactly.
"""

from __future__ import annotations

from repro.core.config import TrainingConfig
from repro.core.trainer import Trainer, TrainerBackedScheme, TrainingHistory
from repro.paths.path_set import PathSet
from repro.solvers.lp import OptimalMLUCache
from repro.traffic.matrix import TrafficMatrixSequence

__all__ = ["Dote"]


class Dote(TrainerBackedScheme):
    """Deep-learning TE trained on MLU only (no robustness term).

    Args:
        path_set: Candidate paths.
        config: Training hyper-parameters.  ``robustness_weight`` is forced
            to zero (that is what makes it DOTE rather than FIGRET).
        cache: Optimal-MLU cache for the training normalisers (the process-
            wide shared cache by default).
        lp_workers: Optional process-pool width for the normaliser solves.
    """

    def __init__(
        self,
        path_set: PathSet,
        config: TrainingConfig | None = None,
        cache: OptimalMLUCache | None = None,
        lp_workers: int | str | None = None,
    ) -> None:
        super().__init__(path_set, name="DOTE")
        base = config or TrainingConfig()
        self.config = base.replace(robustness_weight=0.0)
        self.cache = cache
        self.lp_workers = lp_workers
        self.training_history: TrainingHistory | None = None

    def precompute(self, train_sequence: TrafficMatrixSequence) -> None:
        """Train the network on the training portion of the trace."""
        self._trainer = Trainer(
            self.path_set,
            self.config,
            pair_variance=None,
            cache=self.cache,
            lp_workers=self.lp_workers,
        )
        self.training_history = self._trainer.fit(train_sequence)

