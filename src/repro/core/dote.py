"""DOTE: direct optimisation of TE from historical demands (Perry et al., NSDI 23).

DOTE (baseline (6) of Section 5.1) trains a fully connected network to map
the most recent ``H`` demand matrices straight to a TE configuration, with
the expected MLU of the *next* matrix as the loss.  FIGRET generalises DOTE
by adding the fine-grained sensitivity term; setting
``robustness_weight = 0`` in the shared trainer therefore reproduces DOTE
exactly.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import TrainingConfig
from repro.core.trainer import Trainer, TrainingHistory
from repro.paths.path_set import PathSet
from repro.te.config import TEConfiguration
from repro.te.scheme import TEScheme
from repro.traffic.matrix import TrafficMatrixSequence

__all__ = ["Dote"]


class Dote(TEScheme):
    """Deep-learning TE trained on MLU only (no robustness term).

    Args:
        path_set: Candidate paths.
        config: Training hyper-parameters.  ``robustness_weight`` is forced
            to zero (that is what makes it DOTE rather than FIGRET).
    """

    def __init__(self, path_set: PathSet, config: TrainingConfig | None = None) -> None:
        super().__init__(path_set, name="DOTE")
        base = config or TrainingConfig()
        self.config = base.replace(robustness_weight=0.0)
        self._trainer: Trainer | None = None
        self.training_history: TrainingHistory | None = None

    @property
    def history_len(self) -> int:
        """Length of the demand history window the scheme expects."""
        return self.config.history_len

    def precompute(self, train_sequence: TrafficMatrixSequence) -> None:
        """Train the network on the training portion of the trace."""
        self._trainer = Trainer(self.path_set, self.config, pair_variance=None)
        self.training_history = self._trainer.fit(train_sequence)

    def configure(self, history: np.ndarray) -> TEConfiguration:
        if self._trainer is None:
            raise RuntimeError("Dote.configure called before precompute()")
        history = np.asarray(history, dtype=float)
        window = history[-self.config.history_len :]
        if window.shape[0] < self.config.history_len:
            # Left-pad by repeating the oldest row so early test intervals work.
            pad = np.repeat(window[:1], self.config.history_len - window.shape[0], axis=0)
            window = np.vstack([pad, window])
        ratios = self._trainer.split_ratios(window)
        return TEConfiguration(self.path_set, ratios, normalize=True)
