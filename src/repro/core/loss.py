"""The burst-aware FIGRET loss (Section 4.3).

The loss has two components:

* ``L1`` -- the maximum link utilisation induced by the configuration on the
  revealed demand ``D_t`` (Equation 7), optionally normalised by the
  omniscient-optimal MLU of ``D_t`` for training stability (as in DOTE).
* ``L2`` -- the fine-grained robustness term of Equation 8:
  ``sum_{s,d} sigma^2_{sd} * S^max_{sd}``, i.e. each SD pair's maximum path
  sensitivity weighted by that pair's historical traffic variance.  Pair
  variances are normalised to sum to one so the term is a variance-weighted
  average sensitivity and the ``robustness_weight`` hyper-parameter has a
  scale that transfers across topologies.

The total loss is ``L1 + robustness_weight * L2``; ``robustness_weight = 0``
recovers DOTE's pure-MLU objective.
"""

from __future__ import annotations

import numpy as np

from repro.nn import Tensor
from repro.paths.path_set import PathSet
from repro.te.sensitivity import normalized_path_capacities

__all__ = ["TELoss"]


class TELoss:
    """Differentiable MLU + fine-grained sensitivity loss.

    Args:
        path_set: Candidate paths.
        pair_variance: Historical per-pair demand variance
            (``sigma^2_{sd, [1-T]}``), in SD-pair order.  ``None`` disables the
            robustness term regardless of ``robustness_weight``.
        robustness_weight: Weight of the L2 term.
    """

    def __init__(
        self,
        path_set: PathSet,
        pair_variance: np.ndarray | None = None,
        robustness_weight: float = 0.0,
    ) -> None:
        self.path_set = path_set
        self.robustness_weight = float(robustness_weight)
        self._path_sd_index = path_set.path_sd_index
        self._num_pairs = path_set.num_sd_pairs
        self._dense_path_to_edge = path_set.path_to_edge.toarray()
        self._inv_capacities = 1.0 / path_set.topology.capacities
        self._inv_norm_path_caps = 1.0 / normalized_path_capacities(path_set)
        if pair_variance is None:
            self._variance_weights = None
        else:
            variance = np.asarray(pair_variance, dtype=float)
            if variance.shape != (self._num_pairs,):
                raise ValueError("pair_variance must have one entry per SD pair")
            total = variance.sum()
            self._variance_weights = variance / total if total > 0 else variance

    # ------------------------------------------------------------------ #
    # Differentiable pieces
    # ------------------------------------------------------------------ #
    def split_ratios(self, raw_scores: Tensor) -> Tensor:
        """Normalise raw network outputs into per-pair split ratios.

        Each SD pair's scores are divided by their sum, guaranteeing the
        feasibility constraint ``sum_p r_p = 1`` (Section 6).
        """
        sums = raw_scores.segment_sum(self._path_sd_index, self._num_pairs)
        sums = sums + 1e-12
        return raw_scores / sums.gather_last(self._path_sd_index)

    def mlu(self, split_ratios: Tensor, demands: np.ndarray) -> Tensor:
        """Per-sample MLU of a batch of configurations on a batch of demands."""
        demand_per_path = np.asarray(demands, dtype=float)[..., self._path_sd_index]
        flow_on_path = split_ratios * demand_per_path
        flow_on_edge = flow_on_path @ self._dense_path_to_edge
        utilization = flow_on_edge * self._inv_capacities
        return utilization.max(axis=-1)

    def sensitivity_term(self, split_ratios: Tensor) -> Tensor:
        """Per-sample variance-weighted maximum sensitivity (Equation 8)."""
        if self._variance_weights is None:
            raise RuntimeError("sensitivity term requested but no pair variance was provided")
        sensitivities = split_ratios * self._inv_norm_path_caps
        max_per_pair = sensitivities.segment_max(self._path_sd_index, self._num_pairs)
        return (max_per_pair * self._variance_weights).sum(axis=-1)

    def __call__(
        self,
        raw_scores: Tensor,
        demands: np.ndarray,
        optimal_mlu: np.ndarray | None = None,
    ) -> tuple[Tensor, dict[str, float]]:
        """Compute the total loss for a batch.

        Args:
            raw_scores: Network outputs, shape ``(batch, num_paths)``.
            demands: Revealed demands ``D_t``, shape ``(batch, num_sd_pairs)``.
            optimal_mlu: Optional per-sample omniscient MLU used to normalise
                L1.

        Returns:
            ``(scalar loss tensor, {"mlu": .., "sensitivity": .., "total": ..})``.
        """
        ratios = self.split_ratios(raw_scores)
        mlu = self.mlu(ratios, demands)
        if optimal_mlu is not None:
            mlu = mlu / np.maximum(np.asarray(optimal_mlu, dtype=float), 1e-12)
        loss_mlu = mlu.mean()
        components = {"mlu": float(loss_mlu.item())}
        total = loss_mlu
        if self.robustness_weight > 0 and self._variance_weights is not None:
            loss_sens = self.sensitivity_term(ratios).mean()
            components["sensitivity"] = float(loss_sens.item())
            total = loss_mlu + self.robustness_weight * loss_sens
        else:
            components["sensitivity"] = 0.0
        components["total"] = float(total.item())
        return total, components
