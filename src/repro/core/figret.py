"""FIGRET: fine-grained robustness-enhanced traffic engineering (the paper's scheme).

FIGRET trains the same fully connected architecture as DOTE but on the
burst-aware loss of Section 4.3:

    L = MLU(R_t, D_t) + robustness_weight * sum_{s,d} sigma^2_{sd} * S^max_{sd}

The per-pair variance ``sigma^2_{sd}`` is measured on the training period, so
pairs with historically bursty traffic are pushed towards low-sensitivity
(hedged) path allocations while stable pairs are left free to use their best
path -- the fine-grained behaviour visualised in Figure 8.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import TrainingConfig
from repro.core.trainer import Trainer, TrainerBackedScheme, TrainingHistory
from repro.paths.path_set import PathSet
from repro.solvers.lp import OptimalMLUCache
from repro.traffic.matrix import TrafficMatrixSequence

__all__ = ["Figret"]


class Figret(TrainerBackedScheme):
    """The FIGRET TE scheme.

    Args:
        path_set: Candidate paths.
        config: Training hyper-parameters.  ``robustness_weight`` controls the
            strength of the fine-grained robustness term (the paper's L2).
        cache: Optimal-MLU cache for the training normalisers (the process-
            wide shared cache by default).
        lp_workers: Optional process-pool width for the normaliser solves.

    Example:
        >>> scheme = Figret(path_set, TrainingConfig(epochs=10))
        >>> scheme.precompute(train_sequence)
        >>> config = scheme.configure(recent_history)
    """

    def __init__(
        self,
        path_set: PathSet,
        config: TrainingConfig | None = None,
        cache: OptimalMLUCache | None = None,
        lp_workers: int | str | None = None,
    ) -> None:
        super().__init__(path_set, name="FIGRET")
        self.config = config or TrainingConfig()
        self.cache = cache
        self.lp_workers = lp_workers
        self.training_history: TrainingHistory | None = None
        self.pair_variance: np.ndarray | None = None

    def precompute(self, train_sequence: TrafficMatrixSequence) -> None:
        """Measure per-pair variance and train the network."""
        self.pair_variance = train_sequence.pair_variance()
        self._trainer = Trainer(
            self.path_set,
            self.config,
            pair_variance=self.pair_variance,
            cache=self.cache,
            lp_workers=self.lp_workers,
        )
        self.training_history = self._trainer.fit(train_sequence)

