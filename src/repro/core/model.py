"""The FIGRET / DOTE network architecture (Appendix D.4).

A plain fully connected network maps the flattened history window of demand
vectors to one raw score per candidate path.  Hidden layers use ReLU; the
output layer uses Sigmoid.  Raw scores are turned into valid split ratios by
per-SD-pair normalisation (see :class:`repro.core.loss.TELoss`), which is how
the paper guarantees feasibility of the DNN output (Section 6).
"""

from __future__ import annotations

import numpy as np

from repro.backend import ArrayBackend, resolve_backend
from repro.nn import Linear, Module, ReLU, Sequential, Sigmoid, Tensor
from repro.paths.path_set import PathSet

__all__ = ["FigretNet"]


class FigretNet(Module):
    """Fully connected network mapping demand history to raw path scores.

    Args:
        path_set: Candidate paths (defines the output dimensionality).
        history_len: Number of demand matrices in the input window (H).
        hidden_sizes: Hidden layer widths (five layers of 128 by default).
        seed: Weight initialisation seed.
    """

    def __init__(
        self,
        path_set: PathSet,
        history_len: int = 12,
        hidden_sizes: tuple[int, ...] = (128, 128, 128, 128, 128),
        seed: int = 0,
    ) -> None:
        self.path_set = path_set
        self.history_len = history_len
        self.input_dim = history_len * path_set.num_sd_pairs
        self.output_dim = path_set.num_paths
        rng = np.random.default_rng(seed)
        layers: list[Module] = []
        previous = self.input_dim
        for width in hidden_sizes:
            layers.append(Linear(previous, width, rng=rng))
            layers.append(ReLU())
            previous = width
        layers.append(Linear(previous, self.output_dim, rng=rng))
        layers.append(Sigmoid())
        self.network = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        """Raw (0, 1) path scores for a batch of flattened history windows."""
        return self.network(x)

    # ------------------------------------------------------------------ #
    # Pickling (weights + architecture, no autodiff state)
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        """Serialise as architecture config + weight arrays.

        The layer graph is rebuilt on load, so nothing transient (gradient
        buffers, tape closures) rides along -- this is what lets a trained
        scheme cross a process-pool boundary.
        """
        widths = [
            module.out_features
            for module in self.network.modules
            if isinstance(module, Linear)
        ]
        return {
            "path_set": self.path_set,
            "history_len": self.history_len,
            "hidden_sizes": tuple(widths[:-1]),
            "weights": self.state_dict(),
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(
            state["path_set"],
            history_len=state["history_len"],
            hidden_sizes=state["hidden_sizes"],
        )
        self.load_state_dict(state["weights"])

    def split_ratios(self, history_window: np.ndarray, input_scale: float = 1.0) -> np.ndarray:
        """Convenience inference helper returning normalised split ratios.

        Args:
            history_window: Array of shape ``(H, num_sd_pairs)`` (a single
                window) or ``(H * num_sd_pairs,)``.
            input_scale: Divisor applied to the inputs (the trainer scales
                inputs by the mean training demand).

        Returns:
            Split ratios of shape ``(num_paths,)`` with each SD pair's ratios
            summing to one.
        """
        window = np.asarray(history_window, dtype=float).reshape(1, -1)
        if window.shape[1] != self.input_dim:
            raise ValueError(
                f"expected a window with {self.input_dim} entries, got {window.shape[1]}"
            )
        raw = self.forward(Tensor(window / input_scale)).numpy()[0]
        sums = np.zeros(self.path_set.num_sd_pairs)
        np.add.at(sums, self.path_set.path_sd_index, raw)
        sums = np.maximum(sums, 1e-12)
        return raw / sums[self.path_set.path_sd_index]

    def split_ratios_batch(
        self,
        windows: np.ndarray,
        input_scale: float = 1.0,
        backend: ArrayBackend | str | None = None,
    ) -> np.ndarray:
        """Normalised split ratios for a batch of windows in one forward pass.

        Args:
            windows: Array of shape ``(T, H, num_sd_pairs)`` or already
                flattened ``(T, H * num_sd_pairs)``.
            input_scale: Divisor applied to the inputs (the trainer scales
                inputs by the mean training demand).
            backend: Array backend running the forward pass (the active
                backend -- ``REPRO_BACKEND`` or a :func:`use_backend`
                override -- when omitted).  The default numpy backend runs
                the original float64 path bit-identically; alternates
                convert the batch to the device once and match it within
                their declared tolerance.

        Returns:
            Split ratios of shape ``(T, num_paths)``; every SD pair's ratios
            sum to one within each row.
        """
        arr = np.asarray(windows, dtype=float)
        if arr.ndim == 3:
            arr = arr.reshape(arr.shape[0], -1)
        if arr.ndim != 2 or arr.shape[1] != self.input_dim:
            raise ValueError(
                f"expected windows with {self.input_dim} entries each, got shape {arr.shape}"
            )
        xb = resolve_backend(backend)
        if not xb.native_numpy:
            return self._split_ratios_batch_generic(arr, input_scale, xb)
        raw = self.forward(Tensor(arr / input_scale)).numpy()
        # Per-SD-pair sums for every row via the sparse incidence matrix.
        sums = (self.path_set.sd_to_path @ raw.T).T
        # Pairs whose scores underflowed to (effectively) zero fall back to a
        # uniform split, mirroring TEConfiguration's zero-sum handling on the
        # per-window path; live pairs divide by their true sum so every row
        # is a valid per-pair distribution.
        dead = sums <= 1e-18
        denominator = np.where(dead, 1.0, sums)
        ratios = raw / denominator[:, self.path_set.path_sd_index]
        if dead.any():
            counts = np.asarray(self.path_set.sd_to_path.sum(axis=1)).ravel()
            uniform = 1.0 / counts[self.path_set.path_sd_index]
            ratios = np.where(dead[:, self.path_set.path_sd_index], uniform, ratios)
        return ratios

    def _split_ratios_batch_generic(
        self, flat_windows: np.ndarray, input_scale: float, xb: ArrayBackend
    ) -> np.ndarray:
        """The backend-generic forward pass + per-pair normalisation.

        One host-to-device copy of the (already flattened) window batch; the
        layer weights are converted per call (they are tiny next to the
        batch).  Dead pairs fall back to a uniform split exactly like the
        numpy path, so the two paths agree within ``xb.tolerance``.
        """
        data = xb.path_set_data(self.path_set)
        x = xb.asarray(flat_windows / input_scale, dtype=xb.compute_dtype)
        for module in self.network.modules:
            if isinstance(module, Linear):
                weight = xb.asarray(module.weight.data, dtype=xb.compute_dtype)
                bias = xb.asarray(module.bias.data, dtype=xb.compute_dtype)
                x = xb.add(xb.matmul(x, weight), bias)
            elif isinstance(module, ReLU):
                x = xb.relu(x)
            elif isinstance(module, Sigmoid):
                x = xb.sigmoid(x)
            else:  # pragma: no cover - the architecture is fixed above
                raise TypeError(f"unsupported layer for backend inference: {module!r}")
        sums = xb.segment_sum(x, data["index"], data["num_pairs"])
        dead = xb.less_equal(sums, 1e-18)
        denominator = xb.where(dead, 1.0, sums)
        ratios = xb.div(x, xb.take_last(denominator, data["index"]))
        ratios = xb.where(
            xb.take_last(dead, data["index"]), data["uniform"], ratios
        )
        return xb.to_numpy(ratios)
