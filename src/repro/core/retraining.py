"""Retraining triggers for deployed FIGRET models.

Section 6 of the paper ("When should FIGRET be retrained?") uses simple
periodic retraining and leaves smarter triggers -- retraining after detecting
a significant change in traffic patterns, or after observing performance
degradation -- as future work.  This module implements both triggers so a
deployment can retrain only when it matters:

* :class:`TrafficDriftDetector` compares the per-pair statistics of a recent
  traffic window against the statistics of the data the model was trained on
  (cosine distance between mean vectors and Spearman correlation between
  variance rankings -- the quantity Table 5 shows is the one FIGRET actually
  relies on).
* :class:`PerformanceDegradationDetector` tracks the observed normalised MLU
  and signals when its rolling average exceeds the training-time baseline by
  a configurable margin.
* :class:`RetrainingPolicy` combines both with a periodic fallback.
* :class:`RetrainingScheme` wraps any trainable scheme with a policy so a
  deployment (or the evaluation engine) can replay it like a normal scheme
  while retraining happens behind the interface.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

from repro.te.config import TEConfiguration
from repro.te.scheme import TEScheme
from repro.traffic.matrix import TrafficMatrixSequence

__all__ = [
    "TrafficDriftDetector",
    "PerformanceDegradationDetector",
    "RetrainingPolicy",
    "RetrainingDecision",
    "RetrainingScheme",
]


@dataclass(frozen=True)
class RetrainingDecision:
    """The outcome of a retraining check.

    Attributes:
        retrain: Whether retraining is recommended now.
        reason: Human readable explanation (``"traffic drift"``,
            ``"performance degradation"``, ``"periodic"`` or ``"none"``).
        drift_score: Latest traffic drift score (0 = identical statistics).
        degradation: Latest relative performance degradation.
    """

    retrain: bool
    reason: str
    drift_score: float
    degradation: float


class TrafficDriftDetector:
    """Detects shifts in traffic statistics relative to the training data.

    The drift score combines two signals:

    * cosine distance between the per-pair mean-demand vectors of the training
      data and of the recent window (captures volume/shape shifts), and
    * ``1 - Spearman correlation`` between the per-pair variance rankings
      (captures changes in *which* pairs are bursty -- the property FIGRET's
      fine-grained constraints depend on).

    Args:
        train_sequence: The data the current model was trained on.
        drift_threshold: Score above which drift is reported.
    """

    def __init__(self, train_sequence: TrafficMatrixSequence, drift_threshold: float = 0.3) -> None:
        if drift_threshold <= 0:
            raise ValueError("drift_threshold must be positive")
        self.drift_threshold = drift_threshold
        self.rebaseline(train_sequence)

    def rebaseline(self, train_sequence: TrafficMatrixSequence) -> None:
        """Adopt a new training period as the reference statistics.

        Must be called after the model is retrained; otherwise drift keeps
        being measured against the original (now obsolete) training data and
        the detector fires on every check.
        """
        self._train_mean = train_sequence.pair_mean()
        self._train_variance = train_sequence.pair_variance()

    def score(self, recent: TrafficMatrixSequence) -> float:
        """Drift score of a recent traffic window (0 = no drift)."""
        recent_mean = recent.pair_mean()
        recent_variance = recent.pair_variance()
        if recent_mean.shape != self._train_mean.shape:
            raise ValueError("recent window has a different number of SD pairs")
        denom = np.linalg.norm(recent_mean) * np.linalg.norm(self._train_mean)
        cosine = float(recent_mean @ self._train_mean / denom) if denom > 0 else 1.0
        mean_drift = 1.0 - np.clip(cosine, -1.0, 1.0)
        if np.allclose(self._train_variance, self._train_variance[0]) or np.allclose(
            recent_variance, recent_variance[0]
        ):
            rank_drift = 0.0
        else:
            rho = scipy_stats.spearmanr(self._train_variance, recent_variance).statistic
            rank_drift = 1.0 - float(np.clip(rho, -1.0, 1.0))
        return float(mean_drift + 0.5 * rank_drift)

    def has_drifted(self, recent: TrafficMatrixSequence) -> bool:
        """True if the recent window's drift score exceeds the threshold."""
        return self.score(recent) > self.drift_threshold


class PerformanceDegradationDetector:
    """Signals retraining when observed normalised MLU degrades persistently.

    Args:
        baseline: The normalised MLU the model achieved at deployment time
            (e.g. its validation mean).
        degradation_threshold: Relative increase of the rolling mean over the
            baseline that triggers retraining (0.1 = 10% worse).
        window: Number of recent observations in the rolling mean.
    """

    def __init__(self, baseline: float, degradation_threshold: float = 0.1, window: int = 50) -> None:
        if baseline <= 0:
            raise ValueError("baseline must be positive")
        if degradation_threshold <= 0:
            raise ValueError("degradation_threshold must be positive")
        if window < 1:
            raise ValueError("window must be at least 1")
        self.baseline = float(baseline)
        self.degradation_threshold = degradation_threshold
        self._observations: deque[float] = deque(maxlen=window)

    def observe(self, normalized_mlu: float) -> None:
        """Record one interval's observed normalised MLU."""
        if normalized_mlu <= 0:
            raise ValueError("normalised MLU must be positive")
        self._observations.append(float(normalized_mlu))

    def reset(self, baseline: float | None = None) -> None:
        """Forget the old model's observations (optionally with a new baseline).

        Must be called after retraining: the rolling window still holds the
        previous model's degraded MLUs, which would otherwise keep the
        trigger armed until enough fresh observations dilute them.
        """
        if baseline is not None:
            if baseline <= 0:
                raise ValueError("baseline must be positive")
            self.baseline = float(baseline)
        self._observations.clear()

    @property
    def degradation(self) -> float:
        """Relative degradation of the rolling mean versus the baseline."""
        if not self._observations:
            return 0.0
        return float(np.mean(self._observations) / self.baseline - 1.0)

    def is_degraded(self) -> bool:
        """True once the rolling mean exceeds the baseline by the threshold."""
        return self.degradation > self.degradation_threshold


class RetrainingPolicy:
    """Combines drift detection, degradation detection and a periodic fallback.

    Args:
        drift_detector: Traffic drift detector (or None to disable).
        degradation_detector: Performance degradation detector (or None).
        period: Retrain at least every ``period`` checks regardless of the
            detectors (None disables the periodic fallback).
    """

    def __init__(
        self,
        drift_detector: TrafficDriftDetector | None = None,
        degradation_detector: PerformanceDegradationDetector | None = None,
        period: int | None = None,
    ) -> None:
        if drift_detector is None and degradation_detector is None and period is None:
            raise ValueError("at least one trigger must be configured")
        if period is not None and period < 1:
            raise ValueError("period must be at least 1")
        self.drift_detector = drift_detector
        self.degradation_detector = degradation_detector
        self.period = period
        self._checks_since_training = 0

    def notify_retrained(self) -> None:
        """Reset the periodic counter after a retraining has happened."""
        self._checks_since_training = 0

    def check(self, recent_traffic: TrafficMatrixSequence | None = None) -> RetrainingDecision:
        """Evaluate all triggers and return the retraining decision."""
        self._checks_since_training += 1
        drift_score = 0.0
        degradation = 0.0
        if self.degradation_detector is not None:
            degradation = self.degradation_detector.degradation
            if self.degradation_detector.is_degraded():
                return RetrainingDecision(True, "performance degradation", drift_score, degradation)
        if self.drift_detector is not None and recent_traffic is not None:
            drift_score = self.drift_detector.score(recent_traffic)
            if drift_score > self.drift_detector.drift_threshold:
                return RetrainingDecision(True, "traffic drift", drift_score, degradation)
        if self.period is not None and self._checks_since_training >= self.period:
            return RetrainingDecision(True, "periodic", drift_score, degradation)
        return RetrainingDecision(False, "none", drift_score, degradation)


class RetrainingScheme(TEScheme):
    """A TE scheme wrapper that retrains its inner scheme per a policy.

    The wrapper is itself a :class:`TEScheme`: ``precompute`` trains the
    wrapped scheme and arms the policy, ``configure`` / ``configure_batch``
    delegate to the wrapped scheme (so batched replay through the evaluation
    engine stays a single vectorized pass), and :meth:`maybe_retrain`
    evaluates the policy against recent traffic and retrains when it fires.

    Args:
        scheme: The scheme to wrap (typically FIGRET or DOTE).
        policy: The retraining triggers.
        name: Report name (defaults to the wrapped scheme's name).
    """

    def __init__(
        self,
        scheme: TEScheme,
        policy: RetrainingPolicy,
        name: str | None = None,
    ) -> None:
        super().__init__(scheme.path_set, name or scheme.name)
        self.scheme = scheme
        self.policy = policy
        self.retrain_count = 0
        self._train_sequence: TrafficMatrixSequence | None = None

    def precompute(self, train_sequence: TrafficMatrixSequence) -> None:
        self.scheme.precompute(train_sequence)
        self._train_sequence = train_sequence
        self.policy.notify_retrained()

    def configure(self, history: np.ndarray) -> TEConfiguration:
        return self.scheme.configure(history)

    def configure_batch(self, windows: np.ndarray) -> np.ndarray:
        return self.scheme.configure_batch(windows)

    def observe(self, normalized_mlu: float) -> None:
        """Feed one observed normalised MLU to the degradation detector."""
        if self.policy.degradation_detector is not None:
            self.policy.degradation_detector.observe(normalized_mlu)

    def maybe_retrain(
        self, recent_traffic: TrafficMatrixSequence | None = None
    ) -> RetrainingDecision:
        """Check the policy and retrain the wrapped scheme if it fires.

        Args:
            recent_traffic: Recent traffic window; used both to score drift
                and as the training data when retraining triggers.  When
                omitted (e.g. a degradation-only policy), retraining falls
                back to the last training data -- the model is effectively
                re-fit and the triggers are re-armed, so a fired trigger
                never stays latched.
        """
        decision = self.policy.check(recent_traffic)
        train_data = recent_traffic if recent_traffic is not None else self._train_sequence
        if decision.retrain and train_data is not None:
            self.scheme.precompute(train_data)
            # Re-arm the triggers against the new model: drift is now
            # measured relative to the data just trained on, and the old
            # model's degraded observations are discarded.
            if self.policy.drift_detector is not None:
                self.policy.drift_detector.rebaseline(train_data)
            if self.policy.degradation_detector is not None:
                self.policy.degradation_detector.reset()
            self.policy.notify_retrained()
            self._train_sequence = train_data
            self.retrain_count += 1
        return decision
