"""FIGRET's core: the deep-learning TE schemes (FIGRET, DOTE, TEAL-like)."""

from repro.core.config import TrainingConfig
from repro.core.model import FigretNet
from repro.core.loss import TELoss
from repro.core.trainer import Trainer, TrainingHistory
from repro.core.figret import Figret
from repro.core.dote import Dote
from repro.core.teal_like import TealLike
from repro.core.retraining import (
    PerformanceDegradationDetector,
    RetrainingDecision,
    RetrainingPolicy,
    RetrainingScheme,
    TrafficDriftDetector,
)

__all__ = [
    "TrainingConfig",
    "FigretNet",
    "TELoss",
    "Trainer",
    "TrainingHistory",
    "Figret",
    "Dote",
    "TealLike",
    "TrafficDriftDetector",
    "PerformanceDegradationDetector",
    "RetrainingPolicy",
    "RetrainingDecision",
    "RetrainingScheme",
]
