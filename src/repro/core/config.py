"""Hyper-parameters shared by the deep-learning TE schemes."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TrainingConfig"]


@dataclass
class TrainingConfig:
    """Hyper-parameters of the FIGRET / DOTE training loop.

    The defaults follow Appendix D.4: a fully connected network with five
    hidden layers of 128 ReLU units, a Sigmoid output layer, the Adam
    optimizer, and a history window of H = 12 demand matrices.

    Attributes:
        history_len: Number of past demand matrices fed to the network (H).
        hidden_sizes: Widths of the hidden layers.
        learning_rate: Adam learning rate.
        epochs: Number of passes over the training windows.
        batch_size: Mini-batch size.
        robustness_weight: Weight of the fine-grained sensitivity loss L2
            (0 recovers DOTE exactly).
        normalize_by_optimal: If True, the MLU loss of each sample is divided
            by the omniscient-optimal MLU of that sample (stabilises training
            across samples of very different volume, as in DOTE).
        gradient_clip: Maximum global gradient norm per update (None disables
            clipping).  The hard-max in the MLU loss produces occasional very
            large gradients; clipping keeps Adam stable at higher learning
            rates.
        lr_decay: Multiplicative learning-rate decay applied after each epoch.
        warmup_steps: Number of initial optimisation steps over which the
            learning rate ramps linearly from 0 to ``learning_rate``.  Adam's
            first steps on the very wide input layer otherwise saturate the
            Sigmoid output and stall training on large topologies.
        seed: Seed for weight initialisation and batch shuffling.
    """

    history_len: int = 12
    hidden_sizes: tuple[int, ...] = (128, 128, 128, 128, 128)
    learning_rate: float = 2e-3
    epochs: int = 30
    batch_size: int = 32
    robustness_weight: float = 0.1
    normalize_by_optimal: bool = True
    gradient_clip: float | None = 5.0
    lr_decay: float = 0.98
    warmup_steps: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.history_len < 1:
            raise ValueError("history_len must be at least 1")
        if not self.hidden_sizes:
            raise ValueError("at least one hidden layer is required")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.epochs < 1:
            raise ValueError("epochs must be at least 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if self.robustness_weight < 0:
            raise ValueError("robustness_weight must be non-negative")
        if self.gradient_clip is not None and self.gradient_clip <= 0:
            raise ValueError("gradient_clip must be positive or None")
        if not 0 < self.lr_decay <= 1.0:
            raise ValueError("lr_decay must be in (0, 1]")
        if self.warmup_steps < 0:
            raise ValueError("warmup_steps must be non-negative")

    def replace(self, **overrides) -> "TrainingConfig":
        """Return a copy with some fields replaced."""
        from dataclasses import replace as dataclass_replace

        return dataclass_replace(self, **overrides)
