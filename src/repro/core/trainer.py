"""Training loop for the deep-learning TE schemes.

The trainer turns a training :class:`TrafficMatrixSequence` into supervised
windows (``H`` past demand vectors -> the next demand vector), then performs
mini-batch Adam updates of a :class:`FigretNet` under a :class:`TELoss`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import TrainingConfig
from repro.core.loss import TELoss
from repro.core.model import FigretNet
from repro.nn import Adam, Tensor, clip_gradient_norm
from repro.paths.path_set import PathSet
from repro.solvers.lp import OptimalMLUCache, shared_cache
from repro.te.config import TEConfiguration
from repro.te.scheme import TEScheme
from repro.traffic.matrix import TrafficMatrixSequence
from repro.traffic.windows import build_history_windows

__all__ = [
    "Trainer",
    "TrainerBackedScheme",
    "TrainingHistory",
    "build_windows",
    "fit_history_window",
]


@dataclass
class TrainingHistory:
    """Per-epoch training statistics.

    Attributes:
        epoch_losses: Mean total loss per epoch.
        epoch_mlu_losses: Mean MLU component per epoch.
        epoch_sensitivity_losses: Mean sensitivity component per epoch.
    """

    epoch_losses: list[float] = field(default_factory=list)
    epoch_mlu_losses: list[float] = field(default_factory=list)
    epoch_sensitivity_losses: list[float] = field(default_factory=list)

    def record(self, total: float, mlu: float, sensitivity: float) -> None:
        """Append one epoch's averages."""
        self.epoch_losses.append(total)
        self.epoch_mlu_losses.append(mlu)
        self.epoch_sensitivity_losses.append(sensitivity)


def build_windows(
    sequence: TrafficMatrixSequence, history_len: int
) -> tuple[np.ndarray, np.ndarray]:
    """Build (inputs, targets) training arrays from a traffic sequence.

    Delegates to the shared stride-tricks window builder (one sliding-window
    view over the flattened trace instead of a Python loop) -- the same
    builder the evaluation engine replays with.

    Returns:
        ``inputs`` of shape ``(N, H * num_sd_pairs)`` (flattened windows,
        oldest demand first) and ``targets`` of shape ``(N, num_sd_pairs)``.
    """
    if history_len < 1:
        raise ValueError("history must be at least 1")
    if len(sequence) <= history_len:
        raise ValueError(
            f"sequence of length {len(sequence)} is too short for history {history_len}"
        )
    windows, targets = build_history_windows(sequence.flat_demands(), history_len)
    inputs = windows.reshape(windows.shape[0], -1)
    return np.ascontiguousarray(inputs), np.ascontiguousarray(targets)


def fit_history_window(window: np.ndarray, history_len: int) -> np.ndarray:
    """Trim or left-pad demand windows to exactly ``history_len`` rows.

    Accepts a single ``(H, num_sd_pairs)`` window or a batch
    ``(T, H, num_sd_pairs)``; windows longer than ``history_len`` keep their
    most recent rows, shorter ones are left-padded by repeating the oldest
    row (so early test intervals still produce a full input).
    """
    window = np.asarray(window, dtype=float)
    length = window.shape[-2]
    if length > history_len:
        return window[..., -history_len:, :]
    if length < history_len:
        pad = np.repeat(
            window[..., :1, :], history_len - length, axis=window.ndim - 2
        )
        return np.concatenate([pad, window], axis=window.ndim - 2)
    return window


class Trainer:
    """Mini-batch Adam trainer for FIGRET / DOTE models.

    Args:
        path_set: Candidate paths.
        config: Training hyper-parameters.
        pair_variance: Per-pair demand variance of the training period (used
            by the sensitivity loss when ``config.robustness_weight > 0``).
        cache: Optimal-MLU cache serving the training-time normalisers (the
            process-wide :func:`~repro.solvers.lp.shared_cache` by default,
            so a later evaluation of the same demands is pure cache hits).
        lp_workers: Optional process-pool width for the normaliser solves.
    """

    def __init__(
        self,
        path_set: PathSet,
        config: TrainingConfig,
        pair_variance: np.ndarray | None = None,
        cache: OptimalMLUCache | None = None,
        lp_workers: int | str | None = None,
    ) -> None:
        self.path_set = path_set
        self.config = config
        self.pair_variance = pair_variance
        self.cache = cache
        self.lp_workers = lp_workers
        self.model = FigretNet(
            path_set,
            history_len=config.history_len,
            hidden_sizes=config.hidden_sizes,
            seed=config.seed,
        )
        self.loss = TELoss(
            path_set,
            pair_variance=pair_variance,
            robustness_weight=config.robustness_weight,
        )
        self.optimizer = Adam(self.model.parameters(), lr=config.learning_rate)
        self.history = TrainingHistory()
        self.input_scale: float = 1.0

    # ------------------------------------------------------------------ #
    # Pickling (weights + config, not live caches)
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        """Serialise inference state: config, weights, scale, loss history.

        The LP cache is a live process-local object (possibly the shared or
        a disk-persistent one) and is deliberately dropped -- an unpickled
        trainer falls back to :func:`~repro.solvers.lp.shared_cache` if it
        ever trains again.  Optimizer moments are not carried either: what
        crosses a process boundary is a *trained* model, and a fresh
        ``fit`` rebuilds them anyway.
        """
        return {
            "path_set": self.path_set,
            "config": self.config,
            "pair_variance": self.pair_variance,
            "lp_workers": self.lp_workers,
            "weights": self.model.state_dict(),
            "input_scale": self.input_scale,
            "history": self.history,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(
            state["path_set"],
            state["config"],
            pair_variance=state["pair_variance"],
            cache=None,
            lp_workers=state["lp_workers"],
        )
        self.model.load_state_dict(state["weights"])
        self.input_scale = state["input_scale"]
        self.history = state["history"]

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def fit(self, train_sequence: TrafficMatrixSequence) -> TrainingHistory:
        """Train the model on a traffic sequence and return the loss history."""
        config = self.config
        inputs, targets = build_windows(train_sequence, config.history_len)
        # Scale inputs so the network sees O(1) values regardless of the
        # traffic volume units.
        self.input_scale = float(max(inputs.mean(), 1e-12))
        scaled_inputs = inputs / self.input_scale

        optimal = None
        if config.normalize_by_optimal:
            # Normalisers come from the shared LP cache in one batched call:
            # values are bit-identical to per-target ``omniscient_mlu`` calls
            # (same solver, same 1e-12 floor), and the entries stay cached
            # for the evaluation replay of the same demands.
            cache = self.cache if self.cache is not None else shared_cache()
            optimal = cache.optimal_mlus(
                self.path_set, targets, workers=self.lp_workers
            )

        rng = np.random.default_rng(config.seed)
        num_samples = scaled_inputs.shape[0]
        base_lr = config.learning_rate
        global_step = 0
        for _ in range(config.epochs):
            order = rng.permutation(num_samples)
            epoch_total, epoch_mlu, epoch_sens, batches = 0.0, 0.0, 0.0, 0
            for start in range(0, num_samples, config.batch_size):
                if config.warmup_steps > 0:
                    warmup = min(1.0, (global_step + 1) / config.warmup_steps)
                else:
                    warmup = 1.0
                self.optimizer.lr = base_lr * warmup
                global_step += 1
                batch_idx = order[start : start + config.batch_size]
                batch_inputs = Tensor(scaled_inputs[batch_idx])
                batch_targets = targets[batch_idx]
                batch_optimal = optimal[batch_idx] if optimal is not None else None

                raw_scores = self.model(batch_inputs)
                loss, components = self.loss(raw_scores, batch_targets, batch_optimal)
                self.optimizer.zero_grad()
                loss.backward()
                if config.gradient_clip is not None:
                    clip_gradient_norm(self.model.parameters(), config.gradient_clip)
                self.optimizer.step()

                epoch_total += components["total"]
                epoch_mlu += components["mlu"]
                epoch_sens += components["sensitivity"]
                batches += 1
            self.history.record(
                epoch_total / batches, epoch_mlu / batches, epoch_sens / batches
            )
            base_lr *= config.lr_decay
        return self.history

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #
    def split_ratios(self, history_window: np.ndarray) -> np.ndarray:
        """Normalised split ratios for one history window (``(H, num_sd)``)."""
        return self.model.split_ratios(history_window, input_scale=self.input_scale)

    def split_ratios_batch(self, windows: np.ndarray, backend=None) -> np.ndarray:
        """Split ratios for a batch of windows (``(T, H, num_sd)``) in one pass.

        ``backend`` selects the array backend for the forward pass; the
        active one (``REPRO_BACKEND`` / :func:`repro.backend.use_backend`)
        applies when omitted.  Training always runs on the float64 autodiff
        tensors -- only inference is backend-switchable.
        """
        return self.model.split_ratios_batch(
            windows, input_scale=self.input_scale, backend=backend
        )


class TrainerBackedScheme(TEScheme):
    """Shared inference plumbing for schemes backed by a :class:`Trainer`.

    Subclasses (FIGRET, DOTE) set ``self.config`` in their constructor and
    assign ``self._trainer`` during ``precompute``; window fitting and the
    single/batched forward passes live here so they cannot drift apart.
    """

    def __init__(self, path_set: PathSet, name: str) -> None:
        super().__init__(path_set, name)
        self.config: TrainingConfig
        self._trainer: Trainer | None = None

    def __getstate__(self) -> dict:
        """Pickle everything except the live LP cache (process-local).

        The embedded :class:`Trainer` carries weights + config through its
        own ``__getstate__``, so a trained FIGRET/DOTE scheme round-trips a
        process-pool boundary ready for inference.
        """
        state = dict(self.__dict__)
        if "cache" in state:
            state["cache"] = None
        return state

    @property
    def history_len(self) -> int:
        """Length of the demand history window the scheme expects."""
        return self.config.history_len

    def _require_trainer(self) -> Trainer:
        if self._trainer is None:
            raise RuntimeError(
                f"{type(self).__name__}.configure called before precompute()"
            )
        return self._trainer

    def configure(self, history: np.ndarray) -> TEConfiguration:
        trainer = self._require_trainer()
        window = fit_history_window(history, self.config.history_len)
        return TEConfiguration(
            self.path_set, trainer.split_ratios(window), normalize=True
        )

    def configure_batch(self, windows: np.ndarray) -> np.ndarray:
        """All test windows in one vectorized forward pass (``(T, num_paths)``)."""
        trainer = self._require_trainer()
        windows = np.asarray(windows, dtype=float)
        if windows.ndim != 3:
            return super().configure_batch(windows)
        return trainer.split_ratios_batch(
            fit_history_window(windows, self.config.history_len)
        )
