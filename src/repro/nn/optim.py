"""Gradient-descent optimizers.

FIGRET trains with Adam (Appendix D.4); SGD is provided for tests and
ablations.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["SGD", "Adam", "clip_gradient_norm"]


def clip_gradient_norm(parameters: list[Tensor], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping global norm (useful for monitoring).
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total = 0.0
    for param in parameters:
        if param.grad is not None:
            total += float(np.sum(param.grad**2))
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for param in parameters:
            if param.grad is not None:
                param.grad *= scale
    return norm


class SGD:
    """Plain (optionally momentum) stochastic gradient descent.

    Args:
        parameters: Tensors to update.
        lr: Learning rate.
        momentum: Momentum coefficient (0 disables momentum).
    """

    def __init__(self, parameters: list[Tensor], lr: float = 0.01, momentum: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.parameters = list(parameters)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """Apply one update using the accumulated gradients."""
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            if self.momentum > 0:
                velocity *= self.momentum
                velocity += param.grad
                update = velocity
            else:
                update = param.grad
            param.data -= self.lr * update

    def zero_grad(self) -> None:
        """Reset the gradients of all managed parameters."""
        for param in self.parameters:
            param.zero_grad()


class Adam:
    """The Adam optimizer (Kingma & Ba, 2014), as used by FIGRET.

    Args:
        parameters: Tensors to update.
        lr: Learning rate.
        betas: Exponential decay rates for the first and second moments.
        eps: Numerical stabiliser.
    """

    def __init__(
        self,
        parameters: list[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.parameters = list(parameters)
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """Apply one Adam update using the accumulated gradients."""
        self._step += 1
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self) -> None:
        """Reset the gradients of all managed parameters."""
        for param in self.parameters:
            param.zero_grad()
