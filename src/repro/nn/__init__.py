"""Minimal deep-learning substrate: reverse-mode autodiff over NumPy.

FIGRET and DOTE train fully connected networks by gradient descent on a
differentiable MLU (+ sensitivity) loss.  The original implementation uses
PyTorch; this package provides the small subset of functionality those models
need -- a reverse-mode autodiff :class:`Tensor`, dense layers, activations,
and the Adam/SGD optimizers -- implemented on top of NumPy.
"""

from repro.nn.tensor import Tensor
from repro.nn.layers import Linear, ReLU, Sigmoid, Sequential, Module
from repro.nn.optim import SGD, Adam, clip_gradient_norm

__all__ = [
    "Tensor",
    "Module",
    "Linear",
    "ReLU",
    "Sigmoid",
    "Sequential",
    "SGD",
    "Adam",
    "clip_gradient_norm",
]
