"""Reverse-mode automatic differentiation over NumPy arrays.

The :class:`Tensor` class implements exactly the operations the TE models
need: dense linear algebra (matmul, broadcast add/mul/div), the activations
used by the FIGRET architecture (ReLU, Sigmoid), reductions (sum, mean, max),
and the per-SD-pair "segment" operations required by the TE loss functions
(gather, segment-sum, segment-max).

The implementation follows the classic tape-free design: every operation
builds a small closure that, given the upstream gradient, accumulates
gradients into its parents' ``grad`` buffers; ``backward()`` walks the graph
in reverse topological order.  Only float64 arrays are supported, which keeps
gradient checking simple and accurate.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Tensor"]


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum a gradient over broadcast dimensions so it matches ``shape``."""
    if grad.shape == shape:
        return grad
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy array with reverse-mode autodiff support.

    Args:
        data: Array-like data (converted to float64).
        requires_grad: Whether gradients should flow into this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")
    __array_priority__ = 100  # ndarray <op> Tensor defers to Tensor.__r<op>__.

    def __init__(self, data, requires_grad: bool = False) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self._backward = None
        self._parents: tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------ #
    # Pickling
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        """Pickle values only: the autodiff tape is process-local closures.

        A pickled tensor transports ``data`` and ``requires_grad``; gradients
        and graph edges are dropped, so non-leaf tensors unpickle as detached
        constants (exactly what shipping trained weights to a worker needs).
        """
        return {"data": self.data, "requires_grad": self.requires_grad}

    def __setstate__(self, state: dict) -> None:
        self.data = state["data"]
        self.requires_grad = state["requires_grad"]
        self.grad = None
        self._backward = None
        self._parents = ()

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def as_tensor(value) -> "Tensor":
        """Wrap a value in a (constant) Tensor if it is not one already."""
        return value if isinstance(value, Tensor) else Tensor(value)

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.data.ndim

    def item(self) -> float:
        """The Python float value of a single-element tensor."""
        if self.data.size != 1:
            raise ValueError("item() requires a tensor with exactly one element")
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """A copy of the underlying data."""
        return self.data.copy()

    def detach(self) -> "Tensor":
        """A constant tensor sharing this tensor's values."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def _make(self, data: np.ndarray, parents: tuple["Tensor", ...], backward) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other) -> "Tensor":
        other = Tensor.as_tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.data.shape))
            other._accumulate(_unbroadcast(grad, other.data.shape))

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-Tensor.as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return Tensor.as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = Tensor.as_tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other.data, self.data.shape))
            other._accumulate(_unbroadcast(grad * self.data, other.data.shape))

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = Tensor.as_tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other.data, self.data.shape))
            other._accumulate(
                _unbroadcast(-grad * self.data / (other.data**2), other.data.shape)
            )

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor.as_tensor(other) / self

    def __matmul__(self, other) -> "Tensor":
        other = Tensor.as_tensor(other)
        if self.data.ndim < 2 or other.data.ndim != 2:
            raise ValueError("matmul supports (..., m) x (m, n) with 2-D right operand")
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad @ other.data.T)
            if other.requires_grad:
                left = self.data.reshape(-1, self.data.shape[-1])
                upstream = grad.reshape(-1, grad.shape[-1])
                other._accumulate(left.T @ upstream)

        return self._make(out_data, (self, other), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Non-linearities
    # ------------------------------------------------------------------ #
    def relu(self) -> "Tensor":
        """Rectified linear unit."""
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        """Logistic sigmoid (numerically stable)."""
        positive = 1.0 / (1.0 + np.exp(-np.clip(self.data, 0.0, 60.0)))
        negative_exp = np.exp(np.clip(self.data, -60.0, 0.0))
        out_data = np.where(self.data >= 0, positive, negative_exp / (1.0 + negative_exp))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward)

    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        """Elementwise natural logarithm."""
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        """Sum over an axis (or everything)."""
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            local = np.asarray(grad)
            if axis is not None and not keepdims:
                local = np.expand_dims(local, axis)
            self._accumulate(np.broadcast_to(local, self.data.shape).copy())

        return self._make(out_data, (self,), backward)

    def mean(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        """Mean over an axis (or everything)."""
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        """Maximum over an axis (or everything).

        The gradient flows only to the (first) position achieving the max in
        each reduced slice, matching PyTorch's semantics up to tie-breaking.
        """
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            local_grad = np.asarray(grad)
            if axis is None:
                mask = np.zeros_like(self.data)
                mask[np.unravel_index(np.argmax(self.data), self.data.shape)] = 1.0
                self._accumulate(mask * local_grad)
                return
            expanded = local_grad if keepdims else np.expand_dims(local_grad, axis)
            argmax = np.argmax(self.data, axis=axis)
            mask = np.zeros_like(self.data)
            np.put_along_axis(mask, np.expand_dims(argmax, axis), 1.0, axis=axis)
            self._accumulate(mask * expanded)

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Shape / indexing / segment ops
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        """Reshape (returns a new tensor)."""
        out_data = self.data.reshape(*shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(self.data.shape))

        return self._make(out_data, (self,), backward)

    def gather_last(self, index: np.ndarray) -> "Tensor":
        """Index the last axis with an integer array (``x[..., index]``).

        Used to broadcast per-SD-pair quantities onto paths: if ``x`` has
        shape ``(..., num_sd)`` and ``index`` maps each path to its SD pair,
        the result has shape ``(..., num_paths)``.
        """
        index = np.asarray(index, dtype=np.int64)
        out_data = self.data[..., index]

        def backward(grad: np.ndarray) -> None:
            local = np.zeros_like(self.data)
            flat_local = local.reshape(-1, self.data.shape[-1])
            flat_grad = grad.reshape(-1, index.shape[0])
            rows = np.arange(flat_local.shape[0])[:, None]
            np.add.at(flat_local, (rows, index[None, :]), flat_grad)
            self._accumulate(flat_local.reshape(self.data.shape))

        return self._make(out_data, (self,), backward)

    def segment_sum(self, segment_ids: np.ndarray, num_segments: int) -> "Tensor":
        """Sum entries of the last axis grouped by segment id.

        If ``x`` has shape ``(..., num_paths)`` and ``segment_ids`` maps each
        path to its SD pair, the result has shape ``(..., num_segments)`` with
        the per-pair sums.  This is how the per-pair constraint
        ``sum_p r_p = 1`` is enforced by normalisation.
        """
        segment_ids = np.asarray(segment_ids, dtype=np.int64)
        out_shape = self.data.shape[:-1] + (num_segments,)
        flat_in = self.data.reshape(-1, self.data.shape[-1])
        flat_out = np.zeros((flat_in.shape[0], num_segments))
        rows = np.arange(flat_in.shape[0])[:, None]
        np.add.at(flat_out, (rows, segment_ids[None, :]), flat_in)
        out_data = flat_out.reshape(out_shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad[..., segment_ids])

        return self._make(out_data, (self,), backward)

    def segment_max(self, segment_ids: np.ndarray, num_segments: int) -> "Tensor":
        """Maximum of entries of the last axis grouped by segment id.

        Used for ``S^max_sd`` -- the largest path sensitivity of each SD pair
        (Equation 8).  The gradient flows to the first entry of each segment
        that achieves the maximum.
        """
        segment_ids = np.asarray(segment_ids, dtype=np.int64)
        flat_in = self.data.reshape(-1, self.data.shape[-1])
        batch, num_items = flat_in.shape
        flat_out = np.full((batch, num_segments), -np.inf)
        rows = np.arange(batch)[:, None]
        np.maximum.at(flat_out, (rows, segment_ids[None, :]), flat_in)
        out_data = flat_out.reshape(self.data.shape[:-1] + (num_segments,))

        # Pre-compute the index of the first argmax item of every segment so
        # the backward pass is fully vectorised.
        max_per_item = flat_out[rows, segment_ids[None, :]]
        is_max = flat_in >= max_per_item
        candidate = np.where(is_max, np.arange(num_items)[None, :], num_items)
        first_argmax = np.full((batch, num_segments), num_items, dtype=np.int64)
        np.minimum.at(first_argmax, (rows, segment_ids[None, :]), candidate)

        def backward(grad: np.ndarray) -> None:
            grad_flat = grad.reshape(batch, num_segments)
            local = np.zeros((batch, num_items + 1))
            batch_rows = np.arange(batch)[:, None]
            np.add.at(local, (batch_rows, first_argmax), grad_flat)
            self._accumulate(local[:, :num_items].reshape(self.data.shape))

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate gradients from this tensor into every ancestor.

        Args:
            grad: Upstream gradient.  Defaults to 1 for scalar tensors.
        """
        if not self.requires_grad:
            raise ValueError("cannot call backward on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without an explicit gradient requires a scalar")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Tensor(shape={self.data.shape}, requires_grad={self.requires_grad})"
