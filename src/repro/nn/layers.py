"""Neural network layers built on the autodiff :class:`Tensor`.

FIGRET's architecture (Appendix D.4) is a plain fully connected network: five
hidden layers of 128 ReLU units and a Sigmoid output layer.  This module
provides the :class:`Linear`, :class:`ReLU`, :class:`Sigmoid` and
:class:`Sequential` building blocks needed to express it, plus the
:class:`Module` base class with parameter management.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["Module", "Linear", "ReLU", "Sigmoid", "Sequential"]


class Module:
    """Base class for layers and models.

    Subclasses register parameters by assigning :class:`Tensor` attributes
    with ``requires_grad=True`` or by assigning sub-modules; ``parameters()``
    collects them recursively.
    """

    def parameters(self) -> list[Tensor]:
        """All trainable parameters of this module and its sub-modules."""
        params: list[Tensor] = []
        for value in self.__dict__.values():
            if isinstance(value, Tensor) and value.requires_grad:
                params.append(value)
            elif isinstance(value, Module):
                params.extend(value.parameters())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        params.extend(item.parameters())
                    elif isinstance(item, Tensor) and item.requires_grad:
                        params.append(item)
        return params

    def zero_grad(self) -> None:
        """Reset gradients of all parameters."""
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.data.size for p in self.parameters())

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat mapping from parameter position to values (for checkpointing)."""
        return {f"param_{i}": p.data.copy() for i, p in enumerate(self.parameters())}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore parameter values saved by :meth:`state_dict`."""
        params = self.parameters()
        if len(state) != len(params):
            raise ValueError(
                f"state dict has {len(state)} entries but the module has {len(params)} parameters"
            )
        for i, param in enumerate(params):
            value = np.asarray(state[f"param_{i}"], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(f"shape mismatch for parameter {i}")
            param.data = value.copy()

    def __call__(self, x: Tensor) -> Tensor:
        return self.forward(x)

    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError


class Linear(Module):
    """Dense layer ``y = x W + b``.

    Weights use Kaiming-uniform initialisation (the PyTorch default for
    ``nn.Linear``), which is what the original FIGRET implementation relies
    on implicitly.

    Args:
        in_features: Input dimensionality.
        out_features: Output dimensionality.
        rng: Optional NumPy generator for reproducible initialisation.
    """

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator | None = None) -> None:
        if in_features < 1 or out_features < 1:
            raise ValueError("layer dimensions must be positive")
        rng = rng or np.random.default_rng()
        bound = 1.0 / np.sqrt(in_features)
        self.weight = Tensor(
            rng.uniform(-bound, bound, size=(in_features, out_features)),
            requires_grad=True,
        )
        self.bias = Tensor(rng.uniform(-bound, bound, size=out_features), requires_grad=True)
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x: Tensor) -> Tensor:
        return x @ self.weight + self.bias


class ReLU(Module):
    """Rectified linear activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Sigmoid(Module):
    """Logistic sigmoid activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Sequential(Module):
    """A chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        if not modules:
            raise ValueError("Sequential needs at least one module")
        self.modules = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        out = x
        for module in self.modules:
            out = module(out)
        return out
