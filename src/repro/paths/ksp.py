"""Yen's k-shortest-paths candidate path selection.

The paper precomputes the three shortest paths between every pair of nodes
with Yen's algorithm (Section 5.1).  ``networkx.shortest_simple_paths``
implements Yen's algorithm; this module wraps it for a whole topology and
produces a :class:`~repro.paths.path_set.PathSet`.
"""

from __future__ import annotations

from itertools import islice

import networkx as nx

from repro.paths.path_set import PathSet
from repro.topology.graph import Topology

__all__ = ["k_shortest_paths", "build_ksp_path_set"]


def k_shortest_paths(
    topology: Topology,
    src: int,
    dst: int,
    k: int = 3,
    weight: str | None = None,
) -> list[list[int]]:
    """Return up to ``k`` loop-free shortest paths from ``src`` to ``dst``.

    Args:
        topology: The network topology.
        src: Source node.
        dst: Destination node.
        k: Number of paths requested.  Fewer are returned if the graph does
            not contain ``k`` simple paths.
        weight: Edge attribute used as the path metric.  ``None`` (default)
            means hop count, ``"inv_capacity"`` weighs each edge by the
            inverse of its capacity (favouring fat links).

    Raises:
        nx.NetworkXNoPath: If ``dst`` is unreachable from ``src``.
    """
    graph = topology.to_networkx()
    if weight == "inv_capacity":
        for a, b, data in graph.edges(data=True):
            data["weight"] = 1.0 / data["capacity"]
        weight_attr = "weight"
    elif weight is None:
        weight_attr = None
    else:
        weight_attr = weight
    generator = nx.shortest_simple_paths(graph, src, dst, weight=weight_attr)
    return [list(p) for p in islice(generator, k)]


def build_ksp_path_set(
    topology: Topology,
    k: int = 3,
    weight: str | None = None,
) -> PathSet:
    """Build a :class:`PathSet` with up to ``k`` shortest paths per SD pair.

    This is the default candidate-path construction of the paper (Yen's
    algorithm, k = 3).  Pairs with fewer than ``k`` simple paths simply get
    fewer candidates.
    """
    graph = topology.to_networkx()
    if weight == "inv_capacity":
        for a, b, data in graph.edges(data=True):
            data["weight"] = 1.0 / data["capacity"]
        weight_attr = "weight"
    else:
        weight_attr = weight

    paths_by_pair: dict[tuple[int, int], list[list[int]]] = {}
    for src, dst in topology.sd_pairs():
        generator = nx.shortest_simple_paths(graph, src, dst, weight=weight_attr)
        paths = [list(p) for p in islice(generator, k)]
        if not paths:
            raise nx.NetworkXNoPath(f"no path between {src} and {dst}")
        paths_by_pair[(src, dst)] = paths
    return PathSet(topology, paths_by_pair)
