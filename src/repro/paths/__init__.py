"""Path substrate: candidate path computation and the PathSet structure."""

from repro.paths.path_set import PathSet
from repro.paths.ksp import k_shortest_paths, build_ksp_path_set
from repro.paths.racke import racke_path_set

__all__ = [
    "PathSet",
    "k_shortest_paths",
    "build_ksp_path_set",
    "racke_path_set",
]
