"""SMORE-style oblivious path selection (Racke-inspired).

SMORE selects candidate paths with Racke's oblivious routing construction,
which produces capacity-aware, congestion-spreading path sets.  A faithful
Racke/FRT decomposition-tree implementation is substantial and not required
to reproduce the paper's comparison (Figure 6): what matters is that the path
set (i) is capacity aware, (ii) spreads load across diverse links instead of
always taking hop-shortest routes.

This module implements the standard practical approximation used by
re-implementations of SMORE: iterative shortest paths under multiplicative
edge penalties that grow exponentially with the load already assigned to an
edge.  Each SD pair contributes a unit of virtual demand per iteration; after
an edge has been used, its cost increases, so subsequent path choices avoid
it.  The result is a diverse, capacity-aware path set.

See DESIGN.md section 1 for the substitution rationale.
"""

from __future__ import annotations

import math

import networkx as nx
import numpy as np

from repro.paths.path_set import PathSet
from repro.topology.graph import Topology

__all__ = ["racke_path_set"]


def racke_path_set(
    topology: Topology,
    k: int = 3,
    penalty_base: float = 8.0,
    seed: int = 0,
) -> PathSet:
    """Build a capacity-aware, congestion-spreading path set.

    Args:
        topology: The network topology.
        k: Number of candidate paths per SD pair.
        penalty_base: Base of the exponential load penalty.  Larger values
            make successive paths for the same pair more disjoint.
        seed: Seed controlling the SD pair processing order (randomising the
            order avoids systematically favouring low-index pairs).

    Returns:
        A :class:`PathSet` with up to ``k`` distinct paths per SD pair.
    """
    rng = np.random.default_rng(seed)
    graph = topology.to_networkx()
    capacities = {(a, b): data["capacity"] for a, b, data in graph.edges(data=True)}
    load: dict[tuple[int, int], float] = {edge: 0.0 for edge in capacities}

    def edge_cost(a: int, b: int) -> float:
        cap = capacities[(a, b)]
        utilisation = load[(a, b)] / cap
        return (1.0 / cap) * math.pow(penalty_base, utilisation)

    pairs = topology.sd_pairs()
    order = rng.permutation(len(pairs))
    paths_by_pair: dict[tuple[int, int], list[list[int]]] = {pair: [] for pair in pairs}

    for round_idx in range(k):
        for pair_pos in order:
            src, dst = pairs[pair_pos]
            for a, b, data in graph.edges(data=True):
                data["cost"] = edge_cost(a, b)
            # Discourage re-using already selected paths for this pair by
            # temporarily inflating their edges.
            chosen_edges = {
                (x, y)
                for path in paths_by_pair[(src, dst)]
                for x, y in zip(path[:-1], path[1:])
            }
            for a, b in chosen_edges:
                graph[a][b]["cost"] *= penalty_base
            path = nx.shortest_path(graph, src, dst, weight="cost")
            if path not in paths_by_pair[(src, dst)]:
                paths_by_pair[(src, dst)].append([int(n) for n in path])
            # Account a unit of virtual demand spread over the chosen path.
            for a, b in zip(path[:-1], path[1:]):
                load[(a, b)] += 1.0 / (round_idx + 1)

    return PathSet(topology, paths_by_pair)
