"""The :class:`PathSet` structure: candidate paths and their incidence matrices.

A TE configuration in the paper splits each source-destination (SD) pair's
demand over a small set of candidate paths.  Appendix D.1 (Function 1) shows
that mapping a configuration to MLU only requires two incidence matrices:

* ``SDtoPath`` (|SD pairs| x |paths|): whether path ``j`` serves SD pair ``i``.
* ``PathToEdge`` (|paths| x |edges|): whether path ``i`` traverses edge ``j``.

:class:`PathSet` stores the candidate paths grouped by SD pair together with
these matrices (as scipy sparse matrices) and the per-path capacities used by
the path-sensitivity metric.
"""

from __future__ import annotations

import hashlib

import numpy as np
from scipy import sparse

from repro.topology.graph import Topology

__all__ = ["PathSet"]


class PathSet:
    """Candidate paths for every SD pair of a topology.

    Args:
        topology: The topology the paths live on.
        paths_by_pair: Mapping ``(s, d) -> list of node paths``, where each
            node path is a sequence of node indices starting at ``s`` and
            ending at ``d``.  Every SD pair of the topology must have at least
            one path.

    Attributes:
        topology: The underlying topology.
        sd_pairs: Ordered SD pairs (row-major, excluding the diagonal).
        paths: Flat tuple of node paths, grouped by SD pair in order.
        path_sd_index: For each path, the index of its SD pair in ``sd_pairs``.
    """

    def __init__(self, topology: Topology, paths_by_pair: dict[tuple[int, int], list[list[int]]]) -> None:
        self.topology = topology
        self.sd_pairs: list[tuple[int, int]] = topology.sd_pairs()
        self._sd_index = {pair: i for i, pair in enumerate(self.sd_pairs)}

        flat_paths: list[tuple[int, ...]] = []
        path_sd_index: list[int] = []
        paths_per_pair: list[list[int]] = [[] for _ in self.sd_pairs]
        for pair_idx, pair in enumerate(self.sd_pairs):
            if pair not in paths_by_pair or not paths_by_pair[pair]:
                raise ValueError(f"SD pair {pair} has no candidate path")
            for node_path in paths_by_pair[pair]:
                validated = self._validate_path(pair, node_path)
                paths_per_pair[pair_idx].append(len(flat_paths))
                flat_paths.append(validated)
                path_sd_index.append(pair_idx)

        self.paths: tuple[tuple[int, ...], ...] = tuple(flat_paths)
        self.path_sd_index = np.array(path_sd_index, dtype=np.int64)
        self._paths_per_pair = [tuple(p) for p in paths_per_pair]

        self._build_matrices()

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def _validate_path(self, pair: tuple[int, int], node_path) -> tuple[int, ...]:
        nodes = tuple(int(n) for n in node_path)
        if len(nodes) < 2:
            raise ValueError(f"path for {pair} must contain at least two nodes: {nodes}")
        if nodes[0] != pair[0] or nodes[-1] != pair[1]:
            raise ValueError(f"path {nodes} does not connect SD pair {pair}")
        if len(set(nodes)) != len(nodes):
            raise ValueError(f"path {nodes} contains a loop")
        for a, b in zip(nodes[:-1], nodes[1:]):
            if not self.topology.has_edge(a, b):
                raise ValueError(f"path {nodes} uses a non-existent edge {a}->{b}")
        return nodes

    def _build_matrices(self) -> None:
        num_paths = len(self.paths)
        num_edges = self.topology.num_edges
        num_pairs = len(self.sd_pairs)

        rows, cols = [], []
        path_caps = np.zeros(num_paths, dtype=float)
        for p_idx, nodes in enumerate(self.paths):
            cap = np.inf
            for a, b in zip(nodes[:-1], nodes[1:]):
                e_idx = self.topology.edge_index(a, b)
                rows.append(p_idx)
                cols.append(e_idx)
                cap = min(cap, self.topology.capacity(a, b))
            path_caps[p_idx] = cap
        data = np.ones(len(rows), dtype=float)
        self.path_to_edge = sparse.csr_matrix(
            (data, (rows, cols)), shape=(num_paths, num_edges)
        )
        self.sd_to_path = sparse.csr_matrix(
            (
                np.ones(num_paths, dtype=float),
                (self.path_sd_index, np.arange(num_paths)),
            ),
            shape=(num_pairs, num_paths),
        )
        self.path_capacities = path_caps

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def fingerprint(self) -> str:
        """Stable content hash of the path structure.

        Two path sets with the same candidate paths over the same edges and
        capacities share a fingerprint, so it can serve as a cache key (e.g.
        for :class:`~repro.solvers.lp.OptimalMLUCache`) without holding a
        reference to the object itself.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is None:
            digest = hashlib.sha1()
            digest.update(np.int64(self.topology.num_nodes).tobytes())
            digest.update(np.ascontiguousarray(self.topology.capacities, dtype=float).tobytes())
            digest.update(self.path_to_edge.indptr.tobytes())
            digest.update(self.path_to_edge.indices.tobytes())
            digest.update(self.path_sd_index.tobytes())
            cached = digest.hexdigest()
            self._fingerprint = cached
        return cached

    @property
    def num_paths(self) -> int:
        """Total number of candidate paths."""
        return len(self.paths)

    @property
    def num_sd_pairs(self) -> int:
        """Number of SD pairs."""
        return len(self.sd_pairs)

    @property
    def max_paths_per_pair(self) -> int:
        """Maximum number of candidate paths for any single SD pair."""
        return max(len(p) for p in self._paths_per_pair)

    def sd_pair_index(self, src: int, dst: int) -> int:
        """Index of the SD pair ``(src, dst)`` in ``sd_pairs`` order."""
        return self._sd_index[(src, dst)]

    def path_indices_for(self, src: int, dst: int) -> tuple[int, ...]:
        """Indices (into ``paths``) of the candidate paths serving ``src -> dst``."""
        return self._paths_per_pair[self.sd_pair_index(src, dst)]

    def paths_for(self, src: int, dst: int) -> list[tuple[int, ...]]:
        """The candidate node paths serving ``src -> dst``."""
        return [self.paths[i] for i in self.path_indices_for(src, dst)]

    def path_edge_indices(self, path_index: int) -> list[int]:
        """Edge indices traversed by the given path."""
        nodes = self.paths[path_index]
        return [self.topology.edge_index(a, b) for a, b in zip(nodes[:-1], nodes[1:])]

    def demand_vector(self, demand_matrix: np.ndarray) -> np.ndarray:
        """Flatten a |V| x |V| demand matrix to a vector in SD-pair order."""
        dm = np.asarray(demand_matrix, dtype=float)
        n = self.topology.num_nodes
        if dm.shape != (n, n):
            raise ValueError(f"demand matrix must be {n}x{n}, got {dm.shape}")
        return np.array([dm[s, d] for s, d in self.sd_pairs], dtype=float)

    def demand_per_path(self, demand_vector: np.ndarray) -> np.ndarray:
        """Broadcast a per-SD-pair demand vector onto every path (gather)."""
        dv = np.asarray(demand_vector, dtype=float)
        if dv.shape[-1] != self.num_sd_pairs:
            raise ValueError(
                f"demand vector must have {self.num_sd_pairs} entries, got {dv.shape}"
            )
        return dv[..., self.path_sd_index]

    def restrict_to_working_paths(self, failed_edges: set[tuple[int, int]]) -> np.ndarray:
        """Boolean mask of paths that avoid every failed directed edge."""
        mask = np.ones(self.num_paths, dtype=bool)
        for p_idx, nodes in enumerate(self.paths):
            for a, b in zip(nodes[:-1], nodes[1:]):
                if (a, b) in failed_edges:
                    mask[p_idx] = False
                    break
        return mask

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"PathSet(topology={self.topology.name!r}, pairs={self.num_sd_pairs}, "
            f"paths={self.num_paths})"
        )
