"""Traffic substrate: demand matrices, generators, perturbations, statistics."""

from repro.traffic.matrix import TrafficMatrix, TrafficMatrixSequence
from repro.traffic.gravity import gravity_matrix, GravityTrafficGenerator
from repro.traffic.wan import GeantLikeGenerator
from repro.traffic.bursty import DataCenterTrafficGenerator
from repro.traffic.pfabric import PFabricTrafficGenerator
from repro.traffic.windows import build_history_windows, iter_window_chunks
from repro.traffic import perturb, stats

__all__ = [
    "build_history_windows",
    "iter_window_chunks",
    "TrafficMatrix",
    "TrafficMatrixSequence",
    "gravity_matrix",
    "GravityTrafficGenerator",
    "GeantLikeGenerator",
    "DataCenterTrafficGenerator",
    "PFabricTrafficGenerator",
    "perturb",
    "stats",
]
