"""GEANT-like WAN traffic generation.

The public GEANT/TOTEM traces used by the paper (15-minute demand matrices
over four months) are not redistributable here; this generator produces a
synthetic trace with the statistical properties the evaluation relies on
(Section 5.1, Figures 2 and 4):

* Mostly stable demand: the cosine similarity between the current matrix and
  the closest of the last 12 matrices is near one for most intervals.
* Strong diurnal and weekly seasonality.
* Heterogeneous per-pair volumes (gravity base derived from link capacities).
* Occasional unexpected bursts on a subset of pairs, producing the
  low-similarity outliers visible in Figure 4 and the spread of per-pair
  variance visible in Figure 2.
"""

from __future__ import annotations

import numpy as np

from repro.topology.graph import Topology
from repro.traffic.gravity import gravity_matrix
from repro.traffic.matrix import TrafficMatrix, TrafficMatrixSequence

__all__ = ["GeantLikeGenerator"]


class GeantLikeGenerator:
    """Synthetic WAN traffic with diurnal seasonality and sparse bursts.

    Args:
        topology: WAN topology.
        mean_utilization: Coarse target for the average network load.
        intervals_per_day: Number of demand matrices per day (96 for the
            GEANT 15-minute aggregation).
        burst_pair_fraction: Fraction of SD pairs that are burst-prone.
        burst_probability: Per-interval probability that a burst-prone pair
            bursts.
        burst_scale: Multiplicative magnitude of a burst (mean of the
            exponential burst multiplier added on top of the base demand).
        noise_level: Log-normal noise sigma applied to every pair and
            interval.
        seed: RNG seed.
    """

    def __init__(
        self,
        topology: Topology,
        mean_utilization: float = 0.3,
        intervals_per_day: int = 96,
        burst_pair_fraction: float = 0.05,
        burst_probability: float = 0.01,
        burst_scale: float = 4.0,
        noise_level: float = 0.08,
        seed: int = 0,
    ) -> None:
        self.topology = topology
        self.intervals_per_day = intervals_per_day
        self.burst_pair_fraction = burst_pair_fraction
        self.burst_probability = burst_probability
        self.burst_scale = burst_scale
        self.noise_level = noise_level
        self.seed = seed
        total_capacity = topology.total_capacity()
        self._total_demand = mean_utilization * total_capacity / 4.0
        self._base = gravity_matrix(topology, self._total_demand).matrix

    def generate(self, num_intervals: int) -> TrafficMatrixSequence:
        """Generate ``num_intervals`` demand matrices (15-minute spacing)."""
        rng = np.random.default_rng(self.seed)
        n = self.topology.num_nodes
        off_diagonal = ~np.eye(n, dtype=bool)
        num_pairs = int(off_diagonal.sum())

        num_bursty = max(1, int(round(self.burst_pair_fraction * num_pairs)))
        bursty_flat_indices = rng.choice(num_pairs, size=num_bursty, replace=False)
        bursty_mask_flat = np.zeros(num_pairs, dtype=bool)
        bursty_mask_flat[bursty_flat_indices] = True
        bursty_mask = np.zeros((n, n), dtype=bool)
        bursty_mask[off_diagonal] = bursty_mask_flat

        matrices = []
        for t in range(num_intervals):
            day_phase = 2.0 * np.pi * (t % self.intervals_per_day) / self.intervals_per_day
            week_phase = 2.0 * np.pi * (t % (7 * self.intervals_per_day)) / (
                7 * self.intervals_per_day
            )
            seasonal = 1.0 + 0.35 * np.sin(day_phase - np.pi / 2) + 0.10 * np.sin(week_phase)
            seasonal = max(seasonal, 0.1)
            noise = rng.lognormal(mean=0.0, sigma=self.noise_level, size=(n, n))
            demand = self._base * seasonal * noise
            # Sparse, unexpected bursts on the burst-prone pairs.
            burst_events = (rng.random((n, n)) < self.burst_probability) & bursty_mask
            if burst_events.any():
                multipliers = 1.0 + rng.exponential(self.burst_scale, size=(n, n))
                demand = np.where(burst_events, demand * multipliers, demand)
            matrices.append(TrafficMatrix(demand))
        return TrafficMatrixSequence(
            matrices,
            interval_seconds=900.0,
            name=f"geant-like-{self.topology.name}",
        )
