"""Sliding history windows over flattened demand traces.

One stride-tricks view serves both consumers of windowed demands: the
trainer's supervised (window, target) pairs and the evaluation engine's
batched replay.  :func:`iter_window_chunks` chunks the same windows for the
engine's streaming mode, buffering only ``history_len + chunk_size`` demand
rows at a time so month-long traces replay in O(chunk) memory.  Living in
the traffic layer keeps the dependency direction clean -- both ``core`` and
``evaluation`` sit above ``traffic``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

__all__ = ["build_history_windows", "iter_window_chunks"]


def build_history_windows(
    flat_demands: np.ndarray,
    history_len: int,
    oracle_demand: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """All evaluation windows of a flattened trace, built in one shot.

    Args:
        flat_demands: ``(len(trace), num_sd_pairs)`` demand array.
        history_len: Number of recent demand vectors per window.
        oracle_demand: If True each window additionally carries the *true*
            next demand as its final row (the Omniscient benchmark's input),
            making the windows ``history_len + 1`` rows tall.

    Returns:
        ``(windows, targets)`` where ``windows`` has shape
        ``(T, H, num_sd_pairs)`` (``H = history_len`` plus one if
        ``oracle_demand``) with ``windows[i] = flat[i : i + H]``, and
        ``targets`` has shape ``(T, num_sd_pairs)`` with
        ``targets[i] = flat[history_len + i]`` -- the demand the window must
        route.  ``T = len(trace) - history_len``.  Both are views of
        ``flat_demands`` (no copies).
    """
    flat = np.ascontiguousarray(np.asarray(flat_demands, dtype=float))
    if flat.ndim != 2:
        raise ValueError(f"flat_demands must be 2-D, got shape {flat.shape}")
    if history_len < 1:
        raise ValueError("history must be at least 1")
    if len(flat) <= history_len:
        raise ValueError("test sequence is shorter than the history window")
    window_rows = history_len + 1 if oracle_demand else history_len
    # (len - rows + 1, num_pairs, rows) -> transpose to (T', rows, num_pairs).
    swept = sliding_window_view(flat, window_rows, axis=0).transpose(0, 2, 1)
    targets = flat[history_len:]
    windows = swept if oracle_demand else swept[: len(targets)]
    return windows, targets


def iter_window_chunks(
    demands: np.ndarray | Iterable[np.ndarray],
    history_len: int,
    chunk_size: int,
    oracle_demand: bool = False,
) -> Iterator[tuple[np.ndarray, np.ndarray, int]]:
    """Yield the evaluation windows of a trace in bounded-memory chunks.

    Concatenating the chunks reproduces :func:`build_history_windows` of the
    whole trace exactly -- in particular, windows whose history spans a chunk
    boundary are identical to their whole-trace counterparts, because each
    chunk carries the ``history_len`` rows preceding its first target.

    Args:
        demands: Either a ``(len(trace), num_sd_pairs)`` demand array (chunks
            are stride-tricks views, no copies) or *any* iterable of per-
            interval demand vectors -- e.g. rows streamed from disk.  On the
            iterable path at most ``history_len + chunk_size`` rows are held
            in memory at once, which is what lets arbitrarily long traces
            replay out-of-core.
        history_len: Number of recent demand vectors per window.
        chunk_size: Maximum number of evaluation intervals per chunk.
        oracle_demand: As in :func:`build_history_windows`.

    Yields:
        ``(windows, targets, start)`` triples where ``start`` is the index of
        the chunk's first evaluation interval (``windows[0]`` is the window
        of interval ``start``, i.e. rows ``start .. start + H - 1`` of the
        trace) and ``windows`` / ``targets`` are exactly rows
        ``start : start + len(targets)`` of the whole-trace arrays.

    Raises:
        ValueError: If the trace has no evaluation interval (length <=
            ``history_len``) or an argument is out of range.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")
    if history_len < 1:
        raise ValueError("history must be at least 1")

    if isinstance(demands, np.ndarray) and demands.ndim == 2:
        flat = np.ascontiguousarray(np.asarray(demands, dtype=float))
        if len(flat) <= history_len:
            raise ValueError("test sequence is shorter than the history window")
        total = len(flat) - history_len
        for start in range(0, total, chunk_size):
            stop = min(start + chunk_size, total)
            block = flat[start : stop + history_len]
            windows, targets = build_history_windows(
                block, history_len, oracle_demand=oracle_demand
            )
            yield windows, targets, start
        return

    # Streaming path: a rolling buffer of at most H + chunk_size rows.
    buffer: list[np.ndarray] = []
    width: int | None = None
    start = 0
    for row in demands:
        vector = np.asarray(row, dtype=float)
        if vector.ndim != 1:
            raise ValueError(
                "streamed demand rows must be 1-D vectors, got shape "
                f"{vector.shape}"
            )
        if width is None:
            width = vector.shape[0]
        elif vector.shape[0] != width:
            raise ValueError(
                f"streamed demand rows must all have {width} entries, got "
                f"{vector.shape[0]}"
            )
        buffer.append(vector)
        if len(buffer) == history_len + chunk_size:
            block = np.stack(buffer)
            windows, targets = build_history_windows(
                block, history_len, oracle_demand=oracle_demand
            )
            yield windows, targets, start
            start += len(targets)
            # The last H rows are the history of the next chunk's first target.
            buffer = buffer[-history_len:]
    if len(buffer) > history_len:
        block = np.stack(buffer)
        windows, targets = build_history_windows(
            block, history_len, oracle_demand=oracle_demand
        )
        yield windows, targets, start
    elif start == 0:
        raise ValueError("test sequence is shorter than the history window")
