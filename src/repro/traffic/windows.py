"""Sliding history windows over flattened demand traces.

One stride-tricks view serves both consumers of windowed demands: the
trainer's supervised (window, target) pairs and the evaluation engine's
batched replay.  Living in the traffic layer keeps the dependency direction
clean -- both ``core`` and ``evaluation`` sit above ``traffic``.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

__all__ = ["build_history_windows"]


def build_history_windows(
    flat_demands: np.ndarray,
    history_len: int,
    oracle_demand: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """All evaluation windows of a flattened trace, built in one shot.

    Args:
        flat_demands: ``(len(trace), num_sd_pairs)`` demand array.
        history_len: Number of recent demand vectors per window.
        oracle_demand: If True each window additionally carries the *true*
            next demand as its final row (the Omniscient benchmark's input),
            making the windows ``history_len + 1`` rows tall.

    Returns:
        ``(windows, targets)`` where ``windows`` has shape
        ``(T, H, num_sd_pairs)`` (``H = history_len`` plus one if
        ``oracle_demand``) with ``windows[i] = flat[i : i + H]``, and
        ``targets`` has shape ``(T, num_sd_pairs)`` with
        ``targets[i] = flat[history_len + i]`` -- the demand the window must
        route.  ``T = len(trace) - history_len``.  Both are views of
        ``flat_demands`` (no copies).
    """
    flat = np.ascontiguousarray(np.asarray(flat_demands, dtype=float))
    if flat.ndim != 2:
        raise ValueError(f"flat_demands must be 2-D, got shape {flat.shape}")
    if history_len < 1:
        raise ValueError("history must be at least 1")
    if len(flat) <= history_len:
        raise ValueError("test sequence is shorter than the history window")
    window_rows = history_len + 1 if oracle_demand else history_len
    # (len - rows + 1, num_pairs, rows) -> transpose to (T', rows, num_pairs).
    swept = sliding_window_view(flat, window_rows, axis=0).transpose(0, 2, 1)
    targets = flat[history_len:]
    windows = swept if oracle_demand else swept[: len(targets)]
    return windows, targets
