"""Meta-like data center traffic generation (PoD-level and ToR-level).

The paper's data center evaluation uses one day of traffic from Meta's DB and
WEB clusters ("Inside the social network's datacenter network"), aggregated
into 1-second (PoD-level) or 10-second (ToR-level) demand matrices.  Those
traces are not redistributable, so this generator produces synthetic traffic
with the characteristics the paper's analysis attributes to them
(Section 5.1, Figures 2 and 4):

* PoD-level traffic is moderately bursty: a small number of pods exchange
  large, mostly stable volumes with moderate fluctuations and occasional
  bursts.
* ToR-level traffic is highly dynamic and sparse: per-pair volumes are heavy
  tailed, many pairs are nearly idle most of the time, and bursts are frequent
  and large, producing low cosine similarity to recent history.
* Crucially for FIGRET, per-pair burstiness is *heterogeneous*: some pairs are
  stable, others burst frequently -- the diversity FIGRET's fine-grained
  robustness exploits (Figure 2).

The generator models each pair's demand as

    D_sd(t) = base_sd * seasonal(t) * ar_noise_sd(t) + burst_sd(t)

where ``base_sd`` is log-normal, ``ar_noise`` is a log-AR(1) process, and
``burst_sd(t)`` is an on/off Pareto-magnitude burst process whose rate and
magnitude differ per pair (a per-pair "burstiness score" drawn from a Beta
distribution).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.topology.graph import Topology
from repro.traffic.matrix import TrafficMatrix, TrafficMatrixSequence

__all__ = ["DataCenterTrafficGenerator", "DataCenterTrafficProfile"]


@dataclass(frozen=True)
class DataCenterTrafficProfile:
    """Knobs describing one class of data center traffic.

    Attributes:
        sparsity: Fraction of SD pairs that are nearly idle (tiny base rate).
        base_sigma: Sigma of the log-normal distribution of per-pair base rates.
        ar_coefficient: Temporal correlation of the multiplicative noise.
        noise_sigma: Innovation sigma of the log-AR(1) noise.
        burst_rate_range: (min, max) per-interval burst probability for the
            most stable / most bursty pairs.
        burst_magnitude: Pareto scale of burst sizes, expressed as a multiple
            of the pair's base rate.
        burst_tail_index: Pareto tail index (smaller => heavier tail).
        bursty_pair_concentration: Beta-distribution parameter controlling how
            heterogeneous burstiness is across pairs (smaller => more pairs
            are either very stable or very bursty).
    """

    sparsity: float
    base_sigma: float
    ar_coefficient: float
    noise_sigma: float
    burst_rate_range: tuple[float, float]
    burst_magnitude: float
    burst_tail_index: float
    bursty_pair_concentration: float


#: Moderately bursty PoD-level traffic (Meta DB / WEB PoD aggregation).
POD_PROFILE = DataCenterTrafficProfile(
    sparsity=0.0,
    base_sigma=0.5,
    ar_coefficient=0.85,
    noise_sigma=0.10,
    burst_rate_range=(0.002, 0.05),
    burst_magnitude=2.5,
    burst_tail_index=2.5,
    bursty_pair_concentration=0.8,
)

#: Highly dynamic, sparse ToR-level traffic.
TOR_PROFILE = DataCenterTrafficProfile(
    sparsity=0.35,
    base_sigma=1.2,
    ar_coefficient=0.6,
    noise_sigma=0.35,
    burst_rate_range=(0.01, 0.25),
    burst_magnitude=6.0,
    burst_tail_index=1.8,
    bursty_pair_concentration=0.5,
)

_PROFILES = {"pod": POD_PROFILE, "tor": TOR_PROFILE}


class DataCenterTrafficGenerator:
    """Synthetic Meta-like data center traffic.

    Args:
        topology: Data center topology (full mesh for PoD level, random
            regular graph for ToR level).
        level: ``"pod"`` or ``"tor"``, selecting a preset profile, or pass a
            custom :class:`DataCenterTrafficProfile` via ``profile``.
        mean_utilization: Coarse target for the average network load.
        profile: Optional explicit profile overriding ``level``.
        seed: RNG seed.
    """

    def __init__(
        self,
        topology: Topology,
        level: str = "pod",
        mean_utilization: float = 0.3,
        profile: DataCenterTrafficProfile | None = None,
        seed: int = 0,
    ) -> None:
        if profile is None:
            if level not in _PROFILES:
                raise ValueError(f"unknown traffic level {level!r}; use 'pod' or 'tor'")
            profile = _PROFILES[level]
        self.topology = topology
        self.level = level
        self.profile = profile
        self.mean_utilization = mean_utilization
        self.seed = seed

    def generate(self, num_intervals: int, interval_seconds: float | None = None) -> TrafficMatrixSequence:
        """Generate ``num_intervals`` demand matrices."""
        if num_intervals < 1:
            raise ValueError("num_intervals must be at least 1")
        profile = self.profile
        rng = np.random.default_rng(self.seed)
        n = self.topology.num_nodes
        num_pairs = n * (n - 1)
        off_diagonal = ~np.eye(n, dtype=bool)

        # Per-pair base rates: log-normal, with a sparse subset nearly idle.
        base = rng.lognormal(mean=0.0, sigma=profile.base_sigma, size=num_pairs)
        idle = rng.random(num_pairs) < profile.sparsity
        base[idle] *= 0.01

        # Per-pair burstiness score in [0, 1]; heterogeneity across pairs is
        # what makes fine-grained robustness worthwhile.
        concentration = profile.bursty_pair_concentration
        burstiness = rng.beta(concentration, concentration, size=num_pairs)
        low, high = profile.burst_rate_range
        burst_rate = low + burstiness * (high - low)

        # Scale the base so the expected total demand matches the target load.
        total_capacity = self.topology.total_capacity()
        target_total = self.mean_utilization * total_capacity / 4.0
        base *= target_total / base.sum()

        log_noise = np.zeros(num_pairs)
        matrices = []
        for _ in range(num_intervals):
            innovations = rng.normal(0.0, profile.noise_sigma, size=num_pairs)
            log_noise = profile.ar_coefficient * log_noise + innovations
            demand_flat = base * np.exp(log_noise)
            burst_events = rng.random(num_pairs) < burst_rate
            if burst_events.any():
                magnitudes = (
                    rng.pareto(profile.burst_tail_index, size=num_pairs) + 1.0
                ) * profile.burst_magnitude
                demand_flat = np.where(
                    burst_events, demand_flat + base * magnitudes, demand_flat
                )
            matrix = np.zeros((n, n))
            matrix[off_diagonal] = demand_flat
            matrices.append(TrafficMatrix(matrix))
        if interval_seconds is None:
            interval_seconds = 1.0 if self.level == "pod" else 10.0
        return TrafficMatrixSequence(
            matrices,
            interval_seconds=interval_seconds,
            name=f"dc-{self.level}-{self.topology.name}",
        )
