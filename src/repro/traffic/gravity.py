"""Gravity-model traffic generation.

The paper generates synthetic traffic for the UsCarrier and Cogentco
topologies with a gravity model (Section 5.1): each node has an activity
weight and the demand between ``s`` and ``d`` is proportional to the product
of their weights.  Gravity traffic is intentionally stable -- the paper uses
it to study TE performance under non-bursty conditions (Figure 5(d)).
"""

from __future__ import annotations

import numpy as np

from repro.topology.graph import Topology
from repro.traffic.matrix import TrafficMatrix, TrafficMatrixSequence

__all__ = ["gravity_matrix", "GravityTrafficGenerator"]


def node_weights_from_capacity(topology: Topology) -> np.ndarray:
    """Node activity weights proportional to total attached capacity.

    Nodes with more attached capacity originate and attract more traffic,
    which is the standard way of seeding a gravity model from a topology.
    """
    weights = np.zeros(topology.num_nodes)
    for edge in topology.edges:
        weights[edge.src] += edge.capacity
        weights[edge.dst] += edge.capacity
    return weights / weights.sum()


def gravity_matrix(
    topology: Topology,
    total_demand: float,
    weights: np.ndarray | None = None,
) -> TrafficMatrix:
    """A single gravity-model demand matrix.

    Args:
        topology: Topology providing node count (and default weights).
        total_demand: Total traffic volume across all pairs.
        weights: Optional per-node activity weights (normalised internally).
    """
    if weights is None:
        weights = node_weights_from_capacity(topology)
    weights = np.asarray(weights, dtype=float)
    weights = weights / weights.sum()
    outer = np.outer(weights, weights)
    np.fill_diagonal(outer, 0.0)
    outer = outer / outer.sum()
    return TrafficMatrix(outer * total_demand)


class GravityTrafficGenerator:
    """Generates a stable gravity-model traffic sequence with mild noise.

    Args:
        topology: The topology to generate traffic for.
        mean_utilization: Target scale: the total demand is chosen so that a
            shortest-path routing of the base matrix would load the network
            to roughly this mean utilisation (a coarse but reproducible way
            of picking sensible volumes).
        noise_level: Standard deviation of per-pair multiplicative log-normal
            noise applied at every interval (small => stable traffic).
        seed: RNG seed.
    """

    def __init__(
        self,
        topology: Topology,
        mean_utilization: float = 0.3,
        noise_level: float = 0.05,
        seed: int = 0,
    ) -> None:
        if not 0 < mean_utilization:
            raise ValueError("mean_utilization must be positive")
        self.topology = topology
        self.mean_utilization = mean_utilization
        self.noise_level = noise_level
        self.seed = seed
        total_capacity = topology.total_capacity()
        # Scale so aggregate demand is a fraction of aggregate capacity; the
        # average path has a handful of hops so this keeps MLU moderate.
        self._total_demand = mean_utilization * total_capacity / 4.0
        self._base = gravity_matrix(topology, self._total_demand).matrix

    def generate(self, num_intervals: int, interval_seconds: float = 900.0) -> TrafficMatrixSequence:
        """Generate ``num_intervals`` demand matrices."""
        if num_intervals < 1:
            raise ValueError("num_intervals must be at least 1")
        rng = np.random.default_rng(self.seed)
        matrices = []
        for _ in range(num_intervals):
            noise = rng.lognormal(mean=0.0, sigma=self.noise_level, size=self._base.shape)
            matrices.append(TrafficMatrix(self._base * noise))
        return TrafficMatrixSequence(
            matrices,
            interval_seconds=interval_seconds,
            name=f"gravity-{self.topology.name}",
        )
