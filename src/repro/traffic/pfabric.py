"""pFabric-style flow-level traffic generation.

The pFabric trace of the paper (Section 5.1) is characterised by a Poisson
flow arrival process: when a flow arrives, its source and destination ToRs
are chosen uniformly at random, and its size is drawn from the "web search"
workload distribution of the pFabric paper.  Flows are aggregated into
per-interval demand matrices.

The web-search flow size distribution is reproduced here as the piecewise
empirical CDF published with the pFabric/DCTCP papers (sizes in bytes,
heavy-tailed: ~50% of flows are < 100 KB but a few multi-megabyte flows carry
most of the bytes).
"""

from __future__ import annotations

import numpy as np

from repro.topology.graph import Topology
from repro.traffic.matrix import TrafficMatrix, TrafficMatrixSequence

__all__ = ["PFabricTrafficGenerator", "WEB_SEARCH_FLOW_SIZE_CDF", "sample_flow_sizes"]


#: Piecewise empirical CDF of the web-search workload: (flow size in bytes,
#: cumulative probability).  Reproduced from the pFabric evaluation workload.
WEB_SEARCH_FLOW_SIZE_CDF: tuple[tuple[float, float], ...] = (
    (6_000, 0.15),
    (13_000, 0.30),
    (19_000, 0.40),
    (33_000, 0.53),
    (53_000, 0.60),
    (133_000, 0.70),
    (667_000, 0.80),
    (1_333_000, 0.90),
    (3_333_000, 0.95),
    (6_667_000, 0.98),
    (20_000_000, 1.00),
)


def sample_flow_sizes(rng: np.random.Generator, size: int) -> np.ndarray:
    """Sample flow sizes (bytes) from the web-search distribution.

    Sampling uses inverse-transform on the piecewise-linear interpolation of
    the empirical CDF.
    """
    sizes = np.array([0.0] + [s for s, _ in WEB_SEARCH_FLOW_SIZE_CDF])
    probs = np.array([0.0] + [p for _, p in WEB_SEARCH_FLOW_SIZE_CDF])
    uniform = rng.random(size)
    return np.interp(uniform, probs, sizes)


class PFabricTrafficGenerator:
    """Poisson flow arrivals aggregated into demand matrices.

    Args:
        topology: The (direct-connect) pFabric topology.
        flows_per_interval: Expected number of flow arrivals per aggregation
            interval (Poisson mean).
        interval_seconds: Aggregation interval length.
        mean_utilization: If set, the generated matrices are rescaled so the
            average per-interval total demand corresponds to roughly this
            network load (keeps MLU in a sensible range regardless of the
            byte-level flow sizes).
        seed: RNG seed.
    """

    def __init__(
        self,
        topology: Topology,
        flows_per_interval: float = 600.0,
        interval_seconds: float = 60.0,
        mean_utilization: float | None = 0.3,
        seed: int = 0,
    ) -> None:
        if flows_per_interval <= 0:
            raise ValueError("flows_per_interval must be positive")
        self.topology = topology
        self.flows_per_interval = flows_per_interval
        self.interval_seconds = interval_seconds
        self.mean_utilization = mean_utilization
        self.seed = seed

    def generate(self, num_intervals: int) -> TrafficMatrixSequence:
        """Generate ``num_intervals`` demand matrices."""
        rng = np.random.default_rng(self.seed)
        n = self.topology.num_nodes
        raw = np.zeros((num_intervals, n, n))
        for t in range(num_intervals):
            num_flows = rng.poisson(self.flows_per_interval)
            if num_flows == 0:
                continue
            sources = rng.integers(0, n, size=num_flows)
            # Destination uniform over the other nodes.
            offsets = rng.integers(1, n, size=num_flows)
            destinations = (sources + offsets) % n
            sizes = sample_flow_sizes(rng, num_flows)
            np.add.at(raw[t], (sources, destinations), sizes)
        if self.mean_utilization is not None:
            total_capacity = self.topology.total_capacity()
            target_total = self.mean_utilization * total_capacity / 4.0
            mean_total = raw.sum(axis=(1, 2)).mean()
            if mean_total > 0:
                raw *= target_total / mean_total
        matrices = [TrafficMatrix(m) for m in raw]
        return TrafficMatrixSequence(
            matrices,
            interval_seconds=self.interval_seconds,
            name=f"pfabric-{self.topology.name}",
        )
