"""Traffic perturbations used by the robustness experiments (Tables 3 and 5).

Two perturbations are reproduced:

* :func:`gaussian_fluctuation` -- Table 3: each pair's demand receives an
  additive fluctuation ``alpha * N(0, sigma_sd^2)`` where ``sigma_sd`` is the
  pair's historical standard deviation.
* :func:`reverse_rank_fluctuation` -- Table 5 (worst case): the magnitudes of
  fluctuations are assigned to pairs in *reverse* order of their historical
  variance rank, so historically stable pairs receive the largest
  fluctuations -- the adversarial scenario for a scheme that learned which
  pairs are stable.
"""

from __future__ import annotations

import numpy as np

from repro.traffic.matrix import TrafficMatrix, TrafficMatrixSequence

__all__ = [
    "gaussian_fluctuation",
    "reverse_rank_fluctuation",
    "variance_rank_spearman",
]


def _flat_to_matrix(flat: np.ndarray, num_nodes: int) -> np.ndarray:
    matrix = np.zeros((num_nodes, num_nodes))
    matrix[~np.eye(num_nodes, dtype=bool)] = flat
    return matrix


def gaussian_fluctuation(
    sequence: TrafficMatrixSequence,
    alpha: float,
    reference_std: np.ndarray,
    seed: int = 0,
) -> TrafficMatrixSequence:
    """Add per-pair Gaussian fluctuations scaled by historical std (Table 3).

    Args:
        sequence: The sequence to perturb (typically the test split).
        alpha: Fluctuation amplitude factor (0.2 / 0.5 / 1.0 / 2.0 in the
            paper).
        reference_std: Per-pair standard deviation measured on the *training*
            period (``sigma_{D_sd, [1-T]}``), in SD-pair order.
        seed: RNG seed.

    Returns:
        A new sequence with demands ``max(0, D_sd + alpha * N(0, sigma_sd^2))``.
    """
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    rng = np.random.default_rng(seed)
    flats = sequence.flat_demands()
    std = np.asarray(reference_std, dtype=float)
    if std.shape != (flats.shape[1],):
        raise ValueError("reference_std must have one entry per SD pair")
    noise = rng.normal(0.0, 1.0, size=flats.shape) * std * alpha
    perturbed = np.clip(flats + noise, 0.0, None)
    matrices = [
        TrafficMatrix(_flat_to_matrix(row, sequence.num_nodes)) for row in perturbed
    ]
    return TrafficMatrixSequence(
        matrices,
        interval_seconds=sequence.interval_seconds,
        name=f"{sequence.name}-fluct{alpha}",
    )


def reverse_rank_fluctuation(
    sequence: TrafficMatrixSequence,
    alpha: float,
    reference_std: np.ndarray,
    seed: int = 0,
) -> TrafficMatrixSequence:
    """Worst-case fluctuation: reverse the variance ranking across pairs (Table 5).

    The fluctuation applied to the pair with the *lowest* historical variance
    uses the std of the pair with the *highest* historical variance, and so
    on.  This punishes schemes that relaxed robustness for historically
    stable pairs.
    """
    std = np.asarray(reference_std, dtype=float)
    order = np.argsort(std)
    reversed_std = np.empty_like(std)
    # Pair with the smallest std receives the largest std, etc.
    reversed_std[order] = std[order[::-1]]
    return gaussian_fluctuation(sequence, alpha, reversed_std, seed=seed)


def variance_rank_spearman(train_variance: np.ndarray, test_variance: np.ndarray) -> float:
    """Spearman rank correlation between train and test per-pair variances.

    The paper reports 0.92 (PoD DB) and 0.98 (ToR DB), arguing that the
    adversarial rank reversal of Table 5 is rare in practice.
    """
    from scipy import stats as scipy_stats

    train = np.asarray(train_variance, dtype=float)
    test = np.asarray(test_variance, dtype=float)
    if train.shape != test.shape:
        raise ValueError("variance vectors must have the same shape")
    result = scipy_stats.spearmanr(train, test)
    return float(result.statistic)
