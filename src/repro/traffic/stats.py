"""Traffic statistics used by the paper's analysis figures.

* :func:`variance_matrix` -- the per-pair demand variance heat map of
  Figure 2.
* :func:`cosine_similarity_profile` -- the "similarity of the current TM to
  the closest of the last H TMs" analysis of Figures 4 and 18.
* :func:`burstiness_summary` -- candlestick-style summary statistics
  (percentiles) of the similarity profile.
"""

from __future__ import annotations

import numpy as np

from repro.traffic.matrix import TrafficMatrixSequence

__all__ = [
    "variance_matrix",
    "normalized_variance_matrix",
    "cosine_similarity_profile",
    "burstiness_summary",
]


def variance_matrix(sequence: TrafficMatrixSequence) -> np.ndarray:
    """Per-pair demand variance as a ``|V| x |V|`` matrix (Figure 2)."""
    array = sequence.as_array()
    return array.var(axis=0)


def normalized_variance_matrix(sequence: TrafficMatrixSequence) -> np.ndarray:
    """Variance matrix normalised to [0, 1] (the paper normalises Figure 2)."""
    var = variance_matrix(sequence)
    peak = var.max()
    if peak == 0:
        return var
    return var / peak


def cosine_similarity_profile(sequence: TrafficMatrixSequence, history: int = 12) -> np.ndarray:
    """Best cosine similarity of each TM to the preceding ``history`` TMs.

    For every time ``t >= history`` the profile contains
    ``max_{h in [t-H, t)} cos(D_t, D_h)``.  Values near 1 mean the demand is
    predictable from recent history; low values flag unexpected bursts
    (Figure 4; Figure 18 repeats the analysis with H = 64).
    """
    if history < 1:
        raise ValueError("history must be at least 1")
    flats = sequence.flat_demands()
    norms = np.linalg.norm(flats, axis=1)
    similarities = []
    for t in range(history, len(sequence)):
        current = flats[t]
        current_norm = norms[t]
        window = flats[t - history : t]
        window_norms = norms[t - history : t]
        denom = current_norm * window_norms
        with np.errstate(divide="ignore", invalid="ignore"):
            cos = np.where(denom > 0, window @ current / denom, 0.0)
        similarities.append(float(cos.max()) if len(cos) else 0.0)
    return np.array(similarities)


def burstiness_summary(sequence: TrafficMatrixSequence, history: int = 12) -> dict[str, float]:
    """Candlestick summary of the cosine-similarity profile (Figure 4).

    Returns the 5th/25th/50th/75th/95th percentiles and the mean of the
    similarity profile.  Lower percentiles indicate burstier traffic.
    """
    profile = cosine_similarity_profile(sequence, history=history)
    if len(profile) == 0:
        raise ValueError("sequence too short for the requested history window")
    percentiles = np.percentile(profile, [5, 25, 50, 75, 95])
    return {
        "p05": float(percentiles[0]),
        "p25": float(percentiles[1]),
        "p50": float(percentiles[2]),
        "p75": float(percentiles[3]),
        "p95": float(percentiles[4]),
        "mean": float(profile.mean()),
    }
