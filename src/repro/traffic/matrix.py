"""Demand matrices and demand matrix sequences.

A demand matrix (DM) is a ``|V| x |V|`` non-negative matrix whose ``(i, j)``
entry is the traffic demand from node ``i`` to node ``j`` (Section 3).  TE
operates on a time series of DMs; :class:`TrafficMatrixSequence` stores such
a series and provides the train/test splitting, windowing, and per-pair
statistics used throughout the evaluation.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

__all__ = ["TrafficMatrix", "TrafficMatrixSequence"]


class TrafficMatrix:
    """A single demand matrix.

    Args:
        matrix: Square non-negative array.  The diagonal is forced to zero
            (a node never sends demand to itself).
    """

    def __init__(self, matrix) -> None:
        data = np.asarray(matrix, dtype=float).copy()
        if data.ndim != 2 or data.shape[0] != data.shape[1]:
            raise ValueError(f"demand matrix must be square, got shape {data.shape}")
        if np.any(data < 0):
            raise ValueError("demand matrix entries must be non-negative")
        np.fill_diagonal(data, 0.0)
        self._data = data

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return self._data.shape[0]

    @property
    def matrix(self) -> np.ndarray:
        """The underlying matrix (copy)."""
        return self._data.copy()

    def demand(self, src: int, dst: int) -> float:
        """Demand from ``src`` to ``dst``."""
        return float(self._data[src, dst])

    def total(self) -> float:
        """Total demand across all pairs."""
        return float(self._data.sum())

    def flat(self) -> np.ndarray:
        """Flatten to a vector in row-major SD-pair order (diagonal removed)."""
        n = self.num_nodes
        mask = ~np.eye(n, dtype=bool)
        return self._data[mask]

    def scaled(self, factor: float) -> "TrafficMatrix":
        """Return a copy scaled by ``factor``."""
        return TrafficMatrix(self._data * factor)

    def __array__(self, dtype=None) -> np.ndarray:
        return self._data.astype(dtype) if dtype is not None else self._data.copy()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"TrafficMatrix(nodes={self.num_nodes}, total={self.total():.3f})"


class TrafficMatrixSequence:
    """A time-ordered sequence of demand matrices.

    Args:
        matrices: Iterable of :class:`TrafficMatrix`, arrays, or a single 3-D
            array of shape ``(T, n, n)``.
        interval_seconds: Length of each aggregation interval (metadata only).
        name: Human readable name of the trace.
    """

    def __init__(self, matrices, interval_seconds: float = 60.0, name: str = "trace") -> None:
        if isinstance(matrices, np.ndarray) and matrices.ndim == 3:
            items: list[TrafficMatrix] = [TrafficMatrix(m) for m in matrices]
        else:
            items = [
                m if isinstance(m, TrafficMatrix) else TrafficMatrix(m)
                for m in matrices
            ]
        if not items:
            raise ValueError("a traffic matrix sequence cannot be empty")
        num_nodes = items[0].num_nodes
        if any(m.num_nodes != num_nodes for m in items):
            raise ValueError("all demand matrices must have the same number of nodes")
        self._matrices = items
        self.interval_seconds = float(interval_seconds)
        self.name = name
        self._flat_cache: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Sequence protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._matrices)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return TrafficMatrixSequence(
                self._matrices[index],
                interval_seconds=self.interval_seconds,
                name=self.name,
            )
        return self._matrices[index]

    def __iter__(self) -> Iterator[TrafficMatrix]:
        return iter(self._matrices)

    @property
    def num_nodes(self) -> int:
        """Number of nodes in each matrix."""
        return self._matrices[0].num_nodes

    # ------------------------------------------------------------------ #
    # Array views
    # ------------------------------------------------------------------ #
    def as_array(self) -> np.ndarray:
        """Stack into a ``(T, n, n)`` array."""
        return np.stack([m.matrix for m in self._matrices])

    def flat_demands(self) -> np.ndarray:
        """Stack into a ``(T, n*(n-1))`` array in SD-pair order.

        The stacked array is cached (the matrices are immutable), so the
        evaluation engine's repeated replays of one test sequence do not
        re-stack the trace.  Treat the result as read-only.
        """
        if self._flat_cache is None:
            self._flat_cache = np.stack([m.flat() for m in self._matrices])
            self._flat_cache.setflags(write=False)
        return self._flat_cache

    # ------------------------------------------------------------------ #
    # Statistics used by FIGRET's loss and the evaluation
    # ------------------------------------------------------------------ #
    def pair_variance(self) -> np.ndarray:
        """Per-SD-pair variance of demand over time (sigma^2 of Equation 8)."""
        return self.flat_demands().var(axis=0)

    def pair_std(self) -> np.ndarray:
        """Per-SD-pair standard deviation of demand over time."""
        return self.flat_demands().std(axis=0)

    def pair_mean(self) -> np.ndarray:
        """Per-SD-pair mean demand over time."""
        return self.flat_demands().mean(axis=0)

    # ------------------------------------------------------------------ #
    # Splitting and windowing
    # ------------------------------------------------------------------ #
    def split(self, train_fraction: float = 0.75) -> tuple["TrafficMatrixSequence", "TrafficMatrixSequence"]:
        """Chronological train/test split (the paper trains on the first 75%)."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        cut = int(round(len(self) * train_fraction))
        cut = max(1, min(len(self) - 1, cut))
        return self[:cut], self[cut:]

    def segment(self, start_fraction: float, end_fraction: float) -> "TrafficMatrixSequence":
        """Return the sub-sequence between two fractional positions.

        Used by the natural-drift experiment (Table 4), e.g.
        ``segment(0.25, 0.5)`` trains on the second quarter of the trace.
        """
        if not 0.0 <= start_fraction < end_fraction <= 1.0:
            raise ValueError("need 0 <= start < end <= 1")
        start = int(round(len(self) * start_fraction))
        end = int(round(len(self) * end_fraction))
        end = max(end, start + 1)
        return self[start:end]

    def windows(self, history: int) -> Iterable[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(history_window, target)`` pairs of flattened demands.

        For every ``t >= history``, yields the stacked window
        ``(history, n*(n-1))`` of demands ``D_{t-H} .. D_{t-1}`` and the
        target demand vector ``D_t``.
        """
        if history < 1:
            raise ValueError("history must be at least 1")
        flat = self.flat_demands()
        for t in range(history, len(self)):
            yield flat[t - history : t], flat[t]

    def concatenate(self, other: "TrafficMatrixSequence") -> "TrafficMatrixSequence":
        """Append another sequence (same node count) after this one."""
        if other.num_nodes != self.num_nodes:
            raise ValueError("cannot concatenate sequences with different node counts")
        return TrafficMatrixSequence(
            list(self._matrices) + list(other._matrices),
            interval_seconds=self.interval_seconds,
            name=self.name,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"TrafficMatrixSequence(name={self.name!r}, length={len(self)}, "
            f"nodes={self.num_nodes})"
        )
