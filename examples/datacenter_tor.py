"""ToR-level data center scenario: where fine-grained robustness matters most.

Run with::

    python examples/datacenter_tor.py

ToR-level traffic is the most dynamic workload in the paper (Figure 4); this
is where FIGRET's advantage over DOTE is largest (Figure 5(b)).  The example
trains both schemes on a scaled-down Meta-like ToR cluster, compares severe
congestion events, and prints the per-pair sensitivity-versus-variance
breakdown behind Figure 8.
"""

from __future__ import annotations

import numpy as np

from repro import datasets
from repro.core import Dote, Figret, TrainingConfig
from repro.evaluation import compare_schemes, reporting
from repro.solvers import DesensitizationTE
from repro.te.sensitivity import max_sensitivity_per_pair


def main() -> None:
    scenario = datasets.load("meta_tor_db_small", seed=11, num_intervals=220)
    train, test = scenario.split()
    print(f"Scenario: {scenario.name} - {scenario.description}")
    print(
        f"Topology: {scenario.topology.num_nodes} ToRs, {scenario.topology.num_edges} links, "
        f"{scenario.paths.num_paths} candidate paths\n"
    )

    config = TrainingConfig(epochs=30, history_len=scenario.history_len, robustness_weight=0.2)
    figret = Figret(scenario.paths, config)
    dote = Dote(scenario.paths, config)
    des = DesensitizationTE(scenario.paths)
    results = compare_schemes([figret, dote, des], train, test, scenario.history_len)
    statistics = {name: result.statistics for name, result in results.items()}
    print(reporting.format_mlu_comparison(statistics, title="ToR-level cluster, normalised MLU"))

    figret_sc = statistics["FIGRET"].severe_congestion_fraction
    dote_sc = statistics["DOTE"].severe_congestion_fraction
    if dote_sc > 0:
        print(
            f"\nSevere congestion events (normalised MLU > 2): FIGRET {figret_sc * 100:.1f}% "
            f"vs DOTE {dote_sc * 100:.1f}% "
            f"({(1 - figret_sc / dote_sc) * 100:.0f}% fewer)"
        )

    # Figure 8 style analysis: sensitivity follows per-pair variance.
    variance = train.pair_variance()
    variance = variance / variance.max()
    flat = test.flat_demands()
    history = flat[: scenario.history_len]
    fig_sens = max_sensitivity_per_pair(scenario.paths, figret.configure(history), normalized=True)
    stable = variance < np.percentile(variance, 50)
    bursty = variance > np.percentile(variance, 90)
    print(
        "\nFIGRET mean max-sensitivity (Figure 8): "
        f"stable pairs {fig_sens[stable].mean():.3f} vs bursty pairs {fig_sens[bursty].mean():.3f}"
    )


if __name__ == "__main__":
    main()
