"""Streaming evaluation with a disk-persistent LP cache.

Run with::

    python examples/streaming_replay.py

The script replays a TE scheme over a trace *as a stream* -- the engine only
ever buffers ``history_len + chunk_size`` demand rows, which is how month-
long production traces replay without fitting in memory -- and persists the
omniscient-optimal LP results to disk.  A simulated second session then
reloads the cache and replays the whole trace without solving a single LP.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro import datasets
from repro.evaluation.engine import EvaluationEngine
from repro.solvers import DesensitizationTE, OptimalMLUCache


def main() -> None:
    scenario = datasets.load("meta_pod_db_small", seed=7, num_intervals=80)
    train, test = scenario.split()
    scheme = DesensitizationTE(scenario.paths)
    scheme.precompute(train)
    history_len = scenario.history_len
    chunk_size = 8
    cache_file = Path(tempfile.mkdtemp(prefix="repro-cache-")) / "optimal_mlus.jsonl"

    print(f"Scenario: {scenario.name}, {len(test)} test intervals")
    print(
        f"Streaming replay in chunks of {chunk_size} intervals "
        f"(buffering at most {history_len + chunk_size} demand rows)\n"
    )

    # --- Session 1: stream the trace, solving LPs cold, persisting on exit.
    start = time.perf_counter()
    with OptimalMLUCache(path=cache_file) as cache:
        engine = EvaluationEngine(cache=cache)
        result = engine.evaluate_streaming(
            scheme,
            (matrix.flat() for matrix in test),  # a true row stream
            history_len,
            chunk_size=chunk_size,
        )
        cold_seconds = time.perf_counter() - start
        print(
            f"Session 1: mean normalised MLU {result.statistics.mean:.3f}, "
            f"{cache.misses} LP solves in {cold_seconds:.2f}s; "
            f"cache persisted to {cache_file}"
        )

    # --- Session 2: a fresh cache object (think: a new benchmark process)
    # loads the store and the same replay performs zero omniscient solves.
    start = time.perf_counter()
    warm_cache = OptimalMLUCache(path=cache_file)
    engine = EvaluationEngine(cache=warm_cache)
    warm = engine.evaluate_streaming(
        scheme,
        (matrix.flat() for matrix in test),
        history_len,
        chunk_size=chunk_size,
    )
    warm_seconds = time.perf_counter() - start
    print(
        f"Session 2: loaded {warm_cache.loaded} cached entries, "
        f"{warm_cache.misses} cache misses, mean normalised MLU "
        f"{warm.statistics.mean:.3f} in {warm_seconds:.2f}s"
    )
    assert warm_cache.misses == 0
    print("Session 2 solved zero omniscient LPs -- the cold pass is skipped entirely.")


if __name__ == "__main__":
    main()
