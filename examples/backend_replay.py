"""Replaying a trace on a pluggable array backend.

Run with::

    python examples/backend_replay.py
    REPRO_BACKEND=python python examples/backend_replay.py

The replay hot path -- the neural forward pass, the batched MLU computation
and failure rerouting -- runs on a pluggable array backend (see
``repro.backend``).  The default ``numpy`` backend is bit-identical to the
classic engine; ``numpy32`` exercises the float32 code path GPU backends
use; ``torch`` / ``cupy`` are picked up automatically when installed (and
fall back to numpy with a warning when not).  LP normalisers always stay on
CPU/HiGHS behind the shared cache.

This script replays the same scheme on every locally available backend and
prints how far each one drifts from the float64 numpy reference -- the same
check the CI backend matrix enforces (bit-identical for numpy, ~1e-9 for
the pure-python reference, ~1e-6 for float32 backends).
"""

from __future__ import annotations

import time

import numpy as np

from repro import datasets
from repro.backend import active_backend, get_backend
from repro.evaluation.engine import EvaluationEngine
from repro.solvers import DesensitizationTE


def main() -> None:
    scenario = datasets.load("meta_pod_db_small", seed=7, num_intervals=60)
    train, test = scenario.split()
    scheme = DesensitizationTE(scenario.paths)
    scheme.precompute(train)
    history_len = scenario.history_len

    print(f"Scenario: {scenario.name}, {len(test)} test intervals")
    print(f"Active backend (REPRO_BACKEND or default): {active_backend().name}\n")

    # The float64 numpy replay is the reference everything is pinned to.
    reference_engine = EvaluationEngine(backend="numpy")
    reference = reference_engine.evaluate_scheme(scheme, test, history_len)

    for name in ("numpy", "numpy32", "python", "torch", "cupy"):
        backend = get_backend(name)  # missing optional backends warn + fall back
        engine = EvaluationEngine(cache=reference_engine.cache, backend=backend)
        start = time.perf_counter()
        result = engine.evaluate_scheme(scheme, test, history_len)
        elapsed = time.perf_counter() - start
        drift = float(
            np.max(np.abs(result.normalized_mlus - reference.normalized_mlus))
        )
        label = name if backend.name == name else f"{name} -> {backend.name}"
        print(
            f"{label:>16}: replay {elapsed * 1e3:7.1f} ms, "
            f"max drift vs numpy {drift:.2e} "
            f"(tolerance {backend.tolerance:.0e})"
        )
        assert drift <= max(backend.tolerance, 1e-12), name

    print("\nEvery backend matches the reference within its tolerance.")


if __name__ == "__main__":
    main()
