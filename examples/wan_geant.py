"""WAN scenario: FIGRET on a GEANT-like topology with bursty WAN traffic.

Run with::

    python examples/wan_geant.py

This example mirrors the paper's WAN evaluation: a 23-node GEANT-like
backbone carrying mostly-stable traffic with occasional unexpected bursts.
It also demonstrates the traffic-analysis utilities behind Figures 2 and 4
(per-pair variance spread and cosine-similarity burstiness profile).
"""

from __future__ import annotations

import numpy as np

from repro import datasets
from repro.core import Dote, Figret, TrainingConfig
from repro.evaluation import compare_schemes, reporting
from repro.solvers import DesensitizationTE, PredictionBasedTE
from repro.traffic import stats


def main() -> None:
    scenario = datasets.load("geant_small", seed=21, num_intervals=260)
    train, test = scenario.split()
    print(f"Scenario: {scenario.name} - {scenario.description}\n")

    # Traffic analysis (Figures 2 and 4).
    variance = stats.normalized_variance_matrix(scenario.traffic)
    profile = stats.burstiness_summary(scenario.traffic, history=12)
    print("Per-pair variance spread (Figure 2): "
          f"median={np.median(variance[variance > 0]):.4f}, max=1.0000")
    print(
        "Cosine-similarity profile (Figure 4): "
        f"p05={profile['p05']:.3f}, p50={profile['p50']:.3f}, p95={profile['p95']:.3f}\n"
    )

    config = TrainingConfig(epochs=60, history_len=scenario.history_len, robustness_weight=0.1)
    schemes = [
        Figret(scenario.paths, config),
        Dote(scenario.paths, config),
        DesensitizationTE(scenario.paths),
        PredictionBasedTE(scenario.paths),
    ]
    results = compare_schemes(schemes, train, test, scenario.history_len)
    statistics = {name: result.statistics for name, result in results.items()}
    print(reporting.format_mlu_comparison(statistics, title="GEANT-like WAN, normalised MLU"))


if __name__ == "__main__":
    main()
