"""Fine-grained robustness without deep learning (Appendix C).

Run with::

    python examples/heuristic_hedging.py

The paper shows that even simple heuristic per-pair sensitivity constraints
(linear or piecewise functions of each pair's traffic variance) improve on
Google Jupiter's fixed-threshold hedging.  This example reproduces that
comparison on a PoD-level scenario and contrasts it with FIGRET, which learns
the constraint structure end to end.
"""

from __future__ import annotations

from repro import datasets
from repro.core import Figret, TrainingConfig
from repro.evaluation import compare_schemes, reporting
from repro.solvers import DesensitizationTE, LinearSensitivityTE, PiecewiseSensitivityTE


def main() -> None:
    scenario = datasets.load("meta_pod_db_small", seed=13, num_intervals=220)
    train, test = scenario.split()
    print(f"Scenario: {scenario.name} - {scenario.description}\n")

    schemes = [
        DesensitizationTE(scenario.paths),                      # fixed threshold (Jupiter)
        LinearSensitivityTE(scenario.paths),                    # Appendix C.1, strategy "Both"
        PiecewiseSensitivityTE(scenario.paths, breakpoint=0.8), # Appendix C.2
        Figret(scenario.paths, TrainingConfig(epochs=30, history_len=scenario.history_len)),
    ]
    results = compare_schemes(schemes, train, test, scenario.history_len)
    statistics = {name: result.statistics for name, result in results.items()}
    print(
        reporting.format_mlu_comparison(
            statistics,
            title="Fixed vs heuristic fine-grained vs learned robustness (normalised MLU)",
        )
    )


if __name__ == "__main__":
    main()
