"""The study service: a warm daemon serving studies to many clients.

Run with::

    python examples/study_service.py

Every ``python -m repro.study`` invocation pays full startup: a cold LP
cache, rebuilt scenarios, retrained schemes.  The study service moves the
runner into a long-lived daemon instead -- a Unix socket, a FIFO job queue,
and one process-wide warm LP cache + scenario cache + trained-scheme store
shared by every job any client submits.  This example boots the daemon
in-process, then plays three tenants against it:

1. the first client pays the cold cost for a small perturbation grid;
2. a second client submits a *superset* grid and only pays for the new
   cells -- the overlap is served from warm state;
3. a third client re-submits the same grid and gets bit-identical records
   for free: zero LP solves, zero trainings.

In production the daemon runs standalone and clients attach from other
processes -- the shell equivalent of this script::

    python -m repro.study serve  --socket /tmp/repro.sock &
    python -m repro.study submit grid.json --socket /tmp/repro.sock
    python -m repro.study status --socket /tmp/repro.sock
    python -m repro.study cancel job-0001 --socket /tmp/repro.sock

``submit --checkpoint NAME`` makes a job cancellable mid-grid and
resumable (``submit --resume``) -- even across a daemon restart, since
checkpoints live in the daemon's spool directory.
"""

from __future__ import annotations

import json
import tempfile
import threading
from pathlib import Path

from repro.study import StudyClient, StudyServer

BASE_GRID = {
    "scenario": {
        "name": "service-demo",
        "topology": {"kind": "fully_connected", "num_nodes": 5, "capacity": 40.0},
        "traffic": {"kind": "datacenter", "level": "pod", "num_intervals": 40},
        "history_len": 4,
    },
    "scheme": {"kind": "figret", "epochs": 8, "history_len": 4,
               "robustness_weight": 0.1, "seed": 0},
    "perturbation": {"sweep": [{"kind": "none"}, {"kind": "fluctuation", "alpha": 1.0}]},
    "max_intervals": 10,
}

SUPERSET_GRID = {
    **BASE_GRID,
    "perturbation": {
        "sweep": BASE_GRID["perturbation"]["sweep"]
        + [{"kind": "fluctuation", "alpha": 2.0}]
    },
}


def main() -> None:
    # AF_UNIX socket paths are short (~107 bytes), so use a short temp dir.
    root = Path(tempfile.mkdtemp(prefix="repro-svc-"))
    server = StudyServer(root / "demo.sock")
    ready = threading.Event()
    threading.Thread(target=server.serve_forever, kwargs={"ready": ready},
                     daemon=True).start()
    ready.wait(10)
    print(f"daemon up on {server.socket_path}\n")

    # --- tenant 1: pays the cold cost ---------------------------------- #
    first = StudyClient(server.socket_path).submit(BASE_GRID)
    print(f"tenant 1 ({first.job}): {len(first.results)} cells, "
          f"{first.summary['lp_solves']} LP solves, "
          f"{first.summary['trainings']} training")

    # --- tenant 2: superset grid, pays only for the new cells ---------- #
    second = StudyClient(server.socket_path).submit(SUPERSET_GRID)
    print(f"tenant 2 ({second.job}): {len(second.results)} cells, "
          f"{second.summary['lp_solves']} LP solves (only the new cells), "
          f"{second.summary['trainings']} trainings")
    assert second.summary["trainings"] == 0

    # --- tenant 3: identical grid, fully served from warm state -------- #
    third = StudyClient(server.socket_path).submit(SUPERSET_GRID)
    print(f"tenant 3 ({third.job}): {len(third.results)} cells, "
          f"{third.summary['lp_solves']} LP solves, "
          f"{third.summary['trainings']} trainings -- free")
    assert third.summary["lp_solves"] == 0 and third.summary["trainings"] == 0
    identical = json.dumps(
        [r.to_dict(include_series=True) for r in third.results], sort_keys=True
    ) == json.dumps(
        [r.to_dict(include_series=True) for r in second.results], sort_keys=True
    )
    print(f"tenant 3 records bit-identical to tenant 2's: {identical}")
    assert identical

    status = StudyClient(server.socket_path).status()
    warm = status["warm"]
    print(f"\nwarm state after 3 tenants: {warm['lp_cache_entries']} LP cache "
          f"entries, {warm['trained_schemes']} trained scheme(s), "
          f"{warm['scenarios']} scenario(s)")
    print(third.results.to_table(title="Shared grid (as tenant 3 received it)"))

    StudyClient(server.socket_path).shutdown()
    print("\ndaemon stopped")


if __name__ == "__main__":
    main()
