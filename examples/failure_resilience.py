"""Link-failure resilience (the paper's Figure 7 scenario).

Run with::

    python examples/failure_resilience.py

Random physical links fail; every scheme's configuration (computed before the
failure) reroutes traffic from failed paths onto surviving paths as described
in Section 4.5.  MLUs are normalised against an oracle that knows both the
future demand and the failures.
"""

from __future__ import annotations

import numpy as np

from repro import datasets
from repro.core import Dote, Figret, TrainingConfig
from repro.evaluation import failure_experiment
from repro.evaluation.reporting import format_table
from repro.solvers import DesensitizationTE, FaultAwareDesensitizationTE


def main() -> None:
    scenario = datasets.load("geant_small", seed=5, num_intervals=160)
    train, test = scenario.split()
    config = TrainingConfig(epochs=25, history_len=scenario.history_len, robustness_weight=0.1)

    figret = Figret(scenario.paths, config)
    dote = Dote(scenario.paths, config)
    des = DesensitizationTE(scenario.paths)
    fa_des = FaultAwareDesensitizationTE(scenario.paths)
    for scheme in (figret, dote, des, fa_des):
        scheme.precompute(train)

    rows = []
    short_test = test[: scenario.history_len + 6]
    for num_failures in (1, 2, 3):
        results = failure_experiment(
            [figret, dote, des, fa_des],
            short_test,
            scenario.history_len,
            num_failures=num_failures,
            num_trials=3,
            seed=num_failures,
        )
        row = [str(num_failures)]
        for name in ("FIGRET", "DOTE", "Des TE", "FA Des TE"):
            row.append(f"{np.mean(results[name]):.3f}")
        rows.append(row)

    print(
        format_table(
            ["#failures", "FIGRET", "DOTE", "Des TE", "FA Des TE"],
            rows,
            title="Mean normalised MLU under random link failures (GEANT-like)",
        )
    )


if __name__ == "__main__":
    main()
