"""Quickstart: train FIGRET on a small data center scenario and evaluate it.

Run with::

    python examples/quickstart.py

The script loads a bundled scenario (a Meta-like PoD-level cluster), trains
FIGRET and the DOTE baseline on the first 75% of the trace, evaluates both on
the remaining 25%, and prints the normalised-MLU comparison that mirrors the
paper's Figure 5.
"""

from __future__ import annotations

from repro import datasets
from repro.core import Dote, Figret, TrainingConfig
from repro.evaluation import compare_schemes, reporting
from repro.solvers import DesensitizationTE, PredictionBasedTE


def main() -> None:
    scenario = datasets.load("meta_pod_db_small", seed=7, num_intervals=240)
    train, test = scenario.split()
    print(f"Scenario: {scenario.name} - {scenario.description}")
    print(
        f"Topology: {scenario.topology.num_nodes} nodes, "
        f"{scenario.topology.num_edges} edges, "
        f"{scenario.paths.num_paths} candidate paths"
    )
    print(f"Trace: {len(scenario.traffic)} intervals ({len(train)} train / {len(test)} test)\n")

    config = TrainingConfig(epochs=30, history_len=scenario.history_len, robustness_weight=0.1)
    schemes = [
        Figret(scenario.paths, config),
        Dote(scenario.paths, config),
        DesensitizationTE(scenario.paths),
        PredictionBasedTE(scenario.paths),
    ]
    results = compare_schemes(schemes, train, test, scenario.history_len)
    statistics = {name: result.statistics for name, result in results.items()}
    print(reporting.format_mlu_comparison(statistics, title="Normalised MLU (1.0 = omniscient optimum)"))

    figret_stats = statistics["FIGRET"]
    des_stats = statistics["Des TE"]
    reduction = 1.0 - figret_stats.mean / des_stats.mean
    print(
        f"\nFIGRET reduces the average MLU by {reduction * 100:.1f}% versus the "
        "Desensitization (Google Jupiter hedging) baseline on this scenario."
    )


if __name__ == "__main__":
    main()
