"""Declarative studies: an experiment grid from one plain-dict spec.

Run with::

    python examples/study_grid.py

The script registers a custom scenario (workloads are data: a config dict
plus a ``register_scenario`` name), declares a scenarios x schemes x
perturbations grid with ``sweep`` axes, runs it through ``Study`` -- which
builds each scenario once, trains each scheme spec once, and serves every
omniscient normaliser from one shared LP cache across all cells -- and
prints the uniform result records.  The ``ResultSet`` round-trips through
JSON with full spec provenance.
"""

from __future__ import annotations

from repro.datasets import from_config, register_scenario
from repro.solvers import count_lp_solves
from repro.study import ResultSet, Study, sweep


@register_scenario("tutorial_pod_mesh")
def _build_tutorial_mesh(seed, num_intervals):
    """A Meta-like 5-pod full mesh, declared entirely as config."""
    return from_config(
        {
            "name": "tutorial_pod_mesh",
            "topology": {"kind": "fully_connected", "num_nodes": 5, "capacity": 40.0},
            "traffic": {
                "kind": "datacenter",
                "level": "pod",
                "seed": seed,
                "num_intervals": num_intervals or 120,
            },
            "history_len": 6,
            "description": "tutorial scenario registered from a config dict",
        }
    )


#: An inline scenario: no registration needed, the config dict IS the reference.
INLINE_STAR_WAN = {
    "name": "tutorial_star_wan",
    "topology": {"kind": "star", "num_leaves": 5, "capacity": 8.0},
    "traffic": {"kind": "gravity", "seed": 11, "num_intervals": 90},
    "history_len": 6,
}


def main() -> None:
    spec = {
        "scenario": sweep({"name": "tutorial_pod_mesh", "seed": 3}, INLINE_STAR_WAN),
        "scheme": sweep(
            {"kind": "figret", "epochs": 10, "history_len": 6, "robustness_weight": 0.1,
             "seed": 0},
            {"kind": "dote", "epochs": 10, "history_len": 6, "seed": 0},
            {"kind": "pred_te", "label": "Pred TE"},
        ),
        "perturbation": sweep(
            {"kind": "none"},
            {"kind": "fluctuation", "alpha": 1.0, "seed": 1},
        ),
        "max_intervals": 15,
    }

    study = Study(spec)
    print(f"Spec expanded to {len(study)} experiment cells "
          "(2 scenarios x 3 schemes x 2 perturbations).")
    with count_lp_solves() as tally:
        results = study.run()
    print(f"Executed with {tally.count} LP solves (normalisers shared across "
          "cells through the engine cache).\n")

    print(results.to_table(title="Normalised MLU across the grid (1.0 = omniscient optimum)"))

    # Uniform records filter by axis ...
    fluct = results.filter(experiment="fluctuation", scenario="tutorial_pod_mesh")
    worst = max(fluct, key=lambda record: record.metrics["average_decline"])
    print(f"\nLargest fluctuation decline on tutorial_pod_mesh: {worst.scheme} "
          f"({worst.metrics['average_decline'] * 100:+.1f}% mean MLU)")

    # ... and round-trip through JSON with their spec provenance intact.
    text = results.to_json()
    restored = ResultSet.from_json(text)
    record = restored[0]
    assert record.spec == results[0].spec
    print(f"\nJSON round-trip: {len(restored)} records, first cell provenance: "
          f"scheme={record.spec['scheme']['kind']!r}, "
          f"perturbation={record.spec['perturbation']['kind']!r}")


if __name__ == "__main__":
    main()
