"""Suites and the results warehouse: a whole evaluation campaign as data.

Run with::

    python examples/suite_warehouse.py

One JSON-able descriptor declares two studies, a seeds axis (each seed
regenerates the synthetic traffic) and a repetition count; ``Suite`` expands
it into experiment cells with ``suite`` / ``study`` / ``seed`` /
``repetition`` provenance stamped into every record, and runs them with a
``ResultWarehouse`` attached -- a durable, append-only JSONL store that
accumulates finished cells across sessions.  The warehouse then answers the
campaign's questions directly: filtered queries, per-group mean +/- 95% CI
over the seed axis with percentile columns recomputed from the pooled
stored series, and a flat CSV export for notebooks.

The same flow runs from the shell::

    python -m repro.study suite suite.json --warehouse wh.jsonl --checkpoint run.ckpt
    python -m repro.study query wh.jsonl --study replay --group-by scenario,scheme
    python -m repro.study export wh.jsonl results.csv
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.study import ResultWarehouse, Suite

#: The whole campaign, as one plain dict (this could be a JSON file).
DESCRIPTOR = {
    "name": "tutorial-campaign",
    "annotations": {"purpose": "suite-example"},
    "seeds": [1, 2, 3],
    "repetitions": 2,
    "studies": [
        {"name": "replay", "spec": {
            "scenario": {
                "name": "tutorial_mesh",
                "topology": {"kind": "fully_connected", "num_nodes": 5, "capacity": 40.0},
                "traffic": {"kind": "datacenter", "level": "pod", "num_intervals": 60},
                "history_len": 4,
            },
            "scheme": {"sweep": [
                {"kind": "figret", "epochs": 8, "history_len": 4,
                 "robustness_weight": 0.1, "seed": 0},
                {"kind": "dote", "epochs": 8, "history_len": 4, "seed": 0},
            ]},
            "max_intervals": 10,
        }},
        {"name": "fluctuation", "spec": {
            "scenario": {
                "name": "tutorial_mesh",
                "topology": {"kind": "fully_connected", "num_nodes": 5, "capacity": 40.0},
                "traffic": {"kind": "datacenter", "level": "pod", "num_intervals": 60},
                "history_len": 4,
            },
            "scheme": {"kind": "figret", "epochs": 8, "history_len": 4,
                       "robustness_weight": 0.1, "seed": 0},
            "perturbation": {"kind": "fluctuation", "alpha": 1.0},
            "max_intervals": 10,
        }},
    ],
}


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_suite_"))
    warehouse_path = workdir / "warehouse.jsonl"

    suite = Suite(DESCRIPTOR)
    print(f"Suite {suite.name!r} expanded to {len(suite)} cells "
          "((2 + 1) study cells x 3 seeds x 2 repetitions).")

    # Every finished cell is appended to the warehouse as it completes; a
    # crashed run resumed from a checkpoint reconciles the store instead of
    # duplicating records.
    results = suite.run(warehouse=warehouse_path, checkpoint=workdir / "run.ckpt")
    print(f"Warehoused {len(results)} records in {warehouse_path}.\n")

    warehouse = ResultWarehouse(warehouse_path)

    # Aggregate over the suite axes: the seed/repetition spread becomes a
    # mean +/- 95% CI per (scenario, scheme, experiment) group, and the
    # percentile columns are recomputed from the pooled stored series.
    print(warehouse.aggregate_table(
        title="Campaign summary (mean +/- ci95 over 3 seeds x 2 repetitions)"
    ))

    # Queries slice by labels and provenance tags alike.
    replay_figret = warehouse.query(study="replay", scheme="FIGRET")
    seeds = sorted({record.tags["seed"] for record in replay_figret})
    print(f"\nFIGRET replay records: {len(replay_figret)} across seeds {seeds}")

    per_seed = warehouse.aggregate(replay_figret, group_by=("scheme", "seed"))
    for row in per_seed:
        print(f"  seed {row['seed']}: mean normalised MLU {row['mean']:.3f} "
              f"(n={row['n']})")

    # One flat row per record, ready for pandas / gnuplot.
    csv_path = workdir / "campaign.csv"
    count = warehouse.export_csv(csv_path)
    print(f"\nExported {count} rows to {csv_path}.")


if __name__ == "__main__":
    main()
