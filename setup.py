"""Setuptools shim.

The offline environment used for this reproduction lacks the ``wheel``
package, so ``pip install -e .`` (which needs to build an editable wheel)
cannot run.  ``python setup.py develop`` performs the equivalent editable
install without building a wheel.  All project metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
