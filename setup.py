"""Setuptools shim.

The offline environment used for this reproduction lacks the ``wheel``
package, so ``pip install -e .`` (which needs to build an editable wheel)
cannot run.  ``python setup.py develop`` performs the equivalent editable
install without building a wheel.  All project metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup(
    extras_require={
        # Standalone HiGHS bindings for the persistent warm-started LP
        # backend (REPRO_LP_BACKEND=highs).  Optional: without them the
        # backend layer uses the copy scipy >= 1.15 vendors, and falls
        # back to scipy's linprog (with one warning) if neither imports.
        "highs": ["highspy"],
    }
)
