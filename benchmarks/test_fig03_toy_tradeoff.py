"""Figure 3: the three-node trade-off example, reproduced exactly.

The paper walks through three TE schemes on a triangle with capacity-2 links
and demands A->B, A->C, B->C.  This benchmark recomputes every number quoted
in Section 2.3 and asserts them to three decimal places.
"""

from __future__ import annotations

import numpy as np
import pytest

import bench_common as common  # noqa: F401  (keeps the import path consistent)
from repro.evaluation.reporting import format_table
from repro.paths.path_set import PathSet
from repro.te.config import TEConfiguration
from repro.te.mlu import max_link_utilization
from repro.topology.generators import triangle


def _demand(a_b: float, a_c: float, b_c: float) -> np.ndarray:
    demand = np.zeros((3, 3))
    demand[0, 1], demand[0, 2], demand[1, 2] = a_b, a_c, b_c
    return demand


@pytest.mark.paper("Figure 3")
def test_fig03_three_te_schemes(benchmark):
    topology = triangle(capacity=2.0)
    paths = PathSet(
        topology,
        {
            pair: [[pair[0], pair[1]], [pair[0], 3 - pair[0] - pair[1], pair[1]]]
            for pair in topology.sd_pairs()
        },
    )

    # Scheme 1: direct paths only.  Scheme 2: 50/50 split everywhere.
    # Scheme 3: direct for A->B and A->C, 62.5%/37.5% split for B->C.
    scheme1 = TEConfiguration.shortest_path(paths)
    scheme2 = TEConfiguration.uniform(paths)
    ratios3 = TEConfiguration.shortest_path(paths).split_ratios.copy()
    bc_indices = paths.path_indices_for(1, 2)
    ratios3[bc_indices[0]] = 0.625
    ratios3[bc_indices[1]] = 0.375
    scheme3 = TEConfiguration(paths, ratios3, normalize=False)

    situations = {
        "normal": _demand(1, 1, 1),
        "burst A->B": _demand(4, 1, 1),
        "burst A->C": _demand(1, 4, 1),
        "burst B->C": _demand(1, 1, 4),
    }

    def run():
        table = {}
        for label, demand in situations.items():
            dv = paths.demand_vector(demand)
            table[label] = tuple(
                max_link_utilization(paths, scheme, dv)
                for scheme in (scheme1, scheme2, scheme3)
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[label, *(f"{v:.4f}" for v in values)] for label, values in table.items()]
    print()
    print(format_table(["situation", "TE scheme 1", "TE scheme 2", "TE scheme 3"], rows,
                       title="Figure 3: MLU of the three example TE schemes"))

    # Values quoted in Section 2.3.  Note: the paper's arithmetic treats each
    # link as a single undirected capacity-2 resource shared by both
    # directions; this library models directed edges (as in Table 1's edge
    # counts), so the one number that depends on opposite-direction sharing --
    # scheme 3 under the A->B burst -- evaluates to 2.0 here instead of the
    # paper's 2.1875.  Every qualitative relationship between the schemes is
    # unchanged (see EXPERIMENTS.md).
    assert table["normal"][0] == pytest.approx(0.5)
    assert table["burst A->B"][0] == pytest.approx(2.0)
    assert table["normal"][1] == pytest.approx(0.75)
    assert table["burst A->B"][1] == pytest.approx(1.5)
    assert table["normal"][2] == pytest.approx(0.6875)
    assert table["burst A->B"][2] == pytest.approx(2.0)
    assert table["burst B->C"][2] == pytest.approx(1.25)
    # The trade-off the example illustrates:
    #   scheme 3 beats scheme 2 in the normal case and under the B->C burst,
    #   but is less robust than scheme 2 under the A->B burst.
    assert table["normal"][2] < table["normal"][1]
    assert table["burst B->C"][2] < table["burst B->C"][1]
    assert table["burst A->B"][2] > table["burst A->B"][1]
    benchmark.extra_info["table"] = {k: list(v) for k, v in table.items()}
