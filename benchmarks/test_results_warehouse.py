"""Results-warehouse throughput: durable appends, loads, and aggregation.

Every warehouse append is a flushed + fsynced line followed by a directory
fsync -- the durability contract that makes a suite survive SIGKILL at any
instant -- so append throughput is bounded by the storage stack, not by
JSON encoding.  This bench pins that the bookkeeping around the fsyncs
stays cheap:

* ``append_records_per_second`` -- sustained :meth:`ResultWarehouse.extend`
  rate for realistic records (7 metrics + a 32-sample stored series), the
  rate a finishing study writes cells at.  The in-bench floor is a very
  conservative 25/s (tmpfs/SSD boxes measure thousands); a real study cell
  takes >> 40 ms to *compute*, so appends stay invisible until the rate
  falls below it.
* ``load_records_per_second`` / ``query_seconds`` /
  ``aggregate_seconds`` / ``export_csv_seconds`` -- the analysis side over
  the same store: one full parse, a tag-filtered query, the grouped
  mean +/- CI + pooled-percentile aggregation, and the flat CSV export.

The committed ``BENCH_results_warehouse.json`` record is what CI's
benchmark-regression job enforces its append floor from.
"""

from __future__ import annotations

import time

import numpy as np

import bench_common as common
from repro.study import ResultWarehouse, StudyResult

#: Records per timed pass -- enough to amortise interpreter start noise
#: while keeping the fsync-bound pass under a few seconds on slow disks.
NUM_RECORDS = 400
#: Stored normalized-MLU samples per record (a fig05-sized eval slice).
SERIES_SAMPLES = 32
#: In-bench floor on sustained durable appends (records/second).
APPEND_FLOOR = 25.0


def _synthetic_records(count: int) -> list[StudyResult]:
    rng = np.random.default_rng(common.BENCH_SEED)
    records = []
    for index in range(count):
        series = 1.0 + rng.random(SERIES_SAMPLES)
        records.append(
            StudyResult(
                scenario=f"scenario_{index % 8}",
                scheme=("FIGRET", "DOTE", "TEAL")[index % 3],
                experiment="replay",
                spec={
                    "scenario": f"scenario_{index % 8}",
                    "max_intervals": SERIES_SAMPLES,
                    "tags": {
                        "suite": "bench",
                        "study": f"study_{index % 4}",
                        "seed": index % 5,
                        "repetition": index % 2,
                    },
                },
                metrics={
                    "mean": float(series.mean()),
                    "p90": float(np.percentile(series, 90)),
                    "p99": float(np.percentile(series, 99)),
                    "worst": float(series.max()),
                    "severe_congestion_fraction": float((series > 2.0).mean()),
                    "average_decline": 0.0,
                    "p90_decline": 0.0,
                },
                series=series,
            )
        )
    return records


def test_warehouse_throughput(tmp_path):
    records = _synthetic_records(NUM_RECORDS)
    store = ResultWarehouse(tmp_path / "bench_warehouse.jsonl")

    start = time.perf_counter()
    store.extend(records)
    append_seconds = time.perf_counter() - start
    append_rate = NUM_RECORDS / append_seconds

    start = time.perf_counter()
    loaded = store.results()
    load_seconds = time.perf_counter() - start
    assert len(loaded) == NUM_RECORDS
    load_rate = NUM_RECORDS / load_seconds

    start = time.perf_counter()
    sliced = store.query(scheme="FIGRET", seed=[0, 1])
    query_seconds = time.perf_counter() - start
    assert len(sliced) > 0

    start = time.perf_counter()
    rows = store.aggregate(group_by=("scenario", "scheme"))
    aggregate_seconds = time.perf_counter() - start
    assert len(rows) == 24  # 8 scenarios x 3 schemes

    start = time.perf_counter()
    exported = store.export_csv(tmp_path / "bench_export.csv")
    export_seconds = time.perf_counter() - start
    assert exported == NUM_RECORDS

    print(
        f"warehouse: {append_rate:.0f} durable appends/s, "
        f"{load_rate:.0f} loads/s, aggregate {aggregate_seconds * 1e3:.1f} ms, "
        f"export {export_seconds * 1e3:.1f} ms ({NUM_RECORDS} records)"
    )
    assert append_rate >= APPEND_FLOOR, (
        f"durable append rate {append_rate:.1f}/s fell below the "
        f"{APPEND_FLOOR:.0f}/s floor: warehouse appends would now be visible "
        "next to real cell runtimes"
    )

    common.write_bench_record(
        "results_warehouse",
        num_records=NUM_RECORDS,
        series_samples=SERIES_SAMPLES,
        append_records_per_second=append_rate,
        load_records_per_second=load_rate,
        query_seconds=query_seconds,
        aggregate_seconds=aggregate_seconds,
        export_csv_seconds=export_seconds,
    )
