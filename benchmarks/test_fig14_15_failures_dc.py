"""Figures 14 and 15 (Appendix E): link failures on pFabric and ToR-level Meta DB.

Same protocol as Figure 7 but on the data center scenarios.  On the highly
dynamic ToR-level traffic even the fault-aware hedging baseline struggles,
while FIGRET remains competitive.
"""

from __future__ import annotations

import numpy as np
import pytest

import bench_common as common
from repro.evaluation import failure_experiment
from repro.evaluation.reporting import format_table
from repro.solvers import DesensitizationTE, FaultAwareDesensitizationTE


@pytest.mark.paper("Figures 14 and 15")
@pytest.mark.parametrize(
    "scenario_name,robustness,epochs",
    [("pfabric_small", 0.15, 35), ("meta_tor_db_small", 0.3, 35)],
)
def test_fig14_15_failures_data_centers(benchmark, scenario_name, robustness, epochs):
    scenario = common.get_scenario(scenario_name)
    figret = common.trained_scheme("figret", scenario_name, robustness, epochs)
    dote = common.trained_scheme("dote", scenario_name, 0.0, epochs)
    des = DesensitizationTE(scenario.paths)
    fa_des = FaultAwareDesensitizationTE(scenario.paths)
    test = common.test_slice(scenario, 5)

    def run():
        outcome = {}
        for num_failures in (1, 2, 3):
            results = failure_experiment(
                [figret, dote, des, fa_des],
                test,
                scenario.history_len,
                num_failures=num_failures,
                num_trials=2,
                seed=200 + num_failures,
            )
            outcome[num_failures] = {name: float(np.mean(series)) for name, series in results.items()}
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [str(k), f"{v['FIGRET']:.3f}", f"{v['DOTE']:.3f}", f"{v['Des TE']:.3f}", f"{v['FA Des TE']:.3f}"]
        for k, v in outcome.items()
    ]
    print()
    print(format_table(
        ["#failures", "FIGRET", "DOTE", "Des TE", "FA Des TE"],
        rows,
        title=f"Figures 14/15 ({scenario_name}): mean normalised MLU under link failures",
    ))
    benchmark.extra_info["results"] = outcome

    for stats in outcome.values():
        assert all(np.isfinite(list(stats.values())))
        assert stats["FIGRET"] >= 1.0 - 1e-6
