"""Figures 14 and 15 (Appendix E): link failures on pFabric and ToR-level Meta DB.

Same protocol as Figure 7 but on the data center scenarios.  On the highly
dynamic ToR-level traffic even the fault-aware hedging baseline struggles,
while FIGRET remains competitive.

Each panel is one declarative study grid -- scheme axis x failure-count axis
via ``bench_common.run_study`` -- mirroring the ported Figure 7, with the
failure oracle LP-cached across cells (same seed => same failure patterns, so
the scheme axis adds zero oracle solves).
"""

from __future__ import annotations

import numpy as np
import pytest

import bench_common as common
from repro.evaluation.reporting import format_table
from repro.study import sweep


@pytest.mark.paper("Figures 14 and 15")
@pytest.mark.parametrize(
    "scenario_name,robustness,epochs",
    [("pfabric_small", 0.15, 35), ("meta_tor_db_small", 0.3, 35)],
)
def test_fig14_15_failures_data_centers(benchmark, scenario_name, robustness, epochs):
    schemes = [
        common.scheme_spec("figret", scenario_name, robustness, epochs),
        common.scheme_spec("dote", scenario_name, 0.0, epochs),
        {"kind": "des_te"},
        {"kind": "fa_des_te"},
    ]
    spec = {
        "scenario": common.scenario_spec(scenario_name),
        "scheme": sweep(*schemes),
        "perturbation": sweep(
            *[
                {"kind": "failure", "num_failures": k, "num_trials": 2, "seed": 200 + k}
                for k in (1, 2, 3)
            ]
        ),
        "max_intervals": 5,
    }

    def run():
        results = common.run_study(spec)
        outcome = {}
        for record in results:
            num_failures = record.spec["perturbation"]["num_failures"]
            outcome.setdefault(num_failures, {})[record.scheme] = float(
                np.mean(record.series)
            )
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [str(k), f"{v['FIGRET']:.3f}", f"{v['DOTE']:.3f}", f"{v['Des TE']:.3f}", f"{v['FA Des TE']:.3f}"]
        for k, v in sorted(outcome.items())
    ]
    print()
    print(format_table(
        ["#failures", "FIGRET", "DOTE", "Des TE", "FA Des TE"],
        rows,
        title=f"Figures 14/15 ({scenario_name}): mean normalised MLU under link failures",
    ))
    benchmark.extra_info["results"] = outcome

    for stats in outcome.values():
        assert all(np.isfinite(list(stats.values())))
        assert stats["FIGRET"] >= 1.0 - 1e-6
