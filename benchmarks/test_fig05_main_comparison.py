"""Figure 5: the headline comparison of FIGRET against every baseline.

Four sub-benchmarks mirror the paper's four panels:

* (a) GEANT and pFabric (with Oblivious / COPE, which are only feasible on
  small topologies);
* (b) ToR-level Meta DB and WEB clusters (the most dynamic traffic, where
  FIGRET's advantage over DOTE is largest);
* (c) PoD-level Meta DB and WEB clusters;
* (d) Cogentco and UsCarrier with stable gravity traffic (every scheme close
  to optimal).

Every reported MLU is normalised by the omniscient optimum of the same
demand matrix.  The expected *shape*: FIGRET's mean is the lowest (or tied
with DOTE), FIGRET has fewer severe-congestion events than DOTE on ToR
traffic, Des TE / Pred TE / TEAL-like / Oblivious trail behind, and panel (d)
shows everything near 1 with no peaks.
"""

from __future__ import annotations

import pytest

import bench_common as common
from repro.evaluation.reporting import format_table
from repro.study import sweep


HEADERS = ["scheme", "mean", "p50", "p90", "p99", "worst", "severe>2"]


def _evaluate_panel(scenario_name, robustness_weight, epochs, include_oblivious=False,
                    include_teal=False):
    """One Figure-5 panel as a declarative study: a scheme sweep over one scenario."""
    schemes = [
        common.scheme_spec("figret", scenario_name, robustness_weight, epochs),
        common.scheme_spec("dote", scenario_name, 0.0, epochs),
        {"kind": "des_te"},
        {"kind": "pred_te", "label": "Pred TE"},
    ]
    if include_teal:
        schemes.append(common.scheme_spec("teal", scenario_name, 0.0, epochs))
    if include_oblivious:
        schemes.extend([{"kind": "oblivious"}, {"kind": "cope", "prediction_set_size": 4}])

    results = common.run_study(
        {
            "scenario": common.scenario_spec(scenario_name),
            "scheme": sweep(*schemes),
            "max_intervals": common.MAX_EVAL_INTERVALS,
        }
    )
    return {record.scheme: record.statistics for record in results}


def _print_panel(title, per_scenario):
    print()
    for scenario_name, results in per_scenario.items():
        rows = [common.stats_row(label, stats) for label, stats in results.items()]
        print(format_table(HEADERS, rows, title=f"{title} - {scenario_name}"))
        print()


@pytest.mark.paper("Figure 5(a)")
def test_fig05a_geant_and_pfabric(benchmark):
    def run():
        return {
            "geant_small": _evaluate_panel("geant_small", 0.1, 80),
            "pfabric_small": _evaluate_panel(
                "pfabric_small", 0.15, 35, include_oblivious=True, include_teal=True
            ),
        }

    per_scenario = benchmark.pedantic(run, rounds=1, iterations=1)
    _print_panel("Figure 5(a)", per_scenario)
    benchmark.extra_info["results"] = {
        scn: {k: vars(v) for k, v in res.items()} for scn, res in per_scenario.items()
    }
    # pFabric (bursty flow-level traffic): FIGRET matches DOTE, beats the
    # hedging baseline, and the worst-case-oriented schemes pay a large
    # normal-case penalty.
    pfabric = per_scenario["pfabric_small"]
    assert pfabric["FIGRET"].mean <= pfabric["DOTE"].mean * 1.08
    assert pfabric["FIGRET"].mean < pfabric["Des TE"].mean
    assert pfabric["Oblivious"].mean > pfabric["FIGRET"].mean
    # GEANT (mostly stable WAN): the learned schemes stay in the same band as
    # the LP baselines with no severe congestion.  (On the paper's real GEANT
    # trace FIGRET/DOTE are essentially optimal; the shortened synthetic trace
    # and CPU training budget leave them slightly above the LP here -- see
    # EXPERIMENTS.md.)
    geant = per_scenario["geant_small"]
    assert geant["FIGRET"].mean <= geant["DOTE"].mean * 1.35
    assert geant["FIGRET"].severe_congestion_fraction <= 0.05
    assert geant["DOTE"].severe_congestion_fraction <= 0.05


@pytest.mark.paper("Figure 5(b)")
def test_fig05b_tor_level_clusters(benchmark):
    def run():
        return {
            "meta_tor_db_small": _evaluate_panel("meta_tor_db_small", 0.3, 35),
            "meta_tor_web_small": _evaluate_panel("meta_tor_web_small", 0.3, 35),
        }

    per_scenario = benchmark.pedantic(run, rounds=1, iterations=1)
    _print_panel("Figure 5(b)", per_scenario)
    benchmark.extra_info["results"] = {
        scn: {k: vars(v) for k, v in res.items()} for scn, res in per_scenario.items()
    }
    for results in per_scenario.values():
        assert results["FIGRET"].mean < results["Des TE"].mean
        assert results["FIGRET"].mean <= results["DOTE"].mean * 1.05
        # The headline claim: fewer severe congestion events than DOTE.
        assert (
            results["FIGRET"].severe_congestion_fraction
            <= results["DOTE"].severe_congestion_fraction + 1e-9
        )


@pytest.mark.paper("Figure 5(c)")
def test_fig05c_pod_level_clusters(benchmark):
    def run():
        return {
            "meta_pod_db_small": _evaluate_panel(
                "meta_pod_db_small", 0.15, 35, include_oblivious=True, include_teal=True
            ),
            "meta_pod_web_small": _evaluate_panel("meta_pod_web_small", 0.15, 35),
        }

    per_scenario = benchmark.pedantic(run, rounds=1, iterations=1)
    _print_panel("Figure 5(c)", per_scenario)
    benchmark.extra_info["results"] = {
        scn: {k: vars(v) for k, v in res.items()} for scn, res in per_scenario.items()
    }
    for results in per_scenario.values():
        assert results["FIGRET"].mean < results["Des TE"].mean
        assert results["FIGRET"].mean <= results["DOTE"].mean * 1.08


@pytest.mark.paper("Figure 5(d)")
def test_fig05d_stable_gravity_wans(benchmark):
    def run():
        # The gravity traces are short, so extra epochs are cheap and keep the
        # learned schemes well past their uniform-split initialisation.
        return {
            "uscarrier_small": _evaluate_panel("uscarrier_small", 0.1, 60),
            "cogentco_small": _evaluate_panel("cogentco_small", 0.1, 60),
        }

    per_scenario = benchmark.pedantic(run, rounds=1, iterations=1)
    _print_panel("Figure 5(d)", per_scenario)
    benchmark.extra_info["results"] = {
        scn: {k: vars(v) for k, v in res.items()} for scn, res in per_scenario.items()
    }
    for results in per_scenario.values():
        # Gravity traffic is stable: no scheme suffers burst peaks and the
        # LP-based predictor is essentially optimal.
        assert results["Pred TE"].mean < 1.1
        assert results["Pred TE"].severe_congestion_fraction == 0.0
        assert results["FIGRET"].severe_congestion_fraction < 0.25
