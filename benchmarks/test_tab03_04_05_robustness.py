"""Tables 3, 4 and 5: FIGRET's robustness to demand changes.

* Table 3 -- injected Gaussian fluctuations scaled by each pair's historical
  std (factors 0.2 / 0.5 / 1.0 / 2.0): the performance decline grows with the
  factor but stays bounded.
* Table 4 -- natural drift: training on older quarters of the trace instead
  of the most recent 75% barely hurts.
* Table 5 -- adversarial worst case: the fluctuation magnitudes are assigned
  in reverse variance order; the decline is larger than Table 3 but FIGRET
  does not collapse, and the train/test variance rankings are highly
  correlated (Spearman), showing the worst case is unlikely in practice.
"""

from __future__ import annotations

import pytest

import bench_common as common
from repro.evaluation.reporting import format_table
from repro.study import sweep
from repro.traffic.perturb import variance_rank_spearman

NETWORKS = {
    "meta_pod_db_small": (0.15, 35),
    "pfabric_small": (0.15, 35),
    "meta_tor_db_small": (0.3, 35),
}
ALPHAS = (0.2, 0.5, 1.0, 2.0)


def _decline_rows(outcome):
    rows = []
    for alpha in ALPHAS:
        entry = outcome[alpha]
        rows.append([f"{alpha:.1f}", f"{entry['average_decline'] * 100:+.1f}%", f"{entry['p90_decline'] * 100:+.1f}%"])
    return rows


def _fluctuation_spec(scenario_name, robustness, epochs, worst_case=False):
    """Tables 3 and 5 as one declarative study: a perturbation sweep."""
    return {
        "scenario": common.scenario_spec(scenario_name),
        "scheme": common.scheme_spec("figret", scenario_name, robustness, epochs),
        "perturbation": sweep(
            *[
                {
                    "kind": "fluctuation",
                    "alpha": alpha,
                    "worst_case": worst_case,
                    "seed": common.BENCH_SEED,
                }
                for alpha in ALPHAS
            ]
        ),
        "max_intervals": 25,
    }


def _declines_by_alpha(results):
    """Read the per-alpha declines back out of the records' spec provenance."""
    return {
        record.spec["perturbation"]["alpha"]: {
            "average_decline": record.metrics["average_decline"],
            "p90_decline": record.metrics["p90_decline"],
        }
        for record in results
    }


@pytest.mark.paper("Table 3")
@pytest.mark.parametrize("scenario_name", list(NETWORKS))
def test_tab03_gaussian_fluctuation(benchmark, scenario_name):
    robustness, epochs = NETWORKS[scenario_name]
    spec = _fluctuation_spec(scenario_name, robustness, epochs)

    outcome = benchmark.pedantic(
        lambda: _declines_by_alpha(common.run_study(spec)),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(["alpha", "average decline", "90th pct decline"], _decline_rows(outcome),
                       title=f"Table 3 ({scenario_name}): decline under injected fluctuations"))
    benchmark.extra_info["outcome"] = {str(k): v for k, v in outcome.items()}

    # Declines grow with alpha but remain bounded (paper: < ~20% at alpha=2).
    assert outcome[2.0]["average_decline"] >= outcome[0.2]["average_decline"] - 0.05
    assert outcome[2.0]["average_decline"] < 0.6


@pytest.mark.paper("Table 4")
@pytest.mark.parametrize("scenario_name", ["meta_pod_db_small", "pfabric_small"])
def test_tab04_natural_drift(benchmark, scenario_name):
    robustness, _ = NETWORKS[scenario_name]
    segments = ((0.0, 0.25), (0.25, 0.5), (0.5, 0.75))
    spec = {
        "scenario": common.scenario_spec(scenario_name),
        "scheme": common.scheme_spec("figret", scenario_name, robustness, epochs=25),
        "perturbation": sweep(
            *[{"kind": "drift", "train_segment": list(segment)} for segment in segments]
        ),
    }

    def run():
        results = common.run_study(spec)
        return {
            f"{int(start * 100)}%-{int(end * 100)}%": {
                "average_decline": record.metrics["average_decline"],
                "p90_decline": record.metrics["p90_decline"],
            }
            for (start, end), record in zip(segments, results)
        }

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [segment, f"{entry['average_decline'] * 100:+.1f}%", f"{entry['p90_decline'] * 100:+.1f}%"]
        for segment, entry in outcome.items()
    ]
    print()
    print(format_table(["training segment", "average decline", "90th pct decline"], rows,
                       title=f"Table 4 ({scenario_name}): decline when training on older data"))
    benchmark.extra_info["outcome"] = outcome

    # Natural drift causes only mild degradation (paper: a few percent).
    for entry in outcome.values():
        assert entry["average_decline"] < 0.30


@pytest.mark.paper("Table 5")
@pytest.mark.parametrize("scenario_name", list(NETWORKS))
def test_tab05_worst_case_fluctuation(benchmark, scenario_name):
    robustness, epochs = NETWORKS[scenario_name]
    scenario = common.get_scenario(scenario_name)
    train, test_full = scenario.split()
    spec = _fluctuation_spec(scenario_name, robustness, epochs, worst_case=True)

    def run():
        outcome = _declines_by_alpha(common.run_study(spec))
        spearman = variance_rank_spearman(train.pair_variance(), test_full.pair_variance())
        return outcome, spearman

    outcome, spearman = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(["alpha", "average decline", "90th pct decline"], _decline_rows(outcome),
                       title=f"Table 5 ({scenario_name}): worst-case decline "
                             f"(train/test variance Spearman = {spearman:.2f})"))
    benchmark.extra_info["outcome"] = {str(k): v for k, v in outcome.items()}
    benchmark.extra_info["spearman"] = spearman

    # The adversarial case hurts more than the natural case can, but FIGRET
    # does not collapse.  The paper additionally reports a high train/test
    # variance-rank correlation (0.92-0.98 on the day-long Meta traces); our
    # much shorter synthetic test windows make that estimate noisy for the
    # PoD/pFabric scenarios, so the Spearman check is asserted only where the
    # per-pair burstiness is strongly heterogeneous (the ToR scenario) and is
    # otherwise reported in the table title.
    assert outcome[2.0]["average_decline"] < 1.0
    if scenario_name == "meta_tor_db_small":
        assert spearman > 0.5
