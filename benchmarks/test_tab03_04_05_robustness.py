"""Tables 3, 4 and 5: FIGRET's robustness to demand changes.

* Table 3 -- injected Gaussian fluctuations scaled by each pair's historical
  std (factors 0.2 / 0.5 / 1.0 / 2.0): the performance decline grows with the
  factor but stays bounded.
* Table 4 -- natural drift: training on older quarters of the trace instead
  of the most recent 75% barely hurts.
* Table 5 -- adversarial worst case: the fluctuation magnitudes are assigned
  in reverse variance order; the decline is larger than Table 3 but FIGRET
  does not collapse, and the train/test variance rankings are highly
  correlated (Spearman), showing the worst case is unlikely in practice.
"""

from __future__ import annotations

import pytest

import bench_common as common
from repro.core import Figret
from repro.evaluation import drift_experiment, fluctuation_experiment
from repro.evaluation.reporting import format_table
from repro.traffic.perturb import variance_rank_spearman

NETWORKS = {
    "meta_pod_db_small": (0.15, 35),
    "pfabric_small": (0.15, 35),
    "meta_tor_db_small": (0.3, 35),
}
ALPHAS = (0.2, 0.5, 1.0, 2.0)


def _decline_rows(outcome):
    rows = []
    for alpha in ALPHAS:
        entry = outcome[alpha]
        rows.append([f"{alpha:.1f}", f"{entry['average_decline'] * 100:+.1f}%", f"{entry['p90_decline'] * 100:+.1f}%"])
    return rows


@pytest.mark.paper("Table 3")
@pytest.mark.parametrize("scenario_name", list(NETWORKS))
def test_tab03_gaussian_fluctuation(benchmark, scenario_name):
    robustness, epochs = NETWORKS[scenario_name]
    scenario = common.get_scenario(scenario_name)
    figret = common.trained_scheme("figret", scenario_name, robustness, epochs)
    train, _ = scenario.split()
    test = common.test_slice(scenario, 25)

    outcome = benchmark.pedantic(
        lambda: fluctuation_experiment(
            figret, test, train, scenario.history_len, alphas=ALPHAS, seed=common.BENCH_SEED
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(["alpha", "average decline", "90th pct decline"], _decline_rows(outcome),
                       title=f"Table 3 ({scenario_name}): decline under injected fluctuations"))
    benchmark.extra_info["outcome"] = {str(k): v for k, v in outcome.items()}

    # Declines grow with alpha but remain bounded (paper: < ~20% at alpha=2).
    assert outcome[2.0]["average_decline"] >= outcome[0.2]["average_decline"] - 0.05
    assert outcome[2.0]["average_decline"] < 0.6


@pytest.mark.paper("Table 4")
@pytest.mark.parametrize("scenario_name", ["meta_pod_db_small", "pfabric_small"])
def test_tab04_natural_drift(benchmark, scenario_name):
    robustness, _ = NETWORKS[scenario_name]
    scenario = common.get_scenario(scenario_name)
    config = common.training_config(scenario, robustness, epochs=25)

    def factory():
        return Figret(scenario.paths, config)

    outcome = benchmark.pedantic(
        lambda: drift_experiment(factory, scenario.traffic, scenario.history_len),
        rounds=1,
        iterations=1,
    )
    rows = [
        [segment, f"{entry['average_decline'] * 100:+.1f}%", f"{entry['p90_decline'] * 100:+.1f}%"]
        for segment, entry in outcome.items()
    ]
    print()
    print(format_table(["training segment", "average decline", "90th pct decline"], rows,
                       title=f"Table 4 ({scenario_name}): decline when training on older data"))
    benchmark.extra_info["outcome"] = outcome

    # Natural drift causes only mild degradation (paper: a few percent).
    for entry in outcome.values():
        assert entry["average_decline"] < 0.30


@pytest.mark.paper("Table 5")
@pytest.mark.parametrize("scenario_name", list(NETWORKS))
def test_tab05_worst_case_fluctuation(benchmark, scenario_name):
    robustness, epochs = NETWORKS[scenario_name]
    scenario = common.get_scenario(scenario_name)
    figret = common.trained_scheme("figret", scenario_name, robustness, epochs)
    train, test_full = scenario.split()
    test = common.test_slice(scenario, 25)

    def run():
        outcome = fluctuation_experiment(
            figret, test, train, scenario.history_len, alphas=ALPHAS,
            worst_case=True, seed=common.BENCH_SEED,
        )
        spearman = variance_rank_spearman(train.pair_variance(), test_full.pair_variance())
        return outcome, spearman

    outcome, spearman = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(["alpha", "average decline", "90th pct decline"], _decline_rows(outcome),
                       title=f"Table 5 ({scenario_name}): worst-case decline "
                             f"(train/test variance Spearman = {spearman:.2f})"))
    benchmark.extra_info["outcome"] = {str(k): v for k, v in outcome.items()}
    benchmark.extra_info["spearman"] = spearman

    # The adversarial case hurts more than the natural case can, but FIGRET
    # does not collapse.  The paper additionally reports a high train/test
    # variance-rank correlation (0.92-0.98 on the day-long Meta traces); our
    # much shorter synthetic test windows make that estimate noisy for the
    # PoD/pFabric scenarios, so the Spearman check is asserted only where the
    # per-pair burstiness is strongly heterogeneous (the ToR scenario) and is
    # otherwise reported in the table title.
    assert outcome[2.0]["average_decline"] < 1.0
    if scenario_name == "meta_tor_db_small":
        assert spearman > 0.5
