"""Pytest configuration for the benchmark harness.

Makes the shared ``bench_common`` module importable and registers the
``paper`` marker used to tag which table/figure each benchmark regenerates.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "paper(ref): the paper table/figure this benchmark reproduces"
    )
