"""Figure 18 (Appendix G.2): enlarging the history window does not tame bursts.

The paper repeats the Figure 4 cosine-similarity analysis with H = 64 instead
of H = 12 and finds essentially the same profile: unexpected bursts are not a
consequence of looking at too little history, so a larger DNN input window
cannot substitute for robustness.

This is a traffic-statistics bench: it replays no scheme, so there is no
study cell to declare -- it consumes scenarios through the study layer's
session scenario cache (``bench_common.get_scenario``) and nothing else.
"""

from __future__ import annotations

import pytest

import bench_common as common
from repro.evaluation.reporting import format_table
from repro.traffic.stats import burstiness_summary

SCENARIOS = ["geant_small", "meta_pod_db_small", "pfabric_small", "meta_tor_db_small"]


@pytest.mark.paper("Figure 18")
def test_fig18_window_expansion(benchmark):
    def run():
        outcome = {}
        for name in SCENARIOS:
            traffic = common.get_scenario(name).traffic
            outcome[name] = {
                "H=12": burstiness_summary(traffic, history=12),
                "H=64": burstiness_summary(traffic, history=64),
            }
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, entry in outcome.items():
        rows.append([
            name,
            f"{entry['H=12']['p05']:.3f} / {entry['H=12']['p50']:.3f}",
            f"{entry['H=64']['p05']:.3f} / {entry['H=64']['p50']:.3f}",
        ])
    print()
    print(format_table(["scenario", "H=12 (p05 / p50)", "H=64 (p05 / p50)"], rows,
                       title="Figure 18: similarity profile with a 12- vs 64-matrix window"))
    benchmark.extra_info["outcome"] = outcome

    for name, entry in outcome.items():
        # Expanding the window does not make traffic predictable: scenarios
        # that are bursty at H=12 remain bursty at H=64 (their similarity
        # profile never approaches 1), which is the paper's argument that a
        # larger DNN input window cannot substitute for robustness.
        if entry["H=12"]["p05"] < 0.9:
            assert entry["H=64"]["p05"] < 0.95
        if entry["H=12"]["p50"] < 0.8:
            assert entry["H=64"]["p50"] < 0.9
