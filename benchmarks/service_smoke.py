"""CI smoke for the study service: warm-state, SIGTERM, and resume, for real.

Unlike the in-process tests in ``tests/test_study_service.py``, this script
exercises the daemon exactly as an operator would: a real ``python -m
repro.study serve`` subprocess on a real Unix socket, real concurrent
clients, a real ``SIGTERM``.  It proves, in order:

1. **Cross-client warm state** -- two *overlapping* studies submitted
   concurrently from two clients share one scheme training between them,
   and a third client re-submitting one of the grids afterwards gets
   bit-identical records with **zero** additional LP solves and trainings.
2. **SIGTERM mid-job is a checkpointed cancel** -- the daemon receiving
   SIGTERM while a checkpointed grid runs stops it at the next cell
   boundary (the client sees a clean ``cancelled`` terminal or, at worst,
   a dropped stream), exits 0, and removes its socket file.
3. **Resume completes the grid** -- a restarted daemon (cold caches!)
   accepts ``resume`` for the same checkpoint name and finishes exactly
   the missing cells; the full record set matches a direct in-process run
   bit-for-bit.  After a restart the LP cache is cold, so this leg asserts
   completeness + bit-identity, not zero solves.

Exit status 0 on success; any assertion failure (or daemon misbehaviour)
is fatal.  Runs on a bare CI runner in well under a minute.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.study import Study, StudyClient, StudyServiceError

BASE_SPEC = {
    "scenario": {
        "name": "service-smoke",
        "topology": {"kind": "fully_connected", "num_nodes": 4, "capacity": 10.0},
        "traffic": {"kind": "datacenter", "level": "pod", "seed": 7,
                    "num_intervals": 30},
        "history_len": 3,
    },
    "scheme": {"kind": "figret", "epochs": 2, "history_len": 3, "seed": 0},
    "perturbation": {"sweep": [{"kind": "none"}, {"kind": "fluctuation", "alpha": 1.0}]},
    "max_intervals": 8,
}

#: Superset grid: the same two cells plus two more perturbation levels.
SUPERSET_SPEC = {
    **BASE_SPEC,
    "perturbation": {
        "sweep": BASE_SPEC["perturbation"]["sweep"]
        + [{"kind": "fluctuation", "alpha": 2.0}, {"kind": "fluctuation", "alpha": 3.0}]
    },
}

#: The grid SIGTERM interrupts: enough cells (and training epochs) that the
#: signal reliably lands mid-job even on a fast runner.
KILL_SPEC = {
    **BASE_SPEC,
    "scheme": {"kind": "figret", "epochs": 40, "history_len": 3, "seed": 0},
    "perturbation": {
        "sweep": [{"kind": "none"}]
        + [{"kind": "fluctuation", "alpha": 0.5 + 0.25 * step} for step in range(11)]
    },
}


def wire(results) -> str:
    return json.dumps(
        [record.to_dict(include_series=True) for record in results], sort_keys=True
    )


def start_daemon(socket_path: Path, spool_dir: Path) -> subprocess.Popen:
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.study", "serve",
         "--socket", str(socket_path), "--spool-dir", str(spool_dir)],
        env=dict(os.environ, PYTHONPATH="src"),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    StudyClient.wait_until_ready(socket_path, timeout=60)
    return process


def main() -> int:
    root = Path(tempfile.mkdtemp(prefix="repro-smoke-"))
    socket_path = root / "smoke.sock"
    spool_dir = root / "spool"

    print("== leg 1: cross-client warm state ==")
    daemon = start_daemon(socket_path, spool_dir)
    outcomes: dict[str, object] = {}

    def submit(tag: str, spec: dict) -> None:
        outcomes[tag] = StudyClient(socket_path).submit(spec)

    threads = [
        threading.Thread(target=submit, args=("base", BASE_SPEC)),
        threading.Thread(target=submit, args=("superset", SUPERSET_SPEC)),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    base, superset = outcomes["base"], outcomes["superset"]
    assert base.status == "done" and len(base.results) == 2, base.summary
    assert superset.status == "done" and len(superset.results) == 4, superset.summary
    trainings = base.summary["trainings"] + superset.summary["trainings"]
    assert trainings == 1, (
        f"overlapping concurrent jobs trained {trainings}x; the shared "
        "trained-scheme store should train exactly once"
    )
    print(f"  concurrent overlap: {base.summary['lp_solves']} + "
          f"{superset.summary['lp_solves']} LP solves, {trainings} training")

    rerun = StudyClient(socket_path).submit(SUPERSET_SPEC)
    assert rerun.summary["lp_solves"] == 0, (
        f"identical re-submit from a new client did {rerun.summary['lp_solves']} "
        "LP solves; the daemon's warm cache should serve all of them"
    )
    assert rerun.summary["trainings"] == 0, rerun.summary
    assert wire(rerun.results) == wire(superset.results), (
        "re-submitted grid records are not bit-identical to the first run's"
    )
    print(f"  re-submit: 0 LP solves, 0 trainings, "
          f"{len(rerun.results)} bit-identical records")

    print("== leg 2: SIGTERM mid-job is a checkpointed cancel ==")
    kill_outcome: dict[str, object] = {}

    def submit_kill_job() -> None:
        try:
            kill_outcome["outcome"] = StudyClient(socket_path).submit(
                KILL_SPEC, checkpoint="sigterm-job", on_message=on_message
            )
        except StudyServiceError as exc:
            # The stream can drop before the terminal message if the daemon
            # exits first; the checkpoint on disk is what leg 3 verifies.
            kill_outcome["error"] = str(exc)

    first_record = threading.Event()

    def on_message(message: dict) -> None:
        if message.get("type") == "record":
            first_record.set()

    submitter = threading.Thread(target=submit_kill_job)
    submitter.start()
    assert first_record.wait(timeout=300), "no record arrived before the kill"
    daemon.send_signal(signal.SIGTERM)
    output, _ = daemon.communicate(timeout=120)
    submitter.join(timeout=120)
    assert daemon.returncode == 0, (
        f"daemon exited {daemon.returncode} on SIGTERM:\n{output}"
    )
    assert not socket_path.exists(), "daemon left its socket file behind"
    outcome = kill_outcome.get("outcome")
    if outcome is not None:
        assert outcome.status == "cancelled", outcome.summary
        print(f"  cancelled cleanly after "
              f"{outcome.summary['completed']}/{outcome.summary['total']} cells")
    else:
        print(f"  stream dropped at daemon exit ({kill_outcome['error']})")
    checkpointed = spool_dir / "sigterm-job"
    assert checkpointed.exists(), "no checkpoint survived the SIGTERM"

    print("== leg 3: restarted daemon resumes the grid ==")
    daemon = start_daemon(socket_path, spool_dir)
    resumed = StudyClient(socket_path).submit(
        KILL_SPEC, checkpoint="sigterm-job", resume=True
    )
    total = len(KILL_SPEC["perturbation"]["sweep"])
    assert resumed.status == "done" and len(resumed.results) == total, resumed.summary
    direct = Study(KILL_SPEC).run()
    assert wire(resumed.results) == wire(direct), (
        "resumed record set differs from a direct in-process run"
    )
    print(f"  resume completed {total} cells, bit-identical to a direct run "
          f"({resumed.summary['lp_solves']} LP solves after the cold restart)")

    StudyClient(socket_path).shutdown()
    daemon.wait(timeout=120)
    print("service smoke: all legs passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
