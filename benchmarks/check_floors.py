"""Enforce the committed performance floors against BENCH_*.json records.

One table, one checker: ``benchmarks/floors.json`` maps each benchmark
record file to per-metric ``min`` floors / ``max`` ceilings with a one-line
rationale, and this script verifies every entry -- replacing the per-floor
inline heredocs that used to live in ``.github/workflows/ci.yml`` (two
copies of the same load-assert-print dance, each with its own hardcoded
threshold).

Run it locally after the benchmark harness::

    PYTHONPATH=src python -m pytest -q benchmarks/
    python benchmarks/check_floors.py

or point it somewhere else::

    python benchmarks/check_floors.py --records /path/to/records

A record file named in the table but absent on disk is skipped with a
notice (CI legs run different benchmark subsets); a *metric* missing from a
record that exists is a hard failure -- that means the bench stopped
measuring something the table still guards.  Exit status is the number of
violated floors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

FLOORS_TABLE = Path(__file__).resolve().parent / "floors.json"


def check_record(record_path: Path, floors: dict) -> list[str]:
    """Check one record against its floor table; returns failure lines."""
    with open(record_path, encoding="utf-8") as handle:
        record = json.load(handle)
    metrics = record.get("metrics", {})
    failures = []
    for metric, rule in floors.items():
        if metric not in metrics:
            failures.append(
                f"{record_path.name}: metric {metric!r} missing from the "
                "record -- the benchmark no longer measures a floored metric"
            )
            continue
        value = metrics[metric]
        if "min" in rule and value < rule["min"]:
            failures.append(
                f"{record_path.name}: {metric} = {value:.4g} fell below the "
                f"{rule['min']:.4g} floor ({rule['reason']})"
            )
        elif "max" in rule and value > rule["max"]:
            failures.append(
                f"{record_path.name}: {metric} = {value:.4g} rose above the "
                f"{rule['max']:.4g} ceiling ({rule['reason']})"
            )
        else:
            bound = (
                f">= {rule['min']:.4g}" if "min" in rule else f"<= {rule['max']:.4g}"
            )
            print(f"OK  {record_path.name}: {metric} = {value:.4g} ({bound})")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Check BENCH_*.json records against benchmarks/floors.json."
    )
    parser.add_argument(
        "--records",
        default=".",
        metavar="DIR",
        help="directory holding the BENCH_*.json records (default: cwd)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail when a record file named in the table is missing",
    )
    args = parser.parse_args(argv)

    with open(FLOORS_TABLE, encoding="utf-8") as handle:
        table = json.load(handle)
    records_dir = Path(args.records)

    failures: list[str] = []
    checked = 0
    for record_name, floors in table.items():
        if record_name.startswith("_"):
            continue  # table-level commentary, not a record
        record_path = records_dir / record_name
        if not record_path.exists():
            message = f"{record_name}: no record at {record_path} -- skipped"
            if args.strict:
                failures.append(message.replace("skipped", "required by --strict"))
            else:
                print(f"--  {message}")
            continue
        checked += 1
        failures.extend(check_record(record_path, floors))

    if failures:
        print(f"\n{len(failures)} floor violation(s):", file=sys.stderr)
        for failure in failures:
            print(f"  FAIL {failure}", file=sys.stderr)
    else:
        print(f"\nall floors hold across {checked} record(s)")
    return len(failures)


if __name__ == "__main__":
    sys.exit(main())
