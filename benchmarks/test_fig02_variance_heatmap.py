"""Figure 2: per-SD-pair demand variance (the diversity FIGRET exploits).

The paper's heat maps show that, in every network, different SD pairs have
very different demand variance.  This benchmark regenerates the underlying
matrices and reports how concentrated the variance is (a perfectly uniform
network would have the top-10% pairs carry exactly 10% of total variance).

This is a traffic-statistics bench: it replays no scheme, so there is no
study cell to declare -- it consumes scenarios through the study layer's
session scenario cache (``bench_common.get_scenario``) and nothing else.
"""

from __future__ import annotations

import numpy as np
import pytest

import bench_common as common
from repro.evaluation.reporting import format_table
from repro.traffic.stats import normalized_variance_matrix


@pytest.mark.paper("Figure 2")
def test_fig02_variance_by_source_destination(benchmark):
    scenario_names = ["geant_small", "meta_pod_db_small", "meta_tor_db_small"]

    def run():
        outcome = {}
        for name in scenario_names:
            scenario = common.get_scenario(name)
            variance = normalized_variance_matrix(scenario.traffic)
            flat = variance[~np.eye(variance.shape[0], dtype=bool)]
            flat_sorted = np.sort(flat)[::-1]
            top10 = max(1, int(round(0.1 * flat.size)))
            outcome[name] = {
                "pairs": flat.size,
                "top10_share": float(flat_sorted[:top10].sum() / max(flat.sum(), 1e-12)),
                "zero_fraction": float((flat < 1e-6).mean()),
            }
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [name, info["pairs"], f"{info['top10_share'] * 100:.1f}%", f"{info['zero_fraction'] * 100:.1f}%"]
        for name, info in outcome.items()
    ]
    print()
    print(format_table(
        ["scenario", "#pairs", "variance share of top-10% pairs", "near-zero-variance pairs"],
        rows,
        title="Figure 2: heterogeneity of per-pair demand variance",
    ))
    for name, info in outcome.items():
        benchmark.extra_info[name] = info
        # The paper's point: variance is far from uniform across pairs.
        assert info["top10_share"] > 0.2
