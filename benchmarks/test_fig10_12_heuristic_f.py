"""Figures 10 and 12 (Appendix C): heuristic fine-grained sensitivity functions.

Without any learning, replacing the fixed hedging threshold with a per-pair
function of traffic variance already shifts the normal-case / burst-case
balance.  Figure 10 sweeps the linear-function parameters of Table 7 and
Figure 12 the piecewise-function parameters of Table 8, both on the PoD-level
Meta DB scenario.
"""

from __future__ import annotations

import pytest

import bench_common as common
from repro.evaluation import compare_schemes
from repro.evaluation.reporting import format_table
from repro.solvers import DesensitizationTE, LinearSensitivityTE, PiecewiseSensitivityTE

#: Table 7: (number, min threshold, max threshold).
LINEAR_PARAMETERS = [
    ("1 (strict)", 1.0 / 3.0, 1.0 / 2.0),
    ("2 (strict)", 1.0 / 3.0, 2.0 / 3.0),
    ("3 (original-like)", 2.0 / 3.0, 2.0 / 3.0),
    ("4 (relaxed)", 2.0 / 3.0, 5.0 / 6.0),
    ("5 (both)", 1.0 / 3.0, 5.0 / 6.0),
]

#: Table 8: (number, min threshold, max threshold, breakpoint).
PIECEWISE_PARAMETERS = [
    ("1", 1.0 / 2.0, 2.0 / 3.0, 0.5),
    ("2", 1.0 / 2.0, 2.0 / 3.0, 0.65),
    ("3", 1.0 / 2.0, 2.0 / 3.0, 0.8),
    ("4 (original)", 2.0 / 3.0, 2.0 / 3.0, 0.5),
    ("5", 2.0 / 3.0, 5.0 / 6.0, 0.5),
    ("6", 2.0 / 3.0, 5.0 / 6.0, 0.65),
    ("7", 2.0 / 3.0, 5.0 / 6.0, 0.8),
]


def _run_sweep(schemes_by_label):
    scenario = common.get_scenario("meta_pod_db_small")
    train, _ = scenario.split()
    test = common.test_slice(scenario, 25)
    schemes = list(schemes_by_label.values())
    results = compare_schemes(schemes, train, test, scenario.history_len)
    return {
        label: results[scheme.name].statistics
        for label, scheme in schemes_by_label.items()
    }


@pytest.mark.paper("Figure 10 / Table 7")
def test_fig10_linear_sensitivity_functions(benchmark):
    scenario = common.get_scenario("meta_pod_db_small")

    def run():
        schemes = {}
        for label, low, high in LINEAR_PARAMETERS:
            if low == high:
                schemes[label] = DesensitizationTE(scenario.paths, sensitivity_threshold=high)
            else:
                schemes[label] = LinearSensitivityTE(scenario.paths, min_threshold=low, max_threshold=high)
        return _run_sweep(schemes)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [common.stats_row(label, stats) for label, stats in results.items()]
    print()
    print(format_table(["parameters", "mean", "p50", "p90", "p99", "worst", "severe>2"], rows,
                       title="Figure 10: linear heuristic-F parameter sweep (PoD-level Meta DB)"))
    benchmark.extra_info["results"] = {k: vars(v) for k, v in results.items()}

    # Appendix C's core claim: replacing the fixed threshold ("original") with
    # a variance-aware function improves the balance.  The combined strategy
    # ("both") beats the original fixed threshold on average and causes no
    # more severe congestion, and the strict strategies flatten the worst case.
    assert results["5 (both)"].mean <= results["3 (original-like)"].mean + 1e-9
    assert (
        results["5 (both)"].severe_congestion_fraction
        <= results["3 (original-like)"].severe_congestion_fraction + 1e-9
    )
    assert results["1 (strict)"].worst <= results["3 (original-like)"].worst + 1e-9


@pytest.mark.paper("Figure 12 / Table 8")
def test_fig12_piecewise_sensitivity_functions(benchmark):
    scenario = common.get_scenario("meta_pod_db_small")

    def run():
        schemes = {}
        for label, low, high, breakpoint in PIECEWISE_PARAMETERS:
            if low == high:
                schemes[label] = DesensitizationTE(scenario.paths, sensitivity_threshold=high)
            else:
                schemes[label] = PiecewiseSensitivityTE(
                    scenario.paths, min_threshold=low, max_threshold=high, breakpoint=breakpoint
                )
        return _run_sweep(schemes)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [common.stats_row(label, stats) for label, stats in results.items()]
    print()
    print(format_table(["parameters", "mean", "p50", "p90", "p99", "worst", "severe>2"], rows,
                       title="Figure 12: piecewise heuristic-F parameter sweep (PoD-level Meta DB)"))
    benchmark.extra_info["results"] = {k: vars(v) for k, v in results.items()}

    # The piecewise variants with the stricter Min flatten the tail relative
    # to the fixed original threshold, at little cost in the average.
    assert results["1"].worst <= results["4 (original)"].worst + 1e-9
    assert (
        results["1"].severe_congestion_fraction
        <= results["4 (original)"].severe_congestion_fraction + 1e-9
    )
    assert results["1"].mean <= results["4 (original)"].mean * 1.05
