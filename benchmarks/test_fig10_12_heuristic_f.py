"""Figures 10 and 12 (Appendix C): heuristic fine-grained sensitivity functions.

Without any learning, replacing the fixed hedging threshold with a per-pair
function of traffic variance already shifts the normal-case / burst-case
balance.  Figure 10 sweeps the linear-function parameters of Table 7 and
Figure 12 the piecewise-function parameters of Table 8, both on the PoD-level
Meta DB scenario.

Each parameter table is declared as one study grid -- a labelled scheme-spec
sweep over one scenario via ``bench_common.run_study`` -- so the sweep shares
the session's scenario build and LP-cached normalisers with every other
benchmark instead of issuing its own ``compare_schemes`` calls.
"""

from __future__ import annotations

import pytest

import bench_common as common
from repro.evaluation.reporting import format_table
from repro.study import sweep

#: Table 7: (number, min threshold, max threshold).
LINEAR_PARAMETERS = [
    ("1 (strict)", 1.0 / 3.0, 1.0 / 2.0),
    ("2 (strict)", 1.0 / 3.0, 2.0 / 3.0),
    ("3 (original-like)", 2.0 / 3.0, 2.0 / 3.0),
    ("4 (relaxed)", 2.0 / 3.0, 5.0 / 6.0),
    ("5 (both)", 1.0 / 3.0, 5.0 / 6.0),
]

#: Table 8: (number, min threshold, max threshold, breakpoint).
PIECEWISE_PARAMETERS = [
    ("1", 1.0 / 2.0, 2.0 / 3.0, 0.5),
    ("2", 1.0 / 2.0, 2.0 / 3.0, 0.65),
    ("3", 1.0 / 2.0, 2.0 / 3.0, 0.8),
    ("4 (original)", 2.0 / 3.0, 2.0 / 3.0, 0.5),
    ("5", 2.0 / 3.0, 5.0 / 6.0, 0.5),
    ("6", 2.0 / 3.0, 5.0 / 6.0, 0.65),
    ("7", 2.0 / 3.0, 5.0 / 6.0, 0.8),
]


def _run_sweep(scheme_specs):
    """One parameter table as a declarative study over the PoD DB scenario."""
    results = common.run_study(
        {
            "scenario": common.scenario_spec("meta_pod_db_small"),
            "scheme": sweep(*scheme_specs),
            "max_intervals": 25,
        }
    )
    return {record.scheme: record.statistics for record in results}


@pytest.mark.paper("Figure 10 / Table 7")
def test_fig10_linear_sensitivity_functions(benchmark):
    def run():
        specs = []
        for label, low, high in LINEAR_PARAMETERS:
            if low == high:
                # A flat linear function is exactly the fixed-threshold
                # Desensitization baseline.
                specs.append(
                    {"kind": "des_te", "sensitivity_threshold": high, "label": label}
                )
            else:
                specs.append(
                    {"kind": "linear_sens", "min_threshold": low,
                     "max_threshold": high, "label": label}
                )
        return _run_sweep(specs)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [common.stats_row(label, stats) for label, stats in results.items()]
    print()
    print(format_table(["parameters", "mean", "p50", "p90", "p99", "worst", "severe>2"], rows,
                       title="Figure 10: linear heuristic-F parameter sweep (PoD-level Meta DB)"))
    benchmark.extra_info["results"] = {k: vars(v) for k, v in results.items()}

    # Appendix C's core claim: replacing the fixed threshold ("original") with
    # a variance-aware function improves the balance.  The combined strategy
    # ("both") beats the original fixed threshold on average and causes no
    # more severe congestion, and the strict strategies flatten the worst case.
    assert results["5 (both)"].mean <= results["3 (original-like)"].mean + 1e-9
    assert (
        results["5 (both)"].severe_congestion_fraction
        <= results["3 (original-like)"].severe_congestion_fraction + 1e-9
    )
    assert results["1 (strict)"].worst <= results["3 (original-like)"].worst + 1e-9


@pytest.mark.paper("Figure 12 / Table 8")
def test_fig12_piecewise_sensitivity_functions(benchmark):
    def run():
        specs = []
        for label, low, high, breakpoint in PIECEWISE_PARAMETERS:
            if low == high:
                specs.append(
                    {"kind": "des_te", "sensitivity_threshold": high, "label": label}
                )
            else:
                specs.append(
                    {"kind": "piecewise_sens", "min_threshold": low,
                     "max_threshold": high, "breakpoint": breakpoint, "label": label}
                )
        return _run_sweep(specs)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [common.stats_row(label, stats) for label, stats in results.items()]
    print()
    print(format_table(["parameters", "mean", "p50", "p90", "p99", "worst", "severe>2"], rows,
                       title="Figure 12: piecewise heuristic-F parameter sweep (PoD-level Meta DB)"))
    benchmark.extra_info["results"] = {k: vars(v) for k, v in results.items()}

    # The piecewise variants with the stricter Min flatten the tail relative
    # to the fixed original threshold, at little cost in the average.
    assert results["1"].worst <= results["4 (original)"].worst + 1e-9
    assert (
        results["1"].severe_congestion_fraction
        <= results["4 (original)"].severe_congestion_fraction + 1e-9
    )
    assert results["1"].mean <= results["4 (original)"].mean * 1.05
