"""Figure 6: the comparison repeated with SMORE-style (Racke) path selection.

SMORE improves robustness through the *choice of candidate paths* rather than
through the split ratios.  The paper shows that swapping Yen's shortest paths
for Racke-style oblivious paths does not change the relative ordering of the
TE schemes, and that path selection alone (Pred TE on Racke paths == SMORE)
is not enough to handle bursts.
"""

from __future__ import annotations

import pytest

import bench_common as common
from repro.core import Dote, Figret
from repro.evaluation import compare_schemes
from repro.evaluation.reporting import format_table
from repro.paths.racke import racke_path_set
from repro.solvers import DesensitizationTE, PredictionBasedTE


@pytest.mark.paper("Figure 6")
def test_fig06_racke_path_selection(benchmark):
    scenario = common.get_scenario("geant_small")
    racke_paths = racke_path_set(scenario.topology, k=3, seed=common.BENCH_SEED)
    train, _ = scenario.split()
    test = common.test_slice(scenario, 25)
    config = common.training_config(scenario, robustness_weight=0.1, epochs=80)

    def run():
        schemes = [
            Figret(racke_paths, config),
            Dote(racke_paths, config),
            DesensitizationTE(racke_paths),
            PredictionBasedTE(racke_paths),   # == SMORE: Racke paths + predicted-demand LP
        ]
        results = compare_schemes(schemes, train, test, scenario.history_len)
        return {name: result.statistics for name, result in results.items()}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [common.stats_row(name, stats) for name, stats in results.items()]
    print()
    print(format_table(
        ["scheme", "mean", "p50", "p90", "p99", "worst", "severe>2"],
        rows,
        title="Figure 6: GEANT with SMORE (Racke) candidate paths; 'Pred TE' = SMORE",
    ))
    benchmark.extra_info["results"] = {k: vars(v) for k, v in results.items()}

    # Path selection alone does not change the ordering of the learned
    # schemes: FIGRET still tracks DOTE, and no scheme collapses just because
    # the candidate paths changed.
    assert results["FIGRET"].mean <= results["DOTE"].mean * 1.35
    assert results["FIGRET"].severe_congestion_fraction <= 0.1
