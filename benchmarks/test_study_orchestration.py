"""Study-orchestration overhead, LP-solve dedup, and cell-pool scaling.

Three guarantees of the declarative layer are pinned here:

* **Overhead** -- running a scenarios x schemes x perturbations grid through
  :class:`repro.study.Study` costs < 5% wall-clock over issuing the
  equivalent engine calls by hand (the orchestration is dict bookkeeping;
  the replays dominate).
* **LP dedup** -- across grid cells the omniscient normalisers are solved
  once per distinct demand matrix: adding the whole scheme axis to a grid
  adds *zero* LP solves, and re-running a study on a warm engine solves
  nothing (asserted with :func:`~repro.solvers.lp.count_lp_solves`).
* **Cell pool** -- ``Study.run(cell_workers=N)`` produces bit-identical
  results to sequential execution while fanning distinct scheme trainings
  out over a process pool, and the workers' LP-cache entries and trained
  schemes merge back into the parent (a warm re-run repeats nothing).  The
  sequential-vs-pooled wall times are *recorded* per width, not asserted:
  like the LP pool, whether a 2-wide pool wins depends on the core count
  (see ``BENCH_lp_worker_scaling.json``).

Both tests extend one ``BENCH_study_orchestration.json`` record (the second
writer merges via ``write_bench_record(update=True)``).
"""

from __future__ import annotations

import gc
import time

import pytest

import bench_common as common
from repro.evaluation.engine import EvaluationEngine
from repro.solvers.lp import OptimalMLUCache, count_lp_solves
from repro.study import ResultWarehouse, Study, Suite, expand_suite, sweep
from repro.traffic.perturb import gaussian_fluctuation

#: The grid: three Figure-5 scenarios x three neural schemes x two
#: perturbation profiles, at the fig05 evaluation cap.  Neural schemes only
#: -- their replay is a pure forward pass, so every LP solve in these cells
#: is a normaliser and the dedup assertions are exact.  Tiny training
#: budget: orchestration overhead does not depend on model quality, and the
#: geant schemes are shared with test_engine_speedup in the CI bench job.
SCENARIOS = ["geant_small", "pfabric_small", "meta_pod_db_small"]
EPOCHS = 5
FLUCTUATION = {"kind": "fluctuation", "alpha": 0.5, "seed": common.BENCH_SEED}
MAX_INTERVALS = common.MAX_EVAL_INTERVALS


def _scheme_specs(scenario_name):
    return [
        common.scheme_spec("figret", scenario_name, 0.1, EPOCHS),
        common.scheme_spec("dote", scenario_name, 0.0, EPOCHS),
        common.scheme_spec("teal", scenario_name, 0.0, EPOCHS),
    ]


def _grid_spec(scenario_name, schemes):
    return {
        "scenario": common.scenario_spec(scenario_name),
        "scheme": sweep(*schemes) if len(schemes) > 1 else schemes[0],
        "perturbation": sweep({"kind": "none"}, dict(FLUCTUATION)),
        "max_intervals": MAX_INTERVALS,
    }


def _full_grid():
    return [_grid_spec(name, _scheme_specs(name)) for name in SCENARIOS]


def _pretrain_all():
    """Resolve every grid scheme up front (training LPs stay out of the timings)."""
    schemes = {}
    for name in SCENARIOS:
        for kind, spec in zip(("figret", "dote", "teal"), _scheme_specs(name)):
            schemes[(name, kind)] = common.trained_scheme(
                kind, name, spec["robustness_weight"], EPOCHS
            )
    return schemes

def _direct_equivalent(engine, schemes):
    """The grid issued as hand-written engine calls (what the study replaces).

    Produces the same deliverables a study cell records -- per-cell summary
    statistics and fluctuation declines -- so the timing difference is pure
    orchestration (spec expansion, dedup keys, provenance records).
    """
    outcome = {}
    for name in SCENARIOS:
        scenario = common.get_scenario(name)
        train, _ = scenario.split()
        test = common.test_slice(scenario, MAX_INTERVALS)
        std = train.pair_std()
        for kind in ("figret", "dote", "teal"):
            scheme = schemes[(name, kind)]
            base = engine.evaluate_scheme(scheme, test, scenario.history_len)
            base_stats = base.statistics
            perturbed = gaussian_fluctuation(
                test, FLUCTUATION["alpha"], std, seed=FLUCTUATION["seed"]
            )
            fluct = engine.evaluate_scheme(scheme, perturbed, scenario.history_len)
            fluct_stats = fluct.statistics
            outcome[(name, kind)] = {
                "replay": base_stats,
                "fluctuation": fluct_stats,
                "average_decline": fluct_stats.mean / base_stats.mean - 1.0,
                "p90_decline": fluct_stats.p90 / base_stats.p90 - 1.0,
            }
    return outcome


def _compare(direct_fn, study_fn, rounds=7):
    """Best-of-N wall times, rounds interleaved so session-state drift (GC
    pressure from earlier benchmark modules, allocator state) hits both
    paths alike; collections run outside the timed regions."""
    best_direct = best_study = float("inf")
    for _ in range(rounds):
        gc.collect()
        start = time.perf_counter()
        direct_fn()
        best_direct = min(best_direct, time.perf_counter() - start)
        gc.collect()
        start = time.perf_counter()
        study_fn()
        best_study = min(best_study, time.perf_counter() - start)
    return best_direct, best_study


@pytest.mark.paper("study orchestration")
def test_study_orchestration_overhead_and_dedup(benchmark):
    schemes = _pretrain_all()
    engine = common.bench_engine()

    def run_study():
        return [
            Study(spec, scheme_cache=common.SCHEME_CACHE, scenario_cache=common.SCENARIO_CACHE).run(
                engine=engine
            )
            for spec in _full_grid()
        ]

    def run_direct():
        return _direct_equivalent(engine, schemes)

    # Warm both paths (LP cache, scenario/scheme caches), then time best-of-N.
    run_direct()
    run_study()
    direct_s, study_s = _compare(run_direct, run_study)
    if study_s / direct_s - 1.0 >= 0.05:
        # One noisy sample shouldn't fail CI: re-measure with more rounds
        # before concluding the orchestration itself regressed.
        direct_s, study_s = _compare(run_direct, run_study, rounds=15)
    overhead = study_s / direct_s - 1.0

    # --- LP dedup: scheme axis adds zero solves; warm re-runs solve nothing.
    cold_engine = EvaluationEngine(cache=OptimalMLUCache())
    single = [_grid_spec(name, [_scheme_specs(name)[0]]) for name in SCENARIOS]
    with count_lp_solves() as cold_tally:
        for spec in single:
            Study(spec, scheme_cache=common.SCHEME_CACHE, scenario_cache=common.SCENARIO_CACHE).run(
                engine=cold_engine
            )
    cold_solves = cold_tally.count
    with count_lp_solves() as axis_tally:
        for spec in _full_grid():
            Study(spec, scheme_cache=common.SCHEME_CACHE, scenario_cache=common.SCENARIO_CACHE).run(
                engine=cold_engine
            )
    with count_lp_solves() as rerun_tally:
        for spec in _full_grid():
            Study(spec, scheme_cache=common.SCHEME_CACHE, scenario_cache=common.SCENARIO_CACHE).run(
                engine=cold_engine
            )

    results = benchmark.pedantic(run_study, rounds=1, iterations=1)
    cells = sum(len(result_set) for result_set in results)
    print()
    print(
        f"Study orchestration: {cells} cells, direct {direct_s * 1e3:.1f} ms, "
        f"study {study_s * 1e3:.1f} ms, overhead {overhead * 100:+.2f}%"
    )
    print(
        f"LP dedup: {cold_solves} cold solves for the scenario x perturbation axes, "
        f"+{axis_tally.count} for the full scheme axis, +{rerun_tally.count} on re-run"
    )
    benchmark.extra_info["overhead"] = overhead
    benchmark.extra_info["cold_solves"] = cold_solves

    assert cold_solves > 0  # the cold engine really did the normaliser pass
    assert axis_tally.count == 0  # scheme axis: zero repeat LP solves
    assert rerun_tally.count == 0  # warm re-run: zero repeat LP solves
    assert overhead < 0.05

    common.write_bench_record(
        "study_orchestration",
        lp_workers=engine.lp_workers,
        update=True,
        grid_cells=cells,
        direct_seconds=direct_s,
        study_seconds=study_s,
        orchestration_overhead=overhead,
        cold_lp_solves=cold_solves,
        scheme_axis_extra_solves=axis_tally.count,
        rerun_extra_solves=rerun_tally.count,
    )


# --------------------------------------------------------------------- #
# Cell-level process-pool execution
# --------------------------------------------------------------------- #

#: Registry-free inline scenarios: worker processes rebuild them from the
#: config dicts alone, whatever the multiprocessing start method.
def _inline_scenario(name, seed):
    return {
        "name": name,
        "topology": {"kind": "fully_connected", "num_nodes": 5, "capacity": 10.0},
        "traffic": {
            "kind": "datacenter",
            "level": "pod",
            "seed": seed,
            "num_intervals": 80,
        },
        "history_len": 4,
    }


def _cell_pool_spec():
    schemes = [
        {"kind": "figret", "epochs": 6, "history_len": 4, "robustness_weight": 0.1,
         "seed": common.BENCH_SEED},
        {"kind": "dote", "epochs": 6, "history_len": 4, "seed": common.BENCH_SEED},
    ]
    return {
        "scenario": sweep(_inline_scenario("cellpool_a", 1), _inline_scenario("cellpool_b", 2)),
        "scheme": sweep(*schemes),
        "perturbation": sweep({"kind": "none"}, dict(FLUCTUATION)),
        "max_intervals": 10,
    }


@pytest.mark.paper("study cell pool")
def test_study_cell_worker_scaling(benchmark):
    from repro.study import study as study_module

    spec = _cell_pool_spec()
    timings = {}
    outputs = {}

    def run_width(cell_workers):
        # Fresh engine + scheme cache per width: the trainings and the cold
        # normaliser pass are the work the pool parallelises, so they must
        # happen inside the timed region.
        engine = EvaluationEngine(cache=OptimalMLUCache())
        scheme_cache: dict = {}
        start = time.perf_counter()
        results = Study(spec, scheme_cache=scheme_cache).run(
            engine=engine, cell_workers=cell_workers
        )
        elapsed = time.perf_counter() - start
        return elapsed, results, engine, scheme_cache

    for width in (None, 2, 4):
        elapsed, results, engine, scheme_cache = run_width(width)
        label = "sequential" if width is None else f"cell_workers_{width}"
        timings[label] = elapsed
        outputs[label] = results
        if width is not None:
            # Merge-back contract: the parent engine can re-run the whole
            # grid without a single new LP solve, and every distinct scheme
            # spec came back trained.
            assert len(scheme_cache) == 4  # 2 scenarios x 2 scheme specs
            with count_lp_solves() as tally:
                rerun = Study(spec, scheme_cache=scheme_cache).run(engine=engine)
            assert tally.count == 0
            assert rerun.to_json() == results.to_json()

    baseline = outputs["sequential"].to_json()
    for label, results in outputs.items():
        assert results.to_json() == baseline  # bit-identical at every width

    # If the pool was unusable (sandboxed spawn, broken pool) every width
    # silently ran sequentially -- the correctness assertions above still
    # hold, but recording sequential-vs-sequential wall times as pool
    # scaling would fabricate the tracked artifact.  The warn-once module
    # flag is the degradation signal.
    degraded = study_module._CELL_POOL_FALLBACK_WARNED

    cells = len(outputs["sequential"])
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info["timings"] = timings
    benchmark.extra_info["pool_degraded"] = degraded
    print()
    for label, elapsed in timings.items():
        print(f"cell-pool scaling: {label:>16} {elapsed * 1e3:8.1f} ms ({cells} cells)")
    if degraded:
        print("cell pool unavailable here: widths ran sequentially, timings not recorded")

    if degraded:
        # Explicit nulls: update=True merges into the committed record, so
        # omitting the keys would leave a previous box's timings sitting
        # next to degraded=true.
        scaling_metrics = {
            "cell_pool_sequential_seconds": None,
            "cell_pool_workers2_seconds": None,
            "cell_pool_workers4_seconds": None,
            "cell_pool_workers2_speedup": None,
            "cell_pool_workers4_speedup": None,
        }
    else:
        scaling_metrics = {
            "cell_pool_sequential_seconds": timings["sequential"],
            "cell_pool_workers2_seconds": timings["cell_workers_2"],
            "cell_pool_workers4_seconds": timings["cell_workers_4"],
            "cell_pool_workers2_speedup": timings["sequential"] / timings["cell_workers_2"],
            "cell_pool_workers4_speedup": timings["sequential"] / timings["cell_workers_4"],
        }
    common.write_bench_record(
        "study_orchestration",
        lp_workers=common.bench_engine().lp_workers,
        update=True,
        cell_pool_grid_cells=cells,
        cell_pool_degraded=degraded,
        **scaling_metrics,
    )


# --------------------------------------------------------------------- #
# Suite layer: expansion throughput + warehouse append overhead
# --------------------------------------------------------------------- #
def _suite_descriptor(repetitions: int = 2) -> dict:
    """Two studies over the warmed geant schemes, repeated ``repetitions``x.

    No ``seeds`` axis: the bench scenario specs pin their seed (shared with
    every other bench via the session caches), and a suite seeds axis would
    rightly refuse to override a pinned seed.
    """
    return {
        "name": "bench-suite",
        "repetitions": repetitions,
        "studies": [
            {"name": "replay", "spec": {
                "scenario": common.scenario_spec("geant_small"),
                "scheme": sweep(
                    common.scheme_spec("figret", "geant_small", 0.1, EPOCHS),
                    common.scheme_spec("dote", "geant_small", 0.0, EPOCHS),
                ),
                "max_intervals": MAX_INTERVALS,
            }},
            {"name": "fluctuation", "spec": {
                "scenario": common.scenario_spec("geant_small"),
                "scheme": common.scheme_spec("figret", "geant_small", 0.1, EPOCHS),
                "perturbation": dict(FLUCTUATION),
                "max_intervals": MAX_INTERVALS,
            }},
        ],
    }


@pytest.mark.paper("suite orchestration")
def test_suite_orchestration_and_warehouse_overhead(tmp_path):
    """Suite expansion is pure dict work; warehouse appends stay invisible.

    Expansion throughput is measured on a 600-cell descriptor (200
    repetitions of the 3-cell suite) and floored very conservatively at 200
    cells/sec.  The run comparison times a warm suite run (trainings and
    replays all cache hits via the session caches) with and without a
    warehouse attached -- the gap is exactly the durable-append cost, and
    the per-cell append time lands in the record for trend tracking.
    """
    wide = _suite_descriptor(repetitions=200)
    gc.collect()
    start = time.perf_counter()
    wide_cells = expand_suite(wide)
    expand_seconds = time.perf_counter() - start
    expand_rate = len(wide_cells) / expand_seconds
    assert len(wide_cells) == 600
    assert expand_rate >= 200.0, (
        f"suite expansion slowed to {expand_rate:.0f} cells/s (floor 200/s)"
    )

    engine = common.bench_engine()
    descriptor = _suite_descriptor()

    def suite():
        return Suite(
            descriptor,
            scheme_cache=common.SCHEME_CACHE,
            scenario_cache=common.SCENARIO_CACHE,
        )

    suite().run(engine=engine)  # warm trainings, replays, normalisers
    cells = len(suite())

    warehouse = ResultWarehouse(tmp_path / "bench_suite.jsonl")
    plain_s, warehouse_s = _compare(
        lambda: suite().run(engine=engine),
        lambda: suite().run(engine=engine, warehouse=warehouse),
        rounds=5,
    )
    records = warehouse.results()
    assert len(records) == 5 * cells  # every timed round appended its cells
    append_seconds_per_cell = max(0.0, warehouse_s - plain_s) / cells

    print(
        f"suite: {expand_rate:.0f} expanded cells/s; warm run {plain_s * 1e3:.1f} ms "
        f"plain vs {warehouse_s * 1e3:.1f} ms warehoused "
        f"({append_seconds_per_cell * 1e3:.2f} ms/cell durable append)"
    )

    common.write_bench_record(
        "study_orchestration",
        lp_workers=engine.lp_workers,
        update=True,
        suite_cells=cells,
        suite_expand_cells=len(wide_cells),
        suite_expand_seconds=expand_seconds,
        suite_expand_cells_per_second=expand_rate,
        suite_warm_run_seconds=plain_s,
        suite_warm_warehoused_run_seconds=warehouse_s,
        suite_warehouse_append_seconds_per_cell=append_seconds_per_cell,
    )
