"""Figure 4: cosine-similarity burstiness profile of every evaluation traffic trace.

For each scenario, every traffic matrix is compared with the most similar of
the previous H = 12 matrices; the distribution of those similarities is the
paper's burstiness indicator.  Expected ordering: WAN gravity traffic is the
most stable, GEANT is stable with outliers, PoD-level is moderately bursty,
and pFabric / ToR-level traffic is the most dynamic.

This is a traffic-statistics bench: it replays no scheme, so there is no
study cell to declare -- it consumes scenarios through the study layer's
session scenario cache (``bench_common.get_scenario``) and nothing else.
"""

from __future__ import annotations

import pytest

import bench_common as common
from repro.evaluation.reporting import format_table
from repro.traffic.stats import burstiness_summary

SCENARIOS = [
    "geant_small",
    "uscarrier_small",
    "cogentco_small",
    "meta_pod_db_small",
    "meta_pod_web_small",
    "pfabric_small",
    "meta_tor_db_small",
    "meta_tor_web_small",
]


@pytest.mark.paper("Figure 4")
def test_fig04_cosine_similarity_profiles(benchmark):
    def run():
        return {
            name: burstiness_summary(common.get_scenario(name).traffic, history=12)
            for name in SCENARIOS
        }

    profiles = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [name, f"{p['p05']:.3f}", f"{p['p25']:.3f}", f"{p['p50']:.3f}", f"{p['p75']:.3f}", f"{p['p95']:.3f}"]
        for name, p in profiles.items()
    ]
    print()
    print(format_table(["scenario", "p05", "p25", "p50", "p75", "p95"], rows,
                       title="Figure 4: cosine similarity to the closest of the last 12 TMs"))
    benchmark.extra_info["profiles"] = profiles

    # Shape assertions: gravity WAN most stable; ToR-level most dynamic;
    # PoD-level in between; GEANT stable at the median.
    assert profiles["uscarrier_small"]["p50"] > profiles["meta_pod_db_small"]["p50"] - 0.02
    assert profiles["meta_pod_db_small"]["p50"] > profiles["meta_tor_db_small"]["p50"]
    assert profiles["geant_small"]["p50"] > 0.9
    assert profiles["meta_tor_web_small"]["p50"] < 0.95
