"""Ablation: the robustness-weight knob that separates DOTE from FIGRET.

DESIGN.md calls out ``robustness_weight`` (the Lagrangian weight on the
variance-weighted sensitivity term, Equation 8) as the design choice to
ablate.  Weight 0 recovers DOTE; increasing the weight trades a little
average-case MLU for fewer burst-induced congestion events and lower
sensitivity on bursty pairs.
"""

from __future__ import annotations

import numpy as np
import pytest

import bench_common as common
from repro.evaluation.reporting import format_table
from repro.te.sensitivity import max_sensitivity_per_pair

WEIGHTS = (0.0, 0.1, 0.3, 1.0)


@pytest.mark.paper("Ablation (Section 4.3 / Equation 8)")
def test_ablation_robustness_weight(benchmark):
    scenario_name = "meta_tor_db_small"
    scenario = common.get_scenario(scenario_name)
    train, _ = scenario.split()

    def run():
        outcome = {}
        for weight in WEIGHTS:
            kind = "dote" if weight == 0.0 else "figret"
            scheme = common.trained_scheme(kind, scenario_name, weight, 35)
            result = common.evaluate_on_scenario(scheme, scenario)
            history = common.test_slice(scenario).flat_demands()[: scenario.history_len]
            sens = max_sensitivity_per_pair(
                scenario.paths, scheme.configure(history), normalized=True
            )
            variance = train.pair_variance()
            bursty = variance >= np.percentile(variance, 90)
            outcome[weight] = {
                "stats": result.statistics,
                "bursty_sensitivity": float(sens[bursty].mean()),
            }
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for weight, entry in outcome.items():
        stats = entry["stats"]
        rows.append([
            f"{weight:.1f}" + (" (DOTE)" if weight == 0 else ""),
            f"{stats.mean:.3f}",
            f"{stats.p99:.3f}",
            f"{stats.severe_congestion_fraction * 100:.1f}%",
            f"{entry['bursty_sensitivity']:.3f}",
        ])
    print()
    print(format_table(
        ["robustness weight", "mean", "p99", "severe>2", "S^max on bursty pairs"],
        rows,
        title=f"Ablation ({scenario_name}): effect of the Equation-8 weight",
    ))
    benchmark.extra_info["outcome"] = {
        str(w): {"mean": e["stats"].mean, "p99": e["stats"].p99,
                 "severe": e["stats"].severe_congestion_fraction,
                 "bursty_sensitivity": e["bursty_sensitivity"]}
        for w, e in outcome.items()
    }

    # Increasing the weight reduces the sensitivity FIGRET assigns to bursty
    # pairs, and a moderate weight must not blow up the average MLU.
    assert outcome[1.0]["bursty_sensitivity"] <= outcome[0.0]["bursty_sensitivity"] + 1e-6
    assert outcome[0.3]["stats"].mean <= outcome[0.0]["stats"].mean * 1.15
