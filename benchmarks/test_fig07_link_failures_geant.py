"""Figure 7: resilience to random link failures on GEANT.

One to three random physical links fail.  FIGRET, DOTE and Des TE compute
their configuration without knowing the failures and reroute around failed
paths (Section 4.5); FA Des TE knows the failures in advance.  MLUs are
normalised by an oracle that knows both the failures and the future demand.
The paper's shape: FIGRET beats DOTE and Des TE and is competitive with the
fault-aware oracle-assisted variant.
"""

from __future__ import annotations

import numpy as np
import pytest

import bench_common as common
from repro.evaluation import failure_experiment
from repro.evaluation.reporting import format_table
from repro.solvers import DesensitizationTE, FaultAwareDesensitizationTE


@pytest.mark.paper("Figure 7")
def test_fig07_random_link_failures_geant(benchmark):
    scenario = common.get_scenario("geant_small")
    figret = common.trained_scheme("figret", "geant_small", 0.1, 80)
    dote = common.trained_scheme("dote", "geant_small", 0.0, 80)
    des = DesensitizationTE(scenario.paths)
    fa_des = FaultAwareDesensitizationTE(scenario.paths)
    test = common.test_slice(scenario, 6)

    def run():
        outcome = {}
        for num_failures in (1, 2, 3):
            results = failure_experiment(
                [figret, dote, des, fa_des],
                test,
                scenario.history_len,
                num_failures=num_failures,
                num_trials=3,
                seed=100 + num_failures,
            )
            outcome[num_failures] = {name: float(np.mean(series)) for name, series in results.items()}
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [str(k), f"{v['FIGRET']:.3f}", f"{v['DOTE']:.3f}", f"{v['Des TE']:.3f}", f"{v['FA Des TE']:.3f}"]
        for k, v in outcome.items()
    ]
    print()
    print(format_table(
        ["#failures", "FIGRET", "DOTE", "Des TE", "FA Des TE"],
        rows,
        title="Figure 7: mean normalised MLU under random link failures (GEANT)",
    ))
    benchmark.extra_info["results"] = outcome

    for stats in outcome.values():
        # FIGRET stays within a reasonable factor of the failure-aware oracle
        # and never collapses.
        assert stats["FIGRET"] < 4.0
        assert stats["FA Des TE"] <= stats["Des TE"] + 0.25
