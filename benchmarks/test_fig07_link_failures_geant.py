"""Figure 7: resilience to random link failures on GEANT.

One to three random physical links fail.  FIGRET, DOTE and Des TE compute
their configuration without knowing the failures and reroute around failed
paths (Section 4.5); FA Des TE knows the failures in advance.  MLUs are
normalised by an oracle that knows both the failures and the future demand.
The paper's shape: FIGRET beats DOTE and Des TE and is competitive with the
fault-aware oracle-assisted variant.

Declared as one study grid -- scheme axis x failure-count axis -- with the
failure oracle LP-cached across cells (same seed => same failure patterns,
so the scheme axis adds zero oracle solves).
"""

from __future__ import annotations

import numpy as np
import pytest

import bench_common as common
from repro.evaluation.reporting import format_table
from repro.study import sweep


@pytest.mark.paper("Figure 7")
def test_fig07_random_link_failures_geant(benchmark):
    schemes = [
        common.scheme_spec("figret", "geant_small", 0.1, 80),
        common.scheme_spec("dote", "geant_small", 0.0, 80),
        {"kind": "des_te"},
        {"kind": "fa_des_te"},
    ]
    spec = {
        "scenario": common.scenario_spec("geant_small"),
        "scheme": sweep(*schemes),
        "perturbation": sweep(
            *[
                {"kind": "failure", "num_failures": k, "num_trials": 3, "seed": 100 + k}
                for k in (1, 2, 3)
            ]
        ),
        "max_intervals": 6,
    }

    def run():
        results = common.run_study(spec)
        outcome = {}
        for record in results:
            num_failures = record.spec["perturbation"]["num_failures"]
            outcome.setdefault(num_failures, {})[record.scheme] = float(np.mean(record.series))
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [str(k), f"{v['FIGRET']:.3f}", f"{v['DOTE']:.3f}", f"{v['Des TE']:.3f}", f"{v['FA Des TE']:.3f}"]
        for k, v in sorted(outcome.items())
    ]
    print()
    print(format_table(
        ["#failures", "FIGRET", "DOTE", "Des TE", "FA Des TE"],
        rows,
        title="Figure 7: mean normalised MLU under random link failures (GEANT)",
    ))
    benchmark.extra_info["results"] = outcome

    for stats in outcome.values():
        # FIGRET stays within a reasonable factor of the failure-aware oracle
        # and never collapses.
        assert stats["FIGRET"] < 4.0
        assert stats["FA Des TE"] <= stats["Des TE"] + 0.25
