"""Replay speedup of the batched, cache-aware evaluation engine.

Compares the seed's per-timestep replay path (one ``configure`` call, one MLU
computation, and -- when no precomputed normalisers are supplied -- one fresh
omniscient LP solve per interval) against the engine on the Figure 5 main
comparison workload (GEANT panel):

* **Batching**: all history windows are built once and pushed through a
  single vectorized ``configure_batch`` forward pass + one batched MLU call.
* **LP caching**: the omniscient normalisers come from the shared
  :class:`OptimalMLUCache`, so replays after the first (the other schemes of
  the panel, the fluctuation baseline, repeated experiments) never re-solve
  an LP for a demand matrix already seen.

The acceptance bar is >=5x on both fronts; the measured speedups are an
order of magnitude beyond it.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

import bench_common as common
from repro.evaluation.engine import EvaluationEngine
from repro.solvers.lp import OptimalMLUCache, count_lp_solves, omniscient_mlu
from repro.te.mlu import max_link_utilization

SCENARIO = "geant_small"
#: Tiny training budget: replay speed does not depend on model quality.
EPOCHS = 5


def _sequential_replay(scheme, path_set, flat, history_len, optimal):
    """The seed runner's per-timestep loop (configure + MLU per interval)."""
    raw = []
    for t in range(history_len, len(flat)):
        config = scheme.configure(flat[t - history_len : t])
        raw.append(max_link_utilization(path_set, config, flat[t]))
    return np.array(raw) / np.maximum(optimal[history_len:], 1e-12)


@pytest.mark.paper("Section 5 replay protocol")
def test_engine_replay_speedup(benchmark):
    scenario = common.get_scenario(SCENARIO)
    figret = common.trained_scheme("figret", SCENARIO, 0.1, EPOCHS)
    dote = common.trained_scheme("dote", SCENARIO, 0.0, EPOCHS)
    sliced = common.test_slice(scenario)
    flat = sliced.flat_demands()
    history_len = scenario.history_len
    optimal = common.optimal_mlus(scenario)
    engine = EvaluationEngine()

    def run():
        # --- Batching: replay the neural panel schemes with shared,
        # precomputed normalisers (the Figure 5 setting). ---
        start = time.perf_counter()
        sequential = {
            scheme.name: _sequential_replay(
                scheme, scenario.paths, flat, history_len, optimal
            )
            for scheme in (figret, dote)
        }
        sequential_seconds = time.perf_counter() - start

        start = time.perf_counter()
        batched = {
            scheme.name: engine.evaluate_scheme(
                scheme, sliced, history_len, optimal_mlus=optimal
            ).normalized_mlus
            for scheme in (figret, dote)
        }
        batched_seconds = time.perf_counter() - start

        for name, series in sequential.items():
            np.testing.assert_allclose(batched[name], series, atol=1e-9)

        # --- LP caching: normalisers solved fresh per replay (what the seed
        # did whenever no precomputed array was threaded through, e.g. the
        # fluctuation experiment) vs the shared cache after one priming
        # pass. ---
        start = time.perf_counter()
        with count_lp_solves() as fresh_tally:
            fresh = np.array(
                [omniscient_mlu(scenario.paths, demand) for demand in flat[history_len:]]
            )
        fresh_lp_seconds = time.perf_counter() - start

        engine.optimal_mlus(scenario.paths, flat[history_len:])  # prime
        start = time.perf_counter()
        cached = engine.optimal_mlus(scenario.paths, flat[history_len:])
        cached_lp_seconds = time.perf_counter() - start
        np.testing.assert_allclose(cached, fresh, atol=1e-9)

        return {
            "replay_speedup": sequential_seconds / batched_seconds,
            "end_to_end_speedup": (sequential_seconds + fresh_lp_seconds)
            / (batched_seconds + cached_lp_seconds),
            "sequential_seconds": sequential_seconds,
            "batched_seconds": batched_seconds,
            "fresh_lp_seconds": fresh_lp_seconds,
            "fresh_lp_solves": fresh_tally.count,
            "lp_solves_per_second": fresh_tally.count / fresh_lp_seconds,
            "cached_lp_seconds": cached_lp_seconds,
            "cache_hits": engine.cache.hits,
            "cache_misses": engine.cache.misses,
        }

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["results"] = outcome
    common.write_bench_record("engine_replay", **outcome)
    print()
    print(
        f"batched replay speedup: {outcome['replay_speedup']:.1f}x "
        f"({outcome['sequential_seconds'] * 1e3:.1f} ms -> "
        f"{outcome['batched_seconds'] * 1e3:.1f} ms)"
    )
    print(
        f"end-to-end (batching + LP cache): {outcome['end_to_end_speedup']:.1f}x "
        f"(normalisers {outcome['fresh_lp_seconds'] * 1e3:.1f} ms -> "
        f"{outcome['cached_lp_seconds'] * 1e3:.1f} ms)"
    )
    # Acceptance bar: >=5x replay speedup from batching + LP caching.
    assert outcome["replay_speedup"] >= 5.0
    assert outcome["end_to_end_speedup"] >= 5.0
    assert outcome["cache_hits"] > 0


@pytest.mark.paper("Section 5 replay protocol")
def test_persistent_cache_skips_second_session(benchmark, tmp_path):
    """A second benchmark session with the persisted cache solves zero LPs."""
    scenario = common.get_scenario(SCENARIO)
    dote = common.trained_scheme("dote", SCENARIO, 0.0, EPOCHS)
    sliced = common.test_slice(scenario)
    history_len = scenario.history_len
    cache_file = tmp_path / "optimal_mlu_cache.jsonl"

    def run():
        # Session 1: cold -- every normaliser is an LP solve, persisted on
        # flush (a neural scheme's replay itself solves no LPs, so the solver
        # call counter isolates exactly the omniscient normaliser work).
        start = time.perf_counter()
        with OptimalMLUCache(path=cache_file) as cold_cache:
            cold = EvaluationEngine(cache=cold_cache).evaluate_scheme(
                dote, sliced, history_len
            )
            cold_misses = cold_cache.misses
        cold_seconds = time.perf_counter() - start

        # Session 2: a fresh cache object (simulating a new process) loads
        # the store; the replay must perform zero omniscient LP solves.
        start = time.perf_counter()
        with count_lp_solves() as warm_tally:
            warm_cache = OptimalMLUCache(path=cache_file)
            warm = EvaluationEngine(cache=warm_cache).evaluate_scheme(
                dote, sliced, history_len
            )
        warm_seconds = time.perf_counter() - start
        np.testing.assert_allclose(warm.normalized_mlus, cold.normalized_mlus, atol=1e-9)
        return {
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "session_speedup": cold_seconds / warm_seconds,
            "cold_misses": cold_misses,
            "loaded_entries": warm_cache.loaded,
            "warm_misses": warm_cache.misses,
            "warm_lp_solves": warm_tally.count,
        }

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["results"] = outcome
    common.write_bench_record("persistent_cache", **outcome)
    print()
    print(
        f"persistent cache: session 1 solved {outcome['cold_misses']} LPs in "
        f"{outcome['cold_seconds'] * 1e3:.1f} ms; session 2 loaded "
        f"{outcome['loaded_entries']} entries and solved "
        f"{outcome['warm_lp_solves']} LPs in {outcome['warm_seconds'] * 1e3:.1f} ms "
        f"({outcome['session_speedup']:.1f}x)"
    )
    # The whole point: the second session performs ZERO omniscient LP solves.
    assert outcome["warm_lp_solves"] == 0
    assert outcome["warm_misses"] == 0
    assert outcome["cold_misses"] > 0


@pytest.mark.paper("Section 5 replay protocol")
def test_streaming_replay_matches_batch(benchmark):
    """Out-of-core streaming replay equals the in-memory batch replay."""
    scenario = common.get_scenario(SCENARIO)
    figret = common.trained_scheme("figret", SCENARIO, 0.1, EPOCHS)
    sliced = common.test_slice(scenario)
    history_len = scenario.history_len
    optimal = common.optimal_mlus(scenario)
    engine = common.bench_engine()
    # A chunk ~10x smaller than the evaluated trace: the replay only ever
    # holds history_len + chunk_size demand rows.
    chunk_size = max(1, (len(sliced) - history_len) // 10)

    def run():
        start = time.perf_counter()
        batch = engine.evaluate_scheme(figret, sliced, history_len, optimal_mlus=optimal)
        batch_seconds = time.perf_counter() - start
        start = time.perf_counter()
        streamed = engine.evaluate_streaming(
            figret,
            (matrix.flat() for matrix in sliced),  # a true row stream
            history_len,
            chunk_size=chunk_size,
            optimal_mlus=optimal,
        )
        stream_seconds = time.perf_counter() - start
        np.testing.assert_allclose(
            streamed.normalized_mlus, batch.normalized_mlus, atol=1e-9
        )
        return {
            "batch_seconds": batch_seconds,
            "stream_seconds": stream_seconds,
            "chunk_size": chunk_size,
            "intervals": len(streamed.normalized_mlus),
        }

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["results"] = outcome
    # bench_engine() runs with lp_workers="auto"; record the resolved width.
    common.write_bench_record("streaming_replay", lp_workers="auto", **outcome)
    print()
    print(
        f"streaming replay ({outcome['intervals']} intervals in chunks of "
        f"{outcome['chunk_size']}): {outcome['stream_seconds'] * 1e3:.1f} ms vs "
        f"{outcome['batch_seconds'] * 1e3:.1f} ms batched, identical to 1e-9"
    )
    # Streaming pays chunking overhead but must stay in the batch path's
    # ballpark (well under the ~13x-slower sequential path).
    assert outcome["stream_seconds"] < outcome["batch_seconds"] * 5 + 0.5
