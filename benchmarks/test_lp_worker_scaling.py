"""LP process-pool scaling on the larger WAN topologies (ROADMAP item).

The omniscient normalisers are the only CPU-bound LP work left in the replay
pipeline, and they fan out over a long-lived process pool.  This bench
measures solves/sec versus worker width on the Cogentco- and UsCarrier-like
scenarios (the topologies where one solve costs ~100 ms, so fan-out actually
pays) and emits a machine-readable ``BENCH_lp_worker_scaling.json`` record --
the same harness the engine-speedup records live in.

Where process spawning is forbidden (sandboxes), ``solve_mlu_lp_batch``
falls back to sequential solves with one RuntimeWarning; the record then
shows identical solves/sec per width, which is itself a useful signal.
"""

from __future__ import annotations

import time
import warnings

import numpy as np
import pytest

import bench_common as common
from repro.solvers.lp import default_lp_workers, solve_mlu_lp_batch

#: Demand rows solved per (scenario, width) measurement.  Each solve costs
#: ~100 ms on these topologies, so this bounds the bench to a few seconds.
NUM_DEMANDS = 6

SCENARIOS = ("cogentco_small", "uscarrier_small")


def _worker_widths() -> tuple[int | None, ...]:
    # Sequential baseline, a 2-wide pool (measurable even on 2-core boxes,
    # where the parent mostly waits on the pool), and the auto width when
    # it adds anything beyond those.
    widths: list[int | None] = [None, 2]
    auto = default_lp_workers()
    if auto > 2:
        widths.append(auto)
    return tuple(dict.fromkeys(widths))


@pytest.mark.paper("Appendix B solver scaling")
def test_lp_worker_scaling(benchmark):
    metrics: dict[str, dict] = {}
    reference: dict[str, np.ndarray] = {}

    def run():
        for name in SCENARIOS:
            scenario = common.get_scenario(name)
            demands = common.test_slice(scenario, NUM_DEMANDS).flat_demands()[
                : NUM_DEMANDS
            ]
            per_width = {}
            for width in _worker_widths():
                with warnings.catch_warnings():
                    # The sequential fallback warns once per process; the
                    # bench records the throughput either way.
                    warnings.simplefilter("ignore", RuntimeWarning)
                    start = time.perf_counter()
                    solved = solve_mlu_lp_batch(scenario.paths, demands, workers=width)
                    elapsed = time.perf_counter() - start
                mlus = np.array([mlu for _, mlu in solved])
                if name in reference:
                    # Identical results regardless of pool width.
                    np.testing.assert_allclose(mlus, reference[name], atol=1e-9)
                else:
                    reference[name] = mlus
                per_width[str(width or 1)] = {
                    "seconds": elapsed,
                    "solves_per_second": len(demands) / elapsed,
                }
            metrics[name] = per_width
        return metrics

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    # This bench sweeps pool widths itself, so the record header carries
    # lp_workers=null and the swept widths live in the metrics.
    common.write_bench_record(
        "lp_worker_scaling",
        lp_workers=None,
        swept_widths=[width or 1 for width in _worker_widths()],
        num_demands=NUM_DEMANDS,
        scenarios=outcome,
    )
    print()
    for name, per_width in outcome.items():
        summary = ", ".join(
            f"{width}w: {vals['solves_per_second']:.1f}/s"
            for width, vals in per_width.items()
        )
        print(f"LP scaling {name} ({NUM_DEMANDS} solves): {summary}")
    for per_width in outcome.values():
        assert all(vals["solves_per_second"] > 0 for vals in per_width.values())
