"""Figure 1: the motivation experiment -- 'No hedging' vs 'Hedging'.

The paper compares a TE strategy that optimises purely for the previous
traffic matrix ("No hedging") against Google Jupiter's hedging mechanism
("Hedging", our Desensitization-based TE) on GEANT, PoD-level and ToR-level
traffic.  The expected shape: No hedging has the lower troughs (better
non-burst performance) but the higher peaks (worse burst performance), and
the gap widens as traffic becomes more volatile (GEANT -> PoD -> ToR).
"""

from __future__ import annotations

import numpy as np
import pytest

import bench_common as common
from repro.evaluation.reporting import format_table
from repro.solvers import DesensitizationTE, PredictionBasedTE
from repro.te.mlu import max_link_utilization


def _mlu_series(scheme, scenario, max_intervals=30):
    sliced = common.test_slice(scenario, max_intervals)
    flat = sliced.flat_demands()
    h = scenario.history_len
    series = []
    for t in range(h, len(flat)):
        config = scheme.configure(flat[t - h : t])
        series.append(max_link_utilization(scenario.paths, config, flat[t]))
    return np.array(series)


@pytest.mark.paper("Figure 1")
@pytest.mark.parametrize(
    "scenario_name",
    ["geant_small", "meta_pod_db_small", "meta_tor_db_small"],
)
def test_fig01_hedging_vs_no_hedging(benchmark, scenario_name):
    scenario = common.get_scenario(scenario_name)
    no_hedging = PredictionBasedTE(scenario.paths)           # previous-TM LP, no burst handling
    # Figure 1's "Hedging" uses the *current* (previous) traffic matrix plus
    # the sensitivity cap, so the anticipated-matrix window is a single TM.
    hedging = DesensitizationTE(scenario.paths, window=1)

    def run():
        return _mlu_series(no_hedging, scenario), _mlu_series(hedging, scenario)

    no_hedge_series, hedge_series = benchmark.pedantic(run, rounds=1, iterations=1)
    peak = max(no_hedge_series.max(), hedge_series.max())
    no_hedge_norm = no_hedge_series / peak
    hedge_norm = hedge_series / peak

    rows = [
        ["No hedging", f"{no_hedge_norm.min():.3f}", f"{np.median(no_hedge_norm):.3f}", f"{no_hedge_norm.max():.3f}"],
        ["Hedging", f"{hedge_norm.min():.3f}", f"{np.median(hedge_norm):.3f}", f"{hedge_norm.max():.3f}"],
    ]
    print()
    print(format_table(["strategy", "trough", "median", "peak"], rows,
                       title=f"Figure 1 ({scenario_name}): normalised MLU over time"))

    benchmark.extra_info["scenario"] = scenario_name
    benchmark.extra_info["no_hedging_peak"] = float(no_hedge_norm.max())
    benchmark.extra_info["no_hedging_trough"] = float(no_hedge_norm.min())
    benchmark.extra_info["hedging_peak"] = float(hedge_norm.max())
    benchmark.extra_info["hedging_trough"] = float(hedge_norm.min())

    # Paper shape: on the mostly-stable WAN traffic, not hedging is the better
    # strategy most of the time (lower typical MLU); on the bursty data-center
    # traffic, hedging flattens the peaks that bursts cause (small tolerance:
    # the series are short).
    if scenario_name == "geant_small":
        assert np.median(no_hedge_norm) <= np.median(hedge_norm) * 1.05
    else:
        assert hedge_norm.max() <= no_hedge_norm.max() * 1.05
