"""Figure 8: why FIGRET works -- path sensitivity tracks traffic variance.

For the hedging baseline every path's sensitivity sits under one constant cap
regardless of how bursty its pair is.  FIGRET instead assigns low sensitivity
(strong hedging) to bursty pairs and lets stable pairs concentrate on their
best path.  This benchmark reproduces the scatter's summary statistics on the
PoD-level and ToR-level Meta DB scenarios.
"""

from __future__ import annotations

import numpy as np
import pytest

import bench_common as common
from repro.evaluation.reporting import format_table
from repro.solvers import DesensitizationTE
from repro.te.sensitivity import max_sensitivity_per_pair


def _sensitivity_profile(scenario_name, robustness_weight, epochs):
    scenario = common.get_scenario(scenario_name)
    train, _ = scenario.split()
    figret = common.trained_scheme("figret", scenario_name, robustness_weight, epochs)
    des = DesensitizationTE(scenario.paths)
    test = common.test_slice(scenario, 10)
    flat = test.flat_demands()
    h = scenario.history_len

    variance = train.pair_variance()
    variance = variance / max(variance.max(), 1e-12)
    stable = variance <= np.percentile(variance, 30)
    bursty = variance >= np.percentile(variance, 90)

    fig_sens, des_sens = [], []
    for t in range(h, len(flat)):
        history = flat[t - h : t]
        fig_sens.append(max_sensitivity_per_pair(scenario.paths, figret.configure(history), normalized=True))
        des_sens.append(max_sensitivity_per_pair(scenario.paths, des.configure(history), normalized=True))
    fig_sens = np.mean(fig_sens, axis=0)
    des_sens = np.mean(des_sens, axis=0)
    return {
        "figret_stable": float(fig_sens[stable].mean()),
        "figret_bursty": float(fig_sens[bursty].mean()),
        "des_stable": float(des_sens[stable].mean()),
        "des_bursty": float(des_sens[bursty].mean()),
        "des_cap": float(des_sens.max()),
        "figret_variance_correlation": float(np.corrcoef(variance, fig_sens)[0, 1]),
    }


@pytest.mark.paper("Figure 8")
@pytest.mark.parametrize(
    "scenario_name,robustness_weight,epochs",
    [("meta_pod_db_small", 0.15, 35), ("meta_tor_db_small", 0.3, 35)],
)
def test_fig08_sensitivity_vs_variance(benchmark, scenario_name, robustness_weight, epochs):
    profile = benchmark.pedantic(
        lambda: _sensitivity_profile(scenario_name, robustness_weight, epochs),
        rounds=1,
        iterations=1,
    )
    rows = [
        ["Hedge-based TE", f"{profile['des_stable']:.3f}", f"{profile['des_bursty']:.3f}", f"{profile['des_cap']:.3f}"],
        ["FIGRET", f"{profile['figret_stable']:.3f}", f"{profile['figret_bursty']:.3f}", "-"],
    ]
    print()
    print(format_table(
        ["scheme", "mean S^max (stable pairs)", "mean S^max (bursty pairs)", "uniform cap"],
        rows,
        title=f"Figure 8 ({scenario_name}): sensitivity vs traffic variance "
        f"(FIGRET corr = {profile['figret_variance_correlation']:.2f})",
    ))
    benchmark.extra_info.update(profile)

    # Hedge-based TE caps every pair at (roughly) the same constant.
    assert profile["des_cap"] <= 2.0 / 3.0 + 1e-6
    # FIGRET gives bursty pairs lower sensitivity than stable pairs.
    assert profile["figret_bursty"] < profile["figret_stable"]
    # And its sensitivity is negatively correlated with variance.
    assert profile["figret_variance_correlation"] < 0.0
