"""Shared machinery for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  Training a
deep-learning scheme is by far the most expensive step, so trained schemes and
loaded scenarios are cached in module-level dictionaries and reused across
benchmark modules within one pytest session.

All benchmarks use scaled-down scenario variants (``*_small``) and shortened
traces so the whole harness completes on a CPU-only machine; EXPERIMENTS.md
records the scaling factors alongside the paper's original settings.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
from pathlib import Path

import numpy as np

from repro import datasets
from repro.backend import active_backend
from repro.core import TrainingConfig
from repro.evaluation import evaluate_scheme
from repro.evaluation.engine import EvaluationEngine
from repro.evaluation.metrics import MLUStatistics, normalized_mlu_statistics
from repro.solvers.lp import resolve_lp_workers, shared_cache
from repro.study import ExperimentSpec, ResultSet, Study

#: Seed used by every benchmark scenario (results are deterministic).
BENCH_SEED = 7

#: Trace lengths per scenario (shortened versus the paper's full traces).
SCENARIO_INTERVALS = {
    "geant_small": 260,
    "pfabric_small": 200,
    "meta_pod_db_small": 240,
    "meta_pod_web_small": 240,
    "meta_tor_db_small": 200,
    "meta_tor_web_small": 200,
    "uscarrier_small": 90,
    "cogentco_small": 90,
}

#: Cap on the number of evaluated test intervals per scheme.
MAX_EVAL_INTERVALS = 40

#: Session-wide dedup caches shared by every study the harness runs: one
#: scenario build and one scheme training per distinct spec, across all
#: benchmark modules (ported to the study API or not).
SCENARIO_CACHE: dict = {}
SCHEME_CACHE: dict = {}

_engine: EvaluationEngine | None = None


def bench_engine() -> EvaluationEngine:
    """The engine shared by every benchmark in the session.

    Built on the process-wide LP cache (so the trainers' normaliser solves
    are reused here and vice versa) with an ``os.cpu_count()``-derived
    process-pool width for cold LP batches -- the larger topologies
    (Cogentco/UsCarrier) are where the fan-out pays off.
    """
    global _engine
    if _engine is None:
        _engine = EvaluationEngine(cache=shared_cache(), lp_workers="auto")
    return _engine


def _session_study(spec=None) -> Study:
    """A study wired to the session caches (and, via run_study, the engine)."""
    return Study(spec, scheme_cache=SCHEME_CACHE, scenario_cache=SCENARIO_CACHE)


def scenario_spec(name: str) -> dict:
    """The declarative reference for a benchmark scenario (seed + length)."""
    return {
        "name": name,
        "seed": BENCH_SEED,
        "num_intervals": SCENARIO_INTERVALS.get(name),
    }


def get_scenario(name: str) -> datasets.Scenario:
    """Load (and cache) a benchmark scenario."""
    return _session_study().scenario(scenario_spec(name))


def run_study(
    spec,
    engine: EvaluationEngine | None = None,
    checkpoint=None,
    cell_workers: int | str | None = None,
) -> ResultSet:
    """Run a study spec on the session engine with the session dedup caches.

    ``checkpoint`` / ``cell_workers`` pass straight through to
    :meth:`repro.study.Study.run` (crash-safe incremental results and
    cell-level process-pool execution).
    """
    return _session_study(spec).run(
        engine=engine or bench_engine(),
        checkpoint=checkpoint,
        cell_workers=cell_workers,
    )


def training_config(scenario: datasets.Scenario, robustness_weight: float, epochs: int) -> TrainingConfig:
    """Benchmark-scale training configuration for a scenario.

    The GEANT-like scenario has many SD pairs but few training windows; the
    default learning rate occasionally drives the Sigmoid output layer into a
    plateau there, so it trains with a smaller learning rate.
    """
    is_geant = scenario.name.startswith("geant")
    return TrainingConfig(
        epochs=epochs,
        history_len=scenario.history_len,
        robustness_weight=robustness_weight,
        learning_rate=5e-4 if is_geant else 2e-3,
        lr_decay=0.99 if is_geant else 0.98,
        seed=BENCH_SEED,
    )


def scheme_spec(
    kind: str, scenario_name: str, robustness_weight: float = 0.15, epochs: int = 40
) -> dict:
    """The declarative spec of a trained neural scheme for a scenario.

    Spells :func:`training_config`'s per-scenario choices out as plain data,
    so study cells and :func:`trained_scheme` share one canonical key (and
    therefore one training) per scheme.
    """
    scenario = get_scenario(scenario_name)
    config = training_config(scenario, robustness_weight, epochs)
    return {
        "kind": kind,
        "epochs": config.epochs,
        "history_len": config.history_len,
        "robustness_weight": config.robustness_weight,
        "learning_rate": config.learning_rate,
        "lr_decay": config.lr_decay,
        "seed": config.seed,
    }


def trained_scheme(kind: str, scenario_name: str, robustness_weight: float = 0.15, epochs: int = 40):
    """Return a trained FIGRET / DOTE / TEAL-like scheme, training it once per session.

    Resolved through the study layer's scheme cache, so benchmarks using the
    declarative API and ones calling this helper share trainings.

    Args:
        kind: ``"figret"``, ``"dote"`` or ``"teal"``.
        scenario_name: Registered scenario name.
        robustness_weight: FIGRET's L2 weight (ignored by DOTE / TEAL).
        epochs: Training epochs.
    """
    cell = ExperimentSpec(
        scenario=scenario_spec(scenario_name),
        scheme=scheme_spec(kind, scenario_name, robustness_weight, epochs),
    )
    return _session_study().trained_scheme(cell, engine=bench_engine())


def test_slice(scenario: datasets.Scenario, max_intervals: int = MAX_EVAL_INTERVALS):
    """The evaluation slice of a scenario's test split (bounded length)."""
    _, test = scenario.split()
    limit = scenario.history_len + max_intervals
    return test[: min(len(test), limit)]


def optimal_mlus(scenario: datasets.Scenario, max_intervals: int = MAX_EVAL_INTERVALS) -> np.ndarray:
    """Omniscient MLUs over the evaluation slice of a scenario.

    Memoisation now lives in the evaluation engine's shared
    :class:`~repro.solvers.lp.OptimalMLUCache` (keyed per demand matrix), so
    repeated calls -- and every other experiment touching the same demands --
    are cache hits.
    """
    sliced = test_slice(scenario, max_intervals)
    return bench_engine().optimal_mlus(scenario.paths, sliced.flat_demands())


def evaluate_on_scenario(scheme, scenario: datasets.Scenario, max_intervals: int = MAX_EVAL_INTERVALS):
    """Evaluate an already-precomputed scheme on a scenario's test slice."""
    sliced = test_slice(scenario, max_intervals)
    return evaluate_scheme(
        scheme,
        sliced,
        history_len=scenario.history_len,
        optimal_mlus=optimal_mlus(scenario, max_intervals),
        engine=bench_engine(),
    )


def stats_row(name: str, stats: MLUStatistics) -> list[str]:
    """One formatted row of a Figure-5 style comparison table."""
    return [
        name,
        f"{stats.mean:.3f}",
        f"{stats.median:.3f}",
        f"{stats.p90:.3f}",
        f"{stats.p99:.3f}",
        f"{stats.worst:.3f}",
        f"{stats.severe_congestion_fraction * 100:.1f}%",
    ]


def summarize(series: np.ndarray) -> MLUStatistics:
    """Shortcut used by benches that build their own normalised series."""
    return normalized_mlu_statistics(series)


# --------------------------------------------------------------------- #
# Machine-readable benchmark records (the BENCH_*.json artifacts)
# --------------------------------------------------------------------- #

#: On-disk format marker / version of the benchmark records.
BENCH_RECORD_FORMAT = "repro-bench-record"
BENCH_RECORD_VERSION = 1


def bench_output_dir() -> Path:
    """Directory the ``BENCH_*.json`` records are written to.

    The repository root by default (CI uploads ``BENCH_*.json`` from there
    as a workflow artifact); override with ``REPRO_BENCH_DIR``.
    """
    override = os.environ.get("REPRO_BENCH_DIR")
    if override:
        return Path(override).expanduser()
    return Path(__file__).resolve().parent.parent


def write_bench_record(
    name: str,
    lp_workers: int | str | None = None,
    update: bool = False,
    **metrics,
) -> Path:
    """Write one machine-readable ``BENCH_<name>.json`` benchmark record.

    Every record carries the context needed to compare runs over time --
    array backend, LP worker width, python version -- plus the bench's own
    metrics (solves/sec, replay wall-times, speedups, ...).  The CI
    benchmark-regression job uploads these files as artifacts, so the perf
    trajectory of the replay engine is tracked per commit instead of living
    only in prose.

    Args:
        name: Bench identifier (becomes the ``BENCH_<name>.json`` filename).
        lp_workers: LP process-pool width the bench ran with (resolved, so
            ``"auto"`` records the actual width).  Benches that *sweep*
            widths themselves pass ``None`` -- recorded as ``null`` rather
            than a misleading single width -- and list the swept widths in
            their own metrics.  ``REPRO_LP_WORKERS`` deliberately does not
            leak into the record: only what the bench explicitly ran with is
            written.
        update: Merge the new metrics into an existing record of the same
            bench instead of replacing it -- how several tests of one module
            extend a single ``BENCH_*.json`` (an unreadable or foreign
            existing file is replaced).
        **metrics: JSON-serialisable measurement values.

    Returns:
        The path written.
    """
    path = bench_output_dir() / f"BENCH_{name}.json"
    if update and path.exists():
        try:
            with open(path, encoding="utf-8") as handle:
                existing = json.load(handle)
            if (
                isinstance(existing, dict)
                and existing.get("format") == BENCH_RECORD_FORMAT
                and existing.get("bench") == name
                and isinstance(existing.get("metrics"), dict)
            ):
                metrics = {**existing["metrics"], **metrics}
        except (OSError, ValueError):
            pass
    record = {
        "format": BENCH_RECORD_FORMAT,
        "version": BENCH_RECORD_VERSION,
        "bench": name,
        "backend": active_backend().name,
        "lp_workers": resolve_lp_workers(lp_workers, use_env=False),
        "python": platform.python_version(),
        "recorded_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "metrics": metrics,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
