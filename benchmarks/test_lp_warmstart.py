"""Warm-started LP backend throughput on the omniscient solve hot path.

``BENCH_engine_replay.json`` recorded the cold LP pass as the dominant cost
of every first replay (~95 fresh solves/sec with scipy's ``linprog``).  The
persistent ``highs`` backend (:mod:`repro.solvers.lp_backend`) builds one
HiGHS model per (path set, bounds) key and per demand only rewrites the
demand-carrying column bounds, re-solving dual-simplex from the previous
basis.  This bench measures fresh solves/sec per backend per scenario over
the exact demand family the engine-replay baseline solved, asserts the two
backends agree on every optimal MLU to 1e-9, and records
``BENCH_lp_warmstart.json`` -- the record CI's benchmark-regression job
enforces a ``fresh_lp_solves_per_second`` floor from.

Without an importable ``highs`` backend the bench skips (it exists to pin
the warm-start win, not to re-measure scipy alone).

Methodology notes baked into the record:

* "Fresh" means no value cache: every demand row is LP-solved; only the
  *model* (constraint structure for scipy, the persistent HiGHS model for
  highs) is reused, exactly as in a cold :class:`OptimalMLUCache` pass.
* Each backend's rate is the best of ``PASSES`` timed sweeps over the
  demand family, because single-core benchmark boxes show double-digit
  percent clock drift between passes; the per-pass rates are recorded too.
* The first highs pass includes the one-time model build, so the committed
  ``warm_vs_cold_ratio`` (steady-state single-solve rate over the
  build-included first-sweep rate) understates the per-solve win.
"""

from __future__ import annotations

import time
import warnings

import numpy as np
import pytest

import bench_common as common
from repro.solvers.lp import count_lp_solves, solve_mlu_lp_batch
from repro.solvers.lp_backend import get_lp_backend, importable_lp_backends

#: Scenarios x the engine-replay evaluation slice: the same demand family the
#: 94.8 solves/sec baseline in BENCH_engine_replay.json was measured on.
SCENARIOS = ("geant_small", "pfabric_small")
BASELINE_SCENARIO = "geant_small"
#: Timed sweeps per backend per scenario (best-of, drift mitigation).
PASSES = 5
#: Equivalence tolerance between backends on the optimal MLU.
MLU_EQUIVALENCE_ATOL = 1e-9


def _fresh_rate(path_set, demands, backend_name: str) -> tuple[dict, np.ndarray]:
    """Best-of-``PASSES`` fresh solves/sec for one backend on one family."""
    per_pass = []
    mlus: np.ndarray | None = None
    for _ in range(PASSES):
        with count_lp_solves() as tally:
            start = time.perf_counter()
            solved = solve_mlu_lp_batch(
                path_set, demands, backend=backend_name, mlu_only=True
            )
            elapsed = time.perf_counter() - start
        assert tally.count == len(demands)
        mlus = np.array([mlu for _, mlu in solved])
        per_pass.append(len(demands) / elapsed)
    return {
        "fresh_lp_solves_per_second": max(per_pass),
        "per_pass_solves_per_second": per_pass,
        "num_demands": len(demands),
    }, mlus


def _warm_vs_cold(path_set, demands) -> dict:
    """Steady-state warm re-solve rate vs the build-included cold sweep."""
    backend = get_lp_backend("highs")
    backend.clear_models()
    start = time.perf_counter()
    solve_mlu_lp_batch(path_set, demands, backend=backend, mlu_only=True)
    cold_elapsed = time.perf_counter() - start
    cold_rate = len(demands) / cold_elapsed
    # Warm: the model exists and holds the last optimal basis; re-solving
    # the same family again is the steady state of a long trace.
    start = time.perf_counter()
    solve_mlu_lp_batch(path_set, demands, backend=backend, mlu_only=True)
    warm_elapsed = time.perf_counter() - start
    warm_rate = len(demands) / warm_elapsed
    return {
        "cold_solves_per_second": cold_rate,
        "warm_solves_per_second": warm_rate,
        "warm_vs_cold_ratio": warm_rate / cold_rate,
    }


@pytest.mark.paper("Appendix B Eq. 9 solver throughput")
def test_lp_warmstart(benchmark):
    if "highs" not in importable_lp_backends():
        pytest.skip("no importable highs backend (highspy or scipy >= 1.15)")
    metrics: dict[str, dict] = {}

    def run():
        for name in SCENARIOS:
            scenario = common.get_scenario(name)
            demands = common.test_slice(scenario).flat_demands()
            per_backend: dict[str, dict] = {}
            reference: dict[str, np.ndarray] = {}
            for backend_name in ("scipy", "highs"):
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", RuntimeWarning)
                    rates, mlus = _fresh_rate(scenario.paths, demands, backend_name)
                per_backend[backend_name] = rates
                reference[backend_name] = mlus
            # The tentpole's correctness bar, asserted in the bench itself:
            # identical optimal MLUs to 1e-9 across the whole family.
            np.testing.assert_allclose(
                reference["highs"],
                reference["scipy"],
                atol=MLU_EQUIVALENCE_ATOL,
                rtol=0,
            )
            per_backend["highs"].update(_warm_vs_cold(scenario.paths, demands))
            per_backend["speedup_vs_scipy"] = (
                per_backend["highs"]["fresh_lp_solves_per_second"]
                / per_backend["scipy"]["fresh_lp_solves_per_second"]
            )
            metrics[name] = per_backend
        return metrics

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    headline = outcome[BASELINE_SCENARIO]["highs"]["fresh_lp_solves_per_second"]
    common.write_bench_record(
        "lp_warmstart",
        lp_workers=1,  # throughput of ONE process; pools multiply it
        passes=PASSES,
        equivalence_atol=MLU_EQUIVALENCE_ATOL,
        baseline_scenario=BASELINE_SCENARIO,
        fresh_lp_solves_per_second=headline,
        scenarios=outcome,
    )
    print()
    for name, per_backend in outcome.items():
        scipy_rate = per_backend["scipy"]["fresh_lp_solves_per_second"]
        highs_rate = per_backend["highs"]["fresh_lp_solves_per_second"]
        ratio = per_backend["highs"]["warm_vs_cold_ratio"]
        print(
            f"LP warm-start {name}: scipy {scipy_rate:.1f}/s, "
            f"highs {highs_rate:.1f}/s "
            f"({per_backend['speedup_vs_scipy']:.1f}x, warm/cold {ratio:.2f}x)"
        )
    # The committed record must show >=5x the 94.8 fresh solves/sec the
    # engine-replay baseline recorded (474/s; CI enforces a floor from the
    # record, scaled to runner hardware).  In-bench the gate is the
    # *same-run* speedup over scipy, which is what warm-starting actually
    # buys and does not flake with the clock speed of the box.
    speedup = outcome[BASELINE_SCENARIO]["speedup_vs_scipy"]
    assert speedup >= 5.0, (
        f"persistent highs backend is only {speedup:.1f}x scipy on "
        f"{BASELINE_SCENARIO} (need >= 5x; highs {headline:.1f}/s)"
    )
