"""Study-service overhead: job throughput, stream latency, warm-state reuse.

The daemon's value proposition is that the *service layer* is invisible:
submitting over the Unix socket, queueing, streaming records back, and the
terminal accounting must all cost microseconds-to-milliseconds next to the
cells' own LP/training work, and the warm process-wide caches must make an
overlapping grid from a second client literally free.  This bench pins
three numbers:

* ``submit_to_first_result_seconds`` -- wall time from a warm ``submit``
  call to its first streamed ``record`` message: connect + expand + queue +
  one cache-served cell + one socket round-trip.
* ``jobs_per_second`` -- sustained rate of whole warm jobs (submit, stream,
  terminal summary) through the FIFO queue, one blocking client.
* ``cross_client_cache_hit_rate`` -- ``1 - warm_solves / cold_solves`` for
  an identical grid submitted by a *different* client connection: the
  tentpole's zero-repeat-work guarantee as a ratio (must be 1.0; the floor
  in ``benchmarks/floors.json`` allows no repeat solves).

The committed ``BENCH_study_service.json`` record feeds CI's
benchmark-regression job via ``benchmarks/check_floors.py``.
"""

from __future__ import annotations

import tempfile
import threading
import time
from pathlib import Path

import bench_common as common
from repro.study import StudyClient, StudyServer

#: Warm identical jobs timed for the throughput number.
NUM_WARM_JOBS = 10

#: The benched grid: one scenario, one trained scheme, three perturbation
#: cells -- small enough that service overhead would dominate if it were
#: bad, real enough that the cold job does genuine LP work to reuse.
SERVICE_SPEC = {
    "scenario": {
        "name": "bench-service",
        "topology": {"kind": "fully_connected", "num_nodes": 4, "capacity": 10.0},
        "traffic": {
            "kind": "datacenter",
            "level": "pod",
            "seed": common.BENCH_SEED,
            "num_intervals": 30,
        },
        "history_len": 3,
    },
    "scheme": {"kind": "figret", "epochs": 2, "history_len": 3, "seed": 0},
    "perturbation": {
        "sweep": [
            {"kind": "none"},
            {"kind": "fluctuation", "alpha": 1.0},
            {"kind": "fluctuation", "alpha": 2.0},
        ]
    },
    "max_intervals": 10,
}


def test_study_service_overhead():
    # Sockets live under mkdtemp, not pytest's tmp_path: AF_UNIX paths cap
    # out around 107 bytes and nested pytest temp dirs can exceed that.
    root = Path(tempfile.mkdtemp(prefix="repro-bench-svc-"))
    server = StudyServer(root / "bench.sock")
    ready = threading.Event()
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"ready": ready}, daemon=True
    )
    thread.start()
    assert ready.wait(10), "daemon never became ready"
    try:
        # Cold job: pays the LP solves and the training once.
        cold = StudyClient(server.socket_path).submit(SERVICE_SPEC)
        assert cold.status == "done" and len(cold.results) == 3
        cold_solves = cold.summary["lp_solves"]
        assert cold_solves > 0 and cold.summary["trainings"] == 1

        # Warm job from a NEW client connection: the cross-client hit rate.
        warm = StudyClient(server.socket_path).submit(SERVICE_SPEC)
        assert warm.status == "done"
        hit_rate = 1.0 - warm.summary["lp_solves"] / cold_solves
        assert warm.summary["lp_solves"] == 0 and warm.summary["trainings"] == 0

        # Submit-to-first-result latency on a warm job.
        first_record_at: list[float] = []

        def mark_first_record(message: dict) -> None:
            if message.get("type") == "record" and not first_record_at:
                first_record_at.append(time.perf_counter())

        start = time.perf_counter()
        StudyClient(server.socket_path).submit(
            SERVICE_SPEC, on_message=mark_first_record
        )
        submit_to_first = first_record_at[0] - start

        # Sustained warm-job throughput through the FIFO queue.
        client = StudyClient(server.socket_path)
        start = time.perf_counter()
        for _ in range(NUM_WARM_JOBS):
            outcome = client.submit(SERVICE_SPEC)
            assert outcome.summary["lp_solves"] == 0
        jobs_per_second = NUM_WARM_JOBS / (time.perf_counter() - start)
    finally:
        server.stop()
        thread.join(timeout=10)

    print(
        f"study service: {jobs_per_second:.1f} warm jobs/s, "
        f"{submit_to_first * 1e3:.1f} ms submit-to-first-result, "
        f"cross-client cache hit rate {hit_rate:.3f} "
        f"({cold_solves} cold solves, {warm.summary['lp_solves']} warm)"
    )

    common.write_bench_record(
        "study_service",
        grid_cells=len(SERVICE_SPEC["perturbation"]["sweep"]),
        num_warm_jobs=NUM_WARM_JOBS,
        cold_lp_solves=cold_solves,
        jobs_per_second=jobs_per_second,
        submit_to_first_result_seconds=submit_to_first,
        cross_client_cache_hit_rate=hit_rate,
    )
