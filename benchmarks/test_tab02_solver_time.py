"""Table 2: calculation time and precomputation time per TE scheme.

The paper's findings to reproduce:

* FIGRET's per-interval calculation (a DNN forward pass) is orders of
  magnitude faster than solving the LP, and adding the hedging constraints
  (Des TE) makes the LP slower still.
* Oblivious / COPE are feasible only on small topologies -- their LP size
  explodes with the network (our benchmark demonstrates feasibility on the
  small full-mesh and reports the variable count that rules out ToR-scale
  networks).

Absolute numbers differ from the paper (CPU here vs GPU + Gurobi there); the
*ordering* and rough ratios are the reproduction target.
"""

from __future__ import annotations

import time

import pytest

import bench_common as common
from repro.evaluation.reporting import format_table
from repro.evaluation.timing import measure_scheme_timing
from repro.solvers.oblivious import oblivious_problem_size, solve_oblivious_routing
from repro.study import build_scheme


@pytest.mark.paper("Table 2")
@pytest.mark.parametrize("scenario_name", ["geant_small", "meta_tor_db_small"])
def test_tab02_calculation_and_precompute_time(benchmark, scenario_name):
    scenario = common.get_scenario(scenario_name)
    train, _ = scenario.split()
    test = common.test_slice(scenario, 10)

    # FIGRET is cached (already trained by earlier benches when they ran
    # first); measure its inference separately from its training time.
    figret = common.trained_scheme(
        "figret", scenario_name, 0.1 if scenario_name == "geant_small" else 0.3,
        80 if scenario_name == "geant_small" else 35,
    )

    def run():
        flat = test.flat_demands()
        h = scenario.history_len
        # Per-interval calculation time of FIGRET (forward pass).
        start = time.perf_counter()
        samples = 0
        for t in range(h, len(flat)):
            figret.configure(flat[t - h : t])
            samples += 1
        figret_calc = (time.perf_counter() - start) / max(samples, 1)

        # The LP baselines come from the same scheme-spec registry the study
        # grids build from, so tab02 times exactly what the grids replay.
        lp_timing = measure_scheme_timing(
            build_scheme({"kind": "pred_te"}, scenario.paths), train, test, h, max_intervals=5
        )
        des_timing = measure_scheme_timing(
            build_scheme({"kind": "des_te"}, scenario.paths), train, test, h, max_intervals=5
        )
        return {
            "FIGRET": figret_calc,
            "LP": lp_timing.mean_calculation_seconds,
            "Des TE": des_timing.mean_calculation_seconds,
        }

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    oblivious_vars = oblivious_problem_size(scenario.paths)
    rows = [
        ["FIGRET (DNN forward)", f"{times['FIGRET'] * 1e3:.2f} ms"],
        ["LP (no anti-burst)", f"{times['LP'] * 1e3:.2f} ms"],
        ["Des TE (LP + sensitivity caps)", f"{times['Des TE'] * 1e3:.2f} ms"],
        ["Oblivious/COPE LP variables", f"{oblivious_vars:,}"],
    ]
    print()
    print(format_table(["scheme", "per-interval calculation"], rows,
                       title=f"Table 2 ({scenario_name}): calculation time"))
    benchmark.extra_info["times"] = times
    benchmark.extra_info["oblivious_variables"] = oblivious_vars

    # Ordering reproduced: FIGRET << LP <= Des TE.
    assert times["FIGRET"] < times["LP"]
    assert times["LP"] <= times["Des TE"] * 1.5


@pytest.mark.paper("Table 2 (precomputation)")
def test_tab02_oblivious_feasibility_boundary(benchmark):
    small = common.get_scenario("meta_pod_db_small")
    tor = common.get_scenario("meta_tor_db_small")

    def run():
        start = time.perf_counter()
        _, ratio = solve_oblivious_routing(small.paths)
        elapsed = time.perf_counter() - start
        return elapsed, ratio

    elapsed, ratio = benchmark.pedantic(run, rounds=1, iterations=1)
    small_vars = oblivious_problem_size(small.paths)
    tor_vars = oblivious_problem_size(tor.paths)
    rows = [
        [small.name, f"{small_vars:,}", f"feasible ({elapsed:.2f}s, ratio {ratio:.2f})"],
        [tor.name, f"{tor_vars:,}", "impractical (variable count)"],
    ]
    print()
    print(format_table(["network", "oblivious LP variables", "status"], rows,
                       title="Table 2: oblivious/COPE precomputation feasibility"))
    benchmark.extra_info["small_variables"] = small_vars
    benchmark.extra_info["tor_variables"] = tor_vars

    assert ratio >= 1.0
    assert tor_vars > 20 * small_vars
