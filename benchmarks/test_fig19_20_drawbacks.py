"""Figures 19 and 20 (Appendix G): drawbacks of prediction-based and pure-MLU TE.

* Figure 19 -- objective mismatch: two demand predictions with identical
  mean-squared error lead to different MLUs, because mispredicting traffic
  that rides high-capacity paths matters less.
* Figure 20 -- DOTE's limitation: when a pair looks stable throughout the
  history window and then suddenly bursts, a pure-MLU scheme has placed that
  pair on a high-sensitivity (concentrated) path allocation and suffers a
  large MLU spike; FIGRET's variance-weighted hedging dampens the spike.
"""

from __future__ import annotations

import numpy as np
import pytest

import bench_common as common
from repro.evaluation.reporting import format_table
from repro.paths.ksp import build_ksp_path_set
from repro.solvers.lp import solve_mlu_lp
from repro.study import ExperimentSpec, InlineScenario, Study
from repro.te.mlu import max_link_utilization
from repro.te.sensitivity import max_sensitivity_per_pair
from repro.topology.generators import mismatch_example
from repro.traffic.matrix import TrafficMatrix, TrafficMatrixSequence


@pytest.mark.paper("Figure 19")
def test_fig19_prediction_mlu_objective_mismatch(benchmark):
    topology = mismatch_example()
    paths = build_ksp_path_set(topology, k=2)

    def demand_vector(d1: float, d2: float) -> np.ndarray:
        demand = np.zeros((4, 4))
        demand[0, 2] = d1   # s -> t1 rides capacity-50 paths
        demand[0, 3] = d2   # s -> t2 rides capacity-100 paths
        return paths.demand_vector(demand)

    upcoming = demand_vector(60.0, 60.0)
    prediction_a = demand_vector(50.0, 60.0)   # errs on the low-capacity pair
    prediction_b = demand_vector(60.0, 50.0)   # errs on the high-capacity pair

    def run():
        config_a, _ = solve_mlu_lp(paths, prediction_a)
        config_b, _ = solve_mlu_lp(paths, prediction_b)
        return (
            max_link_utilization(paths, config_a, upcoming),
            max_link_utilization(paths, config_b, upcoming),
        )

    mlu_a, mlu_b = benchmark.pedantic(run, rounds=1, iterations=1)
    mse_a = float(((prediction_a - upcoming) ** 2).mean())
    mse_b = float(((prediction_b - upcoming) ** 2).mean())
    rows = [
        ["errs on s->t1 (thin paths)", f"{mse_a:.1f}", f"{mlu_a:.3f}"],
        ["errs on s->t2 (fat paths)", f"{mse_b:.1f}", f"{mlu_b:.3f}"],
    ]
    print()
    print(format_table(["prediction", "MSE", "resulting MLU"], rows,
                       title="Figure 19: equal prediction error, different MLU"))
    benchmark.extra_info["mlu_a"] = float(mlu_a)
    benchmark.extra_info["mlu_b"] = float(mlu_b)

    # Identical prediction accuracy...
    assert mse_a == pytest.approx(mse_b)
    # ...but the error on the thin-capacity pair hurts MLU more.
    assert mlu_a > mlu_b


def _stable_then_burst_scenario(seed: int = 3):
    """A 5-node mesh where one pair is quiet during training and bursts in the test."""
    from repro.topology.generators import fully_connected

    topology = fully_connected(5, capacity=10.0)
    paths = build_ksp_path_set(topology, k=3)
    rng = np.random.default_rng(seed)
    n = topology.num_nodes
    off_diag = ~np.eye(n, dtype=bool)
    num_pairs = n * (n - 1)
    base = rng.lognormal(0.0, 0.4, size=num_pairs) + 1.0
    quiet_pair = 0          # pair (0, 1): almost silent during training
    base[quiet_pair] = 0.05
    matrices = []
    total = 140
    for t in range(total):
        flat = base * rng.lognormal(0.0, 0.1, size=num_pairs)
        if t >= 110 and t % 7 == 0:
            flat[quiet_pair] = 25.0      # sudden, unforeseeable burst in the test period
        matrix = np.zeros((n, n))
        matrix[off_diag] = flat
        matrices.append(TrafficMatrix(matrix))
    traffic = TrafficMatrixSequence(matrices, name="stable-then-burst")
    return topology, paths, traffic, quiet_pair


@pytest.mark.paper("Figure 20")
def test_fig20_dote_limitation_on_surprise_burst(benchmark):
    topology, paths, traffic, quiet_pair = _stable_then_burst_scenario()
    train, test = traffic.split(0.75)
    # The trainings resolve through the study layer's scheme-spec registry
    # and per-study dedup cache instead of bespoke construct+precompute
    # glue.  The session-shared caches are deliberately NOT used here: a
    # live InlineScenario keys by object identity, and parking trainings
    # under an id()-based key in a cache that outlives the scenario invites
    # id-reuse aliasing.  The burst analysis below has no replay
    # equivalent, so it stays.
    scenario = InlineScenario(
        paths=paths, train=train, test=test, traffic=traffic,
        history_len=8, name="stable-then-burst",
    )
    scheme_params = {
        "epochs": 30, "history_len": 8, "hidden_sizes": [64, 64],
        "robustness_weight": 0.6, "seed": common.BENCH_SEED,
    }
    study = Study()

    def run():
        dote = study.trained_scheme(
            ExperimentSpec(scenario=scenario, scheme=dict(scheme_params, kind="dote")),
            engine=common.bench_engine(),
        )
        figret = study.trained_scheme(
            ExperimentSpec(scenario=scenario, scheme=dict(scheme_params, kind="figret")),
            engine=common.bench_engine(),
        )
        flat = test.flat_demands()
        h = scenario.history_len
        from repro.solvers.lp import omniscient_mlu

        burst_times = [t for t in range(h, len(flat)) if flat[t, quiet_pair] > 10.0]
        dote_sens, figret_sens, dote_norm, figret_norm = [], [], [], []
        for t in burst_times:
            history = flat[t - h : t]
            dote_cfg = dote.configure(history)
            figret_cfg = figret.configure(history)
            optimal = omniscient_mlu(paths, flat[t])
            dote_sens.append(max_sensitivity_per_pair(paths, dote_cfg, normalized=True)[quiet_pair])
            figret_sens.append(max_sensitivity_per_pair(paths, figret_cfg, normalized=True)[quiet_pair])
            dote_norm.append(max_link_utilization(paths, dote_cfg, flat[t]) / optimal)
            figret_norm.append(max_link_utilization(paths, figret_cfg, flat[t]) / optimal)
        return (
            float(np.mean(dote_sens)), float(np.mean(figret_sens)),
            float(np.mean(dote_norm)), float(np.mean(figret_norm)), len(burst_times),
        )

    dote_sens, figret_sens, dote_norm, figret_norm, bursts = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    rows = [
        ["DOTE", f"{dote_sens:.3f}", f"{dote_norm:.3f}"],
        ["FIGRET", f"{figret_sens:.3f}", f"{figret_norm:.3f}"],
    ]
    print()
    print(format_table(
        ["scheme", "S^max of the quiet pair", "normalised MLU when the pair bursts"],
        rows,
        title=f"Figure 20: surprise burst on a historically quiet pair ({bursts} burst intervals)",
    ))
    benchmark.extra_info.update({
        "dote_sensitivity": dote_sens,
        "figret_sensitivity": figret_sens,
        "dote_normalized_mlu": dote_norm,
        "figret_normalized_mlu": figret_norm,
    })

    assert bursts > 0
    # The DOTE limitation the figure illustrates: the historically quiet pair
    # sits on a concentrated, high-sensitivity allocation, so when it
    # unexpectedly bursts the achieved MLU is well above the optimum.
    assert dote_sens > 0.4
    assert dote_norm > 1.15
