"""Back-compat pins: every legacy runner facade == the equivalent Study run.

The experiment facades in :mod:`repro.evaluation.runner` are thin shims over
:class:`repro.study.Study`.  These tests pin the other direction too: a
declarative study spec (registered scenario + scheme spec dicts, same seeds)
reproduces each facade's results bit-identically on the numpy backend, so
the legacy API can be migrated cell-for-cell.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Figret, TrainingConfig
from repro.datasets import from_config, load, register_scenario, unregister_scenario
from repro.evaluation import (
    compare_schemes,
    drift_experiment,
    evaluate_scheme,
    failure_experiment,
    fluctuation_experiment,
)
from repro.evaluation.engine import EvaluationEngine
from repro.solvers import DesensitizationTE, FaultAwareDesensitizationTE, PredictionBasedTE
from repro.solvers.lp import OptimalMLUCache
from repro.study import Study, sweep

SCENARIO = "backcompat_mesh"
SEED = 4
HISTORY = 3

FIGRET_SPEC = {
    "kind": "figret",
    "epochs": 2,
    "history_len": HISTORY,
    "robustness_weight": 0.1,
    "normalize_by_optimal": False,
    "seed": 0,
}


def _figret_config() -> TrainingConfig:
    return TrainingConfig(
        epochs=2,
        history_len=HISTORY,
        robustness_weight=0.1,
        normalize_by_optimal=False,
        seed=0,
    )


@pytest.fixture(scope="module")
def scenario():
    register_scenario(SCENARIO)(
        lambda seed, num_intervals: from_config(
            {
                "name": SCENARIO,
                "topology": {"kind": "fully_connected", "num_nodes": 4, "capacity": 10.0},
                "traffic": {
                    "kind": "datacenter",
                    "level": "pod",
                    "seed": seed,
                    "num_intervals": num_intervals or 50,
                },
                "history_len": HISTORY,
            }
        )
    )
    yield load(SCENARIO, seed=SEED)
    unregister_scenario(SCENARIO)


def _engine() -> EvaluationEngine:
    return EvaluationEngine(cache=OptimalMLUCache())


def _scenario_ref() -> dict:
    return {"name": SCENARIO, "seed": SEED}


def test_evaluate_scheme_matches_study_cell(scenario):
    train, test = scenario.split()
    scheme = Figret(scenario.paths, _figret_config())
    scheme.precompute(train)
    legacy = evaluate_scheme(scheme, test, HISTORY, engine=_engine())
    record = Study(
        [
            {
                "scenario": _scenario_ref(),
                "scheme": scheme,
                "train": False,
            }
        ]
    ).run(engine=_engine())[0]
    np.testing.assert_array_equal(record.series, legacy.normalized_mlus)
    np.testing.assert_array_equal(record.result.raw_mlus, legacy.raw_mlus)
    np.testing.assert_array_equal(record.result.optimal_mlus, legacy.optimal_mlus)


def test_compare_schemes_matches_study_grid(scenario):
    train, test = scenario.split()
    live = [
        Figret(scenario.paths, _figret_config()),
        DesensitizationTE(scenario.paths),
        PredictionBasedTE(scenario.paths),
    ]
    legacy = compare_schemes(live, train, test, HISTORY, engine=_engine())

    declarative = Study(
        {
            "scenario": _scenario_ref(),
            "scheme": sweep(
                dict(FIGRET_SPEC),
                {"kind": "des_te"},
                {"kind": "pred_te"},
            ),
        }
    ).run(engine=_engine())
    assert [record.scheme for record in declarative] == list(legacy)
    for record in declarative:
        np.testing.assert_array_equal(
            record.series, legacy[record.scheme].normalized_mlus
        )


def test_fluctuation_facade_matches_study(scenario):
    train, test = scenario.split()
    scheme = Figret(scenario.paths, _figret_config())
    scheme.precompute(train)
    alphas = (0.5, 2.0)
    legacy = fluctuation_experiment(
        scheme, test, train, HISTORY, alphas=alphas, seed=9, engine=_engine()
    )

    results = Study(
        {
            "scenario": _scenario_ref(),
            "scheme": dict(FIGRET_SPEC),
            "perturbation": sweep(
                *[{"kind": "fluctuation", "alpha": alpha, "seed": 9} for alpha in alphas]
            ),
        }
    ).run(engine=_engine())
    for alpha, record in zip(alphas, results):
        assert record.metrics["average_decline"] == legacy[alpha]["average_decline"]
        assert record.metrics["p90_decline"] == legacy[alpha]["p90_decline"]


def test_worst_case_fluctuation_matches_study(scenario):
    train, test = scenario.split()
    scheme = Figret(scenario.paths, _figret_config())
    scheme.precompute(train)
    legacy = fluctuation_experiment(
        scheme, test, train, HISTORY, alphas=(1.0,), worst_case=True, seed=3,
        engine=_engine(),
    )
    record = Study(
        {
            "scenario": _scenario_ref(),
            "scheme": dict(FIGRET_SPEC),
            "perturbation": {"kind": "fluctuation", "alpha": 1.0, "worst_case": True,
                             "seed": 3},
        }
    ).run(engine=_engine())[0]
    assert record.metrics["average_decline"] == legacy[1.0]["average_decline"]
    assert record.metrics["p90_decline"] == legacy[1.0]["p90_decline"]


def test_drift_facade_matches_study(scenario):
    segments = ((0.0, 0.25), (0.25, 0.5))

    def factory():
        return Figret(scenario.paths, _figret_config())

    legacy = drift_experiment(
        factory, scenario.traffic, HISTORY, segments=segments, engine=_engine()
    )
    results = Study(
        {
            "scenario": _scenario_ref(),
            "scheme": dict(FIGRET_SPEC),
            "perturbation": sweep(
                *[{"kind": "drift", "train_segment": list(seg)} for seg in segments]
            ),
        }
    ).run(engine=_engine())
    for (start, end), record in zip(segments, results):
        label = f"{int(start * 100)}%-{int(end * 100)}%"
        assert record.metrics["average_decline"] == legacy[label]["average_decline"]
        assert record.metrics["p90_decline"] == legacy[label]["p90_decline"]


def test_failure_facade_matches_study(scenario):
    _, test = scenario.split()
    live = [DesensitizationTE(scenario.paths), FaultAwareDesensitizationTE(scenario.paths)]
    legacy = failure_experiment(
        live, test, HISTORY, num_failures=1, num_trials=2, seed=42, engine=_engine()
    )
    results = Study(
        {
            "scenario": _scenario_ref(),
            "scheme": sweep({"kind": "des_te"}, {"kind": "fa_des_te"}),
            "perturbation": {"kind": "failure", "num_failures": 1, "num_trials": 2,
                             "seed": 42},
            "train": False,
        }
    ).run(engine=_engine())
    assert [record.scheme for record in results] == list(legacy)
    for record in results:
        np.testing.assert_array_equal(record.series, legacy[record.scheme])


def test_facades_expose_backend_parameter(scenario):
    """The backend= satellite: every experiment facade accepts backend=...

    (pinned numerically in the numpy case: an explicit backend gives the
    same bit-identical results as the default engine).
    """
    train, test = scenario.split()
    scheme = Figret(scenario.paths, _figret_config())
    scheme.precompute(train)

    default = compare_schemes([scheme], train, test, HISTORY, precompute=False,
                              engine=_engine())
    pinned = compare_schemes([scheme], train, test, HISTORY, precompute=False,
                             backend="numpy")
    np.testing.assert_array_equal(
        pinned[scheme.name].normalized_mlus, default[scheme.name].normalized_mlus
    )

    fluct = fluctuation_experiment(
        scheme, test, train, HISTORY, alphas=(1.0,), backend="numpy"
    )
    assert set(fluct[1.0]) == {"average_decline", "p90_decline"}

    drift = drift_experiment(
        lambda: Figret(scenario.paths, _figret_config()),
        scenario.traffic,
        HISTORY,
        segments=((0.0, 0.25),),
        backend="numpy",
    )
    assert "0%-25%" in drift

    failures = failure_experiment(
        [DesensitizationTE(scenario.paths)], test, HISTORY, num_failures=1,
        num_trials=1, backend="numpy",
    )
    assert "Des TE" in failures
