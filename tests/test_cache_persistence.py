"""Round-trip tests for the disk-persistent :class:`OptimalMLUCache`.

Contract: a cache persisted by one session and reloaded by a fresh one
serves every previously solved normaliser without a single LP re-solve
(asserted via the raw solver call counter) and with bit-identical values;
corrupt, truncated, or version-mismatched store files degrade to cold
solves with a warning -- never a crash -- and are repaired on the next
flush.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.evaluation.engine import EvaluationEngine
from repro.solvers import lp_solve_calls
from repro.solvers.lp import (
    CACHE_FILE_FORMAT,
    CACHE_FILE_VERSION,
    OptimalMLUCache,
)

#: Pool width for cold LP batches (sequential unless CI sets it).
LP_WORKERS = int(os.environ.get("REPRO_LP_WORKERS", "0")) or None


@pytest.fixture()
def cache_file(tmp_path):
    return tmp_path / "optimal_mlu_cache.jsonl"


def _demands(mesh4_traffic, count=8):
    return mesh4_traffic[:count].flat_demands()


class TestRoundTrip:
    def test_reload_serves_identical_values_with_zero_solves(
        self, mesh4_paths, mesh4_traffic, cache_file
    ):
        demands = _demands(mesh4_traffic)
        with OptimalMLUCache(path=cache_file) as first:
            values = first.optimal_mlus(mesh4_paths, demands, workers=LP_WORKERS)
            assert first.misses == len(demands)

        second = OptimalMLUCache(path=cache_file)
        assert second.loaded == len(demands)
        solves_before = lp_solve_calls()
        reloaded = second.optimal_mlus(mesh4_paths, demands)
        assert lp_solve_calls() == solves_before  # zero LP re-solves
        assert second.misses == 0
        assert second.hits == len(demands)
        np.testing.assert_array_equal(reloaded, values)  # bit-identical

    def test_fresh_engine_on_persisted_cache_replays_without_solving(
        self, mesh4_paths, mesh4_traffic, cache_file
    ):
        from repro.core import Dote, TrainingConfig

        test = mesh4_traffic[:14]
        train, _ = mesh4_traffic.split(0.7)
        scheme = Dote(
            mesh4_paths,
            TrainingConfig(
                epochs=1, history_len=4, hidden_sizes=(8,), normalize_by_optimal=False
            ),
        )
        scheme.precompute(train)
        with OptimalMLUCache(path=cache_file) as cold_cache:
            cold = EvaluationEngine(cache=cold_cache, lp_workers=LP_WORKERS).evaluate_scheme(
                scheme, test, 4
            )

        warm_cache = OptimalMLUCache(path=cache_file)
        solves_before = lp_solve_calls()
        warm = EvaluationEngine(cache=warm_cache).evaluate_scheme(scheme, test, 4)
        # A neural scheme's replay only solves LPs for normalisers, so a warm
        # persistent cache means zero solver invocations end to end.
        assert lp_solve_calls() == solves_before
        assert warm_cache.misses == 0
        np.testing.assert_array_equal(warm.normalized_mlus, cold.normalized_mlus)
        np.testing.assert_array_equal(warm.optimal_mlus, cold.optimal_mlus)

    def test_flush_appends_instead_of_rewriting(
        self, mesh4_paths, mesh4_traffic, cache_file
    ):
        demands = _demands(mesh4_traffic, 6)
        cache = OptimalMLUCache(path=cache_file)
        cache.optimal_mlus(mesh4_paths, demands[:3], workers=LP_WORKERS)
        cache.flush()
        first_lines = cache_file.read_text().splitlines()
        assert len(first_lines) == 1 + 3  # header + entries
        cache.optimal_mlus(mesh4_paths, demands[3:], workers=LP_WORKERS)
        cache.flush()
        lines = cache_file.read_text().splitlines()
        assert lines[: len(first_lines)] == first_lines  # pure append
        assert len(lines) == 1 + len(demands)
        assert OptimalMLUCache(path=cache_file).loaded == len(demands)

    def test_flush_without_new_entries_is_stable(self, mesh4_paths, mesh4_traffic, cache_file):
        cache = OptimalMLUCache(path=cache_file)
        cache.optimal_mlus(mesh4_paths, _demands(mesh4_traffic, 4))
        cache.flush()
        content = cache_file.read_text()
        cache.flush()
        assert cache_file.read_text() == content

    def test_mask_entries_round_trip(self, mesh4_paths, mesh4_traffic, cache_file, rng):
        from repro.te.failures import sample_failed_links

        demand = mesh4_traffic[0].flat()
        failed = sample_failed_links(mesh4_paths.topology, 1, rng)
        mask = mesh4_paths.restrict_to_working_paths(failed)
        with OptimalMLUCache(path=cache_file) as cache:
            masked = cache.optimal_mlu(mesh4_paths, demand, path_mask=mask)
            unmasked = cache.optimal_mlu(mesh4_paths, demand)
        reloaded = OptimalMLUCache(path=cache_file)
        solves_before = lp_solve_calls()
        assert reloaded.optimal_mlu(mesh4_paths, demand, path_mask=mask) == masked
        assert reloaded.optimal_mlu(mesh4_paths, demand) == unmasked
        assert lp_solve_calls() == solves_before

    def test_in_memory_cache_never_touches_disk(self, mesh4_paths, mesh4_traffic, tmp_path):
        cache = OptimalMLUCache()
        cache.optimal_mlus(mesh4_paths, _demands(mesh4_traffic, 3))
        cache.flush()  # no-op
        assert list(tmp_path.iterdir()) == []


class TestDegradedStores:
    """Bad cache files fall back to cold solves instead of crashing."""

    def _assert_cold_but_working(self, cache, mesh4_paths, mesh4_traffic):
        demands = _demands(mesh4_traffic, 3)
        assert cache.loaded == 0
        values = cache.optimal_mlus(mesh4_paths, demands)
        assert cache.misses == len(demands)
        assert np.isfinite(values).all()

    def test_corrupt_file_warns_and_starts_cold(
        self, mesh4_paths, mesh4_traffic, cache_file
    ):
        cache_file.write_text("this is not json\x00\xff garbage\n{]\n")
        with pytest.warns(RuntimeWarning, match="version-mismatched|unrecognised"):
            cache = OptimalMLUCache(path=cache_file)
        self._assert_cold_but_working(cache, mesh4_paths, mesh4_traffic)
        # The next flush repairs the store in the current format.
        cache.flush()
        repaired = OptimalMLUCache(path=cache_file)
        assert repaired.loaded == cache.misses

    def test_version_mismatch_warns_and_starts_cold(
        self, mesh4_paths, mesh4_traffic, cache_file
    ):
        header = {"format": CACHE_FILE_FORMAT, "version": CACHE_FILE_VERSION + 1}
        cache_file.write_text(
            json.dumps(header) + "\n" + json.dumps(["fp", "dh", "", 1.5]) + "\n"
        )
        with pytest.warns(RuntimeWarning, match="version-mismatched"):
            cache = OptimalMLUCache(path=cache_file)
        self._assert_cold_but_working(cache, mesh4_paths, mesh4_traffic)

    def test_truncated_trailing_line_keeps_good_entries(
        self, mesh4_paths, mesh4_traffic, cache_file
    ):
        demands = _demands(mesh4_traffic, 5)
        with OptimalMLUCache(path=cache_file) as cache:
            values = cache.optimal_mlus(mesh4_paths, demands)
        # Simulate a crash mid-append: chop the last line in half.
        content = cache_file.read_text()
        cache_file.write_text(content[: len(content) - 20])
        with pytest.warns(RuntimeWarning, match="corrupt line"):
            recovered = OptimalMLUCache(path=cache_file)
        assert recovered.loaded == len(demands) - 1
        reloaded = recovered.optimal_mlus(mesh4_paths, demands)
        assert recovered.misses == 1  # only the chopped entry re-solves
        np.testing.assert_array_equal(reloaded, values)
        # Flushing compacts the store: all entries, valid lines only.
        recovered.flush()
        assert OptimalMLUCache(path=cache_file).loaded == len(demands)

    def test_empty_file_is_treated_as_fresh(self, mesh4_paths, mesh4_traffic, cache_file):
        cache_file.write_text("")
        cache = OptimalMLUCache(path=cache_file)
        self._assert_cold_but_working(cache, mesh4_paths, mesh4_traffic)
        cache.flush()
        assert OptimalMLUCache(path=cache_file).loaded == cache.misses

    def test_clear_truncates_store_on_flush(self, mesh4_paths, mesh4_traffic, cache_file):
        cache = OptimalMLUCache(path=cache_file)
        cache.optimal_mlus(mesh4_paths, _demands(mesh4_traffic, 4))
        cache.flush()
        cache.clear()
        cache.flush()
        assert OptimalMLUCache(path=cache_file).loaded == 0

    def test_max_entries_bounds_load(self, mesh4_paths, mesh4_traffic, cache_file):
        with OptimalMLUCache(path=cache_file) as cache:
            cache.optimal_mlus(mesh4_paths, _demands(mesh4_traffic, 6))
        bounded = OptimalMLUCache(max_entries=2, path=cache_file)
        assert len(bounded) == 2
        assert bounded.loaded == 2

    def test_missing_parent_directory_created_on_flush(
        self, mesh4_paths, mesh4_traffic, tmp_path
    ):
        nested = tmp_path / "a" / "b" / "cache.jsonl"
        with OptimalMLUCache(path=nested) as cache:
            cache.optimal_mlus(mesh4_paths, _demands(mesh4_traffic, 2))
        assert OptimalMLUCache(path=nested).loaded == 2

    def test_rewrite_flush_keeps_evicted_unflushed_entries(
        self, mesh4_paths, mesh4_traffic, cache_file
    ):
        """First flush (rewrite branch) must persist entries already evicted."""
        demands = _demands(mesh4_traffic, 3)
        cache = OptimalMLUCache(max_entries=2, path=cache_file)
        cache.optimal_mlus(mesh4_paths, demands)  # 3 solves, 1 evicted
        assert len(cache) == 2
        cache.flush()  # file absent -> rewrite branch
        assert OptimalMLUCache(path=cache_file).loaded == len(demands)

    def test_tilde_in_path_is_expanded(self, monkeypatch, tmp_path):
        monkeypatch.setenv("HOME", str(tmp_path))
        cache = OptimalMLUCache(path="~/cache/optimal.jsonl")
        assert cache.path == tmp_path / "cache" / "optimal.jsonl"
