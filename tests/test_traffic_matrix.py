"""Unit tests for TrafficMatrix and TrafficMatrixSequence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traffic.matrix import TrafficMatrix, TrafficMatrixSequence


class TestTrafficMatrix:
    def test_diagonal_is_zeroed(self):
        tm = TrafficMatrix(np.ones((3, 3)))
        assert tm.demand(0, 0) == 0.0
        assert tm.total() == pytest.approx(6.0)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            TrafficMatrix(np.ones((2, 3)))

    def test_rejects_negative_entries(self):
        data = np.ones((3, 3))
        data[0, 1] = -1.0
        with pytest.raises(ValueError, match="non-negative"):
            TrafficMatrix(data)

    def test_flat_excludes_diagonal_in_row_major_order(self):
        data = np.arange(9, dtype=float).reshape(3, 3)
        tm = TrafficMatrix(data)
        np.testing.assert_allclose(tm.flat(), [1, 2, 3, 5, 6, 7])

    def test_scaled(self):
        tm = TrafficMatrix(np.ones((3, 3)))
        assert tm.scaled(2.5).total() == pytest.approx(15.0)

    def test_matrix_returns_copy(self):
        tm = TrafficMatrix(np.ones((3, 3)))
        m = tm.matrix
        m[0, 1] = 42.0
        assert tm.demand(0, 1) == 1.0

    def test_array_protocol(self):
        tm = TrafficMatrix(np.ones((3, 3)))
        arr = np.asarray(tm)
        assert arr.shape == (3, 3)
        assert arr[1, 1] == 0.0


class TestTrafficMatrixSequence:
    def test_construction_from_3d_array(self):
        seq = TrafficMatrixSequence(np.ones((5, 3, 3)))
        assert len(seq) == 5
        assert seq.num_nodes == 3

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            TrafficMatrixSequence([])

    def test_mixed_sizes_rejected(self):
        with pytest.raises(ValueError, match="same number of nodes"):
            TrafficMatrixSequence([np.ones((3, 3)), np.ones((4, 4))])

    def test_indexing_and_slicing(self, simple_sequence):
        assert isinstance(simple_sequence[0], TrafficMatrix)
        sub = simple_sequence[2:5]
        assert isinstance(sub, TrafficMatrixSequence)
        assert len(sub) == 3
        assert sub[0].demand(0, 1) == simple_sequence[2].demand(0, 1)

    def test_flat_demands_shape(self, simple_sequence):
        flat = simple_sequence.flat_demands()
        assert flat.shape == (10, 6)

    def test_pair_statistics(self, simple_sequence):
        variance = simple_sequence.pair_variance()
        mean = simple_sequence.pair_mean()
        std = simple_sequence.pair_std()
        # Pair (0, 2) is constant 5 -> zero variance; pair (0, 1) grows -> max variance.
        flat = simple_sequence.flat_demands()
        np.testing.assert_allclose(variance, flat.var(axis=0))
        np.testing.assert_allclose(std, flat.std(axis=0))
        np.testing.assert_allclose(mean, flat.mean(axis=0))
        assert variance[1] == 0.0
        assert variance.argmax() == 0

    def test_split_is_chronological(self, simple_sequence):
        train, test = simple_sequence.split(0.7)
        assert len(train) == 7
        assert len(test) == 3
        assert train[0].demand(0, 1) == 1.0
        assert test[0].demand(0, 1) == 8.0

    def test_split_fraction_validation(self, simple_sequence):
        with pytest.raises(ValueError):
            simple_sequence.split(0.0)
        with pytest.raises(ValueError):
            simple_sequence.split(1.5)

    def test_segment(self, simple_sequence):
        seg = simple_sequence.segment(0.25, 0.5)
        assert len(seg) > 0
        assert len(seg) < len(simple_sequence)

    def test_segment_validation(self, simple_sequence):
        with pytest.raises(ValueError):
            simple_sequence.segment(0.5, 0.25)

    def test_windows_generation(self, simple_sequence):
        windows = list(simple_sequence.windows(3))
        assert len(windows) == 7
        history, target = windows[0]
        assert history.shape == (3, 6)
        np.testing.assert_allclose(history[0], simple_sequence[0].flat())
        np.testing.assert_allclose(target, simple_sequence[3].flat())

    def test_windows_history_validation(self, simple_sequence):
        with pytest.raises(ValueError):
            list(simple_sequence.windows(0))

    def test_concatenate(self, simple_sequence):
        joined = simple_sequence.concatenate(simple_sequence)
        assert len(joined) == 20

    def test_concatenate_size_mismatch(self, simple_sequence):
        other = TrafficMatrixSequence(np.ones((2, 4, 4)))
        with pytest.raises(ValueError):
            simple_sequence.concatenate(other)
