"""Unit tests for the pluggable LP solver-backend layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.solvers import lp_backend as lpb
from repro.solvers.lp import count_lp_solves, solve_mlu_lp, solve_mlu_lp_batch
from repro.solvers.lp_backend import (
    PersistentHighsBackend,
    ScipyLinprogBackend,
    available_lp_backends,
    get_lp_backend,
    importable_lp_backends,
    resolve_lp_backend,
)

needs_highs = pytest.mark.skipif(
    "highs" not in importable_lp_backends(),
    reason="no importable highs backend (highspy or scipy-vendored HiGHS)",
)


@pytest.fixture()
def clean_registry(monkeypatch):
    """Isolate the backend instance cache and fallback-warning state."""
    monkeypatch.setattr(lpb, "_INSTANCES", {})
    monkeypatch.setattr(lpb, "_FALLBACK_WARNED", set())
    monkeypatch.delenv(lpb.LP_BACKEND_ENV_VAR, raising=False)
    return lpb


class TestSelection:
    def test_default_is_scipy(self, clean_registry):
        assert get_lp_backend(None).name == "scipy"
        assert isinstance(get_lp_backend(None), ScipyLinprogBackend)

    def test_instances_are_cached(self, clean_registry):
        assert get_lp_backend("scipy") is get_lp_backend("scipy")

    def test_unknown_name_lists_choices(self, clean_registry):
        with pytest.raises(ValueError, match="scipy"):
            get_lp_backend("cplex")

    def test_env_variable_selects_backend(self, clean_registry, monkeypatch):
        monkeypatch.setenv(lpb.LP_BACKEND_ENV_VAR, "scipy")
        assert get_lp_backend(None).name == "scipy"

    def test_registered_names(self):
        assert available_lp_backends() == ("scipy", "highs")
        assert "scipy" in importable_lp_backends()

    def test_resolve_passthrough_and_lookup(self, clean_registry):
        instance = ScipyLinprogBackend()
        assert resolve_lp_backend(instance) is instance
        assert resolve_lp_backend("scipy").name == "scipy"
        assert resolve_lp_backend(None).name == "scipy"

    @needs_highs
    def test_auto_prefers_highs(self, clean_registry):
        assert get_lp_backend("auto").name == "highs"

    def test_unimportable_backend_warns_once_and_falls_back(
        self, clean_registry, monkeypatch
    ):
        def broken_load():
            raise ImportError("no highspy anywhere")

        monkeypatch.setattr(lpb, "_load_highspy", broken_load)
        with pytest.warns(RuntimeWarning, match="falling back to scipy"):
            backend = get_lp_backend("highs")
        assert backend.name == "scipy"
        # The fallback is cached under the failing name: no second warning,
        # no re-attempted import on the hot path.
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            assert get_lp_backend("highs") is backend

    def test_auto_without_highs_is_scipy(self, clean_registry, monkeypatch):
        def broken_load():
            raise ImportError("no highspy anywhere")

        monkeypatch.setattr(lpb, "_load_highspy", broken_load)
        assert get_lp_backend("auto").name == "scipy"
        assert importable_lp_backends() == ("scipy",)


@needs_highs
class TestPersistentModels:
    def test_model_reused_across_solves(self, mesh4_paths, rng):
        backend = PersistentHighsBackend()
        demands = rng.random((5, mesh4_paths.num_sd_pairs)) + 0.1
        for demand in demands:
            solve_mlu_lp(mesh4_paths, demand, backend=backend)
        assert backend.num_models == 1

    def test_distinct_bounds_get_distinct_models(self, mesh4_paths, rng):
        backend = PersistentHighsBackend()
        demand = rng.random(mesh4_paths.num_sd_pairs) + 0.1
        solve_mlu_lp(mesh4_paths, demand, backend=backend)
        caps = np.full(mesh4_paths.num_paths, 0.5)
        solve_mlu_lp(mesh4_paths, demand, sensitivity_caps=caps, backend=backend)
        assert backend.num_models == 2

    def test_lru_eviction(self, mesh4_paths, rng, monkeypatch):
        monkeypatch.setattr(lpb, "MAX_PERSISTENT_MODELS", 2)
        backend = PersistentHighsBackend()
        demand = rng.random(mesh4_paths.num_sd_pairs) + 0.1
        for cap in (0.5, 0.6, 0.7):
            caps = np.full(mesh4_paths.num_paths, cap)
            solve_mlu_lp(mesh4_paths, demand, sensitivity_caps=caps, backend=backend)
        assert backend.num_models == 2

    def test_clear_models(self, mesh4_paths, rng):
        backend = PersistentHighsBackend()
        solve_mlu_lp(
            mesh4_paths, rng.random(mesh4_paths.num_sd_pairs), backend=backend
        )
        backend.clear_models()
        assert backend.num_models == 0

    def test_repeated_solves_stay_exact(self, mesh4_paths, rng):
        # The warm restart must not drift: re-solving an identical demand on
        # a warm model reproduces the cold answer exactly.
        backend = PersistentHighsBackend()
        demand = rng.random(mesh4_paths.num_sd_pairs) + 0.1
        _, cold = solve_mlu_lp(mesh4_paths, demand, backend=backend)
        for _ in range(3):
            _, warm = solve_mlu_lp(mesh4_paths, demand, backend=backend)
            assert warm == cold


class TestBatchBackend:
    def test_batch_accepts_backend_name(self, mesh4_paths, rng):
        # The default backend follows REPRO_LP_BACKEND, so the comparison is
        # approximate: both backends find the same optimum to solver tolerance.
        demands = rng.random((3, mesh4_paths.num_sd_pairs)) + 0.1
        default = solve_mlu_lp_batch(mesh4_paths, demands)
        named = solve_mlu_lp_batch(mesh4_paths, demands, backend="scipy")
        for (_, expected), (_, mlu) in zip(default, named):
            assert mlu == pytest.approx(expected, abs=1e-9)

    def test_mlu_only_skips_configurations(self, mesh4_paths, rng):
        demands = rng.random((3, mesh4_paths.num_sd_pairs)) + 0.1
        full = solve_mlu_lp_batch(mesh4_paths, demands)
        only = solve_mlu_lp_batch(mesh4_paths, demands, mlu_only=True)
        assert all(config is None for config, _ in only)
        np.testing.assert_allclose(
            [mlu for _, mlu in only], [mlu for _, mlu in full], atol=1e-12
        )

    def test_mlu_only_still_counts_solves(self, mesh4_paths, rng):
        demands = rng.random((3, mesh4_paths.num_sd_pairs)) + 0.1
        with count_lp_solves() as tally:
            solve_mlu_lp_batch(mesh4_paths, demands, mlu_only=True)
        assert tally.count == len(demands)

    def test_unregistered_instance_solves_sequentially(self, mesh4_paths, rng):
        # A custom instance cannot be shipped to pool workers by name; the
        # batch must fall back to in-process solves rather than mis-resolve.
        class Custom(ScipyLinprogBackend):
            name = "custom-local"

        demands = rng.random((3, mesh4_paths.num_sd_pairs)) + 0.1
        results = solve_mlu_lp_batch(mesh4_paths, demands, workers=2, backend=Custom())
        expected = solve_mlu_lp_batch(mesh4_paths, demands)
        for (_, want), (_, got) in zip(expected, results):
            assert got == pytest.approx(want, abs=1e-9)

    @needs_highs
    def test_batch_backends_agree(self, mesh4_paths, rng):
        demands = rng.random((4, mesh4_paths.num_sd_pairs)) + 0.1
        scipy_mlus = [m for _, m in solve_mlu_lp_batch(mesh4_paths, demands)]
        highs_mlus = [
            m for _, m in solve_mlu_lp_batch(mesh4_paths, demands, backend="highs")
        ]
        np.testing.assert_allclose(highs_mlus, scipy_mlus, atol=1e-9)


class TestEngineAndStudyThreading:
    def test_engine_threads_backend_into_cache(self, mesh4_paths, rng):
        from repro.evaluation.engine import EvaluationEngine

        calls = []

        class Recording(ScipyLinprogBackend):
            name = "recording"

            def solve_mlu(self, path_set, demand_vector, upper):
                calls.append(1)
                return super().solve_mlu(path_set, demand_vector, upper)

        engine = EvaluationEngine(lp_backend=Recording())
        demands = rng.random((3, mesh4_paths.num_sd_pairs)) + 0.1
        engine.optimal_mlus(mesh4_paths, demands)
        assert len(calls) == len(demands)

    def test_engine_default_lp_backend_is_none(self):
        from repro.evaluation.engine import EvaluationEngine

        assert EvaluationEngine().lp_backend is None

    def test_cache_optimal_mlu_accepts_backend(self, mesh4_paths, rng):
        from repro.solvers.lp import OptimalMLUCache

        demand = rng.random(mesh4_paths.num_sd_pairs) + 0.1
        plain = OptimalMLUCache().optimal_mlu(mesh4_paths, demand)
        named = OptimalMLUCache().optimal_mlu(mesh4_paths, demand, backend="scipy")
        # Approximate because the no-backend call follows REPRO_LP_BACKEND.
        assert named == pytest.approx(plain, abs=1e-9)

    def test_study_run_accepts_lp_backend(self, monkeypatch):
        from repro.study.study import Study

        # Pin the no-argument default to scipy regardless of the test
        # environment: the assertion is "explicit kwarg == same default",
        # which only holds bit-exactly when both runs use one backend.
        monkeypatch.delenv(lpb.LP_BACKEND_ENV_VAR, raising=False)
        monkeypatch.setattr(lpb, "_INSTANCES", {})

        spec = {
            "scenario": {
                "topology": {"kind": "fully_connected", "num_nodes": 4, "capacity": 10.0},
                "traffic": {
                    "kind": "datacenter",
                    "level": "pod",
                    "seed": 3,
                    "num_intervals": 12,
                },
                "history_len": 2,
            },
            "scheme": {"kind": "pred_te"},
            "max_intervals": 3,
        }
        baseline = Study(spec).run()
        explicit = Study(spec).run(lp_backend="scipy")
        np.testing.assert_allclose(
            explicit[0].series, baseline[0].series, atol=1e-12
        )

    @needs_highs
    def test_study_run_highs_matches_scipy(self):
        from repro.study.study import Study

        spec = {
            "scenario": {
                "topology": {"kind": "fully_connected", "num_nodes": 4, "capacity": 10.0},
                "traffic": {
                    "kind": "datacenter",
                    "level": "pod",
                    "seed": 3,
                    "num_intervals": 12,
                },
                "history_len": 2,
            },
            "scheme": {"kind": "pred_te"},
            "max_intervals": 3,
        }
        scipy_run = Study(spec).run(lp_backend="scipy")
        highs_run = Study(spec).run(lp_backend="highs")
        np.testing.assert_allclose(
            highs_run[0].series, scipy_run[0].series, atol=1e-9
        )


class TestEnvPlumbing:
    def test_env_backend_reaches_solves(self, mesh4_paths, rng, monkeypatch):
        # A backend registered and named by REPRO_LP_BACKEND must be the one
        # solve_mlu_lp actually runs when no explicit backend is passed.
        calls = []

        class Recording(ScipyLinprogBackend):
            name = "recording-env"

            def solve(self, path_set, demand_vector, upper):
                calls.append(1)
                return super().solve(path_set, demand_vector, upper)

        monkeypatch.setitem(lpb._FACTORIES, "recording-env", Recording)
        monkeypatch.setattr(lpb, "_INSTANCES", {})
        monkeypatch.setenv(lpb.LP_BACKEND_ENV_VAR, "recording-env")
        solve_mlu_lp(mesh4_paths, rng.random(mesh4_paths.num_sd_pairs))
        assert calls == [1]

    def test_bad_env_backend_raises_at_use(self, mesh4_paths, monkeypatch):
        monkeypatch.setattr(lpb, "_INSTANCES", {})
        monkeypatch.setenv(lpb.LP_BACKEND_ENV_VAR, "gurobi")
        with pytest.raises(ValueError, match="unknown LP backend"):
            solve_mlu_lp(mesh4_paths, np.ones(mesh4_paths.num_sd_pairs))
