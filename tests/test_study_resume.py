"""Crash-safe studies: checkpointing, resume, and cell-level parallelism.

The acceptance contract pinned here:

* an interrupted ``Study.run(checkpoint=...)`` resumed via
  ``Study.resume(path)`` produces a ResultSet bit-identical (same
  ``to_json``) to an uninterrupted run, with zero repeat trainings and zero
  repeat LP solves for the already-checkpointed cells;
* ``cell_workers=2`` matches ``cell_workers=None`` bit-identically on the
  3 x 3 x 2 acceptance grid, with the workers' LP-cache entries and trained
  schemes merged back into the parent;
* a corrupt checkpoint fails with a clear error naming the file, while a
  partially appended trailing record (crash mid-write) is dropped with a
  warning and its cell simply re-runs.

Scenarios here are inline config dicts (no registry entries), so worker
processes can rebuild them regardless of the multiprocessing start method.
"""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest

from repro.evaluation.engine import EvaluationEngine
from repro.solvers.lp import OptimalMLUCache, count_lp_solves, resolve_lp_workers
from repro.study import (
    ExperimentSpec,
    InlineScenario,
    ResultSet,
    Study,
    StudyCheckpoint,
    register_scheme,
)
from repro.study.__main__ import main as study_cli
from repro.study.spec import _SCHEME_BUILDERS


def scenario_config(name: str, seed: int) -> dict:
    return {
        "name": name,
        "topology": {"kind": "fully_connected", "num_nodes": 4, "capacity": 10.0},
        "traffic": {
            "kind": "datacenter",
            "level": "pod",
            "seed": seed,
            "num_intervals": 40,
        },
        "history_len": 3,
    }


#: normalize_by_optimal=False keeps the tiny trainings LP-free, so every LP
#: solve in these grids is a replay normaliser and the accounting is exact.
SCHEME_SPECS = (
    {"kind": "figret", "epochs": 2, "history_len": 3, "robustness_weight": 0.1,
     "normalize_by_optimal": False, "seed": 0},
    {"kind": "dote", "epochs": 2, "history_len": 3,
     "normalize_by_optimal": False, "seed": 0},
    {"kind": "teal", "epochs": 2, "normalize_by_optimal": False, "seed": 0},
)

PERTURBATIONS = ({"kind": "none"}, {"kind": "fluctuation", "alpha": 0.5, "seed": 1})


def acceptance_grid_spec() -> dict:
    """The 3 x 3 x 2 acceptance grid over inline-config scenarios."""
    return {
        "scenario": {"sweep": [scenario_config(f"resume_grid_{i}", i) for i in (1, 2, 3)]},
        "scheme": {"sweep": list(SCHEME_SPECS)},
        "perturbation": {"sweep": list(PERTURBATIONS)},
        "max_intervals": 4,
    }


def small_grid_spec() -> dict:
    """A 3-scenario x 1-scheme x 2-perturbation grid (6 cells, cheap)."""
    return {
        "scenario": {"sweep": [scenario_config(f"resume_small_{i}", i) for i in (1, 2, 3)]},
        "scheme": dict(SCHEME_SPECS[1]),
        "perturbation": {"sweep": list(PERTURBATIONS)},
        "max_intervals": 4,
    }


def fresh_engine() -> EvaluationEngine:
    return EvaluationEngine(cache=OptimalMLUCache())


# --------------------------------------------------------------------------- #
# Interrupt / resume
# --------------------------------------------------------------------------- #
@pytest.fixture
def counting_builder():
    """A registered scheme kind whose builder counts builds and can be told
    to raise -- the injection point for 'the process died mid-grid'."""
    state = {"builds": 0, "fail_after": None}

    @register_scheme("resume_stub")
    def _build(path_set, *, cache=None, lp_workers=None, **params):
        state["builds"] += 1
        if state["fail_after"] is not None and state["builds"] > state["fail_after"]:
            raise RuntimeError("injected mid-grid crash")
        from repro.core.config import TrainingConfig
        from repro.core.dote import Dote

        return Dote(
            path_set,
            TrainingConfig(
                epochs=1, history_len=3, normalize_by_optimal=False, seed=0
            ),
            cache=cache,
        )

    yield state
    _SCHEME_BUILDERS.pop("resume_stub", None)


class TestInterruptResume:
    def test_interrupted_run_resumes_bit_identically(self, tmp_path, counting_builder):
        spec = small_grid_spec()
        spec["scheme"] = {"kind": "resume_stub"}

        reference = Study(spec).run(
            engine=fresh_engine(), checkpoint=tmp_path / "reference.ckpt"
        )
        assert counting_builder["builds"] == 3  # one training per scenario

        # Crash while building the third scenario's scheme: cells 1-4 (two
        # scenarios x two perturbations) are finished and checkpointed.
        counting_builder.update(builds=0, fail_after=2)
        checkpoint = tmp_path / "interrupted.ckpt"
        engine = fresh_engine()
        with pytest.raises(RuntimeError, match="injected mid-grid crash"):
            Study(spec).run(engine=engine, checkpoint=checkpoint)
        saved = StudyCheckpoint(checkpoint).load()
        assert len(saved) == 4
        assert [record.scenario for record in saved] == [
            "resume_small_1", "resume_small_1", "resume_small_2", "resume_small_2",
        ]

        # Resume on the same engine: only the remaining scenario trains
        # (zero repeat trainings) and only its demands are LP-solved (zero
        # repeat solves for checkpointed cells).
        counting_builder.update(builds=0, fail_after=None)
        with count_lp_solves() as tally:
            resumed = Study(spec).resume(checkpoint, engine=engine)
        assert counting_builder["builds"] == 1
        assert tally.count == 8  # 1 scenario x 2 perturbations x 4 targets
        assert resumed.to_json() == reference.to_json()

        # Resuming the now-complete checkpoint runs nothing at all.
        counting_builder["builds"] = 0
        with count_lp_solves() as idle:
            again = Study(spec).resume(checkpoint, engine=fresh_engine())
        assert counting_builder["builds"] == 0
        assert idle.count == 0
        assert again.to_json() == reference.to_json()

    def test_resume_missing_file_starts_fresh_run(self, tmp_path):
        spec = {
            "scenario": scenario_config("resume_fresh", 4),
            "scheme": dict(SCHEME_SPECS[1]),
            "max_intervals": 3,
        }
        checkpoint = tmp_path / "not_there_yet.ckpt"
        results = Study(spec).resume(checkpoint, engine=fresh_engine())
        assert len(results) == 1
        assert len(StudyCheckpoint(checkpoint).load()) == 1

    def test_run_refuses_existing_checkpoint(self, tmp_path):
        spec = {
            "scenario": scenario_config("resume_refuse", 4),
            "scheme": dict(SCHEME_SPECS[1]),
            "max_intervals": 3,
        }
        checkpoint = tmp_path / "grid.ckpt"
        Study(spec).run(engine=fresh_engine(), checkpoint=checkpoint)
        with pytest.raises(FileExistsError, match="already exists.*resume"):
            Study(spec).run(engine=fresh_engine(), checkpoint=checkpoint)

    def test_live_object_cells_always_rerun_on_resume(self, tmp_path):
        # Live objects record only an {"inline": <name>} marker, which two
        # different objects with one display name would share -- so resume
        # must re-run such cells (with a warning) instead of silently
        # serving a possibly-stale on-disk result.
        from repro.datasets import from_config
        from repro.study.spec import build_scheme

        scenario = from_config(scenario_config("resume_inline", 4))
        train, _ = scenario.split()
        scheme = build_scheme(dict(SCHEME_SPECS[1]), scenario.paths)
        scheme.precompute(train)
        cell = ExperimentSpec(
            scenario=scenario, scheme=scheme, train=False, max_intervals=3
        )
        checkpoint = tmp_path / "inline.ckpt"
        first = Study([cell]).run(engine=fresh_engine(), checkpoint=checkpoint)
        with pytest.warns(RuntimeWarning, match="live objects.*re-run"):
            resumed = Study([cell]).resume(checkpoint, engine=fresh_engine())
        assert resumed.to_json() == first.to_json()  # deterministic re-run

    def test_resume_warns_on_records_matching_no_cell(self, tmp_path):
        spec = {
            "scenario": scenario_config("resume_extra", 4),
            "scheme": {"sweep": [dict(SCHEME_SPECS[0]), dict(SCHEME_SPECS[1])]},
            "max_intervals": 3,
        }
        checkpoint = tmp_path / "grid.ckpt"
        Study(spec).run(engine=fresh_engine(), checkpoint=checkpoint)
        narrower = dict(spec, scheme=dict(SCHEME_SPECS[0]))
        with pytest.warns(RuntimeWarning, match="matches no cell"):
            results = Study(narrower).resume(checkpoint, engine=fresh_engine())
        assert len(results) == 1


class TestCheckpointFile:
    def test_corrupt_header_fails_with_path_in_error(self, tmp_path):
        bad = tmp_path / "bad.ckpt"
        bad.write_text("this is not json\n")
        spec = {"scenario": scenario_config("x", 1), "scheme": dict(SCHEME_SPECS[1])}
        with pytest.raises(ValueError, match=r"bad\.ckpt.*header"):
            Study(spec).resume(bad)

    def test_foreign_json_rejected(self, tmp_path):
        alien = tmp_path / "alien.ckpt"
        alien.write_text(json.dumps({"format": "something-else"}) + "\n")
        with pytest.raises(ValueError, match="not a study checkpoint"):
            StudyCheckpoint(alien).load()

    def test_mid_file_corruption_fails_with_line_number(self, tmp_path):
        spec = {
            "scenario": scenario_config("resume_corrupt", 4),
            "scheme": {"sweep": [dict(SCHEME_SPECS[0]), dict(SCHEME_SPECS[1])]},
            "max_intervals": 3,
        }
        checkpoint = tmp_path / "grid.ckpt"
        Study(spec).run(engine=fresh_engine(), checkpoint=checkpoint)
        lines = checkpoint.read_text().splitlines()
        assert len(lines) == 3
        checkpoint.write_text("\n".join([lines[0], "{corrupt", lines[2]]) + "\n")
        with pytest.raises(ValueError, match="line 2"):
            StudyCheckpoint(checkpoint).load()

    def test_schema_invalid_last_record_is_corruption_not_torn_tail(self, tmp_path):
        # A last line that parses as JSON but is not a valid record cannot
        # be a crash-truncated append -- it must raise, not be silently
        # deleted by the torn-tail compaction.
        spec = {
            "scenario": scenario_config("resume_schema", 4),
            "scheme": dict(SCHEME_SPECS[1]),
            "max_intervals": 3,
        }
        checkpoint = tmp_path / "grid.ckpt"
        Study(spec).run(engine=fresh_engine(), checkpoint=checkpoint)
        with open(checkpoint, "a") as handle:
            handle.write(json.dumps({"not": "a record"}) + "\n")
        before = checkpoint.read_text()
        with pytest.raises(ValueError, match="line 3"):
            StudyCheckpoint(checkpoint).load()
        assert checkpoint.read_text() == before  # nothing destroyed

    def test_partial_trailing_record_dropped_and_cell_rerun(self, tmp_path):
        spec = {
            "scenario": scenario_config("resume_partial", 4),
            "scheme": {"sweep": [dict(SCHEME_SPECS[0]), dict(SCHEME_SPECS[1])]},
            "max_intervals": 3,
        }
        reference_engine = fresh_engine()
        checkpoint = tmp_path / "grid.ckpt"
        reference = Study(spec).run(engine=reference_engine, checkpoint=checkpoint)
        lines = checkpoint.read_text().splitlines()
        # Chop the last record in half: a crash mid-append.
        checkpoint.write_text("\n".join(lines[:-1] + [lines[-1][:40]]) + "\n")
        with pytest.warns(RuntimeWarning, match="partially written trailing record"):
            resumed = Study(spec).resume(checkpoint, engine=reference_engine)
        assert resumed.to_json() == reference.to_json()
        # The re-run cell was appended again, restoring a complete file.
        assert len(StudyCheckpoint(checkpoint).load()) == 2


# --------------------------------------------------------------------------- #
# ResultSet persistence hardening
# --------------------------------------------------------------------------- #
class TestResultSetPersistence:
    def test_save_round_trips_and_leaves_no_temp_file(self, tmp_path):
        results = Study(
            {"scenario": scenario_config("rs_save", 4), "scheme": dict(SCHEME_SPECS[1]),
             "max_intervals": 3}
        ).run(engine=fresh_engine())
        path = results.save(tmp_path / "out.json")
        assert path.exists()
        assert not list(tmp_path.glob("*.tmp"))
        restored = ResultSet.load(path)
        assert restored.to_json() == results.to_json()

    def test_save_overwrites_atomically(self, tmp_path):
        results = Study(
            {"scenario": scenario_config("rs_over", 4), "scheme": dict(SCHEME_SPECS[1]),
             "max_intervals": 3}
        ).run(engine=fresh_engine())
        path = tmp_path / "out.json"
        results.save(path)
        results.save(path)  # second save replaces, never appends/corrupts
        assert len(ResultSet.load(path)) == 1

    def test_load_reports_offending_path_on_decode_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match=r"broken\.json"):
            ResultSet.load(path)


# --------------------------------------------------------------------------- #
# Cell-level process pool
# --------------------------------------------------------------------------- #
class TestCellWorkers:
    def test_acceptance_grid_bit_identical_and_merged_back(self):
        spec = acceptance_grid_spec()
        sequential = Study(spec).run(engine=fresh_engine())

        engine = fresh_engine()
        scheme_cache: dict = {}
        pooled = Study(spec, scheme_cache=scheme_cache).run(
            engine=engine, cell_workers=2
        )
        assert pooled.to_json() == sequential.to_json()

        # Trained schemes came back from the workers: one per scenario x
        # scheme spec, ready for reuse without retraining.
        assert len(scheme_cache) == 9

        # The workers' LP-cache entries were merged into the parent engine:
        # re-running the whole grid sequentially on it solves nothing.
        with count_lp_solves() as tally:
            rerun = Study(spec, scheme_cache=scheme_cache).run(engine=engine)
        assert tally.count == 0
        assert rerun.to_json() == sequential.to_json()

    def test_pool_runs_with_checkpoint_and_resumes(self, tmp_path):
        spec = small_grid_spec()
        checkpoint = tmp_path / "pooled.ckpt"
        pooled = Study(spec).run(
            engine=fresh_engine(), checkpoint=checkpoint, cell_workers=2
        )
        assert len(StudyCheckpoint(checkpoint).load()) == 6
        resumed = Study(spec).resume(checkpoint, engine=fresh_engine())
        assert resumed.to_json() == pooled.to_json()

    def test_live_object_cells_run_in_parent(self):
        from repro.solvers import PredictionBasedTE

        sequence_spec = {
            "scenario": scenario_config("resume_live", 4),
            "scheme": dict(SCHEME_SPECS[1]),
            "max_intervals": 3,
        }
        live_cell = ExperimentSpec(
            scenario=scenario_config("resume_live", 4),
            scheme=lambda: PredictionBasedTE(
                Study().scenario(scenario_config("resume_live", 4)).paths
            ),
            max_intervals=3,
        )
        # A factory-built scheme cannot cross the pool boundary; the study
        # must still complete the grid (that cell runs in-process).
        study = Study(sequence_spec)
        study.add(live_cell)
        results = study.run(engine=fresh_engine(), cell_workers=2)
        assert len(results) == 2
        assert {record.scheme for record in results} == {"DOTE", "Pred TE (last)"}

    def test_cell_error_in_worker_propagates(self):
        # streaming=True is fine for the plain-replay cell but a spec error
        # for the failure cell, raised inside the worker's run loop.
        spec = {
            "scenario": scenario_config("resume_err", 4),
            "scheme": dict(SCHEME_SPECS[1]),
            "perturbation": {"sweep": [
                {"kind": "none"},
                {"kind": "failure", "num_failures": 1, "num_trials": 1},
            ]},
            "streaming": True,
            "max_intervals": 3,
        }
        with pytest.raises(ValueError, match="batched failure protocol"):
            Study(spec).run(engine=fresh_engine(), cell_workers=2)

    def test_worker_cell_failure_keeps_groups_finished_cells(self, tmp_path):
        # Cells 1 (streaming replay, fine) and 2 (failure + streaming,
        # rejected at run time) share one (scenario, scheme) group, i.e. one
        # pool job.  The crash-safety contract says cell 1's finished record
        # must still reach the checkpoint before cell 2's error propagates
        # -- exactly like a sequential run dying mid-grid.
        spec = {
            "scenario": scenario_config("resume_partial_group", 4),
            "scheme": dict(SCHEME_SPECS[1]),
            "perturbation": {"sweep": [
                {"kind": "none"},
                {"kind": "failure", "num_failures": 1, "num_trials": 1},
            ]},
            "streaming": True,
            "max_intervals": 3,
        }
        checkpoint = tmp_path / "group.ckpt"
        with pytest.raises(ValueError, match="batched failure protocol"):
            Study(spec).run(engine=fresh_engine(), checkpoint=checkpoint, cell_workers=2)
        saved = StudyCheckpoint(checkpoint).load()
        assert len(saved) == 1
        assert saved[0].experiment == "replay"

    def test_resume_onto_touched_empty_file_stays_loadable(self, tmp_path):
        spec = {
            "scenario": scenario_config("resume_touch", 4),
            "scheme": dict(SCHEME_SPECS[1]),
            "max_intervals": 3,
        }
        checkpoint = tmp_path / "touched.ckpt"
        checkpoint.touch()  # pre-existing but empty (no header yet)
        results = Study(spec).resume(checkpoint, engine=fresh_engine())
        assert len(results) == 1
        # The file gained its header, so later loads and resumes work.
        assert len(StudyCheckpoint(checkpoint).load()) == 1
        again = Study(spec).resume(checkpoint, engine=fresh_engine())
        assert again.to_json() == results.to_json()


class TestWorkerValidation:
    @pytest.mark.parametrize("bad", [0, -3, True, 1.5, "garbage"])
    def test_resolve_lp_workers_rejects_invalid(self, bad):
        with pytest.raises(ValueError, match="auto"):
            resolve_lp_workers(bad)

    def test_resolve_lp_workers_accepts_valid_forms(self):
        assert resolve_lp_workers(None) is None
        assert resolve_lp_workers(3) == 3
        assert resolve_lp_workers("auto") >= 1

    def test_engine_rejects_zero_lp_workers(self):
        with pytest.raises(ValueError, match="at least 1"):
            EvaluationEngine(cache=OptimalMLUCache(), lp_workers=0)

    @pytest.mark.parametrize("bad", [0, -2, "garbage"])
    def test_study_rejects_invalid_cell_workers(self, bad):
        spec = {"scenario": scenario_config("x", 1), "scheme": dict(SCHEME_SPECS[1])}
        with pytest.raises(ValueError, match="auto"):
            Study(spec).run(engine=fresh_engine(), cell_workers=bad)


# --------------------------------------------------------------------------- #
# Picklable trainer state
# --------------------------------------------------------------------------- #
class TestPicklableSchemes:
    @pytest.fixture(scope="class")
    def trained_setup(self):
        from repro.datasets import from_config

        scenario = from_config(scenario_config("pickle_mesh", 5))
        train, test = scenario.split()
        flat = test.flat_demands()
        windows = np.stack([flat[t - 3 : t] for t in range(3, len(flat))])
        return scenario, train, windows

    @pytest.mark.parametrize("kind", ["figret", "dote", "teal"])
    def test_trained_scheme_pickle_round_trip(self, kind, trained_setup):
        from repro.study.spec import build_scheme

        scenario, train, windows = trained_setup
        spec = dict(SCHEME_SPECS[{"figret": 0, "dote": 1, "teal": 2}[kind]])
        scheme = build_scheme(spec, scenario.paths)
        scheme.precompute(train)
        clone = pickle.loads(pickle.dumps(scheme))
        np.testing.assert_array_equal(
            clone.configure_batch(windows), scheme.configure_batch(windows)
        )
        # Live LP caches never cross the boundary.
        assert clone.cache is None

    def test_trainer_pickle_keeps_weights_and_history(self, trained_setup):
        from repro.core.config import TrainingConfig
        from repro.core.trainer import Trainer

        scenario, train, windows = trained_setup
        trainer = Trainer(
            scenario.paths,
            TrainingConfig(epochs=2, history_len=3, normalize_by_optimal=False, seed=0),
        )
        history = trainer.fit(train)
        clone = pickle.loads(pickle.dumps(trainer))
        assert clone.cache is None
        assert clone.input_scale == trainer.input_scale
        assert clone.history.epoch_losses == history.epoch_losses
        np.testing.assert_array_equal(
            clone.split_ratios_batch(windows), trainer.split_ratios_batch(windows)
        )

    def test_tensor_pickle_drops_autodiff_tape(self):
        from repro.nn import Tensor

        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = (a * 3.0).sum()
        b.backward()
        clone = pickle.loads(pickle.dumps(b))
        np.testing.assert_array_equal(clone.data, b.data)
        assert clone.grad is None
        assert clone._parents == ()
        assert clone._backward is None


# --------------------------------------------------------------------------- #
# pair_std spec-level error
# --------------------------------------------------------------------------- #
class TestPairStdGuard:
    def test_trainless_scenario_fluctuation_cell_raises_value_error(self):
        from repro.datasets import from_config
        from repro.study.spec import build_scheme

        scenario = from_config(scenario_config("trainless", 6))
        _, test = scenario.split()
        scheme = build_scheme(dict(SCHEME_SPECS[1]), scenario.paths)
        scheme.precompute(scenario.split()[0])
        cell = ExperimentSpec(
            scenario=InlineScenario(
                paths=scenario.paths, test=test, history_len=3, name="trainless"
            ),
            scheme=scheme,
            perturbation={"kind": "fluctuation", "alpha": 0.5},
            train=False,
        )
        with pytest.raises(ValueError, match="trainless.*training split"):
            Study([cell]).run(engine=fresh_engine())

    def test_context_pair_std_names_scenario(self):
        from repro.study.study import _ScenarioContext

        ctx = _ScenarioContext(
            key="k", name="bare", paths=None, train=None, test=None,
            traffic=None, history_len=3,
        )
        with pytest.raises(ValueError, match="'bare'.*training split"):
            ctx.pair_std()


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
class TestResumeCLI:
    def _write_spec(self, tmp_path, name, spec):
        path = tmp_path / name
        path.write_text(json.dumps(spec))
        return str(path)

    def test_garbage_workers_clean_error(self, tmp_path, capsys):
        spec = self._write_spec(
            tmp_path, "spec.json",
            {"scenario": scenario_config("cli_a", 1), "scheme": dict(SCHEME_SPECS[1])},
        )
        for flag in ("--lp-workers", "--cell-workers"):
            with pytest.raises(SystemExit) as excinfo:
                study_cli([spec, flag, "garbage"])
            assert excinfo.value.code == 2
            assert "expected 'auto' or a positive integer" in capsys.readouterr().err

    def test_checkpoint_resume_flow(self, tmp_path, capsys):
        scheme = dict(SCHEME_SPECS[1])
        prefix = {
            "scenario": scenario_config("cli_b", 2),
            "scheme": scheme,
            "max_intervals": 3,
        }
        full = dict(prefix, scheme={"sweep": [scheme, dict(SCHEME_SPECS[0])]})
        prefix_path = self._write_spec(tmp_path, "prefix.json", prefix)
        full_path = self._write_spec(tmp_path, "full.json", full)
        checkpoint = str(tmp_path / "run.ckpt")

        assert study_cli([prefix_path, "--checkpoint", checkpoint]) == 0
        capsys.readouterr()

        # Without --resume an existing checkpoint is refused, cleanly.
        with pytest.raises(SystemExit) as excinfo:
            study_cli([full_path, "--checkpoint", checkpoint])
        assert excinfo.value.code == 2
        assert "pass --resume" in capsys.readouterr().err

        # With --resume the finished prefix cell is skipped.
        assert study_cli([full_path, "--checkpoint", checkpoint, "--resume"]) == 0
        out = capsys.readouterr().out
        assert "Resuming 2 experiment cell(s)" in out
        assert len(StudyCheckpoint(checkpoint).load()) == 2

    def test_resume_without_checkpoint_errors(self, tmp_path, capsys):
        spec = self._write_spec(
            tmp_path, "spec.json",
            {"scenario": scenario_config("cli_c", 3), "scheme": dict(SCHEME_SPECS[1])},
        )
        with pytest.raises(SystemExit):
            study_cli([spec, "--resume"])
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_corrupt_checkpoint_clean_cli_error(self, tmp_path, capsys):
        spec = self._write_spec(
            tmp_path, "spec.json",
            {"scenario": scenario_config("cli_d", 3), "scheme": dict(SCHEME_SPECS[1])},
        )
        bad = tmp_path / "bad.ckpt"
        bad.write_text("garbage\n")
        with pytest.raises(SystemExit) as excinfo:
            study_cli([spec, "--checkpoint", str(bad), "--resume"])
        assert excinfo.value.code == 2
        assert "bad.ckpt" in capsys.readouterr().err
