"""The study service: plan/execute split, daemon protocol, warm-state proof.

Acceptance contract pinned here:

* ``Study.plan()`` + ``Study.execute()`` is bit-identical to ``Study.run()``
  (same ``to_json``), plans are inert (no checkpoint header until execute),
  ``on_cell`` streams every record in completion order, and ``should_stop``
  raises :class:`StudyCancelled` at the next cell boundary with finished
  cells checkpointed and resumable.
* With the daemon up, a client submitting a study identical to an
  already-completed one receives **bit-identical records with zero new LP
  solves and zero new trainings** -- the cross-client warm-state guarantee.
* Protocol error paths never kill the daemon: malformed JSON and unknown
  ops get structured ``error`` replies, a client disconnect mid-stream
  cancels only its own job, double-cancel / unknown-job-id are clean
  errors, and a stale socket file from a killed daemon is detected and
  replaced on restart (while a live daemon on the path refuses a second
  bind).

The server fixture binds sockets under ``tempfile.mkdtemp`` rather than
pytest's ``tmp_path``: ``AF_UNIX`` paths are capped around 107 bytes and
deeply nested pytest temp dirs can blow past that.
"""

from __future__ import annotations

import json
import socket
import tempfile
import threading
import time
from pathlib import Path

import pytest

from repro.solvers.lp import count_lp_solves
from repro.study import (
    ResultSet,
    Study,
    StudyCancelled,
    StudyCheckpoint,
    StudyClient,
    StudyServer,
    StudyServiceError,
    Suite,
)
from repro.study.warehouse import ResultWarehouse


def scenario_config(name: str, num_intervals: int = 20) -> dict:
    return {
        "name": name,
        "topology": {"kind": "fully_connected", "num_nodes": 4, "capacity": 10.0},
        "traffic": {"kind": "datacenter", "level": "pod", "num_intervals": num_intervals},
        "history_len": 3,
    }


CHEAP_SCHEME = {"kind": "figret", "epochs": 1, "history_len": 3, "seed": 0}


def grid_spec(name: str = "svc", alphas=(1.0, 2.0)) -> dict:
    """A small grid whose cells need real LP normaliser solves."""
    return {
        "scenario": scenario_config(name),
        "scheme": CHEAP_SCHEME,
        "perturbation": {
            "sweep": [{"kind": "none"}]
            + [{"kind": "fluctuation", "alpha": alpha} for alpha in alphas]
        },
        "max_intervals": 6,
    }


def wire_dicts(results) -> str:
    return json.dumps(
        [record.to_dict(include_series=True) for record in results], sort_keys=True
    )


# --------------------------------------------------------------------------- #
# Study.plan() / Study.execute()
# --------------------------------------------------------------------------- #
class TestPlanExecute:
    def test_plan_execute_matches_run(self):
        spec = grid_spec("plan-eq")
        direct = Study(spec).run()
        study = Study(spec)
        plan = study.plan()
        assert plan.total == 3 and plan.remaining == 3 and not plan.completed
        via_plan = study.execute(plan)
        assert via_plan.to_json() == direct.to_json()

    def test_plan_is_inert_until_execute(self, tmp_path):
        ckpt = tmp_path / "run.ckpt"
        study = Study(grid_spec("plan-inert"))
        study.plan(checkpoint=ckpt)
        assert not ckpt.exists()

    def test_on_cell_streams_every_record_in_order(self):
        study = Study(grid_spec("plan-stream"))
        seen: list[tuple[int, str]] = []
        results = study.execute(
            study.plan(),
            on_cell=lambda index, record: seen.append((index, record.experiment)),
        )
        assert [index for index, _ in seen] == [0, 1, 2]
        assert len(results) == len(seen) == 3

    def test_should_stop_cancels_and_resumes_bit_identical(self, tmp_path):
        spec = grid_spec("plan-cancel")
        direct = Study(spec).run()
        ckpt = tmp_path / "cancel.ckpt"
        stop = threading.Event()
        study = Study(spec)

        def on_cell(index, record):
            stop.set()  # ask for cancellation after the first finished cell

        with pytest.raises(StudyCancelled) as excinfo:
            study.execute(study.plan(checkpoint=ckpt), on_cell=on_cell,
                          should_stop=stop.is_set)
        assert excinfo.value.completed == 1
        assert "resumable" in str(excinfo.value)
        assert len(StudyCheckpoint(ckpt).load()) == 1
        resumed = Study(spec).resume(ckpt)
        assert resumed.to_json() == direct.to_json()

    def test_resume_plan_carries_completed_records(self, tmp_path):
        spec = grid_spec("plan-resume")
        ckpt = tmp_path / "resume.ckpt"
        stop = threading.Event()
        study = Study(spec)
        with pytest.raises(StudyCancelled):
            study.execute(study.plan(checkpoint=ckpt),
                          on_cell=lambda i, r: stop.set(),
                          should_stop=stop.is_set)
        plan = Study(spec).plan(checkpoint=ckpt, resume=True)
        assert plan.total == 3 and set(plan.completed) == {0} and plan.remaining == 2

    def test_suite_plan_execute_passthrough(self, tmp_path):
        descriptor = {
            "name": "svc-suite",
            "studies": [{"name": "one", "spec": grid_spec("suite-pe", alphas=())}],
        }
        direct = Suite(descriptor).run()
        suite = Suite(descriptor)
        assert suite.execute(suite.plan()).to_json() == direct.to_json()


# --------------------------------------------------------------------------- #
# Daemon fixture
# --------------------------------------------------------------------------- #
@pytest.fixture()
def service():
    """A live daemon on a short-path socket; yields (server, client)."""
    root = Path(tempfile.mkdtemp(prefix="repro-svc-"))
    server = StudyServer(root / "daemon.sock")
    ready = threading.Event()
    thread = threading.Thread(target=server.serve_forever, kwargs={"ready": ready},
                              daemon=True)
    thread.start()
    assert ready.wait(10), "daemon never became ready"
    yield server, StudyClient(server.socket_path)
    server.stop()
    thread.join(timeout=10)
    assert not thread.is_alive()


def raw_request(socket_path, payload: bytes) -> dict:
    """Send raw bytes (possibly malformed) and read one reply line."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(10)
        sock.connect(str(socket_path))
        sock.sendall(payload)
        line = sock.makefile("rb").readline()
    return json.loads(line)


# --------------------------------------------------------------------------- #
# Warm-state guarantee (the tentpole's acceptance criterion)
# --------------------------------------------------------------------------- #
class TestWarmState:
    def test_second_identical_submit_is_free_and_bit_identical(self, service):
        server, client = service
        spec = grid_spec("warm")
        first = client.submit(spec)
        assert first.status == "done" and len(first.results) == 3
        assert first.summary["lp_solves"] > 0
        assert first.summary["trainings"] == 1

        with count_lp_solves() as tally:
            second = client.submit(spec)
        assert second.status == "done"
        # Zero new LP solves: both the server's per-job tally and a
        # process-wide tally spanning the submit (the daemon runs in this
        # process, so any stray solve would land in `tally` too).
        assert second.summary["lp_solves"] == 0
        assert second.summary["trainings"] == 0
        assert tally.count == 0
        assert wire_dicts(second.results) == wire_dicts(first.results)

    def test_overlapping_submits_from_concurrent_clients(self, service):
        server, client = service
        base = grid_spec("overlap", alphas=(1.0,))
        superset = grid_spec("overlap", alphas=(1.0, 2.0))
        outcomes: dict[str, object] = {}

        def submit(tag, spec):
            outcomes[tag] = StudyClient(server.socket_path).submit(spec)

        threads = [
            threading.Thread(target=submit, args=("base", base)),
            threading.Thread(target=submit, args=("superset", superset)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        base_out, superset_out = outcomes["base"], outcomes["superset"]
        assert base_out.status == superset_out.status == "done"
        # FIFO: whichever ran second reused the first job's LP cache and
        # trained scheme; together they solve no more than one cold run of
        # the superset grid, and train exactly once.
        total_trainings = base_out.summary["trainings"] + superset_out.summary["trainings"]
        assert total_trainings == 1
        # The overlapping 2 of 3 cells are shared: the union of both jobs'
        # solves must equal ONE cold superset run's solves.  The cold
        # reference runs on an isolated engine -- the process-wide
        # shared_cache() may already be warm from other tests.
        from repro.evaluation.engine import EvaluationEngine
        from repro.solvers.lp import OptimalMLUCache

        with count_lp_solves() as tally:
            Study(superset).run(engine=EvaluationEngine(cache=OptimalMLUCache()))
        assert (base_out.summary["lp_solves"] + superset_out.summary["lp_solves"]
                == tally.count)
        # shared cells bit-identical across the two clients
        shared_first = wire_dicts(base_out.results[:2])
        shared_second = wire_dicts(superset_out.results[:2])
        assert shared_first == shared_second

    def test_results_match_direct_run(self, service):
        server, client = service
        spec = grid_spec("direct-eq", alphas=(1.0,))
        outcome = client.submit(spec)
        direct = Study(spec).run()
        assert wire_dicts(outcome.results) == wire_dicts(direct)

    def test_warehouse_append(self, service, tmp_path):
        server, client = service
        warehouse = tmp_path / "wh.jsonl"
        outcome = client.submit(grid_spec("wh", alphas=()), warehouse=warehouse)
        assert outcome.status == "done"
        assert len(ResultWarehouse(warehouse).results()) == 1

    def test_status_reports_warm_caches_and_jobs(self, service):
        server, client = service
        client.submit(grid_spec("status", alphas=()))
        status = client.status()
        assert status["warm"]["lp_cache_entries"] > 0
        assert status["warm"]["trained_schemes"] == 1
        assert status["warm"]["scenarios"] == 1
        (job,) = status["jobs"]
        assert job["status"] == "done" and job["completed"] == job["cells"] == 1
        assert client.status(job=job["job"])["jobs"] == [job]

    def test_suite_submit(self, service):
        server, client = service
        descriptor = {
            "name": "svc",
            "studies": [{"name": "one", "spec": grid_spec("suite-job", alphas=())}],
        }
        outcome = client.submit(descriptor, kind="suite")
        assert outcome.status == "done" and len(outcome.results) == 1
        (record,) = outcome.results
        assert record.tags["suite"] == "svc" and record.tags["study"] == "one"


# --------------------------------------------------------------------------- #
# Cancel / resume through the daemon
# --------------------------------------------------------------------------- #
class TestCancelResume:
    def test_cancel_mid_job_then_resume_completes(self, service):
        server, client = service
        spec = grid_spec("svc-cancel", alphas=(1.0, 2.0, 3.0))
        direct = Study(spec).run()

        terminal = None
        for message in client.submit_iter(spec, checkpoint="cancel-job"):
            if message["type"] == "record" and message["completed"] == 1:
                reply = StudyClient(server.socket_path).cancel(message["job"])
                assert reply["type"] in ("cancelling", "cancelled")
            if message["type"] in ("done", "cancelled", "failed"):
                terminal = message
        assert terminal["type"] == "cancelled"
        assert 0 < terminal["completed"] < 4

        resumed = client.submit(spec, checkpoint="cancel-job", resume=True)
        assert resumed.status == "done" and len(resumed.results) == 4
        assert wire_dicts(resumed.results) == wire_dicts(direct)

    def test_double_cancel_and_cancel_finished_are_clean_errors(self, service):
        server, client = service
        outcome = client.submit(grid_spec("done-cancel", alphas=()))
        with pytest.raises(StudyServiceError, match="already done"):
            client.cancel(outcome.job)

    def test_unknown_job_id_is_clean_error(self, service):
        _, client = service
        with pytest.raises(StudyServiceError, match="unknown job"):
            client.cancel("job-9999")
        with pytest.raises(StudyServiceError, match="unknown job"):
            client.status(job="job-9999")

    def test_resume_without_checkpoint_rejected(self, service):
        _, client = service
        with pytest.raises(StudyServiceError, match="needs a 'checkpoint'"):
            client.submit(grid_spec("r", alphas=()), resume=True)

    def test_server_stop_cancels_running_job_checkpointed(self, service):
        server, client = service
        spec = grid_spec("stop-cancel", alphas=(1.0, 2.0, 3.0))
        terminal = {}

        def on_message(message):
            if message["type"] == "record" and message["completed"] == 1:
                server.stop()  # SIGTERM path: the CLI handler calls exactly this

        outcome = client.submit(spec, checkpoint="stop-job", on_message=on_message)
        terminal = outcome.summary
        assert outcome.status == "cancelled"
        assert terminal["reason"] == "server shutting down"
        ckpt = StudyCheckpoint(server.spool_dir / "stop-job")
        assert 0 < len(ckpt.load()) < 4  # finished cells survived the stop


# --------------------------------------------------------------------------- #
# Protocol error paths (the daemon must outlive all of these)
# --------------------------------------------------------------------------- #
class TestProtocolErrors:
    def test_malformed_json_gets_structured_error(self, service):
        server, client = service
        reply = raw_request(server.socket_path, b"{not json\n")
        assert reply["type"] == "error" and "malformed" in reply["error"]
        assert client.ping()["type"] == "pong"  # daemon survived

    def test_non_object_request_rejected(self, service):
        server, client = service
        reply = raw_request(server.socket_path, b"[1, 2, 3]\n")
        assert reply["type"] == "error" and "JSON object" in reply["error"]
        assert client.ping()["type"] == "pong"

    def test_unknown_op_rejected(self, service):
        server, client = service
        reply = raw_request(server.socket_path, b'{"op": "frobnicate"}\n')
        assert reply["type"] == "error" and "unknown op" in reply["error"]

    def test_invalid_spec_rejected_before_queueing(self, service):
        _, client = service
        with pytest.raises(StudyServiceError, match="invalid study spec"):
            client.submit({"bogus_key": 1})
        with pytest.raises(StudyServiceError, match="invalid suite spec"):
            client.submit({"bogus_key": 1}, kind="suite")
        assert client.status()["jobs"] == []  # nothing was queued

    def test_unknown_submit_key_rejected(self, service):
        server, client = service
        reply = raw_request(
            server.socket_path,
            json.dumps({"op": "submit", "spec": {}, "checkpint": "typo"}).encode()
            + b"\n",
        )
        assert reply["type"] == "error" and "checkpint" in reply["error"]

    def test_client_disconnect_cancels_only_its_job(self, service):
        server, client = service
        # Park a slow job at the head of the FIFO queue so the disconnecting
        # client's job stays queued long enough for the server's monitor to
        # notice the EOF (a warm job can otherwise finish before detection).
        slow_spec = {
            "scenario": scenario_config("disconnect-slow", num_intervals=60),
            "scheme": dict(CHEAP_SCHEME, epochs=60),
            "max_intervals": 30,
        }
        slow_outcome = {}
        slow_thread = threading.Thread(
            target=lambda: slow_outcome.update(
                done=StudyClient(server.socket_path).submit(slow_spec)
            )
        )
        slow_thread.start()
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            jobs = client.status()["jobs"]
            if any(job["status"] == "running" for job in jobs):
                break
            time.sleep(0.02)

        spec = grid_spec("disconnect", alphas=(1.0, 2.0, 3.0))
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(str(server.socket_path))
        sock.sendall((json.dumps({"op": "submit", "spec": spec}) + "\n").encode())
        reader = sock.makefile("rb")
        accepted = json.loads(reader.readline())
        assert accepted["type"] == "accepted"
        # The client vanishes while its job waits in the queue.  shutdown()
        # forces the FIN out even though the makefile reader still holds a
        # reference to the socket's fd.
        sock.shutdown(socket.SHUT_RDWR)
        reader.close()
        sock.close()

        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            (job,) = client.status(job=accepted["job"])["jobs"]
            if job["status"] == "cancelled":
                break
            time.sleep(0.05)
        assert job["status"] == "cancelled"
        assert "disconnected" in job["cancel_reason"]
        # ...and ONLY its job: the in-flight job from the other client is
        # untouched, and the daemon keeps serving new work end-to-end.
        slow_thread.join(timeout=120)
        assert slow_outcome["done"].status == "done"
        follow_up = client.submit(grid_spec("disconnect-after", alphas=()))
        assert follow_up.status == "done"

    def test_stale_socket_replaced_live_daemon_refused(self, service):
        server, _ = service
        root = Path(tempfile.mkdtemp(prefix="repro-stale-"))
        stale = root / "stale.sock"
        dead = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        dead.bind(str(stale))
        dead.close()  # a bound-but-dead socket file, as a SIGKILL leaves behind

        replacement = StudyServer(stale)
        ready = threading.Event()
        thread = threading.Thread(target=replacement.serve_forever,
                                  kwargs={"ready": ready}, daemon=True)
        thread.start()
        assert ready.wait(10)
        assert StudyClient(stale).ping()["type"] == "pong"
        # a second daemon must refuse the live socket rather than steal it
        with pytest.raises(OSError, match="already listening"):
            StudyServer(stale).serve_forever()
        replacement.stop()
        thread.join(timeout=10)
        assert not stale.exists()  # graceful stop cleans up its socket file

    def test_shutdown_op_stops_daemon(self):
        root = Path(tempfile.mkdtemp(prefix="repro-shutdown-"))
        server = StudyServer(root / "daemon.sock")
        ready = threading.Event()
        thread = threading.Thread(target=server.serve_forever,
                                  kwargs={"ready": ready}, daemon=True)
        thread.start()
        assert ready.wait(10)
        client = StudyClient(server.socket_path)
        assert client.shutdown()["type"] == "shutting_down"
        thread.join(timeout=10)
        assert not thread.is_alive()
        with pytest.raises(StudyServiceError, match="cannot reach"):
            client.ping()


# --------------------------------------------------------------------------- #
# Client-side niceties
# --------------------------------------------------------------------------- #
class TestClient:
    def test_wait_until_ready_times_out_cleanly(self, tmp_path):
        with pytest.raises(StudyServiceError, match="became ready"):
            StudyClient.wait_until_ready(tmp_path / "never.sock", timeout=0.3)

    def test_submit_returns_resultset(self, service):
        _, client = service
        outcome = client.submit(grid_spec("rs", alphas=()))
        assert isinstance(outcome.results, ResultSet)
        assert outcome.records_by_index.keys() == {0}
