"""Streaming-evaluation equivalence suite.

The streaming subsystem's contract: replaying a trace chunk by chunk --
including from a one-shot row iterator that never materialises the trace --
produces results identical (within 1e-9) to the whole-trace batch replay,
which PR 1 already pinned to the seed's per-timestep replay.  These tests
close the triangle ``streaming == batch == per-timestep`` for every chunk
size, in particular chunk boundaries that split a history window
(``chunk_size < history_len``).

Set ``REPRO_LP_WORKERS`` (CI does, with 2) to run the engines here with a
process pool under the cold LP batches.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backend import get_backend, importable_backends
from repro.core import Dote, TrainingConfig
from repro.evaluation.engine import EvaluationEngine
from repro.solvers import OmniscientTE, PredictionBasedTE, omniscient_mlu
from repro.te.mlu import max_link_utilization
from repro.traffic.windows import build_history_windows, iter_window_chunks

HISTORY = 4
TOL = 1e-9
#: Pool width for the engines under test (sequential unless CI sets it).
LP_WORKERS = int(os.environ.get("REPRO_LP_WORKERS", "0")) or None

#: Array backends available on this machine (float32 ones run with their own
#: declared tolerance, the float32 plumbing the GPU backends need).
LOCAL_BACKENDS = importable_backends()


def make_engine() -> EvaluationEngine:
    return EvaluationEngine(lp_workers=LP_WORKERS)


def _sequential_replay(scheme, test_sequence, history_len, oracle_demand=False):
    """Reference implementation: the seed's per-timestep replay loop."""
    flat = test_sequence.flat_demands()
    raw, optimal, normalized = [], [], []
    for t in range(history_len, len(flat)):
        history = flat[t - history_len : t]
        if oracle_demand:
            history = np.vstack([history, flat[t]])
        config = scheme.configure(history)
        mlu = max_link_utilization(scheme.path_set, config, flat[t])
        best = omniscient_mlu(scheme.path_set, flat[t])
        raw.append(mlu)
        optimal.append(best)
        normalized.append(mlu / best)
    return np.array(raw), np.array(optimal), np.array(normalized)


def _collect_chunks(source, history_len, chunk_size, oracle_demand=False):
    windows, targets, starts = [], [], []
    for w, t, s in iter_window_chunks(
        source, history_len, chunk_size, oracle_demand=oracle_demand
    ):
        windows.append(np.asarray(w))
        targets.append(np.asarray(t))
        starts.append(s)
    return windows, targets, starts


class TestIterWindowChunks:
    """Chunked windows must concatenate to the whole-trace windows exactly."""

    @pytest.mark.parametrize("chunk_size", [1, 2, 3, HISTORY - 1, 7, 16, 1000])
    @pytest.mark.parametrize("as_stream", [False, True])
    def test_chunks_concatenate_to_full_windows(
        self, mesh4_traffic, chunk_size, as_stream
    ):
        flat = mesh4_traffic[:30].flat_demands()
        full_windows, full_targets = build_history_windows(flat, HISTORY)
        source = (row for row in flat) if as_stream else flat
        windows, targets, starts = _collect_chunks(source, HISTORY, chunk_size)
        np.testing.assert_array_equal(np.concatenate(windows), full_windows)
        np.testing.assert_array_equal(np.concatenate(targets), full_targets)
        # Starts are the cumulative interval offsets and chunks are bounded.
        expected_start = 0
        for chunk_targets, start in zip(targets, starts):
            assert start == expected_start
            assert 1 <= len(chunk_targets) <= chunk_size
            expected_start += len(chunk_targets)
        assert expected_start == len(full_targets)

    @pytest.mark.parametrize("as_stream", [False, True])
    def test_oracle_chunks_match_full_windows(self, mesh4_traffic, as_stream):
        flat = mesh4_traffic[:20].flat_demands()
        full_windows, full_targets = build_history_windows(
            flat, HISTORY, oracle_demand=True
        )
        source = (row for row in flat) if as_stream else flat
        windows, targets, _ = _collect_chunks(
            source, HISTORY, 3, oracle_demand=True
        )
        np.testing.assert_array_equal(np.concatenate(windows), full_windows)
        np.testing.assert_array_equal(np.concatenate(targets), full_targets)

    def test_boundary_splits_history_window(self, mesh4_traffic):
        """chunk_size < history_len: every window's history spans chunks."""
        flat = mesh4_traffic[:25].flat_demands()
        full_windows, _ = build_history_windows(flat, 6)
        windows, _, _ = _collect_chunks((row for row in flat), 6, 2)
        np.testing.assert_array_equal(np.concatenate(windows), full_windows)

    @pytest.mark.parametrize("as_stream", [False, True])
    def test_too_short_trace_rejected(self, mesh4_traffic, as_stream):
        flat = mesh4_traffic[:HISTORY].flat_demands()
        source = (row for row in flat) if as_stream else flat
        with pytest.raises(ValueError, match="shorter than the history"):
            list(iter_window_chunks(source, HISTORY, 4))

    def test_bad_arguments_rejected(self, mesh4_traffic):
        flat = mesh4_traffic[:10].flat_demands()
        with pytest.raises(ValueError, match="chunk_size"):
            list(iter_window_chunks(flat, HISTORY, 0))
        with pytest.raises(ValueError, match="history"):
            list(iter_window_chunks(flat, 0, 4))

    def test_ragged_stream_rejected(self):
        rows = [np.ones(6), np.ones(6), np.ones(5)]
        with pytest.raises(ValueError, match="entries"):
            list(iter_window_chunks(iter(rows), 1, 8))

    @settings(max_examples=40, deadline=None)
    @given(
        length=st.integers(min_value=2, max_value=40),
        history=st.integers(min_value=1, max_value=8),
        chunk_size=st.integers(min_value=1, max_value=50),
        as_stream=st.booleans(),
        oracle=st.booleans(),
    )
    def test_property_chunking_never_changes_windows(
        self, length, history, chunk_size, as_stream, oracle
    ):
        """For ANY (length, history, chunk) the chunks reassemble exactly."""
        rng = np.random.default_rng(length * 1000 + history * 100 + chunk_size)
        flat = rng.random((length, 5))
        if length <= history:
            with pytest.raises(ValueError):
                list(iter_window_chunks(flat, history, chunk_size, oracle))
            return
        full_windows, full_targets = build_history_windows(flat, history, oracle)
        source = (row for row in flat) if as_stream else flat
        windows, targets, _ = _collect_chunks(source, history, chunk_size, oracle)
        np.testing.assert_array_equal(np.concatenate(windows), full_windows)
        np.testing.assert_array_equal(np.concatenate(targets), full_targets)


@pytest.fixture(scope="module")
def trained_dote(request):
    """A tiny trained DOTE model (deterministic function of its window)."""
    mesh4_paths = request.getfixturevalue("mesh4_paths")
    mesh4_traffic = request.getfixturevalue("mesh4_traffic")
    train, _ = mesh4_traffic.split(0.7)
    scheme = Dote(
        mesh4_paths,
        TrainingConfig(
            epochs=2, history_len=HISTORY, hidden_sizes=(16, 16), normalize_by_optimal=False
        ),
    )
    scheme.precompute(train)
    return scheme


class TestStreamingReplayEquivalence:
    """streaming == batch == per-timestep, for LP and neural schemes."""

    #: Chunk sizes: boundary-splitting (< HISTORY), awkward strides, and
    #: one-chunk; 10x-longer-than-chunk is covered by 3 on a 40-interval trace.
    CHUNKS = [1, 2, 3, 7, 10, 1000]

    def _assert_triple_equivalence(self, scheme, test_sequence, oracle_demand=False):
        engine = make_engine()
        batch = engine.evaluate_scheme(
            scheme, test_sequence, HISTORY, oracle_demand=oracle_demand
        )
        raw, optimal, normalized = _sequential_replay(
            scheme, test_sequence, HISTORY, oracle_demand=oracle_demand
        )
        np.testing.assert_allclose(batch.raw_mlus, raw, atol=TOL)
        np.testing.assert_allclose(batch.normalized_mlus, normalized, atol=TOL)
        for chunk_size in self.CHUNKS:
            streamed = engine.evaluate_streaming(
                scheme,
                test_sequence,
                HISTORY,
                chunk_size=chunk_size,
                oracle_demand=oracle_demand,
            )
            np.testing.assert_allclose(streamed.raw_mlus, raw, atol=TOL)
            np.testing.assert_allclose(streamed.optimal_mlus, optimal, atol=TOL)
            np.testing.assert_allclose(streamed.normalized_mlus, normalized, atol=TOL)

    def test_lp_scheme(self, mesh4_paths, mesh4_traffic):
        self._assert_triple_equivalence(
            PredictionBasedTE(mesh4_paths), mesh4_traffic[:14]
        )

    def test_neural_scheme(self, trained_dote, mesh4_traffic):
        self._assert_triple_equivalence(trained_dote, mesh4_traffic[:16])

    def test_oracle_scheme(self, mesh4_paths, mesh4_traffic):
        self._assert_triple_equivalence(
            OmniscientTE(mesh4_paths), mesh4_traffic[:12], oracle_demand=True
        )

    def test_trace_ten_times_longer_than_chunk(self, trained_dote, mesh4_traffic):
        """The acceptance-criterion shape: chunks 10x smaller than the trace."""
        engine = make_engine()
        intervals = len(mesh4_traffic) - HISTORY  # 76 evaluation intervals
        chunk_size = intervals // 10
        assert chunk_size * 10 <= intervals
        batch = engine.evaluate_scheme(trained_dote, mesh4_traffic, HISTORY)
        streamed = engine.evaluate_streaming(
            trained_dote,
            (matrix.flat() for matrix in mesh4_traffic),  # one-shot stream
            HISTORY,
            chunk_size=chunk_size,
        )
        np.testing.assert_allclose(
            streamed.normalized_mlus, batch.normalized_mlus, atol=TOL
        )
        np.testing.assert_allclose(streamed.raw_mlus, batch.raw_mlus, atol=TOL)

    def test_stream_of_traffic_matrices(self, trained_dote, mesh4_traffic):
        """An iterable of TrafficMatrix objects is flattened lazily."""
        engine = make_engine()
        batch = engine.evaluate_scheme(trained_dote, mesh4_traffic[:20], HISTORY)
        streamed = engine.evaluate_streaming(
            trained_dote, iter(mesh4_traffic[:20]), HISTORY, chunk_size=5
        )
        np.testing.assert_allclose(
            streamed.normalized_mlus, batch.normalized_mlus, atol=TOL
        )

    def test_precomputed_normalisers_slice_identically(
        self, trained_dote, mesh4_traffic
    ):
        """optimal_mlus= uses the seed's full-trace indexing on both paths."""
        engine = make_engine()
        test = mesh4_traffic[:18]
        flat = test.flat_demands()
        optimal = np.concatenate(
            [
                np.full(HISTORY, np.nan),
                engine.optimal_mlus(trained_dote.path_set, flat[HISTORY:]),
            ]
        )
        batch = engine.evaluate_scheme(
            trained_dote, test, HISTORY, optimal_mlus=optimal
        )
        streamed = engine.evaluate_streaming(
            trained_dote, test, HISTORY, chunk_size=5, optimal_mlus=optimal
        )
        np.testing.assert_allclose(
            streamed.normalized_mlus, batch.normalized_mlus, atol=TOL
        )
        np.testing.assert_allclose(streamed.optimal_mlus, batch.optimal_mlus, atol=TOL)

    @settings(max_examples=8, deadline=None)
    @given(chunk_size=st.integers(min_value=1, max_value=80))
    def test_property_random_chunk_sizes(self, replay_reference, chunk_size):
        """Any chunk size reproduces the batch replay (neural scheme)."""
        scheme, traffic, engine, batch = replay_reference
        streamed = engine.evaluate_streaming(
            scheme, traffic, HISTORY, chunk_size=chunk_size
        )
        np.testing.assert_allclose(
            streamed.normalized_mlus, batch.normalized_mlus, atol=TOL
        )


@pytest.fixture(scope="module")
def replay_reference(trained_dote, mesh4_traffic):
    """Frozen (scheme, traffic, engine, batch result) for the chunk property.

    Module-scoped so the hypothesis property re-streams against one warmed
    cache instead of re-solving the normalisers per example.
    """
    traffic = mesh4_traffic[:24]
    engine = make_engine()
    batch = engine.evaluate_scheme(trained_dote, traffic, HISTORY)
    return trained_dote, traffic, engine, batch


class TestBackendStreamingEquivalence:
    """streaming == batch == numpy reference under every local array backend.

    The numpy backend must match the default replay bit-identically; the
    float32 / pure-python backends match within their declared tolerance
    (the ~1e-6 float32 bound the GPU backends are pinned to).
    """

    @pytest.mark.parametrize("backend_name", LOCAL_BACKENDS)
    @pytest.mark.parametrize("chunk_size", [3, 1000])
    def test_streaming_matches_numpy_batch(
        self, trained_dote, mesh4_traffic, backend_name, chunk_size
    ):
        test = mesh4_traffic[:20]
        reference_engine = EvaluationEngine(lp_workers=LP_WORKERS, backend="numpy")
        reference = reference_engine.evaluate_scheme(trained_dote, test, HISTORY)
        engine = EvaluationEngine(
            cache=reference_engine.cache, lp_workers=LP_WORKERS, backend=backend_name
        )
        tolerance = max(get_backend(backend_name).tolerance, TOL)
        batch = engine.evaluate_scheme(trained_dote, test, HISTORY)
        streamed = engine.evaluate_streaming(
            trained_dote,
            (matrix.flat() for matrix in test),  # one-shot row stream
            HISTORY,
            chunk_size=chunk_size,
        )
        np.testing.assert_allclose(
            batch.normalized_mlus, reference.normalized_mlus, atol=tolerance
        )
        np.testing.assert_allclose(
            streamed.normalized_mlus, reference.normalized_mlus, atol=tolerance
        )
        # Chunking adds no error beyond the backend's own (BLAS kernels may
        # block differently per batch shape, so float32 backends keep their
        # tolerance here too).
        np.testing.assert_allclose(streamed.raw_mlus, batch.raw_mlus, atol=tolerance)
        if backend_name == "numpy":
            np.testing.assert_array_equal(
                batch.normalized_mlus, reference.normalized_mlus
            )


class TestStreamingCacheConsistency:
    """Cache state populated by streaming replays never changes results."""

    def test_streaming_primes_cache_for_batch_replay(
        self, mesh4_paths, mesh4_traffic
    ):
        scheme = PredictionBasedTE(mesh4_paths)
        engine = make_engine()
        streamed = engine.evaluate_streaming(scheme, mesh4_traffic[:14], HISTORY, chunk_size=3)
        misses = engine.cache.misses
        batch = engine.evaluate_scheme(scheme, mesh4_traffic[:14], HISTORY)
        assert engine.cache.misses == misses  # batch replay was all hits
        np.testing.assert_allclose(
            batch.normalized_mlus, streamed.normalized_mlus, atol=TOL
        )

    def test_failure_experiment_unaffected_by_primed_cache(
        self, mesh4_paths, mesh4_traffic
    ):
        """failure_experiment gives identical output on cold & primed engines."""
        from repro.solvers import DesensitizationTE

        test = mesh4_traffic[:10]
        cold_engine = make_engine()
        primed_engine = make_engine()
        primed_engine.evaluate_streaming(
            DesensitizationTE(mesh4_paths), test, HISTORY, chunk_size=2
        )
        outcomes = []
        for engine in (cold_engine, primed_engine):
            outcomes.append(
                engine.failure_experiment(
                    [DesensitizationTE(mesh4_paths)],
                    test,
                    HISTORY,
                    num_failures=1,
                    num_trials=2,
                    seed=5,
                )
            )
        for name in outcomes[0]:
            np.testing.assert_allclose(
                outcomes[0][name], outcomes[1][name], atol=TOL
            )
