"""Regression tests for the cache-batched training-time normalisers.

``Trainer.fit`` and ``TealLike.precompute`` used to solve one omniscient LP
per training target in a Python loop; both now draw the normalisers from an
:class:`OptimalMLUCache` in one batched call.  The batching must be invisible
to training -- losses bit-identical to the per-target path -- and the entries
it leaves behind must be *hits* (not re-solves) for any later evaluation of
the same demands.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import Dote, Figret, TealLike, TrainingConfig
from repro.core.trainer import Trainer, build_windows
from repro.evaluation.engine import EvaluationEngine
from repro.solvers import OptimalMLUCache, lp_solve_calls, omniscient_mlu

HISTORY = 3
#: Pool width for the normaliser batches (sequential unless CI sets it).
LP_WORKERS = int(os.environ.get("REPRO_LP_WORKERS", "0")) or None


@pytest.fixture(scope="module")
def tiny_config():
    return TrainingConfig(
        epochs=2,
        history_len=HISTORY,
        hidden_sizes=(8, 8),
        normalize_by_optimal=True,
        seed=11,
    )


@pytest.fixture(scope="module")
def train_sequence(mesh4_traffic):
    train, _ = mesh4_traffic[:40].split(0.75)
    return train


class TestTrainerNormalisers:
    def test_cached_normalisers_bitwise_equal_seed_loop(
        self, mesh4_paths, train_sequence, tiny_config
    ):
        """The cache serves exactly what per-target omniscient_mlu returned."""
        _, targets = build_windows(train_sequence, HISTORY)
        reference = np.array(
            [omniscient_mlu(mesh4_paths, target) for target in targets]
        )
        cache = OptimalMLUCache()
        batched = cache.optimal_mlus(mesh4_paths, targets, workers=LP_WORKERS)
        np.testing.assert_array_equal(batched, reference)  # bitwise

    def test_fit_losses_bit_identical_across_cache_states(
        self, mesh4_paths, train_sequence, tiny_config
    ):
        """Cold cache, warm cache, and isolated caches all train identically."""
        histories = []
        warm = OptimalMLUCache()
        for cache in (None, OptimalMLUCache(), warm, warm):  # warm reused twice
            trainer = Trainer(mesh4_paths, tiny_config, cache=cache, lp_workers=LP_WORKERS)
            histories.append(trainer.fit(train_sequence))
        for history in histories[1:]:
            assert history.epoch_losses == histories[0].epoch_losses
            assert history.epoch_mlu_losses == histories[0].epoch_mlu_losses
            assert (
                history.epoch_sensitivity_losses
                == histories[0].epoch_sensitivity_losses
            )
        # The reused cache really did serve the second fit from memory.
        assert warm.hits > 0

    def test_fit_populates_cache_hit_by_subsequent_evaluation(
        self, mesh4_paths, train_sequence, tiny_config
    ):
        """Train + eval of the same demands never solve one LP twice."""
        cache = OptimalMLUCache()
        scheme = Figret(mesh4_paths, tiny_config, cache=cache, lp_workers=LP_WORKERS)
        scheme.precompute(train_sequence)
        fit_misses = cache.misses
        assert fit_misses > 0

        solves_before = lp_solve_calls()
        engine = EvaluationEngine(cache=cache)
        result = engine.evaluate_scheme(scheme, train_sequence, HISTORY)
        # Every normaliser of the training trace was already solved by fit.
        assert cache.misses == fit_misses
        assert lp_solve_calls() == solves_before
        assert np.isfinite(result.normalized_mlus).all()

    def test_dote_threads_cache_through_trainer(
        self, mesh4_paths, train_sequence, tiny_config
    ):
        cache = OptimalMLUCache()
        scheme = Dote(mesh4_paths, tiny_config, cache=cache, lp_workers=LP_WORKERS)
        scheme.precompute(train_sequence)
        assert cache.misses == len(train_sequence) - HISTORY

    def test_normalize_by_optimal_false_skips_cache(
        self, mesh4_paths, train_sequence, tiny_config
    ):
        cache = OptimalMLUCache()
        trainer = Trainer(
            mesh4_paths,
            tiny_config.replace(normalize_by_optimal=False),
            cache=cache,
        )
        trainer.fit(train_sequence)
        assert len(cache) == 0


class TestTealLikeNormalisers:
    def test_precompute_uses_cache_and_trains_identically(
        self, mesh4_paths, train_sequence, tiny_config
    ):
        cache = OptimalMLUCache()
        cached_scheme = TealLike(mesh4_paths, tiny_config, cache=cache, lp_workers=LP_WORKERS)
        cached_scheme.precompute(train_sequence)
        # TEAL-like normalises on every training demand (its loss is on the
        # input demand itself), so the cache holds one entry per interval.
        assert cache.misses == len(train_sequence)

        isolated = TealLike(mesh4_paths, tiny_config)
        isolated.precompute(train_sequence)
        window = train_sequence.flat_demands()[:1]
        np.testing.assert_array_equal(
            cached_scheme.configure(window).split_ratios,
            isolated.configure(window).split_ratios,
        )

    def test_teal_cache_hit_by_subsequent_evaluation(
        self, mesh4_paths, train_sequence, tiny_config
    ):
        cache = OptimalMLUCache()
        scheme = TealLike(mesh4_paths, tiny_config, cache=cache, lp_workers=LP_WORKERS)
        scheme.precompute(train_sequence)
        misses = cache.misses
        solves_before = lp_solve_calls()
        EvaluationEngine(cache=cache).evaluate_scheme(scheme, train_sequence, 1)
        assert cache.misses == misses
        assert lp_solve_calls() == solves_before
