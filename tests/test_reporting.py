"""Coverage for evaluation/reporting.py plus ResultSet JSON properties."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.metrics import normalized_mlu_statistics
from repro.evaluation.reporting import format_mlu_comparison, format_series, format_table
from repro.study import ResultSet, StudyResult


# --------------------------------------------------------------------------- #
# format_table
# --------------------------------------------------------------------------- #
class TestFormatTable:
    def test_alignment_pads_to_widest_cell(self):
        out = format_table(["name", "v"], [["a", "1"], ["longer", "22"]])
        lines = out.splitlines()
        assert lines[0] == "name   | v "
        assert lines[1] == "-------+---"
        assert lines[2] == "a      | 1 "
        assert lines[3] == "longer | 22"

    def test_empty_rows_render_header_only(self):
        out = format_table(["a", "bb"], [])
        assert out.splitlines() == ["a | bb", "--+---"]

    def test_title_is_first_line(self):
        out = format_table(["x"], [["1"]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_non_string_cells_are_stringified(self):
        out = format_table(["x", "y"], [[1, 2.5], [None, True]])
        assert "1" in out and "2.5" in out and "None" in out and "True" in out

    def test_header_wider_than_cells(self):
        out = format_table(["wide_header"], [["x"]])
        lines = out.splitlines()
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_wide_row_raises_naming_the_row(self):
        with pytest.raises(ValueError, match=r"table row 1 has 3 cell\(s\)"):
            format_table(["a", "b"], [["1", "2"], ["1", "2", "3"]])

    def test_short_row_raises_naming_the_row(self):
        # Used to slip past the width computation and blow up later (or
        # render a ragged table); now it is a ValueError up front.
        with pytest.raises(ValueError, match=r"table row 0 has 1 cell\(s\) but there are 2 header\(s\)"):
            format_table(["a", "b"], [["only"]])


# --------------------------------------------------------------------------- #
# format_mlu_comparison
# --------------------------------------------------------------------------- #
class TestFormatMluComparison:
    def test_rows_in_mapping_order_with_percentiles(self):
        stats = {
            "FIGRET": normalized_mlu_statistics(np.array([1.0, 1.2, 1.4])),
            "DOTE": normalized_mlu_statistics(np.array([1.0, 2.5, 3.0])),
        }
        out = format_mlu_comparison(stats, title="cmp")
        lines = out.splitlines()
        assert lines[0] == "cmp"
        assert lines[1].startswith("scheme")
        assert lines[3].startswith("FIGRET")
        assert lines[4].startswith("DOTE")
        # DOTE has 2/3 samples above the severe threshold of 2.
        assert "66.7%" in lines[4]

    def test_empty_mapping_is_header_only(self):
        out = format_mlu_comparison({})
        assert len(out.splitlines()) == 2


# --------------------------------------------------------------------------- #
# format_series
# --------------------------------------------------------------------------- #
class TestFormatSeries:
    def test_short_series_verbatim(self):
        assert format_series("s", np.array([1.0, 2.0])) == "s: [1.000, 2.000]"

    def test_empty_series(self):
        assert format_series("s", np.array([])) == "s: []"

    def test_long_series_downsampled_keeps_endpoints(self):
        values = np.arange(100, dtype=float)
        out = format_series("s", values, max_points=10)
        parts = out[len("s: ["):-1].split(", ")
        assert len(parts) == 10
        assert parts[0] == "0.000"
        assert parts[-1] == "99.000"

    def test_max_points_boundary_not_downsampled(self):
        values = np.arange(20, dtype=float)
        out = format_series("s", values, max_points=20)
        assert len(out.split(", ")) == 20


# --------------------------------------------------------------------------- #
# ResultSet JSON round-trip (property-based)
# --------------------------------------------------------------------------- #
_finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
_label = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=0x7F),
    min_size=1,
    max_size=12,
)

_record = st.builds(
    StudyResult,
    scenario=_label,
    scheme=_label,
    experiment=st.sampled_from(["replay", "fluctuation", "failure", "drift"]),
    spec=st.dictionaries(
        _label,
        st.one_of(_finite, st.integers(-1000, 1000), _label, st.booleans(), st.none()),
        max_size=4,
    ),
    metrics=st.dictionaries(_label, _finite, max_size=5),
    series=st.one_of(
        st.none(),
        st.lists(_finite, min_size=0, max_size=8).map(lambda v: np.asarray(v, dtype=float)),
    ),
)


class TestResultSetRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(_record, max_size=5))
    def test_to_json_from_json_is_lossless(self, records):
        original = ResultSet(records)
        restored = ResultSet.from_json(original.to_json())
        assert len(restored) == len(original)
        for before, after in zip(original, restored):
            assert after.scenario == before.scenario
            assert after.scheme == before.scheme
            assert after.experiment == before.experiment
            assert after.spec == before.spec
            assert after.metrics == before.metrics
            if before.series is None:
                assert after.series is None
            else:
                np.testing.assert_array_equal(after.series, before.series)

    def test_from_json_rejects_foreign_documents(self):
        with pytest.raises(ValueError, match="not a repro study result-set"):
            ResultSet.from_json('{"hello": 1}')

    def test_from_json_rejects_future_versions(self):
        text = ResultSet([]).to_json().replace('"version": 1', '"version": 99')
        with pytest.raises(ValueError, match="unsupported result-set version"):
            ResultSet.from_json(text)

    def test_from_json_rejects_missing_results_key(self):
        # A valid header with the body sheared off is corruption -- it must
        # not decode as "the study produced zero records".
        text = '{"format": "repro-study-resultset", "version": 1}'
        with pytest.raises(ValueError, match="corrupt result-set document: 'results' is missing"):
            ResultSet.from_json(text)

    def test_from_json_rejects_non_list_results(self):
        text = '{"format": "repro-study-resultset", "version": 1, "results": {}}'
        with pytest.raises(ValueError, match="corrupt result-set document: 'results' is dict"):
            ResultSet.from_json(text)

    def test_save_creates_missing_parent_directories(self, tmp_path):
        record = StudyResult(
            scenario="s", scheme="m", experiment="replay", spec={},
            metrics={"mean": 1.0}, series=None,
        )
        path = ResultSet([record]).save(tmp_path / "deep" / "nested" / "results.json")
        assert len(ResultSet.load(path)) == 1

    def test_save_and_load(self, tmp_path):
        record = StudyResult(
            scenario="s", scheme="m", experiment="replay", spec={"max_intervals": 3},
            metrics={"mean": 1.25}, series=np.array([1.0, 1.5]),
        )
        path = ResultSet([record]).save(tmp_path / "results.json")
        restored = ResultSet.load(path)
        assert restored[0].metrics == {"mean": 1.25}
        np.testing.assert_array_equal(restored[0].series, [1.0, 1.5])

    def test_to_json_can_trim_series(self):
        record = StudyResult(
            scenario="s", scheme="m", experiment="replay", spec={},
            metrics={"mean": 1.0}, series=np.array([1.0]),
        )
        restored = ResultSet.from_json(
            ResultSet([record]).to_json(include_series=False)
        )
        assert restored[0].series is None
        with pytest.raises(ValueError, match="no stored series"):
            restored[0].statistics
