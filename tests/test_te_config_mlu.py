"""Unit tests for TE configurations and MLU computation (repro.te)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.te.config import TEConfiguration
from repro.te.mlu import link_loads, link_utilization, max_link_utilization


class TestTEConfiguration:
    def test_uniform_sums_to_one(self, mesh4_paths):
        config = TEConfiguration.uniform(mesh4_paths)
        sums = mesh4_paths.sd_to_path @ config.split_ratios
        np.testing.assert_allclose(sums, 1.0)

    def test_shortest_path_puts_everything_on_first_path(self, mesh4_paths):
        config = TEConfiguration.shortest_path(mesh4_paths)
        for s, d in mesh4_paths.topology.sd_pairs():
            ratios = config.ratios_for(s, d)
            assert ratios[0] == 1.0
            np.testing.assert_allclose(ratios[1:], 0.0)

    def test_normalization_rescales(self, triangle_paths):
        raw = np.full(triangle_paths.num_paths, 2.0)
        config = TEConfiguration(triangle_paths, raw, normalize=True)
        sums = triangle_paths.sd_to_path @ config.split_ratios
        np.testing.assert_allclose(sums, 1.0)

    def test_all_zero_pair_becomes_uniform(self, triangle_paths):
        raw = np.zeros(triangle_paths.num_paths)
        config = TEConfiguration(triangle_paths, raw, normalize=True)
        for s, d in triangle_paths.topology.sd_pairs():
            ratios = config.ratios_for(s, d)
            np.testing.assert_allclose(ratios, 1.0 / len(ratios))

    def test_strict_mode_rejects_bad_sums(self, triangle_paths):
        raw = np.full(triangle_paths.num_paths, 0.4)
        with pytest.raises(ValueError, match="sum"):
            TEConfiguration(triangle_paths, raw, normalize=False)

    def test_negative_ratios_rejected(self, triangle_paths):
        raw = np.full(triangle_paths.num_paths, 0.5)
        raw[0] = -0.5
        with pytest.raises(ValueError, match="non-negative"):
            TEConfiguration(triangle_paths, raw)

    def test_wrong_length_rejected(self, triangle_paths):
        with pytest.raises(ValueError, match="split ratios"):
            TEConfiguration(triangle_paths, np.ones(3))

    def test_copy_is_independent(self, triangle_paths):
        config = TEConfiguration.uniform(triangle_paths)
        clone = config.copy()
        clone.split_ratios[0] = 0.123
        assert config.split_ratios[0] != 0.123


class TestMLU:
    def test_figure3_scheme1_normal(self, triangle_paths):
        """TE scheme 1 (all shortest paths) on the normal demand: MLU = 0.5."""
        config = TEConfiguration.shortest_path(triangle_paths)
        demand = np.zeros((3, 3))
        demand[0, 1] = demand[0, 2] = demand[1, 2] = 1.0
        dv = triangle_paths.demand_vector(demand)
        assert max_link_utilization(triangle_paths, config, dv) == pytest.approx(0.5)

    def test_figure3_scheme1_burst(self, triangle_paths):
        """TE scheme 1 under burst 1 (A->B demand = 4): MLU = 2."""
        config = TEConfiguration.shortest_path(triangle_paths)
        demand = np.zeros((3, 3))
        demand[0, 1] = 4.0
        demand[0, 2] = demand[1, 2] = 1.0
        dv = triangle_paths.demand_vector(demand)
        assert max_link_utilization(triangle_paths, config, dv) == pytest.approx(2.0)

    def test_figure3_scheme2_even_split(self, triangle_paths):
        """TE scheme 2 (50/50 split everywhere): normal MLU = 0.75, burst MLU = 1.5."""
        config = TEConfiguration.uniform(triangle_paths)
        normal = np.zeros((3, 3))
        normal[0, 1] = normal[0, 2] = normal[1, 2] = 1.0
        burst = normal.copy()
        burst[0, 1] = 4.0
        assert max_link_utilization(
            triangle_paths, config, triangle_paths.demand_vector(normal)
        ) == pytest.approx(0.75)
        assert max_link_utilization(
            triangle_paths, config, triangle_paths.demand_vector(burst)
        ) == pytest.approx(1.5)

    def test_link_loads_sum_matches_demand_times_hops(self, mesh4_paths):
        config = TEConfiguration.shortest_path(mesh4_paths)
        demand = np.ones(mesh4_paths.num_sd_pairs)
        loads = link_loads(mesh4_paths, config, demand)
        # With shortest (direct) paths, each demand loads exactly one edge.
        assert loads.sum() == pytest.approx(demand.sum())

    def test_batch_evaluation_matches_individual(self, mesh4_paths, rng):
        config = TEConfiguration.uniform(mesh4_paths)
        demands = rng.random((5, mesh4_paths.num_sd_pairs))
        batch = max_link_utilization(mesh4_paths, config, demands)
        singles = [max_link_utilization(mesh4_paths, config, d) for d in demands]
        np.testing.assert_allclose(batch, singles)

    def test_utilization_scales_inversely_with_capacity(self, mesh4_paths, rng):
        config = TEConfiguration.uniform(mesh4_paths)
        demand = rng.random(mesh4_paths.num_sd_pairs)
        base = link_utilization(mesh4_paths, config, demand)
        from repro.paths.ksp import build_ksp_path_set

        scaled_topo = mesh4_paths.topology.with_scaled_capacities(2.0)
        scaled_paths = build_ksp_path_set(scaled_topo, k=3)
        scaled_config = TEConfiguration(scaled_paths, config.split_ratios, normalize=False)
        scaled = link_utilization(scaled_paths, scaled_config, demand)
        np.testing.assert_allclose(scaled, base / 2.0)

    def test_accepts_raw_ratio_array(self, triangle_paths):
        ratios = TEConfiguration.uniform(triangle_paths).split_ratios
        demand = np.ones(triangle_paths.num_sd_pairs)
        assert max_link_utilization(triangle_paths, ratios, demand) > 0

    def test_mlu_linear_in_demand_scale(self, mesh4_paths, rng):
        config = TEConfiguration.uniform(mesh4_paths)
        demand = rng.random(mesh4_paths.num_sd_pairs)
        mlu = max_link_utilization(mesh4_paths, config, demand)
        assert max_link_utilization(mesh4_paths, config, demand * 3.0) == pytest.approx(3.0 * mlu)
