"""The declarative study layer: spec expansion, registries, orchestration.

Includes the acceptance grid of the API redesign: a 3-scenario x 3-scheme x
2-perturbation grid declared as one plain dict, executed with zero repeat LP
solves across cells, whose ResultSet round-trips through JSON with spec
provenance intact.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.datasets import (
    available_scenarios,
    from_config,
    load,
    register_scenario,
    unregister_scenario,
)
from repro.evaluation.engine import EvaluationEngine
from repro.solvers.lp import OptimalMLUCache, count_lp_solves
from repro.study import (
    ExperimentSpec,
    ResultSet,
    Study,
    available_schemes,
    build_scheme,
    expand_spec,
    register_scheme,
    sweep,
)
from repro.study.__main__ import main as study_cli


# --------------------------------------------------------------------------- #
# Spec expansion
# --------------------------------------------------------------------------- #
class TestExpandSpec:
    def test_no_sweep_is_single_cell(self):
        spec = {"scenario": "geant_small", "scheme": {"kind": "dote"}}
        assert expand_spec(spec) == [spec]

    def test_cross_product_order(self):
        spec = {
            "scenario": sweep("a", "b"),
            "scheme": {"kind": "dote"},
            "perturbation": sweep({"kind": "none"}, {"kind": "fluctuation", "alpha": 1.0}),
        }
        cells = expand_spec(spec)
        assert len(cells) == 4
        # First axis (discovery order) varies slowest, last varies fastest.
        assert [cell["scenario"] for cell in cells] == ["a", "a", "b", "b"]
        assert [cell["perturbation"]["kind"] for cell in cells] == [
            "none", "fluctuation", "none", "fluctuation",
        ]

    def test_json_sweep_spelling(self):
        spec = {"scenario": {"sweep": ["a", "b"]}, "scheme": {"kind": "dote"}}
        assert [cell["scenario"] for cell in expand_spec(spec)] == ["a", "b"]

    def test_nested_sweep_inside_scheme_params(self):
        spec = {
            "scenario": "x",
            "scheme": {"kind": "figret", "robustness_weight": sweep(0.0, 0.1, 0.3)},
        }
        cells = expand_spec(spec)
        assert [cell["scheme"]["robustness_weight"] for cell in cells] == [0.0, 0.1, 0.3]

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError, match="at least one value"):
            sweep()


# --------------------------------------------------------------------------- #
# Cell validation
# --------------------------------------------------------------------------- #
class TestExperimentSpec:
    def test_unknown_cell_key_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment spec key"):
            ExperimentSpec.from_dict({"scenario": "x", "scheme": {"kind": "dote"}, "nope": 1})

    def test_unknown_scheme_kind_listed(self):
        with pytest.raises(ValueError, match="unknown scheme kind 'bogus'"):
            ExperimentSpec(scenario="x", scheme={"kind": "bogus"})

    def test_unknown_perturbation_kind(self):
        with pytest.raises(ValueError, match="unknown perturbation kind"):
            ExperimentSpec(scenario="x", scheme={"kind": "dote"}, perturbation={"kind": "melt"})

    def test_perturbation_requires_parameters(self):
        with pytest.raises(ValueError, match="requires 'alpha'"):
            ExperimentSpec(
                scenario="x", scheme={"kind": "dote"}, perturbation={"kind": "fluctuation"}
            )

    def test_perturbation_unknown_key(self):
        with pytest.raises(ValueError, match="unknown key"):
            ExperimentSpec(
                scenario="x",
                scheme={"kind": "dote"},
                perturbation={"kind": "fluctuation", "alpha": 1.0, "sigma": 2},
            )

    def test_scheme_label_excluded_from_dedup_key(self):
        first = ExperimentSpec(scenario="x", scheme={"kind": "dote", "label": "A"})
        second = ExperimentSpec(scenario="x", scheme={"kind": "dote", "label": "B"})
        assert first.scheme_key == second.scheme_key

    def test_provenance_is_json_safe(self):
        cell = ExperimentSpec(
            scenario={"name": "geant_small", "seed": 7},
            scheme={"kind": "figret", "hidden_sizes": (16, 16)},
            perturbation={"kind": "drift", "train_segment": (0.0, 0.25)},
            max_intervals=10,
        )
        provenance = cell.to_dict()
        restored = json.loads(json.dumps(provenance))
        assert restored == provenance
        assert restored["scheme"]["hidden_sizes"] == [16, 16]
        assert restored["perturbation"]["train_segment"] == [0.0, 0.25]


# --------------------------------------------------------------------------- #
# Open registries
# --------------------------------------------------------------------------- #
def _tiny_config(name="cfg_mesh", seed=5, num_intervals=60):
    return {
        "name": name,
        "topology": {"kind": "fully_connected", "num_nodes": 4, "capacity": 10.0},
        "traffic": {
            "kind": "datacenter",
            "level": "pod",
            "seed": seed,
            "num_intervals": num_intervals,
        },
        "history_len": 3,
    }


class TestScenarioRegistry:
    def test_from_config_builds_scenario(self):
        scenario = from_config(_tiny_config())
        assert scenario.name == "cfg_mesh"
        assert scenario.topology.num_nodes == 4
        assert len(scenario.traffic) == 60
        assert scenario.history_len == 3
        assert scenario.paths.num_sd_pairs == 12

    def test_from_config_unknown_topology_kind(self):
        config = _tiny_config()
        config["topology"] = {"kind": "torus"}
        with pytest.raises(ValueError, match="unknown topology kind 'torus'"):
            from_config(config)

    def test_from_config_unknown_traffic_kind(self):
        config = _tiny_config()
        config["traffic"] = {"kind": "nope", "num_intervals": 10}
        with pytest.raises(ValueError, match="unknown traffic kind"):
            from_config(config)

    def test_from_config_rejects_leftover_keys(self):
        config = _tiny_config()
        config["wat"] = 1
        with pytest.raises(ValueError, match="unknown scenario config key"):
            from_config(config)

    def test_from_config_rejects_unknown_topology_params(self):
        config = _tiny_config()
        config["topology"]["num_leaves"] = 4  # star's parameter, not fully_connected's
        with pytest.raises(ValueError, match="unknown key.*'num_leaves'.*fully_connected"):
            from_config(config)

    def test_from_config_rejects_unknown_traffic_params(self):
        config = _tiny_config()
        config["traffic"]["noise"] = 0.1  # typo for noise_level, and not a dc param
        with pytest.raises(ValueError, match="unknown key.*'noise'"):
            from_config(config)

    def test_from_config_rejects_reserved_traffic_topology_key(self):
        config = _tiny_config()
        config["traffic"]["topology"] = {"kind": "star"}
        with pytest.raises(ValueError, match="unknown key.*'topology'"):
            from_config(config)

    def test_register_scenario_roundtrip(self):
        @register_scenario("unit_test_scenario")
        def _build(seed, num_intervals):
            return from_config(_tiny_config("unit_test_scenario", seed, num_intervals or 40))

        try:
            assert "unit_test_scenario" in available_scenarios()
            scenario = load("unit_test_scenario", seed=9, num_intervals=25)
            assert len(scenario.traffic) == 25
            with pytest.raises(ValueError, match="already registered"):
                register_scenario("unit_test_scenario")(_build)
            register_scenario("unit_test_scenario", overwrite=True)(_build)
        finally:
            unregister_scenario("unit_test_scenario")
        assert "unit_test_scenario" not in available_scenarios()


class TestSchemeRegistry:
    def test_available_schemes_cover_bundled_kinds(self):
        kinds = available_schemes()
        for kind in ("figret", "dote", "teal", "des_te", "fa_des_te", "pred_te",
                     "oblivious", "cope", "omniscient"):
            assert kind in kinds

    def test_duplicate_registration_rejected(self):
        @register_scheme("unit_test_scheme")
        def _build(path_set, *, cache=None, lp_workers=None, **params):
            raise NotImplementedError

        try:
            with pytest.raises(ValueError, match="already registered"):
                register_scheme("unit_test_scheme")(_build)
        finally:
            from repro.study.spec import _SCHEME_BUILDERS

            _SCHEME_BUILDERS.pop("unit_test_scheme", None)

    def test_build_scheme_unknown_kind(self, mesh4_paths):
        with pytest.raises(ValueError, match="unknown scheme kind"):
            build_scheme({"kind": "bogus"}, mesh4_paths)

    def test_build_scheme_missing_kind(self, mesh4_paths):
        with pytest.raises(ValueError, match="missing its 'kind'"):
            build_scheme({}, mesh4_paths)


# --------------------------------------------------------------------------- #
# Acceptance: the 3 x 3 x 2 grid from one plain-dict spec
# --------------------------------------------------------------------------- #
SCENARIO_NAMES = ("study_grid_a", "study_grid_b", "study_grid_c")

#: Three distinct neural scheme specs.  normalize_by_optimal=False keeps the
#: tiny trainings LP-free, so every LP solve in the grid is a replay
#: normaliser and the dedup accounting below is exact.
SCHEME_SPECS = (
    {"kind": "figret", "epochs": 2, "history_len": 3, "robustness_weight": 0.1,
     "normalize_by_optimal": False, "seed": 0},
    {"kind": "dote", "epochs": 2, "history_len": 3,
     "normalize_by_optimal": False, "seed": 0},
    {"kind": "teal", "epochs": 2, "normalize_by_optimal": False, "seed": 0},
)


@pytest.fixture(scope="module")
def grid_scenarios():
    for index, name in enumerate(SCENARIO_NAMES):
        register_scenario(name)(
            lambda seed, num_intervals, _i=index, _n=name: from_config(
                _tiny_config(_n, seed=seed + _i, num_intervals=num_intervals or 40)
            )
        )
    yield SCENARIO_NAMES
    for name in SCENARIO_NAMES:
        unregister_scenario(name)


@pytest.fixture(scope="module")
def grid_spec(grid_scenarios):
    return {
        "scenario": {"sweep": [{"name": name, "seed": 2} for name in grid_scenarios]},
        "scheme": {"sweep": list(SCHEME_SPECS)},
        "perturbation": {"sweep": [
            {"kind": "none"},
            {"kind": "fluctuation", "alpha": 0.5, "seed": 1},
        ]},
        "max_intervals": 4,
    }


class TestAcceptanceGrid:
    def test_grid_runs_with_zero_repeat_lp_solves(self, grid_spec):
        engine = EvaluationEngine(cache=OptimalMLUCache())
        study = Study(grid_spec)
        assert len(study) == 18  # 3 scenarios x 3 schemes x 2 perturbations

        with count_lp_solves() as cold:
            results = study.run(engine=engine)
        assert len(results) == 18
        # Normalisers: one solve per distinct demand matrix -- 4 evaluated
        # intervals per scenario per perturbation profile, shared by all 3
        # schemes.  3 scenarios x 2 profiles x 4 targets = 24.
        assert cold.count == 24

        # Re-running the identical grid (fresh Study, fresh scheme builds,
        # same engine) repeats zero LP solves across all 18 cells.
        with count_lp_solves() as warm:
            rerun = Study(grid_spec).run(engine=engine)
        assert warm.count == 0
        for first, second in zip(results, rerun):
            np.testing.assert_array_equal(first.series, second.series)

    def test_scheme_axis_adds_zero_solves(self, grid_spec):
        engine = EvaluationEngine(cache=OptimalMLUCache())
        single = dict(grid_spec)
        single["scheme"] = SCHEME_SPECS[0]
        with count_lp_solves() as first:
            Study(single).run(engine=engine)
        assert first.count == 24
        with count_lp_solves() as rest:
            Study(grid_spec).run(engine=engine)
        assert rest.count == 0

    def test_training_dedup_one_per_scheme_spec(self, grid_spec):
        cache: dict = {}
        study = Study(grid_spec, scheme_cache=cache)
        study.run(engine=EvaluationEngine(cache=OptimalMLUCache()))
        # One trained scheme per scenario x scheme spec, shared by both
        # perturbation profiles.
        assert len(cache) == 9
        again = Study(grid_spec, scheme_cache=cache)
        schemes_before = dict(cache)
        again.run(engine=EvaluationEngine(cache=OptimalMLUCache()))
        assert {key: id(value) for key, value in cache.items()} == {
            key: id(value) for key, value in schemes_before.items()
        }

    def test_resultset_json_roundtrip_with_provenance(self, grid_spec):
        results = Study(grid_spec).run(engine=EvaluationEngine(cache=OptimalMLUCache()))
        restored = ResultSet.from_json(results.to_json())
        assert len(restored) == len(results)
        for original, loaded in zip(results, restored):
            assert loaded.scenario == original.scenario
            assert loaded.scheme == original.scheme
            assert loaded.experiment == original.experiment
            assert loaded.spec == original.spec
            assert loaded.metrics == original.metrics
            np.testing.assert_array_equal(loaded.series, original.series)
        # Provenance is complete: the cell is rebuildable from the record.
        record = restored[-1]
        assert record.spec["scenario"] == {"name": "study_grid_c", "seed": 2}
        assert record.spec["scheme"]["kind"] == "teal"
        assert record.spec["perturbation"]["alpha"] == 0.5
        assert record.spec["max_intervals"] == 4
        cell = ExperimentSpec.from_dict(record.spec)
        assert cell.scheme_key == ExperimentSpec.from_dict(
            {"scenario": record.spec["scenario"], "scheme": SCHEME_SPECS[2]}
        ).scheme_key


# --------------------------------------------------------------------------- #
# Orchestration behaviour
# --------------------------------------------------------------------------- #
class TestStudyBehaviour:
    def test_streaming_cell_matches_batch(self, grid_scenarios):
        base = {
            "scenario": {"name": grid_scenarios[0], "seed": 2},
            "scheme": SCHEME_SPECS[1],
            "max_intervals": 6,
        }
        engine = EvaluationEngine(cache=OptimalMLUCache())
        cache: dict = {}
        batch = Study(base, scheme_cache=cache).run(engine=engine)[0]
        streaming_spec = dict(base, streaming=True, chunk_size=2)
        streaming = Study(streaming_spec, scheme_cache=cache).run(engine=engine)[0]
        np.testing.assert_allclose(streaming.series, batch.series, rtol=0, atol=1e-9)

    def test_live_scheme_path_set_mismatch_rejected(self, grid_scenarios, triangle_paths):
        from repro.solvers import PredictionBasedTE

        cell = ExperimentSpec(
            scenario={"name": grid_scenarios[0], "seed": 2},
            scheme=PredictionBasedTE(triangle_paths),
            train=False,
        )
        with pytest.raises(ValueError, match="different path set"):
            Study([cell]).run(engine=EvaluationEngine(cache=OptimalMLUCache()))

    def test_drift_rejects_live_instances(self, grid_scenarios, mesh4_paths):
        from repro.solvers import PredictionBasedTE

        cell = ExperimentSpec(
            scenario={"name": grid_scenarios[0], "seed": 2},
            scheme=PredictionBasedTE(mesh4_paths),
            perturbation={"kind": "drift", "train_segment": (0.0, 0.25)},
        )
        with pytest.raises(ValueError, match="retrain from scratch"):
            Study([cell]).run(engine=EvaluationEngine(cache=OptimalMLUCache()))

    def test_drift_rejects_train_false(self, grid_scenarios):
        cell = ExperimentSpec(
            scenario={"name": grid_scenarios[0], "seed": 2},
            scheme=dict(SCHEME_SPECS[0]),
            perturbation={"kind": "drift", "train_segment": (0.0, 0.25)},
            train=False,
        )
        with pytest.raises(ValueError, match="train=False"):
            Study([cell]).run(engine=EvaluationEngine(cache=OptimalMLUCache()))

    def test_drift_baselines_not_shared_across_test_segments(self, grid_scenarios):
        # Two drift cells with the same training prefix but different
        # held-out slices: each must measure its decline against a baseline
        # replayed on its *own* test segment.
        def cell(test_segment):
            return ExperimentSpec(
                scenario={"name": grid_scenarios[0], "seed": 2},
                scheme=dict(SCHEME_SPECS[0]),
                perturbation={
                    "kind": "drift",
                    "train_segment": (0.0, 0.25),
                    "test_segment": test_segment,
                },
            )

        engine = EvaluationEngine(cache=OptimalMLUCache())
        joint = Study([cell((0.5, 0.75)), cell((0.5, 1.0))]).run(engine=engine)
        alone = Study([cell((0.5, 1.0))]).run(engine=engine)
        assert joint[1].metrics["average_decline"] == alone[0].metrics["average_decline"]

    def test_registry_reference_rejects_unknown_keys(self, grid_scenarios):
        with pytest.raises(ValueError, match="unknown scenario reference key"):
            ExperimentSpec(
                scenario={"name": grid_scenarios[0], "intervals": 10},
                scheme=dict(SCHEME_SPECS[0]),
            ).scenario_key

    def test_failure_cell_rejects_streaming_and_oracle_knobs(self, grid_scenarios):
        for knob in ({"streaming": True}, {"oracle_demand": True}):
            cell = ExperimentSpec(
                scenario={"name": grid_scenarios[0], "seed": 2},
                scheme=dict(SCHEME_SPECS[0]),
                perturbation={"kind": "failure", "num_failures": 1, "num_trials": 1},
                **knob,
            )
            with pytest.raises(ValueError, match="batched failure protocol"):
                Study([cell]).run(engine=EvaluationEngine(cache=OptimalMLUCache()))

    def test_failure_cell_resets_fault_aware_scheme_state(self, grid_scenarios):
        # A fault-aware scheme mutated by the failure protocol must be handed
        # to subsequent cells (and warm re-runs via a shared cache) with an
        # intact network, so its plain replay matches a never-failed one.
        spec = {
            "scenario": {"name": grid_scenarios[0], "seed": 2},
            "scheme": {"kind": "fa_des_te"},
            "perturbation": {"sweep": [
                {"kind": "failure", "num_failures": 1, "num_trials": 2, "seed": 5},
                {"kind": "none"},
            ]},
            "max_intervals": 4,
        }
        engine = EvaluationEngine(cache=OptimalMLUCache())
        after_failure = Study(spec).run(engine=engine).only(experiment="replay")
        clean = Study(
            {k: v for k, v in spec.items() if k != "perturbation"}
        ).run(engine=engine).only(experiment="replay")
        np.testing.assert_array_equal(after_failure.series, clean.series)

    def test_study_rejects_unknown_spec_type(self):
        with pytest.raises(TypeError, match="Study accepts"):
            Study(42)

    def test_from_spec_and_from_json_expand_identically(self):
        spec = {
            "scenario": {"sweep": ["a", "b"]},
            "scheme": {"kind": "dote"},
        }
        built = Study.from_spec(spec)
        parsed = Study.from_json(json.dumps(spec))
        assert len(built) == len(parsed) == 2
        assert [cell.scenario for cell in built.specs] == [
            cell.scenario for cell in parsed.specs
        ]

    def test_labels_rename_records(self, grid_scenarios):
        spec = {
            "scenario": {"name": grid_scenarios[0], "seed": 2},
            "scheme": dict(SCHEME_SPECS[0], label="MyFigret"),
            "max_intervals": 3,
        }
        results = Study(spec).run(engine=EvaluationEngine(cache=OptimalMLUCache()))
        assert results[0].scheme == "MyFigret"

    def test_filter_and_only(self, grid_spec):
        results = Study(grid_spec).run(engine=EvaluationEngine(cache=OptimalMLUCache()))
        replay = results.filter(experiment="replay")
        assert len(replay) == 9
        one = results.only(
            scenario="study_grid_a", scheme="DOTE", experiment="fluctuation"
        )
        assert one.metrics["average_decline"] == pytest.approx(
            one.statistics.mean / results.only(
                scenario="study_grid_a", scheme="DOTE", experiment="replay"
            ).statistics.mean - 1.0
        )
        with pytest.raises(ValueError, match="exactly one"):
            results.only(scheme="DOTE")


class TestStudyCLI:
    def test_cli_runs_spec_and_writes_results(self, tmp_path, grid_scenarios, capsys):
        spec = {
            "scenario": {"name": grid_scenarios[0], "seed": 2},
            "scheme": {"sweep": [SCHEME_SPECS[0], SCHEME_SPECS[1]]},
            "max_intervals": 3,
        }
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec))
        out_path = tmp_path / "results.json"
        assert study_cli([str(spec_path), "--out", str(out_path)]) == 0
        captured = capsys.readouterr().out
        assert "2 experiment cell(s)" in captured
        restored = ResultSet.load(out_path)
        assert [record.scheme for record in restored] == ["FIGRET", "DOTE"]

    def test_cli_lists_registries(self, capsys):
        assert study_cli(["--list-scenarios"]) == 0
        assert "geant_small" in capsys.readouterr().out
        assert study_cli(["--list-schemes"]) == 0
        assert "figret" in capsys.readouterr().out
