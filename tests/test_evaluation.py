"""Unit tests for the evaluation harness (metrics, runner, timing, reporting)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.metrics import (
    SEVERE_CONGESTION_THRESHOLD,
    mean_confidence_interval,
    normalized_mlu_statistics,
    severe_congestion_fraction,
)
from repro.evaluation.reporting import format_mlu_comparison, format_series, format_table
from repro.evaluation.runner import (
    compare_schemes,
    compute_optimal_mlus,
    drift_experiment,
    evaluate_scheme,
    failure_experiment,
    fluctuation_experiment,
)
from repro.evaluation.timing import measure_scheme_timing
from repro.solvers import DesensitizationTE, OmniscientTE, PredictionBasedTE


class TestMetrics:
    def test_statistics_of_constant_series(self):
        stats = normalized_mlu_statistics(np.full(50, 1.25))
        assert stats.mean == pytest.approx(1.25)
        assert stats.median == pytest.approx(1.25)
        assert stats.worst == pytest.approx(1.25)
        assert stats.severe_congestion_fraction == 0.0
        assert stats.num_samples == 50

    def test_percentile_ordering(self, rng):
        stats = normalized_mlu_statistics(1.0 + rng.random(200))
        assert stats.p25 <= stats.median <= stats.p75 <= stats.p90 <= stats.p95 <= stats.p99 <= stats.worst

    def test_severe_congestion_fraction(self):
        series = np.array([1.0, 1.5, 2.5, 3.0])
        assert severe_congestion_fraction(series) == pytest.approx(0.5)
        assert severe_congestion_fraction(series, threshold=2.9) == pytest.approx(0.25)
        assert SEVERE_CONGESTION_THRESHOLD == 2.0

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            normalized_mlu_statistics(np.array([]))
        with pytest.raises(ValueError):
            severe_congestion_fraction(np.array([]))


class TestMeanConfidenceInterval:
    def test_matches_student_t_by_hand(self):
        from scipy import stats

        values = [1.0, 2.0, 3.0]
        mean, half = mean_confidence_interval(values, confidence=0.95)
        assert mean == pytest.approx(2.0)
        sem = np.std(values, ddof=1) / np.sqrt(3)
        assert half == pytest.approx(stats.t.ppf(0.975, 2) * sem)

    def test_single_sample_has_zero_half_width(self):
        assert mean_confidence_interval([1.7]) == (pytest.approx(1.7), 0.0)

    def test_constant_sample_has_zero_half_width(self):
        mean, half = mean_confidence_interval([2.0, 2.0, 2.0, 2.0])
        assert mean == pytest.approx(2.0)
        assert half == pytest.approx(0.0)

    def test_higher_confidence_widens_the_interval(self):
        values = [1.0, 1.4, 2.2, 0.9]
        _, narrow = mean_confidence_interval(values, confidence=0.5)
        _, wide = mean_confidence_interval(values, confidence=0.99)
        assert narrow < wide

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            mean_confidence_interval([])
        with pytest.raises(ValueError, match="confidence"):
            mean_confidence_interval([1.0], confidence=1.0)
        with pytest.raises(ValueError, match="confidence"):
            mean_confidence_interval([1.0], confidence=0.0)


class TestRunner:
    def test_omniscient_normalized_mlu_is_one(self, mesh4_paths, mesh4_traffic):
        scheme = OmniscientTE(mesh4_paths)
        result = evaluate_scheme(scheme, mesh4_traffic[:20], history_len=4, oracle_demand=True)
        np.testing.assert_allclose(result.normalized_mlus, 1.0, atol=1e-5)

    def test_normalization_uses_optimal(self, mesh4_paths, mesh4_traffic):
        test = mesh4_traffic[:20]
        optimal = compute_optimal_mlus(mesh4_paths, test.flat_demands())
        scheme = PredictionBasedTE(mesh4_paths)
        result = evaluate_scheme(scheme, test, history_len=4, optimal_mlus=optimal)
        np.testing.assert_allclose(result.raw_mlus / result.optimal_mlus, result.normalized_mlus)
        assert (result.normalized_mlus >= 1.0 - 1e-6).all()

    def test_too_short_sequence_rejected(self, mesh4_paths, mesh4_traffic):
        with pytest.raises(ValueError):
            evaluate_scheme(PredictionBasedTE(mesh4_paths), mesh4_traffic[:3], history_len=5)

    def test_compare_schemes_shares_normalisation(self, mesh4_paths, mesh4_traffic):
        train, test = mesh4_traffic.split(0.7)
        schemes = [PredictionBasedTE(mesh4_paths), DesensitizationTE(mesh4_paths)]
        results = compare_schemes(schemes, train, test[:16], history_len=4)
        assert set(results) == {"Pred TE (last)", "Des TE"}
        np.testing.assert_allclose(
            results["Pred TE (last)"].optimal_mlus, results["Des TE"].optimal_mlus
        )

    def test_fluctuation_experiment_structure(self, mesh4_paths, mesh4_traffic):
        train, test = mesh4_traffic.split(0.7)
        scheme = DesensitizationTE(mesh4_paths)
        outcome = fluctuation_experiment(
            scheme, test[:16], train, history_len=4, alphas=(0.5, 2.0), seed=1
        )
        assert set(outcome) == {0.5, 2.0}
        for entry in outcome.values():
            assert set(entry) == {"average_decline", "p90_decline"}

    def test_larger_fluctuations_cause_larger_decline(self, mesh4_paths, mesh4_traffic):
        train, test = mesh4_traffic.split(0.7)
        scheme = PredictionBasedTE(mesh4_paths)
        outcome = fluctuation_experiment(
            scheme, test[:16], train, history_len=4, alphas=(0.2, 2.0), seed=3
        )
        assert outcome[2.0]["average_decline"] >= outcome[0.2]["average_decline"] - 0.02

    def test_worst_case_fluctuation_at_least_as_bad(self, mesh4_paths, mesh4_traffic):
        train, test = mesh4_traffic.split(0.7)
        scheme = PredictionBasedTE(mesh4_paths)
        natural = fluctuation_experiment(scheme, test[:16], train, 4, alphas=(1.0,), seed=5)
        worst = fluctuation_experiment(scheme, test[:16], train, 4, alphas=(1.0,), worst_case=True, seed=5)
        # Not strictly guaranteed sample-by-sample, but the adversarial
        # reassignment should not make things dramatically easier.
        assert worst[1.0]["average_decline"] >= natural[1.0]["average_decline"] - 0.1

    def test_drift_experiment_structure(self, mesh4_paths, mesh4_traffic):
        def factory():
            return DesensitizationTE(mesh4_paths)

        outcome = drift_experiment(factory, mesh4_traffic, history_len=4,
                                   segments=((0.0, 0.25), (0.5, 0.75)))
        assert set(outcome) == {"0%-25%", "50%-75%"}

    def test_failure_experiment_fault_aware_wins(self, mesh4_paths, mesh4_traffic):
        from repro.solvers import FaultAwareDesensitizationTE

        train, test = mesh4_traffic.split(0.7)
        des = DesensitizationTE(mesh4_paths)
        fa = FaultAwareDesensitizationTE(mesh4_paths)
        results = failure_experiment(
            [des, fa], test[:8], history_len=4, num_failures=1, num_trials=2, seed=0
        )
        assert set(results) == {"Des TE", "FA Des TE"}
        assert results["FA Des TE"].mean() <= results["Des TE"].mean() + 0.15
        assert (results["FA Des TE"] >= 1.0 - 1e-6).all()


class TestTiming:
    def test_measure_scheme_timing(self, mesh4_paths, mesh4_traffic):
        train, test = mesh4_traffic.split(0.7)
        timing = measure_scheme_timing(
            PredictionBasedTE(mesh4_paths), train, test, history_len=4, max_intervals=3
        )
        assert timing.scheme_name == "Pred TE (last)"
        assert timing.precompute_seconds >= 0.0
        assert timing.mean_calculation_seconds > 0.0
        assert timing.p95_calculation_seconds >= timing.mean_calculation_seconds * 0.5

    def test_timing_requires_enough_intervals(self, mesh4_paths, mesh4_traffic):
        with pytest.raises(ValueError):
            measure_scheme_timing(
                PredictionBasedTE(mesh4_paths), mesh4_traffic[:10], mesh4_traffic[:4],
                history_len=4, max_intervals=5,
            )


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_mlu_comparison(self, rng):
        stats = {"X": normalized_mlu_statistics(1 + rng.random(10))}
        text = format_mlu_comparison(stats, title="cmp")
        assert "X" in text
        assert "severe>2" in text

    def test_format_series_downsamples(self):
        text = format_series("s", np.arange(100, dtype=float), max_points=5)
        assert text.startswith("s: [")
        assert text.count(",") == 4
