"""Unit tests and gradient checks for the autodiff engine (repro.nn.tensor)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.tensor import Tensor


def numeric_gradient(func, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite differences of a scalar-valued function of an array."""
    grad = np.zeros_like(x, dtype=float)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        plus = flat.copy()
        minus = flat.copy()
        plus[i] += eps
        minus[i] -= eps
        grad_flat[i] = (
            func(plus.reshape(x.shape)) - func(minus.reshape(x.shape))
        ) / (2 * eps)
    return grad


def check_gradient(build, x: np.ndarray, atol: float = 1e-6) -> None:
    """Compare autodiff gradients of ``build(Tensor)`` against finite differences."""
    t = Tensor(x, requires_grad=True)
    out = build(t)
    out.backward()
    numeric = numeric_gradient(lambda arr: build(Tensor(arr)).item(), x)
    np.testing.assert_allclose(t.grad, numeric, atol=atol, rtol=1e-4)


class TestForward:
    def test_add_broadcast(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose((a + b).data, [[2, 3, 4], [2, 3, 4]])

    def test_scalar_operations(self):
        a = Tensor(np.array([1.0, 2.0]))
        np.testing.assert_allclose((a * 2 + 1).data, [3, 5])
        np.testing.assert_allclose((1 - a).data, [0, -1])
        np.testing.assert_allclose((2 / a).data, [2, 1])

    def test_matmul(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3))
        b = Tensor(np.arange(12, dtype=float).reshape(3, 4))
        np.testing.assert_allclose((a @ b).data, a.data @ b.data)

    def test_relu_and_sigmoid(self):
        x = Tensor(np.array([-2.0, 0.0, 3.0]))
        np.testing.assert_allclose(x.relu().data, [0, 0, 3])
        np.testing.assert_allclose(x.sigmoid().data, 1 / (1 + np.exp(-x.data)))

    def test_sigmoid_extreme_values_are_stable(self):
        x = Tensor(np.array([-1000.0, 1000.0]))
        out = x.sigmoid().data
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out, [0.0, 1.0], atol=1e-12)

    def test_reductions(self):
        x = Tensor(np.arange(6, dtype=float).reshape(2, 3))
        assert x.sum().item() == 15
        assert x.mean().item() == pytest.approx(2.5)
        np.testing.assert_allclose(x.max(axis=1).data, [2, 5])
        np.testing.assert_allclose(x.sum(axis=0).data, [3, 5, 7])

    def test_reshape_and_item(self):
        x = Tensor(np.arange(4, dtype=float))
        assert x.reshape(2, 2).shape == (2, 2)
        assert Tensor(np.array([3.0])).item() == 3.0

    def test_gather_last(self):
        x = Tensor(np.array([[1.0, 2.0, 3.0]]))
        out = x.gather_last(np.array([2, 0, 0, 1]))
        np.testing.assert_allclose(out.data, [[3, 1, 1, 2]])

    def test_segment_sum(self):
        x = Tensor(np.array([[1.0, 2.0, 3.0, 4.0]]))
        out = x.segment_sum(np.array([0, 0, 1, 1]), 2)
        np.testing.assert_allclose(out.data, [[3, 7]])

    def test_segment_max(self):
        x = Tensor(np.array([[1.0, 5.0, 3.0, 4.0]]))
        out = x.segment_max(np.array([0, 0, 1, 1]), 2)
        np.testing.assert_allclose(out.data, [[5, 4]])

    def test_requires_grad_propagation(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3))
        assert (a + b).requires_grad
        assert not (b * 2).requires_grad

    def test_detach_stops_gradient(self):
        a = Tensor(np.ones(3), requires_grad=True)
        assert not a.detach().requires_grad

    def test_matmul_shape_validation(self):
        with pytest.raises(ValueError):
            Tensor(np.ones(3)) @ Tensor(np.ones((3, 2)))

    def test_pow_requires_scalar(self):
        with pytest.raises(TypeError):
            Tensor(np.ones(3)) ** np.ones(3)


class TestBackward:
    def test_backward_requires_scalar(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward()

    def test_backward_requires_grad(self):
        x = Tensor(np.ones(3))
        with pytest.raises(ValueError):
            x.sum().backward()

    def test_gradient_accumulates_across_uses(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3 + x * 4  # dy/dx = 7
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_zero_grad(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        (x * 2).backward()
        x.zero_grad()
        assert x.grad is None

    @pytest.mark.parametrize(
        "build",
        [
            lambda t: (t * 3.0).sum(),
            lambda t: (t + t * t).mean(),
            lambda t: (t @ np.arange(12, dtype=float).reshape(4, 3)).sum(),
            lambda t: t.relu().sum(),
            lambda t: t.sigmoid().mean(),
            lambda t: (t.exp() + 1.0).log().sum(),
            lambda t: (t**3).sum(),
            lambda t: t.max(axis=-1).sum(),
            lambda t: (t / (t.sum(axis=-1, keepdims=True) + 1.0)).sum(),
            lambda t: t.reshape(12).max(),
        ],
    )
    def test_gradients_match_finite_differences(self, build, rng):
        x = rng.random((3, 4)) + 0.5
        check_gradient(build, x)

    def test_gather_last_gradient(self, rng):
        index = np.array([0, 2, 2, 1])
        x = rng.random((2, 3))
        check_gradient(lambda t: (t.gather_last(index) * np.arange(1.0, 5.0)).sum(), x)

    def test_segment_sum_gradient(self, rng):
        seg = np.array([0, 0, 1, 2, 2])
        x = rng.random((2, 5))
        check_gradient(lambda t: (t.segment_sum(seg, 3) ** 2).sum(), x)

    def test_segment_max_gradient(self, rng):
        seg = np.array([0, 0, 1, 2, 2])
        x = rng.random((2, 5))
        check_gradient(lambda t: (t.segment_max(seg, 3) * np.array([1.0, 2.0, 3.0])).sum(), x)

    def test_te_loss_shaped_expression_gradient(self, rng):
        """Composite expression shaped like the actual TE loss."""
        seg = np.array([0, 0, 0, 1, 1, 2, 2])
        incidence = rng.random((7, 4))
        demand = rng.random((2, 3)) + 0.5

        def build(t):
            sums = t.segment_sum(seg, 3)
            ratios = t / sums.gather_last(seg)
            per_path_demand = Tensor(demand).gather_last(seg)
            flows = (ratios * per_path_demand) @ incidence
            mlu = flows.max(axis=-1).mean()
            smax = (ratios * 2.0).segment_max(seg, 3)
            return mlu + 0.1 * smax.sum()

        x = rng.random((2, 7)) + 0.2
        check_gradient(build, x)

    def test_broadcast_gradient_shapes(self, rng):
        bias = Tensor(rng.random(4), requires_grad=True)
        x = Tensor(rng.random((3, 4)), requires_grad=True)
        (x + bias).sum().backward()
        assert bias.grad.shape == (4,)
        assert x.grad.shape == (3, 4)
        np.testing.assert_allclose(bias.grad, 3.0)
