"""Unit tests for traffic perturbations and statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traffic.matrix import TrafficMatrix, TrafficMatrixSequence
from repro.traffic.perturb import (
    gaussian_fluctuation,
    reverse_rank_fluctuation,
    variance_rank_spearman,
)
from repro.traffic.stats import (
    burstiness_summary,
    cosine_similarity_profile,
    normalized_variance_matrix,
    variance_matrix,
)


@pytest.fixture()
def bursty_sequence(rng):
    """A 4-node sequence where pair (0, 1) is very bursty and (2, 3) is constant."""
    matrices = []
    for t in range(40):
        m = np.zeros((4, 4))
        m[0, 1] = 1.0 + (10.0 if t % 7 == 0 else 0.0) + rng.normal(0, 0.3)
        m[1, 2] = 3.0 + rng.normal(0, 0.5)
        m[2, 3] = 2.0
        m[3, 0] = 1.0 + rng.normal(0, 0.1)
        matrices.append(TrafficMatrix(np.clip(m, 0, None)))
    return TrafficMatrixSequence(matrices)


class TestStats:
    def test_variance_matrix_identifies_bursty_pair(self, bursty_sequence):
        var = variance_matrix(bursty_sequence)
        assert var.shape == (4, 4)
        assert var[0, 1] == var.max()
        assert var[2, 3] == pytest.approx(0.0)

    def test_normalized_variance_in_unit_range(self, bursty_sequence):
        norm = normalized_variance_matrix(bursty_sequence)
        assert norm.max() == pytest.approx(1.0)
        assert norm.min() >= 0.0

    def test_normalized_variance_of_constant_traffic(self):
        seq = TrafficMatrixSequence(np.ones((5, 3, 3)))
        norm = normalized_variance_matrix(seq)
        np.testing.assert_allclose(norm, 0.0)

    def test_cosine_similarity_profile_length(self, bursty_sequence):
        profile = cosine_similarity_profile(bursty_sequence, history=12)
        assert len(profile) == len(bursty_sequence) - 12
        assert ((profile >= -1e-9) & (profile <= 1 + 1e-9)).all()

    def test_identical_traffic_has_similarity_one(self):
        seq = TrafficMatrixSequence(np.ones((20, 3, 3)))
        profile = cosine_similarity_profile(seq, history=5)
        np.testing.assert_allclose(profile, 1.0)

    def test_history_must_be_positive(self, bursty_sequence):
        with pytest.raises(ValueError):
            cosine_similarity_profile(bursty_sequence, history=0)

    def test_burstiness_summary_keys_and_ordering(self, bursty_sequence):
        summary = burstiness_summary(bursty_sequence, history=10)
        assert set(summary) == {"p05", "p25", "p50", "p75", "p95", "mean"}
        assert summary["p05"] <= summary["p50"] <= summary["p95"]

    def test_burstiness_summary_too_short_sequence(self):
        seq = TrafficMatrixSequence(np.ones((3, 3, 3)))
        with pytest.raises(ValueError):
            burstiness_summary(seq, history=10)

    def test_larger_window_does_not_reduce_similarity(self, bursty_sequence):
        """Figure 18's point: enlarging H barely changes the profile."""
        short = cosine_similarity_profile(bursty_sequence, history=6)
        long = cosine_similarity_profile(bursty_sequence, history=24)
        assert np.median(long) >= np.median(short) - 1e-9


class TestPerturbations:
    def test_gaussian_fluctuation_zero_alpha_is_identity(self, bursty_sequence):
        std = bursty_sequence.pair_std()
        perturbed = gaussian_fluctuation(bursty_sequence, 0.0, std, seed=1)
        np.testing.assert_allclose(perturbed.flat_demands(), bursty_sequence.flat_demands())

    def test_gaussian_fluctuation_scales_with_alpha(self, bursty_sequence):
        std = bursty_sequence.pair_std()
        small = gaussian_fluctuation(bursty_sequence, 0.2, std, seed=2)
        large = gaussian_fluctuation(bursty_sequence, 2.0, std, seed=2)
        base = bursty_sequence.flat_demands()
        small_dev = np.abs(small.flat_demands() - base).mean()
        large_dev = np.abs(large.flat_demands() - base).mean()
        assert large_dev > small_dev

    def test_gaussian_fluctuation_non_negative(self, bursty_sequence):
        std = bursty_sequence.pair_std()
        perturbed = gaussian_fluctuation(bursty_sequence, 2.0, std, seed=3)
        assert (perturbed.flat_demands() >= 0).all()

    def test_constant_pairs_untouched(self, bursty_sequence):
        std = bursty_sequence.pair_std()
        perturbed = gaussian_fluctuation(bursty_sequence, 1.0, std, seed=4)
        pair_index = 8  # (2, 3) in row-major SD order for 4 nodes: index of (2,3)
        # Compute the index properly instead of hard-coding.
        pairs = [(s, d) for s in range(4) for d in range(4) if s != d]
        pair_index = pairs.index((2, 3))
        np.testing.assert_allclose(
            perturbed.flat_demands()[:, pair_index],
            bursty_sequence.flat_demands()[:, pair_index],
        )

    def test_negative_alpha_rejected(self, bursty_sequence):
        with pytest.raises(ValueError):
            gaussian_fluctuation(bursty_sequence, -1.0, bursty_sequence.pair_std())

    def test_wrong_std_shape_rejected(self, bursty_sequence):
        with pytest.raises(ValueError):
            gaussian_fluctuation(bursty_sequence, 1.0, np.ones(3))

    def test_reverse_rank_targets_stable_pairs(self, rng):
        # Build a 3-node sequence whose six pairs have distinct, positive
        # standard deviations so the variance ranking is unambiguous.
        stds = np.array([0.1, 0.4, 0.8, 1.5, 2.5, 4.0])
        base_flat = np.full(6, 50.0)
        flats = base_flat + rng.normal(0.0, stds, size=(60, 6))
        matrices = []
        for row in np.clip(flats, 0, None):
            m = np.zeros((3, 3))
            m[~np.eye(3, dtype=bool)] = row
            matrices.append(TrafficMatrix(m))
        sequence = TrafficMatrixSequence(matrices)
        std = sequence.pair_std()
        stable_idx = int(np.argmin(std))
        bursty_idx = int(np.argmax(std))

        worst = reverse_rank_fluctuation(sequence, 1.0, std, seed=5)
        deviations = np.abs(worst.flat_demands() - sequence.flat_demands()).mean(axis=0)
        # The historically most stable pair now receives the largest
        # fluctuation, and the most bursty one the smallest.
        assert deviations[stable_idx] == deviations.max()
        assert deviations[bursty_idx] == deviations.min()

    def test_spearman_of_identical_rankings_is_one(self, rng):
        variance = rng.random(20)
        assert variance_rank_spearman(variance, variance) == pytest.approx(1.0)

    def test_spearman_of_reversed_rankings_is_minus_one(self):
        variance = np.arange(10, dtype=float)
        assert variance_rank_spearman(variance, variance[::-1]) == pytest.approx(-1.0)

    def test_spearman_shape_mismatch(self):
        with pytest.raises(ValueError):
            variance_rank_spearman(np.ones(3), np.ones(4))
